"""Campaign service tests: queue, leases, workers, host chaos.

The invariant every scenario here defends: an N-worker service run —
including workers that are SIGKILLed mid-chunk, freeze their
heartbeats, skew their clocks, or stall and resume after their lease
was reassigned — produces a CampaignReport byte-identical to a serial
``run_campaign`` of the same (backend, config).
"""

import os
import threading
import time

import pytest

from repro.circuit import load
from repro.core import CampaignDb
from repro.engine import (
    ChaosBackend,
    ChaosFault,
    EarlyStop,
    EngineConfig,
    HostChaos,
    HostFault,
    SeuBackend,
    run_campaign,
)
from repro.service import (
    CampaignQueue,
    CampaignWorker,
    LeaseManager,
    LocalWorkerPool,
    run_service_campaign,
)
from repro.soft_error import random_workload

N_CYCLES = 8  # 12 flops x 8 cycles = 96 points, 4 chunks of 24


def _backend(n_cycles: int = N_CYCLES) -> SeuBackend:
    circuit = load("rand_seq")
    return SeuBackend(circuit, random_workload(circuit, n_cycles, seed=7),
                      lane_width=1)


def _signature(report):
    """Everything report identity promises: outcomes, counts, interval,
    early-stop decision, quarantine."""
    return ([inj.row() for inj in report.injections], report.outcomes,
            report.total, report.converged,
            report.confidence_interval("failure"),
            [(q.index, q.n_points) for q in report.quarantined])


def _config(**kw) -> EngineConfig:
    kw.setdefault("batch_size", 24)
    kw.setdefault("seed", 7)
    kw.setdefault("executor", "serial")
    return EngineConfig(**kw)


def _run_inline(db_path, backend, config, **worker_kw):
    """Submit + run one in-process worker to completion; return
    (job, report, queue-signature)."""
    with CampaignQueue(db_path) as queue:
        job_id = queue.submit(backend, config)
    worker = CampaignWorker(db_path, **worker_kw)
    worker.run()
    with CampaignQueue(db_path) as queue:
        job = queue.poll(job_id)
        assert job.state == "done", job
        report = queue.result(job_id)
    return job, report


# ----------------------------------------------------------------------
# leases: the claim state machine, on a fake clock
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self, start: float = 1000.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


class TestLeases:
    def _manager(self, tmp_path, name="leases.sqlite"):
        clock = FakeClock()
        db = CampaignDb(tmp_path / name)
        return LeaseManager(db, now=clock), clock, db

    def test_claims_hand_out_chunks_in_index_order(self, tmp_path):
        lm, clock, db = self._manager(tmp_path)
        lm.create(1, 3)
        got = [lm.claim_next(1, "w", ttl=10).chunk_index for _ in range(3)]
        assert got == [0, 1, 2]
        assert lm.claim_next(1, "w", ttl=10) is None  # all held, live
        db.close()

    def test_expired_lease_is_taken_over(self, tmp_path):
        lm, clock, db = self._manager(tmp_path)
        lm.create(1, 1)
        first = lm.claim_next(1, "a", ttl=10)
        assert (first.attempts, first.takeovers) == (1, 0)
        assert lm.claim_next(1, "b", ttl=10) is None  # deadline still live
        clock.advance(11)
        stolen = lm.claim_next(1, "b", ttl=10)
        assert stolen.worker_id == "b"
        assert (stolen.attempts, stolen.takeovers) == (2, 1)
        assert lm.takeover_total(1) == 1
        db.close()

    def test_heartbeat_extends_and_keeps_the_lease(self, tmp_path):
        lm, clock, db = self._manager(tmp_path)
        lm.create(1, 1)
        lm.claim_next(1, "a", ttl=10)
        clock.advance(8)
        assert lm.extend("a", ttl=10) == 1  # deadline now t+10
        clock.advance(8)  # 16s after claim: would be expired without it
        assert lm.claim_next(1, "b", ttl=10) is None
        db.close()

    def test_stale_holder_cannot_complete_after_takeover(self, tmp_path):
        lm, clock, db = self._manager(tmp_path)
        lm.create(1, 1)
        lm.claim_next(1, "a", ttl=10)
        clock.advance(11)
        lm.claim_next(1, "b", ttl=10)
        assert not lm.complete(1, 0, "a")  # stale worker loses
        assert lm.complete(1, 0, "b")
        assert lm.get(1, 0).state == "done"
        db.close()

    def test_release_makes_the_chunk_reclaimable(self, tmp_path):
        lm, clock, db = self._manager(tmp_path)
        lm.create(1, 1)
        lm.claim_next(1, "a", ttl=10)
        assert lm.release(1, 0, "a", error="boom")
        lease = lm.claim_next(1, "b", ttl=10)  # immediately, no expiry wait
        assert lease.worker_id == "b" and lease.attempts == 2
        db.close()

    def test_fail_and_cancel_are_terminal(self, tmp_path):
        lm, clock, db = self._manager(tmp_path)
        lm.create(1, 2)
        lm.claim_next(1, "a", ttl=10)
        assert lm.fail(1, 0, "a", error="quarantined")
        assert lm.cancel_open(1) == 1  # only the pending chunk 1
        clock.advance(100)
        assert lm.claim_next(1, "b", ttl=10) is None
        assert lm.counts(1) == {"failed": 1, "cancelled": 1}
        db.close()

    def test_release_all_on_drain(self, tmp_path):
        lm, clock, db = self._manager(tmp_path)
        lm.create(1, 3)
        lm.claim_next(1, "a", ttl=10)
        lm.claim_next(1, "a", ttl=10)
        assert lm.release_all("a") == 2
        assert lm.counts(1) == {"released": 2, "pending": 1}
        db.close()

    def test_worker_registry_reaps_on_lapsed_heartbeats(self, tmp_path):
        lm, clock, db = self._manager(tmp_path)
        lm.register_worker("a", pid=1, host="h")
        lm.bump_worker("a", done=2, failures=1)
        assert lm.reap_stale_workers(ttl=10) == 0
        clock.advance(31)  # 3 TTLs
        assert lm.reap_stale_workers(ttl=10) == 1
        (row,) = lm.workers()
        assert row[3] == "gone" and row[5] == 2 and row[6] == 1
        db.close()


# ----------------------------------------------------------------------
# queue: submit / poll / cancel
# ----------------------------------------------------------------------
class TestQueue:
    def test_submit_poll_cancel(self, tmp_path):
        with CampaignQueue(tmp_path / "q.sqlite") as queue:
            job_id = queue.submit(_backend(), _config())
            job = queue.poll(job_id)
            assert job.state == "pending" and not job.finished
            assert queue.cancel(job_id)
            assert queue.poll(job_id).state == "cancelled"
            assert not queue.cancel(job_id)  # terminal: second cancel no-ops

    def test_poll_unknown_job_raises(self, tmp_path):
        with CampaignQueue(tmp_path / "q.sqlite") as queue:
            with pytest.raises(KeyError):
                queue.poll(99)

    def test_cancelled_job_is_not_picked_up(self, tmp_path):
        db_path = tmp_path / "q.sqlite"
        with CampaignQueue(db_path) as queue:
            job_id = queue.submit(_backend(), _config())
            queue.cancel(job_id)
        worker = CampaignWorker(db_path, worker_id="w")
        assert worker.run() == 0

    def test_unrunnable_payload_poisons_the_job(self, tmp_path):
        db_path = tmp_path / "q.sqlite"
        with CampaignQueue(db_path) as queue:
            job_id = queue.submit(_backend(), _config())
            # corrupt the pickled payload in place
            queue.db.conn.execute(
                "UPDATE service_jobs SET payload=? WHERE id=?",
                (b"garbage", job_id))
            queue.db.conn.commit()
        CampaignWorker(db_path, worker_id="w").run()
        with CampaignQueue(db_path) as queue:
            job = queue.poll(job_id)
        assert job.state == "failed" and job.error


# ----------------------------------------------------------------------
# identity: a service run reports byte-identically to a serial run
# ----------------------------------------------------------------------
class TestServiceIdentity:
    def test_single_worker_matches_serial(self, tmp_path):
        serial = run_campaign(_backend(), _config())
        _, report = _run_inline(tmp_path / "s.sqlite", _backend(), _config(),
                                worker_id="solo")
        assert _signature(report) == _signature(serial)

    def test_early_stop_converges_on_the_serial_chunk(self, tmp_path):
        # commit_every=1 keeps the worker's claim batch at one chunk, so
        # convergence is detected on the exact chunk and the cancelled
        # tail count below is deterministic
        config = _config(batch_size=12, sample=None, shuffle=True,
                         commit_every=1,
                         early_stop=EarlyStop(outcome="failure", margin=0.08,
                                              min_injections=16))
        serial = run_campaign(_backend(n_cycles=32), config)
        assert serial.converged  # the scenario needs an actual early stop
        job, report = _run_inline(tmp_path / "s.sqlite",
                                  _backend(n_cycles=32), config,
                                  worker_id="solo")
        assert _signature(report) == _signature(serial)
        assert job.converged_chunk is not None
        with CampaignQueue(tmp_path / "s.sqlite") as queue:
            counts = queue.leases.counts(job.campaign_id)
        # the un-needed tail past the convergence chunk was cancelled
        assert counts.get("cancelled", 0) == (job.n_chunks
                                              - job.converged_chunk - 1)

    def test_two_threaded_workers_match_serial(self, tmp_path):
        config = _config(batch_size=12)
        serial = run_campaign(_backend(), config)
        db_path = tmp_path / "s.sqlite"
        with CampaignQueue(db_path) as queue:
            job_id = queue.submit(_backend(), config)
        workers = [CampaignWorker(db_path, worker_id=f"t{i}",
                                  lease_ttl=5.0) for i in range(2)]
        threads = [threading.Thread(target=w.run) for w in workers]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        with CampaignQueue(db_path) as queue:
            assert queue.poll(job_id).state == "done"
            report = queue.result(job_id)
        assert _signature(report) == _signature(serial)
        assert sum(w.chunks_executed for w in workers) >= 8

    def test_quarantine_flows_through_the_service(self, tmp_path):
        """A persistently failing chunk ends up quarantined — the same
        first-class 'failed' stratum a serial run reports."""
        def chaotic():
            inner = _backend()
            trigger = inner.enumerate_points()[0]
            return ChaosBackend(inner, [ChaosFault(trigger, mode="raise",
                                                   failures=None)])

        config = _config(max_chunk_retries=1, retry_backoff_s=0.001,
                         shuffle=False)
        serial_db = CampaignDb(tmp_path / "serial.sqlite")
        serial = run_campaign(chaotic(), config, db=serial_db)
        serial_db.close()
        assert serial.quarantined  # scenario sanity
        job, report = _run_inline(tmp_path / "s.sqlite", chaotic(), config,
                                  worker_id="solo")
        assert _signature(report) == _signature(serial)
        with CampaignQueue(tmp_path / "s.sqlite") as queue:
            counts = queue.leases.counts(job.campaign_id)
            (worker_row,) = queue.leases.workers()
        assert counts.get("failed") == len(serial.quarantined)
        # per-worker failure accounting fed the registry
        assert worker_row[6] >= config.max_chunk_retries + 1


# ----------------------------------------------------------------------
# host chaos, in-process: stale workers, frozen heartbeats, clock skew
# ----------------------------------------------------------------------
class TestHostChaosThreaded:
    def _run_pair(self, tmp_path, config, chaos):
        """One scripted worker + one clean worker, as threads."""
        db_path = tmp_path / "s.sqlite"
        with CampaignQueue(db_path) as queue:
            job_id = queue.submit(_backend(n_cycles=16), config)
        scripted = CampaignWorker(db_path, worker_id="scripted",
                                  lease_ttl=1.0, chaos=chaos)
        clean = CampaignWorker(db_path, worker_id="clean", lease_ttl=1.0)
        threads = [threading.Thread(target=w.run)
                   for w in (scripted, clean)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        with CampaignQueue(db_path) as queue:
            job = queue.poll(job_id)
            assert job.state == "done", job
            report = queue.result(job_id)
            takeovers = queue.leases.takeover_total(job.campaign_id)
        return report, takeovers

    def test_stale_worker_resuming_after_reassignment(self, tmp_path):
        """Frozen heartbeats + a stall between execute and record: the
        lease expires mid-stall, a peer re-executes, and the stale
        worker's late write is idempotently absorbed."""
        config = _config(batch_size=12)
        serial = run_campaign(_backend(n_cycles=16), config)
        chaos = HostChaos([HostFault("freeze_heartbeat", after_chunks=1),
                           HostFault("stall", after_chunks=2, stall_s=2.5)])
        report, takeovers = self._run_pair(tmp_path, config, chaos)
        assert _signature(report) == _signature(serial)
        assert takeovers >= 1  # the stalled lease really was reassigned

    def test_clock_skewed_worker_stays_identical(self, tmp_path):
        """A worker whose clock runs 30s fast sees peers' live leases
        as expired and steals them — duplicated execution the
        idempotent record layer must (and does) collapse."""
        config = _config(batch_size=12)
        serial = run_campaign(_backend(n_cycles=16), config)
        chaos = HostChaos([HostFault("clock_skew", skew_s=30.0)])
        report, _ = self._run_pair(tmp_path, config, chaos)
        assert _signature(report) == _signature(serial)


# ----------------------------------------------------------------------
# host chaos, real processes: SIGKILL, SIGTERM drain, the full gauntlet
# ----------------------------------------------------------------------
class TestHostChaosProcesses:
    def test_sigkilled_worker_is_recovered(self, tmp_path):
        """SIGKILL mid-chunk: the dead worker's lease expires and a
        peer finishes the chunk; the report never notices."""
        config = _config(batch_size=12)
        serial = run_campaign(_backend(n_cycles=24), config)
        report = run_service_campaign(
            _backend(n_cycles=24), config,
            db_path=tmp_path / "s.sqlite", n_workers=3,
            worker_kwargs={"lease_ttl": 1.0},
            per_worker={1: {"chaos": HostChaos(
                [HostFault("sigkill", after_chunks=2)])}},
            wait_timeout=120)
        assert _signature(report) == _signature(serial)
        with CampaignQueue(tmp_path / "s.sqlite") as queue:
            campaign_id = queue.poll(1).campaign_id
            assert queue.leases.takeover_total(campaign_id) >= 1

    def test_sigterm_drains_gracefully(self, tmp_path):
        """SIGTERM: the worker finishes its in-flight chunk, releases
        held leases, retires its registry row — and a later worker
        completes the campaign identically."""
        config = _config(batch_size=12)
        serial = run_campaign(_backend(n_cycles=24), config)
        db_path = tmp_path / "s.sqlite"
        with CampaignQueue(db_path) as queue:
            job_id = queue.submit(_backend(n_cycles=24), config)
        pool = LocalWorkerPool(db_path, 1,
                               worker_kwargs={"lease_ttl": 5.0,
                                              "worker_id": "drainee"})
        pool.start()
        deadline = time.monotonic() + 60
        with CampaignQueue(db_path) as queue:
            while (queue.poll(job_id).chunks_done < 2
                   and time.monotonic() < deadline):
                time.sleep(0.02)
        pool.terminate()
        pool.join(timeout=30)
        assert not pool.alive()
        with CampaignQueue(db_path) as queue:
            job = queue.poll(job_id)
            assert job.state == "running"  # drained, not finished
            held = [l for l in queue.leases.leases(job.campaign_id)
                    if l.state == "held"]
            assert not held  # everything released on the way out
            rows = dict((w[0], w[3]) for w in queue.leases.workers())
            assert rows["drainee"] == "drained"
        # a fresh worker picks the campaign back up to completion
        CampaignWorker(db_path, worker_id="finisher").run()
        with CampaignQueue(db_path) as queue:
            assert queue.poll(job_id).state == "done"
            report = queue.result(job_id)
        assert _signature(report) == _signature(serial)

    def test_acceptance_gauntlet_stays_byte_identical(self, tmp_path):
        """The ISSUE acceptance scenario: 4 workers — one SIGKILLed
        mid-chunk, one with frozen heartbeats and a stale return, one
        clock-skewed — still produce a report byte-identical to the
        serial reference."""
        config = _config(batch_size=12)
        serial = run_campaign(_backend(n_cycles=24), config)
        report = run_service_campaign(
            _backend(n_cycles=24), config,
            db_path=tmp_path / "s.sqlite", n_workers=4,
            worker_kwargs={"lease_ttl": 1.0},
            per_worker={
                1: {"chaos": HostChaos(
                    [HostFault("sigkill", after_chunks=2)])},
                2: {"chaos": HostChaos(
                    [HostFault("freeze_heartbeat", after_chunks=1),
                     HostFault("stall", after_chunks=2, stall_s=2.5)])},
                3: {"chaos": HostChaos(
                    [HostFault("clock_skew", skew_s=30.0)])},
            },
            wait_timeout=180)
        assert _signature(report) == _signature(serial)
