"""Tests for the SRAM PUF framework: simulation, metrics, analytics, keys."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.puf import (
    FINFET_16NM,
    FuzzyExtractor,
    FuzzyExtractorConfig,
    PLANAR_28NM,
    SramPuf,
    dark_bit_gain,
    expected_ber,
    fractional_hd,
    inter_device_hd,
    intra_device_hd,
    key_failure_rate,
    make_population,
    min_entropy_per_bit,
    predicted_intra_hd,
    predicted_key_failure,
    scorecard,
    uniformity,
)


class TestSramPufSimulation:
    def test_identity_is_device_stable(self):
        puf = SramPuf(256, FINFET_16NM, device_seed=1)
        r1 = puf.power_up(noise_seed=0)
        r2 = puf.power_up(noise_seed=0)
        assert np.array_equal(r1, r2)  # same noise seed → same readout

    def test_different_devices_differ(self):
        a = SramPuf(256, FINFET_16NM, device_seed=1).reference_response()
        b = SramPuf(256, FINFET_16NM, device_seed=2).reference_response()
        assert 0.3 < fractional_hd(a, b) < 0.7

    def test_noise_causes_occasional_flips(self):
        puf = SramPuf(2048, FINFET_16NM, device_seed=3)
        reference = puf.reference_response()
        distances = [fractional_hd(reference, puf.power_up())
                     for _ in range(5)]
        assert all(0 < d < 0.2 for d in distances)

    def test_temperature_increases_intra_hd(self):
        puf = SramPuf(2048, FINFET_16NM, device_seed=4)
        cold = intra_device_hd(puf, 10, temp_c=25.0)
        hot = intra_device_hd(puf, 10, temp_c=85.0)
        assert hot >= cold

    def test_stability_mask_reduces_flips(self):
        puf = SramPuf(4096, FINFET_16NM, device_seed=5)
        mask = puf.stability_mask()
        reference = puf.reference_response()
        readout = puf.power_up()
        flips_masked = np.mean(reference[mask] != readout[mask])
        flips_all = np.mean(reference != readout)
        assert flips_masked <= flips_all
        assert 0.5 < mask.mean() < 1.0


class TestMetrics:
    @pytest.fixture(scope="class")
    def population(self):
        return make_population(6, 1024, FINFET_16NM, base_seed=1)

    def test_uniqueness_near_half(self, population):
        assert 0.45 < inter_device_hd(population) < 0.55

    def test_uniformity_near_half(self, population):
        values = [uniformity(p) for p in population]
        assert all(0.4 < v < 0.6 for v in values)

    def test_min_entropy_positive(self, population):
        assert 0.3 < min_entropy_per_bit(population) <= 1.0

    def test_scorecard_temperature_trend(self, population):
        card = scorecard(population, n_readouts=5)
        assert card.intra_hd_25c < card.intra_hd_hot
        assert card.intra_hd_25c < 0.05

    def test_hd_length_mismatch(self):
        with pytest.raises(ValueError):
            fractional_hd(np.zeros(4), np.zeros(5))


class TestAnalyticalModel:
    def test_closed_form_matches_simulation(self):
        """The (1/π)·arctan(σn/σm) integral vs Monte-Carlo intra-HD."""
        predicted = predicted_intra_hd(FINFET_16NM, 25.0)
        puf = SramPuf(8192, FINFET_16NM, device_seed=9)
        simulated = intra_device_hd(puf, 12, temp_c=25.0)
        assert simulated == pytest.approx(predicted, rel=0.3)

    def test_model_tracks_temperature(self):
        predicted_hot = predicted_intra_hd(FINFET_16NM, 85.0)
        predicted_cold = predicted_intra_hd(FINFET_16NM, 25.0)
        assert predicted_hot > predicted_cold

    def test_finfet_beats_planar(self):
        assert predicted_intra_hd(FINFET_16NM, 85.0) < \
            predicted_intra_hd(PLANAR_28NM, 85.0)

    def test_expected_ber_limits(self):
        assert expected_ber(0.0, 1.0) == 0.5    # no identity: coin flips
        assert expected_ber(100.0, 1e-9) < 1e-6  # strong identity: stable
        assert expected_ber(1.0, 0.0) == 0.0

    def test_key_failure_grows_with_temperature(self):
        cold = predicted_key_failure(FINFET_16NM, 25.0, 2, 7, 32)
        hot = predicted_key_failure(FINFET_16NM, 105.0, 2, 7, 32)
        assert hot >= cold

    def test_dark_bit_masking_large_gain(self):
        assert dark_bit_gain(FINFET_16NM) > 10.0


class TestFuzzyExtractor:
    @pytest.fixture(scope="class")
    def enrolled(self):
        extractor = FuzzyExtractor(FuzzyExtractorConfig(key_nibbles=16,
                                                        repetition=5))
        puf = SramPuf(extractor.config.response_bits, FINFET_16NM,
                      device_seed=42)
        key, helper = extractor.enroll(puf.reference_response(), secret_seed=7)
        return extractor, puf, key, helper

    def test_reconstruction_at_nominal(self, enrolled):
        extractor, puf, key, helper = enrolled
        assert extractor.reconstruct(puf.power_up(25.0), helper) == key

    def test_reconstruction_across_temperature(self, enrolled):
        extractor, puf, key, helper = enrolled
        rate_hot = key_failure_rate(puf, helper, key, extractor,
                                    n_trials=20, temp_c=85.0)
        assert rate_hot < 0.2

    def test_key_is_256_bit_digest(self, enrolled):
        _extractor, _puf, key, _helper = enrolled
        assert len(key) == 32

    def test_different_devices_fail_reconstruction(self, enrolled):
        extractor, _puf, key, helper = enrolled
        imposter = SramPuf(extractor.config.response_bits, FINFET_16NM,
                           device_seed=4242)
        assert extractor.reconstruct(imposter.power_up(), helper) != key

    def test_short_response_rejected(self, enrolled):
        extractor, _puf, _key, helper = enrolled
        with pytest.raises(ValueError):
            extractor.reconstruct(np.zeros(8, dtype=np.uint8), helper)

    def test_helper_data_alone_insufficient(self, enrolled):
        """All-zero 'response' plus helper data must not yield the key."""
        extractor, _puf, key, helper = enrolled
        zeros = np.zeros(extractor.config.response_bits, dtype=np.uint8)
        assert extractor.reconstruct(zeros, helper) != key


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_enroll_reconstruct_roundtrip_property(seed):
    """Property: enrollment response reconstructs its own key exactly."""
    extractor = FuzzyExtractor(FuzzyExtractorConfig(key_nibbles=8,
                                                    repetition=3))
    puf = SramPuf(extractor.config.response_bits, FINFET_16NM,
                  device_seed=seed)
    response = puf.reference_response()
    key, helper = extractor.enroll(response, secret_seed=seed)
    assert extractor.reconstruct(response, helper) == key
