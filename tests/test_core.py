"""Tests for the holistic EDA framework: registry, flow, RIIF, campaigns,
statistics and reporting."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Aspect,
    CampaignDb,
    ComponentModel,
    FailureModeSpec,
    Flow,
    FlowError,
    Lead,
    Registry,
    RiifDocument,
    RiifParseError,
    Stage,
    SystemModel,
    ToolEntry,
    clopper_pearson_interval,
    default_registry,
    emit_riif,
    fit_from_rate,
    fit_to_mtbf_hours,
    format_bars,
    format_kv,
    format_table,
    parse_riif,
    required_injections,
    scale_fit_per_mbit,
    speedup,
    wilson_interval,
)


class TestRegistry:
    def test_default_registry_covers_all_aspects(self):
        reg = default_registry()
        totals = reg.aspect_totals()
        assert all(totals[a.value] > 0 for a in Aspect)

    def test_reliability_dominates_first_half(self):
        """Fig. 1's visual: the reliability cluster is the largest."""
        totals = default_registry().aspect_totals()
        assert totals["reliability"] > totals["security"]
        assert totals["reliability"] > totals["quality"]

    def test_both_leads_present(self):
        totals = default_registry().lead_totals()
        assert totals["academia"] > 0 and totals["industry"] > 0

    def test_duplicate_rejected(self):
        reg = Registry()
        entry = ToolEntry("x", (Aspect.QUALITY,), "III.A", Lead.ACADEMIA, "m")
        reg.register(entry)
        with pytest.raises(ValueError):
            reg.register(entry)

    def test_figure1_rows_sorted_by_weight(self):
        rows = default_registry().figure1_data()
        weights = [r[3] for r in rows]
        assert weights == sorted(weights, reverse=True)


class TestFlow:
    def test_stages_execute_in_dependency_order(self):
        flow = Flow()
        flow.add_stage(Stage("c", ("b_out",), ("c_out",),
                             lambda a: {"c_out": a["b_out"] + 1}))
        flow.add_stage(Stage("a", (), ("a_out",), lambda a: {"a_out": 1}))
        flow.add_stage(Stage("b", ("a_out",), ("b_out",),
                             lambda a: {"b_out": a["a_out"] + 1}))
        report = flow.run()
        assert [s.name for s in report.stages] == ["a", "b", "c"]
        assert report.artifacts["c_out"] == 3

    def test_missing_artifact_raises(self):
        flow = Flow()
        flow.add_stage(Stage("x", ("ghost",), ("y",), lambda a: {"y": 1}))
        with pytest.raises(FlowError, match="missing artifacts"):
            flow.run()

    def test_initial_artifacts_accepted(self):
        flow = Flow()
        flow.add_stage(Stage("x", ("seed",), ("y",),
                             lambda a: {"y": a["seed"] * 2}))
        report = flow.run({"seed": 21})
        assert report.artifacts["y"] == 42

    def test_double_producer_rejected(self):
        flow = Flow()
        flow.add_stage(Stage("a", (), ("out",), lambda a: {"out": 1}))
        flow.add_stage(Stage("b", (), ("out",), lambda a: {"out": 2}))
        with pytest.raises(FlowError, match="produced by both"):
            flow.run()

    def test_unproduced_artifact_detected(self):
        flow = Flow()
        flow.add_stage(Stage("a", (), ("out",), lambda a: {}))
        with pytest.raises(FlowError, match="did not produce"):
            flow.run()

    def test_duplicate_stage_rejected(self):
        flow = Flow()
        flow.add_stage(Stage("a", (), (), lambda a: {}))
        with pytest.raises(FlowError):
            flow.add_stage(Stage("a", (), (), lambda a: {}))


class TestRiif:
    def _document(self) -> RiifDocument:
        doc = RiifDocument()
        doc.components["sram"] = ComponentModel(
            "sram", {"bits": 8192, "derating": 0.25},
            [FailureModeSpec("seu", 4.0), FailureModeSpec("sefi", 0.5, True)])
        doc.components["flop_bank"] = ComponentModel(
            "flop_bank", {"bits": 512},
            [FailureModeSpec("seu", 0.25)])
        doc.systems["soc"] = SystemModel(
            "soc", [("l1", "sram", 2), ("pipeline", "flop_bank", 4)])
        return doc

    def test_roundtrip_exact(self):
        doc = self._document()
        assert emit_riif(parse_riif(emit_riif(doc))) == emit_riif(doc)

    def test_system_fit_aggregates(self):
        doc = self._document()
        assert doc.system_fit("soc") == pytest.approx(2 * 4.5 + 4 * 0.25)

    def test_bridge_to_fit_budget(self):
        budget = self._document().to_fit_budget("soc")
        assert budget.total_raw_fit == pytest.approx(10.0, rel=1e-6)
        assert len(budget.components) == 2

    def test_unknown_model_reference_rejected(self):
        with pytest.raises(RiifParseError):
            parse_riif("system s {\n  instance x : ghost * 1;\n}")

    def test_garbage_line_rejected(self):
        with pytest.raises(RiifParseError):
            parse_riif("component c {\n  banana;\n}")

    def test_comments_ignored(self):
        doc = parse_riif(
            "component c { // a comment\n"
            "  failure_mode seu fit=1.5; // another\n"
            "}\n")
        assert doc.components["c"].total_fit == 1.5


class TestCampaignDb:
    def test_summary_and_rates(self):
        with CampaignDb() as db:
            cid = db.create_campaign("c1", "s27", "seu", "wl")
            db.record_many(cid, [("q0", 0, "failure"), ("q0", 1, "masked"),
                                 ("q1", 0, "masked"), ("q1", 1, "latent")])
            summary = db.summary(cid)
            assert summary.total == 4
            assert summary.rate("failure") == 0.25
            avf = db.failure_rate_by_location(cid)
            assert avf["q0"] == 0.5 and avf["q1"] == 0.0

    def test_multiple_campaigns_isolated(self):
        with CampaignDb() as db:
            c1 = db.create_campaign("a", "x", "seu", "w")
            c2 = db.create_campaign("b", "x", "set", "w")
            db.record_many(c1, [("n", 0, "failure")])
            db.record_many(c2, [("n", 0, "masked")])
            assert db.summary(c1).outcomes == {"failure": 1}
            assert db.summary(c2).outcomes == {"masked": 1}
            assert db.campaigns_for("x") == [c1, c2]

    def test_cross_campaign_histogram(self):
        with CampaignDb() as db:
            c1 = db.create_campaign("a", "x", "seu", "w")
            db.record_many(c1, [("n", 0, "failure"), ("m", 1, "failure")])
            assert db.cross_campaign_outcomes() == {"failure": 2}

    def test_missing_campaign_raises(self):
        with CampaignDb() as db:
            with pytest.raises(KeyError):
                db.summary(999)


class TestStats:
    def test_fit_conversions(self):
        assert fit_from_rate(1, 1e9) == 1.0
        assert fit_to_mtbf_hours(10.0) == 1e8
        assert fit_to_mtbf_hours(0) == math.inf
        assert scale_fit_per_mbit(500.0, 1 << 20) == pytest.approx(524.288)

    def test_wilson_interval_contains_phat(self):
        interval = wilson_interval(30, 100)
        assert interval.low < 0.3 < interval.high
        assert interval.contains(0.3)

    def test_wilson_edge_cases(self):
        assert wilson_interval(0, 50).low == 0.0
        assert wilson_interval(50, 50).high == 1.0
        assert wilson_interval(0, 0).width == 1.0

    def test_clopper_pearson_wider_than_wilson(self):
        wilson = wilson_interval(5, 40)
        exact = clopper_pearson_interval(5, 40)
        assert exact.width >= wilson.width - 1e-9

    def test_required_injections(self):
        assert required_injections(100_000, margin=0.05) < \
            required_injections(100_000, margin=0.01)

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert speedup(1.0, 0.0) == math.inf


class TestReport:
    def test_table_alignment(self):
        table = format_table(["name", "value"], [("a", 1.5), ("bb", 2.0)])
        lines = table.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular
        assert "1.500" in table

    def test_bars_scale(self):
        chart = format_bars([("x", 10.0), ("y", 5.0)], width=10)
        x_hashes = chart.splitlines()[0].count("#")
        y_hashes = chart.splitlines()[1].count("#")
        assert x_hashes == 10 and y_hashes == 5

    def test_kv_block(self):
        block = format_kv([("key", 1), ("longer_key", "v")], title="T")
        assert block.startswith("T")
        assert "longer_key : v" in block

    def test_empty_inputs(self):
        assert format_bars([], title="t") == "t"
        assert format_kv([]) == ""


@settings(max_examples=30, deadline=None)
@given(successes=st.integers(0, 200), extra=st.integers(0, 200))
def test_wilson_interval_bounds_property(successes, extra):
    trials = successes + extra
    interval = wilson_interval(successes, trials)
    assert 0.0 <= interval.low <= interval.high <= 1.0
    if trials:
        assert interval.contains(successes / trials)
