"""Tests for IEEE 1687-style reconfigurable scan networks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rsn import (
    CellStuck,
    Mux,
    MuxSelStuck,
    Reg,
    RsnError,
    Segment,
    Sib,
    SibStuck,
    RSN,
    age_network,
    all_rsn_faults,
    build_signature_table,
    chain,
    check_equivalence,
    compact_test,
    compare_strategies,
    coverage,
    detects,
    diagnostic_test,
    emit_icl,
    equivalent,
    exhaustive_test,
    mitigate_with_dummy_cycles,
    naive_access_cost,
    parse_icl,
    random_network,
    retarget,
    route_requirements,
    sib_tree,
)
from repro.rsn.test_gen import full_flat_length


def _mux_network() -> RSN:
    """r_sel steers a 2-branch mux; r_a / r_b are the branch payloads."""
    return RSN("muxnet", Segment([
        Reg("r_sel", 1),
        Mux("m1", "r_sel", [Segment([Reg("r_a", 4)]),
                            Segment([Reg("r_b", 4)])]),
    ]))


class TestNetworkBasics:
    def test_flat_chain_csu(self):
        net = chain("flat", Reg("r1", 4), Reg("r2", 4))
        net.reset()
        assert net.path_length() == 8
        net.csu([1, 0, 1, 1, 0, 0, 1, 0])
        # cell i receives tdi[L-1-i]
        assert net.read_register("r1") == 0b0010
        assert net.read_register("r2") == 0b1011

    def test_csu_length_enforced(self):
        net = chain("flat", Reg("r1", 4))
        net.reset()
        with pytest.raises(RsnError):
            net.csu([1, 0])

    def test_sib_reconfigures_path(self):
        tree = sib_tree(depth=1, regs_per_leaf=1, reg_bits=4)
        tree.reset()
        closed_len = tree.path_length()
        retarget(tree, {"r1": 0xF})
        assert tree.path_length() > closed_len
        assert tree.read_register("r1") == 0xF

    def test_capture_reads_instrument_value(self):
        reg = Reg("r1", 8, capture_value=0xC3)
        net = chain("cap", reg)
        net.reset()
        tdo = net.csu([0] * 8)
        observed = sum(bit << (7 - i) for i, bit in enumerate(tdo))
        assert observed == 0xC3

    def test_duplicate_names_rejected(self):
        with pytest.raises(RsnError):
            chain("dup", Reg("r", 4), Reg("r", 4))

    def test_mux_steers_branch(self):
        net = _mux_network()
        net.reset()
        assert net.path_length() == 1 + 4  # sel + branch A
        retarget(net, {"r_b": 0x5})
        assert net.read_register("r_b") == 0x5
        assert net.node("r_sel").update_latch % 2 == 1

    def test_state_signature_lists_cells(self):
        tree = sib_tree(depth=2)
        sig = tree.state_signature()
        assert set(sig) == {n for n, node in tree.registry.items()
                            if not isinstance(node, Mux)}


class TestRetargeting:
    def test_deep_register_reachable(self):
        tree = sib_tree(depth=3, regs_per_leaf=1, reg_bits=8)
        tree.reset()
        result = retarget(tree, {"r5": 0xA5})
        assert result.success
        assert tree.read_register("r5") == 0xA5

    def test_multiple_targets_one_session(self):
        tree = sib_tree(depth=2, regs_per_leaf=1, reg_bits=8)
        tree.reset()
        result = retarget(tree, {"r1": 0x11, "r4": 0x44})
        assert result.success
        assert tree.read_register("r1") == 0x11
        assert tree.read_register("r4") == 0x44

    def test_optimized_cheaper_than_flatten(self):
        tree = sib_tree(depth=3, regs_per_leaf=1, reg_bits=8)
        tree.reset()
        optimized = retarget(tree, {"r5": 0xA5}).shift_cycles
        naive = naive_access_cost(sib_tree(depth=3, regs_per_leaf=1, reg_bits=8),
                                  {"r5": 0xA5})
        assert optimized < naive

    def test_route_requirements_ordered(self):
        tree = sib_tree(depth=2)
        reqs = route_requirements(tree, "r1")
        assert all(r.kind == "sib_open" for r in reqs)
        assert len(reqs) == 2  # two SIB levels guard the leaf

    def test_unknown_target_raises(self):
        tree = sib_tree(depth=1)
        with pytest.raises(RsnError):
            route_requirements(tree, "ghost")

    def test_untouched_registers_keep_values(self):
        tree = sib_tree(depth=2, regs_per_leaf=1, reg_bits=8)
        tree.reset()
        retarget(tree, {"r1": 0xAB})
        retarget(tree, {"r2": 0xCD})
        assert tree.read_register("r1") == 0xAB  # first write survived


class TestIcl:
    def test_roundtrip_tree(self):
        tree = sib_tree(depth=2)
        parsed = parse_icl(emit_icl(tree))
        assert emit_icl(parsed) == emit_icl(tree)

    def test_roundtrip_mux(self):
        net = _mux_network()
        parsed = parse_icl(emit_icl(net))
        assert emit_icl(parsed) == emit_icl(net)

    def test_parse_rejects_unknown_control(self):
        from repro.rsn import IclParseError
        with pytest.raises(IclParseError):
            parse_icl("network x\n  mux m ctrl=ghost\n    branch\n"
                      "      reg a 4\n    branch\n      reg b 4\n")

    def test_parse_rejects_garbage(self):
        from repro.rsn import IclParseError
        with pytest.raises(IclParseError):
            parse_icl("network x\n  flipflop q\n")


class TestEquivalence:
    def test_icl_matches_model(self):
        make = lambda: sib_tree(depth=2)
        text = emit_icl(make())
        assert equivalent(make, lambda: parse_icl(text))

    def test_wrong_register_length_caught(self):
        def mutated():
            net = sib_tree(depth=2)
            net.node("r1").length = 9
            return net
        mismatch = check_equivalence(lambda: sib_tree(depth=2), mutated)
        assert mismatch is not None
        assert mismatch.phase in ("path_length", "tdo")

    def test_swapped_mux_branches_caught(self):
        def swapped():
            net = _mux_network()
            mux = net.node("m1")
            mux.branches.reverse()
            return net
        mismatch = check_equivalence(_mux_network, swapped)
        assert mismatch is not None


class TestTestGeneration:
    FACTORY = staticmethod(lambda: sib_tree(depth=2, regs_per_leaf=1, reg_bits=4))

    def test_both_strategies_full_coverage(self):
        faults = all_rsn_faults(self.FACTORY())
        comparison = compare_strategies(self.FACTORY, faults)
        assert comparison.exhaustive_coverage == 1.0
        assert comparison.compact_coverage == 1.0

    def test_compact_is_shorter(self):
        faults = all_rsn_faults(self.FACTORY())
        comparison = compare_strategies(self.FACTORY, faults)
        assert comparison.duration_reduction > 0.5

    def test_detects_specific_faults(self):
        test = compact_test(self.FACTORY)
        assert detects(self.FACTORY, SibStuck("s1", False), test)
        assert detects(self.FACTORY, SibStuck("s1", True), test)
        assert detects(self.FACTORY, CellStuck("r1", 0, 1), test)

    def test_mux_fault_needs_select_toggle(self):
        faults = [MuxSelStuck("m1", 0), MuxSelStuck("m1", 1)]
        test = compact_test(_mux_network)
        cov = coverage(_mux_network, faults, test)
        assert 0.0 <= cov <= 1.0  # compact test may not toggle selects

    def test_flat_length_accounts_everything(self):
        tree = sib_tree(depth=2, regs_per_leaf=1, reg_bits=4)
        # 6 SIBs + 4 leaf regs × 4 bits
        assert full_flat_length(tree) == 6 + 16


class TestDiagnosis:
    def test_resolution_reasonable(self):
        factory = lambda: sib_tree(depth=2, regs_per_leaf=1, reg_bits=4)
        faults = all_rsn_faults(factory())
        table = build_signature_table(factory, faults, compact_test(factory))
        assert table.detected_fraction() == 1.0
        assert 1.0 <= table.resolution() < 3.0

    def test_candidates_contain_true_fault(self):
        factory = lambda: sib_tree(depth=2, regs_per_leaf=1, reg_bits=4)
        faults = all_rsn_faults(factory())
        test = compact_test(factory)
        table = build_signature_table(factory, faults, test)
        fault = SibStuck("s2", False)
        candidates = table.candidates(table.signatures[fault])
        assert fault in candidates

    def test_diagnostic_refinement_never_worse(self):
        factory = lambda: sib_tree(depth=2, regs_per_leaf=1, reg_bits=4)
        faults = all_rsn_faults(factory())
        base = compact_test(factory)
        base_table = build_signature_table(factory, faults, base)
        _test, refined = diagnostic_test(factory, faults, base,
                                         max_extra_rounds=4)
        assert refined.resolution() <= base_table.resolution()


class TestRsnAging:
    def test_idle_segments_age_most(self):
        tree = sib_tree(depth=2)
        usage = {name: 0.01 for name in tree.registry}
        usage["s1"] = 0.9  # one hot segment
        report = age_network(tree, usage, years=10)
        hot = report.cell_stress["s1"]
        cold = max(v for k, v in report.cell_stress.items() if k != "s1")
        assert hot < cold

    def test_mitigation_reduces_slowdown(self):
        tree = sib_tree(depth=2)
        usage = {name: 0.02 for name in tree.registry}
        before, after = mitigate_with_dummy_cycles(tree, usage,
                                                   dummy_fraction=0.15)
        assert after.max_shift_slowdown < before.max_shift_slowdown
        assert after.frequency_loss_percent() < before.frequency_loss_percent()

    def test_aging_grows_with_years(self):
        tree = sib_tree(depth=1)
        usage = {name: 0.0 for name in tree.registry}
        early = age_network(tree, usage, years=1)
        late = age_network(tree, usage, years=10)
        assert late.max_shift_slowdown > early.max_shift_slowdown


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_random_network_csu_stable(seed):
    """Property: a full-length CSU never crashes and preserves path length
    until update reconfigures it deterministically."""
    net = random_network(12, seed=seed)
    net.reset()
    length = net.path_length()
    assert length > 0
    tdo = net.csu([1] * length)
    assert len(tdo) == length


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_icl_roundtrip_random_networks(seed):
    net = random_network(14, seed=seed)
    parsed = parse_icl(emit_icl(net))
    assert emit_icl(parsed) == emit_icl(net)
