"""Tests for crypto cores and hardware-security analyses."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto import (
    AesConstantTime,
    AesLeaky,
    encrypt_block,
    expand_key,
    gmul,
    hamming_weight,
    montgomery_ladder,
    square_and_multiply,
    xtime,
)
from repro.security import (
    CELL_PITCH_UM,
    FaultAttackDetector,
    Floorplan,
    LaserShot,
    audit_timing,
    candidate_key_bytes,
    clean_program_trace,
    collect_traces,
    cpa_attack,
    dfa_with_redundancy_countermeasure,
    evaluate_detector,
    faulted_trace,
    fire,
    full_dfa_attack,
    invert_key_schedule,
    recover_exponent_hw,
    recover_key,
    success_rate_curve,
    targeted_attack,
    tvla,
    unlock_register_attack,
)

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")


class TestAes:
    def test_fips197_appendix_b(self):
        pt = bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        assert encrypt_block(pt, KEY).hex() == \
            "3925841d02dc09fbdc118597196a0b32"

    def test_fips197_appendix_c1(self):
        key = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        pt = bytes.fromhex("00112233445566778899aabbccddeeff")
        assert encrypt_block(pt, key).hex() == \
            "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_key_schedule_first_last_words(self):
        rks = expand_key(KEY)
        assert bytes(rks[0]) == KEY
        assert bytes(rks[10]).hex() == "d014f9a8c9ee2589e13f0cc8b6630ca6"

    def test_variants_match_reference(self):
        pt = bytes(range(16))
        ct = encrypt_block(pt, KEY)
        assert AesLeaky(KEY).encrypt(pt)[0] == ct
        assert AesConstantTime(KEY).encrypt(pt)[0] == ct

    def test_gf_arithmetic(self):
        assert xtime(0x80) == 0x1B
        assert gmul(0x57, 0x13) == 0xFE  # FIPS-197 example
        assert gmul(1, 0xAB) == 0xAB

    def test_fault_hook_changes_ciphertext(self):
        pt = bytes(16)
        clean = encrypt_block(pt, KEY)
        faulty = encrypt_block(pt, KEY, fault=(10, 3, 0x01))
        assert clean != faulty
        diff = sum(1 for a, b in zip(clean, faulty) if a != b)
        assert diff == 1  # a round-10 byte fault hits exactly one ct byte

    def test_leaky_timing_varies_constant_does_not(self):
        rng = random.Random(1)
        leaky_times, const_times = set(), set()
        leaky, const = AesLeaky(KEY), AesConstantTime(KEY)
        for _ in range(20):
            pt = bytes(rng.randrange(256) for _ in range(16))
            leaky_times.add(leaky.encrypt(pt)[1].cycles)
            const_times.add(const.encrypt(pt)[1].cycles)
        assert len(leaky_times) > 1
        assert len(const_times) == 1


class TestModExp:
    def test_agree_with_pow(self):
        for base, exp, mod in [(7, 181, 1009), (2, 65537, 99991), (5, 1, 7)]:
            assert square_and_multiply(base, exp, mod).value == pow(base, exp, mod)
            assert montgomery_ladder(base, exp, mod).value == pow(base, exp, mod)

    def test_sm_time_tracks_hamming_weight(self):
        light = square_and_multiply(3, 0b10000000, 10007)
        heavy = square_and_multiply(3, 0b11111111, 10007)
        assert heavy.cycles > light.cycles
        assert heavy.multiplies == 8 and light.multiplies == 1

    def test_ladder_time_constant_per_length(self):
        t1 = montgomery_ladder(3, 0b10000001, 10007).cycles
        t2 = montgomery_ladder(3, 0b11111111, 10007).cycles
        assert t1 == t2

    def test_modulus_validated(self):
        with pytest.raises(ValueError):
            square_and_multiply(2, 3, 0)


class TestTimingAudit:
    def test_square_multiply_flagged(self):
        report = audit_timing(
            "sm", lambda s, d: square_and_multiply(d or 3, s, 65537).cycles)
        assert report.leaks
        assert abs(report.hw_correlation) > 0.9

    def test_ladder_passes(self):
        report = audit_timing(
            "ladder", lambda s, d: montgomery_ladder(d or 3, s, 65537).cycles)
        assert not report.leaks
        assert report.verdict == "constant-time"

    def test_aes_variants_audited(self):
        leaky, const = AesLeaky(KEY), AesConstantTime(KEY)
        rep_leaky = audit_timing(
            "aes-leaky",
            lambda s, d: leaky.encrypt(s.to_bytes(16, "little"))[1].cycles,
            secret_bits=128)
        rep_const = audit_timing(
            "aes-const",
            lambda s, d: const.encrypt(s.to_bytes(16, "little"))[1].cycles,
            secret_bits=128)
        assert rep_leaky.leaks
        assert not rep_const.leaks

    def test_hw_recovery_from_timing(self):
        rng = random.Random(9)
        calibration = [rng.randrange(1, 1 << 16) for _ in range(50)]
        secret = 0b1011001110001111
        estimate = recover_exponent_hw(
            lambda s, d: square_and_multiply(3, s, 65537).cycles,
            secret, calibration)
        assert estimate == bin(secret).count("1")


class TestPowerAnalysis:
    def test_cpa_recovers_key_from_leaky(self):
        traces = collect_traces(AesLeaky(KEY), 60, seed=3)
        assert recover_key(traces) == KEY

    def test_cpa_fails_against_masking(self):
        traces = collect_traces(AesConstantTime(KEY), 60, seed=3)
        recovered = recover_key(traces)
        correct = sum(1 for a, b in zip(recovered, KEY) if a == b)
        assert correct <= 3  # chance level

    def test_success_rate_monotone(self):
        curve = success_rate_curve(lambda: AesLeaky(KEY), KEY,
                                   [5, 25, 60], seed=4)
        assert curve[-1][1] >= curve[0][1]
        assert curve[-1][1] == 1.0

    def test_tvla_separates_implementations(self):
        assert tvla(AesLeaky(KEY), 80, seed=5).leaks
        assert not tvla(AesConstantTime(KEY), 80, seed=5).leaks

    def test_cpa_correlation_ranks_true_key_first(self):
        traces = collect_traces(AesLeaky(KEY), 80, seed=6)
        guess, correlations = cpa_attack(traces, 0)
        assert guess == KEY[0]
        assert correlations[KEY[0]] == max(correlations)


class TestLaserFi:
    def test_single_bit_repeatable_at_250nm(self):
        stats = unlock_register_attack("250nm", attempts=50, seed=7)
        assert stats.single_bit_success_rate > 0.9

    def test_multibit_collateral_at_28nm(self):
        stats = unlock_register_attack("28nm", attempts=50, seed=7)
        assert stats.single_bit_success_rate < 0.1
        assert stats.collateral > stats.exact_hits

    def test_energy_threshold(self):
        plan = Floorplan.grid("250nm", ["r0", "r1"])
        weak = fire(plan, LaserShot(0, 0, 2.0, energy=0.1))
        assert not weak.flipped
        strong = fire(plan, LaserShot(0, 0, 2.0, energy=2.0))
        assert "r0" in strong.flipped

    def test_unknown_target_raises(self):
        plan = Floorplan.grid("250nm", ["r0"])
        with pytest.raises(ValueError):
            targeted_attack(plan, "ghost")

    def test_pitch_table_monotone(self):
        pitches = [CELL_PITCH_UM[t] for t in ("250nm", "130nm", "65nm", "28nm")]
        assert pitches == sorted(pitches, reverse=True)


class TestDfa:
    def test_full_attack_recovers_master_key(self):
        assert full_dfa_attack(KEY, seed=2) == KEY

    def test_key_schedule_inversion(self):
        round10 = bytes(expand_key(KEY)[10])
        assert invert_key_schedule(round10) == KEY

    def test_candidate_filter_contains_truth(self):
        pt = bytes(range(16))
        clean = encrypt_block(pt, KEY)
        faulty = encrypt_block(pt, KEY, fault=(10, 0, 0x04))
        candidates = candidate_key_bytes(clean, faulty, 0)
        true_byte = expand_key(KEY)[10][0]
        assert true_byte in candidates
        assert len(candidates) < 256

    def test_redundancy_countermeasure_blocks_attack(self):
        released_without, released_with = \
            dfa_with_redundancy_countermeasure(KEY, seed=3)
        assert released_without == 32
        assert released_with == 0


class TestDetector:
    @pytest.fixture(scope="class")
    def fitted(self):
        rng = random.Random(7)
        train = [clean_program_trace(rng) for _ in range(100)]
        detector = FaultAttackDetector(epochs=200, seed=1).fit(train)
        return detector, rng

    def test_low_false_positive_rate(self, fitted):
        detector, rng = fitted
        clean = [clean_program_trace(rng) for _ in range(50)]
        fpr = sum(detector.is_attack(t) for t in clean) / 50
        assert fpr < 0.1

    def test_detects_seen_and_unseen_attacks(self, fitted):
        detector, rng = fitted
        attacks = {
            kind: [faulted_trace(clean_program_trace(rng), kind, rng)
                   for _ in range(25)]
            for kind in ("skip", "loop_exit", "wrong_branch", "double_round")
        }
        clean = [clean_program_trace(rng) for _ in range(40)]
        report = evaluate_detector(detector, clean, attacks)
        assert report.auc > 0.95
        for kind, rate in report.detection_rate.items():
            assert rate > 0.8, kind

    def test_unknown_attack_kind_raises(self, fitted):
        _detector, rng = fitted
        with pytest.raises(ValueError):
            faulted_trace(clean_program_trace(rng), "meltdown", rng)

    def test_score_before_fit_raises(self):
        detector = FaultAttackDetector()
        with pytest.raises(RuntimeError):
            detector.is_attack(["alu"])


@settings(max_examples=15, deadline=None)
@given(key=st.binary(min_size=16, max_size=16),
       pt=st.binary(min_size=16, max_size=16))
def test_aes_variants_agree_property(key, pt):
    """Property: all three AES paths produce identical ciphertext."""
    reference = encrypt_block(pt, key)
    assert AesLeaky(key).encrypt(pt)[0] == reference
    assert AesConstantTime(key).encrypt(pt)[0] == reference


@settings(max_examples=15, deadline=None)
@given(base=st.integers(2, 1000), exp=st.integers(1, 10_000),
       mod=st.integers(3, 100_000))
def test_modexp_property(base, exp, mod):
    assert square_and_multiply(base, exp, mod).value == pow(base, exp, mod)
    assert montgomery_ladder(base, exp, mod).value == pow(base, exp, mod)
