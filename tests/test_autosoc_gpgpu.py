"""Tests for the AutoSoC benchmark and the SIMT GPGPU core."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autosoc import (
    APPLICATIONS,
    AutoSoC,
    SocConfig,
    UnitFault,
    assemble,
    compare_configurations,
    decode,
    disassemble,
    encode,
    make_injections,
    run_injection,
)
from repro.autosoc.fi import DETECTED_LOCKSTEP, MASKED, SDC, SocInjection
from repro.autosoc.isa import Instruction, OPCODES, AsmError
from repro.gpgpu import (
    MaskFault,
    PipeRegFault,
    SchedulerFault,
    SimtCore,
    encoding_style_study,
    run_sbst_suite,
    seu_campaign_on_kernel,
    vector_add_kernel,
)


class TestIsa:
    def test_all_opcodes_encode_decode(self):
        samples = {
            "add": Instruction("add", rd=1, ra=2, rb=3),
            "addi": Instruction("addi", rd=1, ra=2, imm=-5),
            "lw": Instruction("lw", rd=4, ra=5, imm=16),
            "beq": Instruction("beq", ra=1, rb=2, imm=-3),
            "j": Instruction("j", target=0x123),
            "jr": Instruction("jr", ra=31),
            "halt": Instruction("halt"),
        }
        for name, ins in samples.items():
            assert decode(encode(ins)) == ins, name

    def test_assembler_labels(self):
        words = assemble("""
            addi r1, r0, 3
        top:
            addi r1, r1, -1
            bne r1, r0, top
            halt
        """)
        assert len(words) == 4
        branch = decode(words[2])
        assert branch.op == "bne" and branch.imm == -2

    def test_assembler_errors(self):
        with pytest.raises(AsmError):
            assemble("frobnicate r1, r2")
        with pytest.raises(AsmError):
            assemble("add r1, r2")
        with pytest.raises(AsmError):
            assemble("addi r99, r0, 1")

    def test_disassemble_roundtrip_all_apps(self):
        for app in APPLICATIONS.values():
            program = app.program()
            assert assemble("\n".join(disassemble(program))) == program

    def test_instruction_classes(self):
        assert Instruction("lw").clazz == "load"
        assert Instruction("beq").clazz == "branch"
        assert Instruction("jal").clazz == "call"


class TestApplications:
    @pytest.mark.parametrize("name", sorted(APPLICATIONS))
    def test_golden_run_passes_oracle(self, name):
        app = APPLICATIONS[name]
        soc = AutoSoC(app.program(), SocConfig.QM)
        result = soc.run(app.max_cycles)
        assert result.halted
        assert app.oracle(result)

    def test_fibonacci_values(self):
        app = APPLICATIONS["fibonacci"]
        result = AutoSoC(app.program(), SocConfig.QM).run()
        assert result.ram[:10] == [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]

    def test_cruise_control_converges(self):
        app = APPLICATIONS["cruise_control"]
        result = AutoSoC(app.program(), SocConfig.QM).run()
        final_speed = result.ram[24]
        assert abs(final_speed - 90) <= 4  # P-controller steady-state band

    def test_can_frames_have_crcs(self):
        app = APPLICATIONS["can_telemetry"]
        result = AutoSoC(app.program(), SocConfig.QM).run()
        assert len(result.can_crcs) == 2
        assert result.can_crcs[0] != result.can_crcs[1]

    def test_trace_collected(self):
        app = APPLICATIONS["fibonacci"]
        result = AutoSoC(app.program(), SocConfig.QM).run()
        assert "branch" in result.trace
        assert result.trace[-1] == "ret"  # halt


class TestSafetyMechanisms:
    def test_lockstep_detects_cpu_transient(self):
        app = APPLICATIONS["fibonacci"]
        soc = AutoSoC(app.program(), SocConfig.LOCKSTEP)
        soc.inject_cpu_fault(UnitFault("alu", "transient", 5,
                                       from_cycle=12, to_cycle=13))
        result = soc.run()
        assert result.lockstep_mismatch_cycle is not None
        assert result.lockstep_mismatch_cycle >= 12

    def test_lockstep_clean_run_silent(self):
        app = APPLICATIONS["fibonacci"]
        result = AutoSoC(app.program(), SocConfig.LOCKSTEP).run()
        assert result.lockstep_mismatch_cycle is None

    def test_ecc_corrects_ram_seu(self):
        app = APPLICATIONS["fibonacci"]
        soc = AutoSoC(app.program(), SocConfig.ECC)
        result = soc.run()
        assert app.oracle(result)
        # now flip a stored bit after the run would have written it
        soc2 = AutoSoC(app.program(), SocConfig.ECC)
        for _ in range(40):
            soc2.main.step()
        soc2.bus.inject_ram_bitflip(0, 2)
        result2 = soc2.run()
        assert app.oracle(result2)  # data still correct via correction

    def test_qm_ram_seu_corrupts(self):
        app = APPLICATIONS["fibonacci"]
        soc = AutoSoC(app.program(), SocConfig.QM)
        soc.run()
        soc.bus.inject_ram_bitflip(0, 2)
        snapshot = soc.bus.ram_snapshot(0, 10)
        assert snapshot[0] != 0  # fib(0)=0 corrupted without ECC

    def test_aes_security_block(self):
        source = """
            movhi r10, 0x0000
            ori  r10, r10, 0xF100
            addi r1, r0, 0
            sw   r1, 0(r10)
            sw   r1, 1(r10)
            sw   r1, 2(r10)
            sw   r1, 3(r10)
            sw   r1, 4(r10)
            sw   r1, 5(r10)
            sw   r1, 6(r10)
            sw   r1, 7(r10)
            sw   r1, 8(r10)
            lw   r2, 9(r10)
            movhi r11, 0x0000
            ori  r11, r11, 0x2000
            sw   r2, 0(r11)
            halt
        """
        soc = AutoSoC(assemble(source), SocConfig.QM)
        result = soc.run()
        from repro.crypto import encrypt_block
        expected = encrypt_block(bytes(16), bytes(16))
        assert result.ram[0] == int.from_bytes(expected[:4], "little")


class TestSocCampaign:
    def test_lockstep_eliminates_sdc(self):
        app = APPLICATIONS["fibonacci"]
        results = compare_configurations(
            app, [SocConfig.QM, SocConfig.LOCKSTEP], n_cpu=25, n_ram=0, seed=3)
        qm, lockstep = results[SocConfig.QM], results[SocConfig.LOCKSTEP]
        assert lockstep.rate(SDC) < qm.rate(SDC) or qm.rate(SDC) == 0
        assert lockstep.rate(SDC) == 0.0

    def test_ecc_handles_ram_faults(self):
        app = APPLICATIONS["fibonacci"]
        results = compare_configurations(
            app, [SocConfig.QM, SocConfig.ECC], n_cpu=0, n_ram=25, seed=4)
        assert results[SocConfig.ECC].dangerous_rate <= \
            results[SocConfig.QM].dangerous_rate

    def test_detection_latency_small(self):
        app = APPLICATIONS["fibonacci"]
        injections = make_injections(app, n_cpu=20, n_ram=0, seed=5)
        latencies = []
        for injection in injections:
            outcome, latency = run_injection(app, SocConfig.LOCKSTEP, injection)
            if outcome == DETECTED_LOCKSTEP and latency is not None:
                latencies.append(latency)
        assert latencies
        assert sum(latencies) / len(latencies) < 10

    def test_injection_outcomes_partition(self):
        app = APPLICATIONS["can_telemetry"]
        injections = make_injections(app, n_cpu=10, n_ram=5, seed=6)
        from repro.autosoc import run_campaign
        campaign = run_campaign(app, SocConfig.FULL, injections)
        assert campaign.total == 15
        assert sum(campaign.outcomes.values()) == 15


class TestSimtCore:
    def test_vector_add(self):
        core = SimtCore(vector_add_kernel(), n_warps=2, warp_size=8)
        for i in range(16):
            core.memory[i] = i
            core.memory[64 + i] = 2 * i
        core.run()
        assert core.memory[128:144] == [3 * i for i in range(16)]

    def test_divergence_reconverges(self):
        from repro.gpgpu import saturating_add_branchy
        core = SimtCore(saturating_add_branchy(100), n_warps=1, warp_size=8)
        for i in range(8):
            core.memory[i] = 95 + i  # some exceed the limit with b=3
            core.memory[64 + i] = 3
        core.run()
        expected = [min(95 + i + 3, 100) for i in range(8)]
        assert core.memory[128:136] == expected

    def test_starved_warp_never_issues(self):
        core = SimtCore(vector_add_kernel(), n_warps=2, warp_size=8)
        core.inject(SchedulerFault("starve", 1))
        core.run(max_issues=200)
        assert 1 not in core.schedule_trace

    def test_mask_stuck0_suppresses_lane(self):
        core = SimtCore(vector_add_kernel(), n_warps=1, warp_size=8)
        for i in range(8):
            core.memory[i] = 5
        core.inject(MaskFault(0, 3, 0))
        core.run()
        assert core.memory[128 + 3] == 0    # lane 3 never stored
        assert core.memory[128 + 2] == 5    # neighbours unaffected

    def test_pipe_fault_corrupts_single_value(self):
        golden = SimtCore(vector_add_kernel(), n_warps=1, warp_size=8)
        faulty = SimtCore(vector_add_kernel(), n_warps=1, warp_size=8)
        faulty.inject(PipeRegFault(0, 0, 4, at_issue=3))
        golden.run()
        faulty.run()
        diffs = sum(1 for a, b in zip(golden.memory, faulty.memory) if a != b)
        assert diffs == 1


class TestGpgpuStudies:
    def test_sbst_suite_full_coverage(self):
        report = run_sbst_suite(n_warps=2, warp_size=8)
        assert report.effective_coverage == 1.0

    def test_untestable_configuration_gap(self):
        report = run_sbst_suite(n_warps=4, warp_size=8, launched_warps=2)
        assert report.untestable
        assert report.raw_coverage < report.effective_coverage
        assert report.effective_coverage == 1.0

    def test_encoding_styles_differ_in_cost(self):
        results = encoding_style_study(n_injections=30, seed=1)
        by_name = {r.encoding: r for r in results}
        assert by_name["branchy"].issue_slots != \
            by_name["predicated"].issue_slots
        for r in results:
            assert r.masked + r.sdc == r.injections

    def test_seu_campaign_rates_sum(self):
        rates = seu_campaign_on_kernel(vector_add_kernel(), 40, seed=2)
        assert rates["masked"] + rates["sdc"] == pytest.approx(1.0)


@settings(max_examples=30, deadline=None)
@given(op=st.sampled_from(sorted(OPCODES)),
       rd=st.integers(0, 31), ra=st.integers(0, 31), rb=st.integers(0, 31),
       imm=st.integers(-32768, 32767), target=st.integers(0, (1 << 26) - 1))
def test_encode_decode_roundtrip_property(op, rd, ra, rb, imm, target):
    """Property: encode/decode is the identity on canonical instructions."""
    from repro.autosoc.isa import B_TYPE, I_TYPE, J_TYPE, R_TYPE
    if op in R_TYPE:
        ins = Instruction(op, rd=rd, ra=ra, rb=rb)
    elif op in I_TYPE:
        ins = Instruction(op, rd=rd, ra=ra, imm=imm)
    elif op in B_TYPE:
        ins = Instruction(op, ra=ra, rb=rb, imm=imm)
    elif op in J_TYPE:
        ins = Instruction(op, target=target)
    elif op == "jr":
        ins = Instruction(op, ra=ra)
    else:
        ins = Instruction(op)
    assert decode(encode(ins)) == ins
