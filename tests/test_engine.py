"""Tests for the unified campaign engine: determinism across worker
counts, statistical early stop, CampaignDb streaming, backend adapters
matching their pre-engine serial implementations, and the PPSFP
cone-cache / fault-dropping fast path."""

import random

import pytest

from repro.autosoc import APPLICATIONS, SocConfig
from repro.autosoc.fi import DETECTED_LOCKSTEP, make_injections, run_injection
from repro.autosoc.fi import run_campaign as run_soc_campaign
from repro.circuit import load
from repro.core import CampaignDb, wilson_interval
from repro.engine import (
    DETECTED,
    EarlyStop,
    EngineConfig,
    PpsfpBackend,
    SafetyBackend,
    SeuBackend,
    SocBackend,
    ppsfp_result,
    run_campaign,
)
from repro.faults import all_stuck_at, collapse
from repro.safety import FaultClass, classify_injection_values, run_safety_campaign
from repro.sim import (
    exhaustive_patterns,
    fault_simulate,
    fault_simulate_batched,
    faulty_values,
    mask_of,
    pack_patterns,
    random_patterns,
    simulate,
)
from repro.soft_error import FAILURE, adaptive_estimate, inject_seu
from repro.soft_error import run_campaign as run_seu_campaign
from repro.soft_error.seu import _golden_run, random_workload


@pytest.fixture(scope="module")
def seq_setup():
    circuit = load("rand_seq")
    workload = random_workload(circuit, 10, seed=7)
    return circuit, workload


# ----------------------------------------------------------------------
# engine core
# ----------------------------------------------------------------------
class TestEngineCore:
    def test_determinism_across_worker_counts(self, seq_setup):
        circuit, workload = seq_setup
        reports = []
        for workers in (1, 2, 4):
            backend = SeuBackend(circuit, workload)
            config = EngineConfig(batch_size=16, workers=workers)
            reports.append(run_campaign(backend, config))
        baseline = [(i.location, i.cycle, i.outcome)
                    for i in reports[0].injections]
        for report in reports[1:]:
            assert [(i.location, i.cycle, i.outcome)
                    for i in report.injections] == baseline
        assert reports[0].outcomes == reports[1].outcomes == reports[2].outcomes

    def test_determinism_with_sampling_and_early_stop(self, seq_setup):
        circuit, workload = seq_setup
        reports = []
        for workers in (1, 3):
            backend = SeuBackend(circuit, workload)
            config = EngineConfig(
                batch_size=8, workers=workers, sample=200, seed=11,
                early_stop=EarlyStop(outcome=FAILURE, margin=0.08,
                                     min_injections=32))
            reports.append(run_campaign(backend, config))
        assert ([i.point for i in reports[0].injections]
                == [i.point for i in reports[1].injections])
        assert reports[0].converged == reports[1].converged

    def test_seeded_sampling_matches_random_sample(self, seq_setup):
        circuit, workload = seq_setup
        backend = SeuBackend(circuit, workload)
        points = list(backend.enumerate_points())
        expected = random.Random(5).sample(points, 60)
        config = EngineConfig(batch_size=16, sample=60, seed=5)
        report = run_campaign(SeuBackend(circuit, workload), config)
        assert [i.point for i in report.injections] == expected
        # sample >= population runs exhaustive in enumeration order...
        full = run_campaign(SeuBackend(circuit, workload),
                            EngineConfig(sample=10 * len(points), seed=5))
        assert [i.point for i in full.injections] == points
        # ...unless a shuffle is requested (seeded permutation)
        shuffled = run_campaign(SeuBackend(circuit, workload),
                                EngineConfig(shuffle=True, seed=5))
        assert [i.point for i in shuffled.injections] \
            == random.Random(5).sample(points, len(points))

    def test_early_stop_estimate_within_wilson_ci_of_truth(self):
        circuit = load("rand_seq")
        workload = random_workload(circuit, 30, seed=7)
        exhaustive = run_seu_campaign(circuit, workload)
        truth = exhaustive.failure_rate
        est = adaptive_estimate(circuit, workload, margin=0.08, seed=3)
        assert est.converged
        assert est.n_injections < est.population
        assert est.ci_low <= truth <= est.ci_high
        # the advertised margin bounds the CI half-width at the stop point
        assert (est.ci_high - est.ci_low) / 2 <= 0.08 + 1e-9

    def test_on_chunk_hook_sees_monotone_progress(self, seq_setup):
        circuit, workload = seq_setup
        sizes = []
        backend = SeuBackend(circuit, workload, cycles=range(4))
        run_campaign(backend, EngineConfig(batch_size=16),
                     on_chunk=lambda r: sizes.append(r.total))
        assert sizes == sorted(sizes)
        assert sizes[-1] == len(backend.enumerate_points())


# ----------------------------------------------------------------------
# CampaignDb streaming + transaction semantics
# ----------------------------------------------------------------------
class TestCampaignDbIntegration:
    def test_record_commits_single_rows(self, tmp_path):
        path = tmp_path / "fi.sqlite"
        db = CampaignDb(path)
        cid = db.create_campaign("c", "circ", "seu", "wl")
        db.record(cid, "flop1", 3, "failure")
        db.close()  # no explicit commit: the row must still be durable
        reopened = CampaignDb(path)
        assert reopened.summary(cid).outcomes == {"failure": 1}
        reopened.close()

    def test_transaction_batches_and_rolls_back(self, tmp_path):
        db = CampaignDb(tmp_path / "tx.sqlite")
        cid = db.create_campaign("c", "circ", "seu", "wl")
        with db.transaction():
            db.record(cid, "a", 0, "masked")
            db.record(cid, "b", 1, "masked")
        assert db.summary(cid).total == 2
        with pytest.raises(RuntimeError):
            with db.transaction():
                db.record(cid, "c", 2, "failure")
                raise RuntimeError("abort")
        assert db.summary(cid).total == 2
        db.close()

    @pytest.mark.parametrize("workers", [1, 4])
    def test_db_contents_match_in_memory_report(self, seq_setup, workers):
        circuit, workload = seq_setup
        db = CampaignDb()
        backend = SeuBackend(circuit, workload, cycles=range(5))
        report = run_campaign(backend,
                              EngineConfig(batch_size=8, workers=workers),
                              db=db)
        assert report.campaign_id is not None
        summary = db.summary(report.campaign_id)
        assert summary.total == report.total
        assert summary.outcomes == report.outcomes
        db.close()

    def test_every_backend_persists(self, seq_setup):
        circuit, workload = seq_setup
        comb = load("c17")
        packed, n = exhaustive_patterns(comb.inputs)
        faults, _ = collapse(comb)
        app = APPLICATIONS["fibonacci"]
        backends = [
            PpsfpBackend(comb, faults, [(packed, n)]),
            SeuBackend(circuit, workload, cycles=range(3)),
            SafetyBackend(comb, faults, [comb.outputs[0]], comb.outputs[1:],
                          packed, n),
            SocBackend(app, SocConfig.LOCKSTEP,
                       make_injections(app, n_cpu=6, n_ram=4, seed=1)),
        ]
        db = CampaignDb()
        for backend in backends:
            report = run_campaign(backend, EngineConfig(batch_size=16), db=db)
            summary = db.summary(report.campaign_id)
            assert summary.total == report.total
            assert summary.outcomes == report.outcomes
            assert summary.fault_model == backend.fault_model
        # the cross-campaign view sees all four workloads at once
        assert sum(db.cross_campaign_outcomes().values()) == sum(
            db.summary(cid).total
            for cid in range(1, 5))
        db.close()


# ----------------------------------------------------------------------
# backend adapters reproduce the pre-engine serial loops exactly
# ----------------------------------------------------------------------
class TestPreRefactorEquivalence:
    def test_seu_campaign_matches_reference_loop(self, seq_setup):
        circuit, workload = seq_setup
        # reference: the pre-engine serial loop with identical sampling
        space = [(flop, cyc) for flop in circuit.flops
                 for cyc in range(len(workload))]
        sampled = random.Random(4).sample(space, 80)
        golden = _golden_run(circuit, workload)
        expected = [(flop, cyc, inject_seu(circuit, workload, flop, cyc, golden))
                    for flop, cyc in sampled]
        result = run_seu_campaign(circuit, workload, sample=80, seed=4)
        assert [(i.flop, i.cycle, i.outcome) for i in result.injections] \
            == expected

    def test_seu_campaign_parallel_matches_serial(self, seq_setup):
        circuit, workload = seq_setup
        serial = run_seu_campaign(circuit, workload, sample=100, seed=2)
        parallel = run_seu_campaign(circuit, workload, sample=100, seed=2,
                                    workers=4)
        assert serial.injections == parallel.injections

    def test_safety_campaign_matches_reference_loop(self):
        c = load("c17")
        packed, n = exhaustive_patterns(c.inputs)
        faults = all_stuck_at(c)
        mission, detection = [c.outputs[0]], c.outputs[1:]
        result = run_safety_campaign(c, faults, mission, detection, packed, n)
        # reference: classify with the factored-out pure function
        mask = mask_of(n)
        good = simulate(c, packed, n)
        for fault, classified in zip(faults, result.classified):
            bad = faulty_values(c, fault, good, mask)
            expected = classify_injection_values(good, bad, mask, mission,
                                                 detection)
            assert classified.name == fault.describe()
            assert classified.fault_class is expected

    def test_soc_campaign_matches_reference_loop(self):
        app = APPLICATIONS["fibonacci"]
        injections = make_injections(app, n_cpu=8, n_ram=4, seed=6)
        result = run_soc_campaign(app, SocConfig.LOCKSTEP, injections)
        outcomes = {}
        latencies = []
        for injection in injections:
            outcome, latency = run_injection(app, SocConfig.LOCKSTEP,
                                             injection)
            outcomes[outcome] = outcomes.get(outcome, 0) + 1
            if latency is not None and outcome == DETECTED_LOCKSTEP:
                latencies.append(latency)
        assert result.total == len(injections)
        assert {k: v for k, v in result.outcomes.items() if v} == outcomes
        assert result.lockstep_latencies == latencies


# ----------------------------------------------------------------------
# PPSFP fast path: cone cache + fault dropping
# ----------------------------------------------------------------------
class TestPpsfpFastPath:
    @pytest.mark.parametrize("name", ["c17", "s27", "rand_seq"])
    def test_cone_cache_preserves_coverage(self, name):
        circuit = load(name)
        faults, _ = collapse(circuit)
        packed = random_patterns(circuit.inputs, 24, seed=9)
        state = random_patterns(circuit.flops, 24, seed=10)
        cold = fault_simulate(circuit, faults, packed, 24, state=state)
        assert circuit._cone_cache  # the cache populated during the run
        warm = fault_simulate(circuit, faults, packed, 24, state=state)
        assert cold.detected == warm.detected
        assert cold.undetected == warm.undetected
        # and against a cache-free circuit copy (fresh caches)
        fresh = fault_simulate(circuit.copy(), faults, packed, 24,
                               state=state)
        assert fresh.detected == cold.detected

    @pytest.mark.parametrize("name", ["c17", "rand_seq"])
    def test_batched_dropping_coverage_identical(self, name):
        circuit = load(name)
        faults, _ = collapse(circuit)
        batches = [(random_patterns(circuit.inputs, 8, seed=s), 8)
                   for s in range(4)]
        # single-pass reference over the concatenated patterns
        concat = {}
        for b, (pi_values, n) in enumerate(batches):
            for net, bits in pi_values.items():
                concat[net] = concat.get(net, 0) | (bits << 8 * b)
        single = fault_simulate(circuit, faults, concat, 32)
        dropped = fault_simulate_batched(circuit, faults, batches,
                                         drop_detected=True)
        undropped = fault_simulate_batched(circuit, faults, batches,
                                           drop_detected=False)
        assert set(single.detected) == set(dropped.detected)
        assert single.undetected == dropped.undetected
        assert single.detected == undropped.detected
        # dropping keeps the first detecting batch's bits
        for fault, bits in dropped.detected.items():
            assert bits & single.detected[fault] == bits

    def test_engine_ppsfp_matches_fault_simulate(self):
        circuit = load("c17")
        faults, _ = collapse(circuit)
        packed, n = exhaustive_patterns(circuit.inputs)
        direct = fault_simulate(circuit, faults, packed, n)
        backend = PpsfpBackend(circuit, faults, [(packed, n)])
        report = run_campaign(backend, EngineConfig(batch_size=8, workers=2))
        rebuilt = ppsfp_result(report, backend.n_patterns)
        assert rebuilt.detected == direct.detected
        assert rebuilt.undetected == direct.undetected
        assert rebuilt.coverage == direct.coverage
        assert report.rate(DETECTED) == pytest.approx(direct.coverage)


# ----------------------------------------------------------------------
# statistical plumbing
# ----------------------------------------------------------------------
class TestStatistics:
    def test_report_confidence_interval_matches_wilson(self, seq_setup):
        circuit, workload = seq_setup
        report = run_campaign(SeuBackend(circuit, workload, cycles=range(4)),
                              EngineConfig(batch_size=32))
        fails = report.count(FAILURE)
        ci = report.confidence_interval(FAILURE)
        ref = wilson_interval(fails, report.total)
        assert (ci.low, ci.high) == (ref.low, ref.high)

    def test_recommended_sample_below_population(self, seq_setup):
        circuit, workload = seq_setup
        report = run_campaign(SeuBackend(circuit, workload),
                              EngineConfig(batch_size=64))
        assert 0 < report.recommended_sample(margin=0.05) < report.population
