"""Tests for SEU/SET analysis, FIT budgeting, CDN SETs, statistics and ML."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import load
from repro.soft_error import (
    ASIL_FIT_TARGETS,
    ComponentSER,
    FAILURE,
    FitBudget,
    GcnRegressor,
    LATENT,
    MASKED,
    MlpRegressor,
    RegressionMetrics,
    RidgeRegressor,
    build_clock_tree,
    electrical_survival,
    extract_features,
    failure_rate_vs_pulse_width,
    headroom_bits,
    inject_seu,
    latch_window_probability,
    logical_derating,
    random_workload,
    run_campaign,
    run_cdn_campaign,
    run_study,
    set_derating,
    split_indices,
    standardize,
    validate_against_event_sim,
    verify_fresh_sample_consistency,
)
from repro.soft_error.ml import FEATURE_NAMES


class TestFitBudget:
    def test_overshoot_story(self):
        """A modest unprotected SRAM blows the ASIL-D budget; ECC restores it."""
        unprotected = FitBudget("ASIL-D").add(ComponentSER(
            "l1", 1 << 20, "28nm", functional_derating=0.2))
        assert not unprotected.meets_target
        protected = FitBudget("ASIL-D").add(ComponentSER(
            "l1", 1 << 20, "28nm", functional_derating=0.2, protected=True))
        assert protected.meets_target

    def test_derating_chain_multiplies(self):
        c = ComponentSER("x", 1_000_000, "28nm", logical_derating=0.5,
                         timing_derating=0.5, functional_derating=0.5)
        assert c.effective_fit == pytest.approx(c.raw_fit * 0.125)

    def test_headroom_far_below_soc_state(self):
        bits = headroom_bits("ASIL-D", "28nm", mean_derating=0.1)
        assert bits < 10_000_000  # a real SoC has orders of magnitude more

    def test_asil_targets_table(self):
        assert ASIL_FIT_TARGETS["ASIL-D"] == 10.0
        assert ASIL_FIT_TARGETS["ASIL-B"] == 100.0

    def test_unknown_asil_raises(self):
        budget = FitBudget("ASIL-Z")
        with pytest.raises(KeyError):
            _ = budget.target_fit

    def test_margin(self):
        budget = FitBudget("ASIL-D").add(ComponentSER(
            "tiny", 1000, "28nm", functional_derating=0.01))
        assert budget.margin() > 1.0


class TestSeuCampaign:
    def test_outcomes_partition(self):
        c = load("rand_seq")
        wl = random_workload(c, 10, seed=1)
        res = run_campaign(c, wl)
        assert res.total == len(c.flops) * 10
        assert res.count(MASKED) + res.count(LATENT) + res.count(FAILURE) \
            == res.total

    def test_single_injection_reproducible(self):
        c = load("rand_seq")
        wl = random_workload(c, 8, seed=2)
        flop = sorted(c.flops)[0]
        assert inject_seu(c, wl, flop, 3) == inject_seu(c, wl, flop, 3)

    def test_late_injection_more_likely_latent_or_masked(self):
        """An SEU on the final cycle cannot corrupt earlier outputs."""
        c = load("rand_seq")
        wl = random_workload(c, 10, seed=3)
        res_late = run_campaign(c, wl, cycles=[9])
        res_early = run_campaign(c, wl, cycles=[0])
        assert res_late.failure_rate <= res_early.failure_rate + 0.25

    def test_sampled_campaign_subset(self):
        c = load("rand_seq")
        wl = random_workload(c, 10, seed=4)
        res = run_campaign(c, wl, sample=30, seed=5)
        assert res.total == 30

    def test_no_flop_circuit_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(load("c17"), [{}])

    def test_avf_per_flop_in_unit_interval(self):
        c = load("rand_seq")
        wl = random_workload(c, 8, seed=6)
        for avf in run_campaign(c, wl).avf_per_flop().values():
            assert 0.0 <= avf <= 1.0


class TestStatisticalStudy:
    def test_estimates_converge(self):
        c = load("rand_seq")
        wl = random_workload(c, 12, seed=7)
        study = run_study(c, wl, sample_sizes=(20, 80, 200), seed=8)
        errors = [p.abs_error for p in study.points]
        assert errors[-1] <= errors[0] + 0.02

    def test_full_sample_is_exact(self):
        c = load("rand_seq")
        wl = random_workload(c, 10, seed=9)
        study = run_study(c, wl, sample_sizes=(10**9,), seed=1)
        assert study.points[0].abs_error == pytest.approx(0.0)

    def test_table_lookup_equals_fresh_runs(self):
        c = load("rand_seq")
        wl = random_workload(c, 8, seed=11)
        assert verify_fresh_sample_consistency(c, wl, 25, seed=12)

    def test_recommended_n_uses_leveugle(self):
        c = load("rand_seq")
        wl = random_workload(c, 10, seed=13)
        study = run_study(c, wl, margin=0.05)
        assert 0 < study.recommended_n <= study.population


class TestSetAnalysis:
    def test_electrical_survival_monotone_in_depth(self):
        shallow = electrical_survival(1.0, 2)
        deep = electrical_survival(1.0, 8)
        assert shallow >= deep

    def test_narrow_pulse_dies(self):
        assert electrical_survival(0.25, 5, attenuation_per_gate=0.1) == 0.0

    def test_latch_window_bounds(self):
        assert latch_window_probability(0.0, 10.0) == 0.0
        assert latch_window_probability(100.0, 10.0) == 1.0
        assert 0 < latch_window_probability(1.0, 10.0) < 1

    def test_logical_derating_parity_tree_is_one(self):
        """Every net in a XOR tree always propagates a flip."""
        c = load("par8")
        stim = {pi: 0b1011 for pi in c.inputs}
        for gate in c.topo_order():
            assert logical_derating(c, gate.output, stim, 4) == 1.0

    def test_set_derating_decomposition(self):
        c = load("c17")
        res = set_derating(c, n_patterns=16, seed=1)
        for s in res.values():
            assert 0 <= s.logical <= 1
            assert 0 <= s.electrical <= 1
            assert 0 <= s.latch_window <= 1
            assert s.combined == pytest.approx(
                s.logical * s.electrical * s.latch_window)

    def test_analytic_vs_event_sim_on_tree(self):
        """On a fanout-free XOR tree the two engines must agree."""
        c = load("par8")
        pattern = {pi: (i % 2) for i, pi in enumerate(c.inputs)}
        for gate in list(c.topo_order())[:5]:
            assert validate_against_event_sim(c, gate.output, pattern)


class TestCdn:
    def test_tree_partitions_flops(self):
        c = load("rand_seq")
        tree = build_clock_tree(c, depth=2)
        all_flops = sorted(
            f for group in tree.leaf_groups for f in group)
        assert all_flops == sorted(c.flops)

    def test_root_hits_more_flops_than_leaf(self):
        c = load("rand_seq")
        wl = random_workload(c, 10, seed=3)
        res = run_cdn_campaign(c, wl, build_clock_tree(c, 3),
                               strikes_per_level=24, seed=4)
        assert res.level_flops_hit[0] >= res.level_flops_hit[3]

    def test_cdn_amplification_over_datapath(self):
        c = load("rand_seq")
        wl = random_workload(c, 10, seed=5)
        res = run_cdn_campaign(c, wl, strikes_per_level=32, seed=6)
        assert res.amplification(0) >= 1.0

    def test_pulse_width_curve_monotone(self):
        curve = failure_rate_vs_pulse_width([0.1, 0.5, 1.0, 2.0, 5.0])
        values = [v for _w, v in curve]
        assert values == sorted(values)
        assert values[0] == 0.0


class TestMl:
    @pytest.fixture(scope="class")
    def dataset(self):
        import random as _r
        c = load("rand500")
        nets = [g.output for g in c.topo_order()][:150]
        stim = {pi: _r.Random(3).getrandbits(64) for pi in c.inputs}
        labels = np.array([logical_derating(c, n, stim, 64) for n in nets])
        feats = extract_features(c, nets)
        return c, nets, feats, labels

    def test_feature_matrix_shape(self, dataset):
        _c, nets, feats, _labels = dataset
        assert feats.shape == (len(nets), len(FEATURE_NAMES))
        assert np.isfinite(feats).all()

    def test_ridge_beats_mean_predictor(self, dataset):
        _c, _nets, feats, labels = dataset
        tr, te = split_indices(len(labels), 0.7, seed=2)
        xtr, xte = standardize(feats[tr], feats[te])
        model = RidgeRegressor().fit(xtr, labels[tr])
        metrics = RegressionMetrics.of(labels[te], model.predict(xte))
        assert metrics.r2 > 0.0

    def test_mlp_trains(self, dataset):
        _c, _nets, feats, labels = dataset
        tr, te = split_indices(len(labels), 0.7, seed=2)
        xtr, xte = standardize(feats[tr], feats[te])
        model = MlpRegressor(epochs=150, seed=0).fit(xtr, labels[tr])
        preds = model.predict(xte)
        assert preds.shape == labels[te].shape
        assert ((preds >= 0) & (preds <= 1)).all()

    def test_gcn_semi_supervised(self, dataset):
        c, nets, feats, labels = dataset
        mu, sd = feats.mean(0), feats.std(0)
        sd[sd == 0] = 1
        fn = (feats - mu) / sd
        tr, te = split_indices(len(labels), 0.7, seed=2)
        mask = np.zeros(len(labels), bool)
        mask[tr] = True
        model = GcnRegressor(epochs=200, lr=0.02).fit(c, nets, fn, labels, mask)
        metrics = RegressionMetrics.of(labels[te], model.predict(fn)[te])
        assert metrics.mse < 0.25  # far better than random guessing

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            RidgeRegressor().predict(np.zeros((1, len(FEATURE_NAMES))))
        with pytest.raises(RuntimeError):
            MlpRegressor().predict(np.zeros((1, len(FEATURE_NAMES))))


@settings(max_examples=20, deadline=None)
@given(width=st.floats(0.1, 5.0), depth=st.integers(0, 20))
def test_survival_fraction_bounds(width, depth):
    s = electrical_survival(width, depth)
    assert 0.0 <= s <= 1.0
