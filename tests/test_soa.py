"""Tests for the SoA compiled tier (`repro.sim.compiled` SoA section).

The contract under test: every SoA program — full-circuit, fused step,
cone, detection — is byte-identical to the scalar compiled tier and the
reference interpreter at any lane width (the whole point of the tier is
perf, so identity must hold unconditionally); programs pickle as pure
index-array metadata and rebuild per worker; circuit mutation
invalidates them like every other program cache; and the tier degrades
to the packed-int path (never crashes, never diverges) when numpy or
compilation is unavailable.
"""

import logging
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import load
from repro.circuit.library import random_combinational, random_sequential
from repro.engine import (
    EngineConfig,
    SeuBackend,
    SlicingBackend,
    run_campaign,
    shutdown_pools,
)
from repro.engine import lanes
from repro.faults import collapse
from repro.sim import compiled, vector
from repro.sim.fault_sim import _observe_nets, detection_mask, faulty_values
from repro.sim.logic import mask_of, random_patterns, simulate
from repro.soft_error import random_workload

# program-level identity runs the full ISSUE width ladder; campaign
# tests stop at 1024 (4096-lane campaigns are all setup, no new code)
SOA_WIDTHS = (1, 64, 65, 192, 1024, 4096)

needs_numpy = pytest.mark.skipif(not vector.HAVE_NUMPY,
                                 reason="numpy not installed")


@pytest.fixture(autouse=True)
def _compile_eagerly(monkeypatch):
    """Remove the hit gate so per-site programs build on first use —
    these tests exercise the SoA path, not the amortization policy."""
    monkeypatch.setattr(compiled, "COMPILE_AFTER_HITS", 0)


def _random_circuit(seed: int, sequential: bool):
    if sequential:
        return random_sequential(n_inputs=5, n_gates=40, n_flops=6,
                                 n_outputs=4, seed=seed)
    return random_combinational(n_inputs=6, n_gates=50, n_outputs=4,
                                seed=seed)


def _as_int(value) -> int:
    return value if isinstance(value, int) else vector.from_blocks(value)


# ----------------------------------------------------------------------
# property: SoA programs == interpreter / scalar tier, all widths
# ----------------------------------------------------------------------
@needs_numpy
class TestSoaPrograms:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), sequential=st.booleans(),
           width=st.sampled_from(SOA_WIDTHS), with_state=st.booleans())
    def test_circuit_program_matches_interpreter(self, seed, sequential,
                                                 width, with_state):
        circuit = _random_circuit(seed, sequential)
        prog = compiled.soa_circuit_program(circuit, width)
        pis = random_patterns(circuit.inputs, width, seed=seed + 1)
        state = (random_patterns(circuit.flops, width, seed=seed + 2)
                 if with_state and circuit.flops else None)
        got = {net: _as_int(val) for net, val in prog.run(pis, state).items()}
        assert got == simulate(circuit, pis, width, state, compile=False)

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), width=st.sampled_from(SOA_WIDTHS))
    def test_step_program_matches_scalar(self, seed, width):
        circuit = _random_circuit(seed, sequential=True)
        soa = compiled.soa_step_program(circuit, width)
        scalar = compiled.step_program(circuit)
        pis = random_patterns(circuit.inputs, width, seed=seed + 3)
        state = random_patterns(circuit.flops, width, seed=seed + 4)
        pos_s, nxt_s = scalar.run(pis, state, mask_of(width))
        pos_v, nxt_v = soa.run(pis, state)
        assert {po: _as_int(v) for po, v in pos_v.items()} == pos_s
        assert {q: _as_int(v) for q, v in nxt_v.items()} == nxt_s

    def test_step_partial_state_falls_back_to_flop_init(self):
        circuit = _random_circuit(77, sequential=True)
        width = 192
        soa = compiled.soa_step_program(circuit, width)
        scalar = compiled.step_program(circuit)
        pis = random_patterns(circuit.inputs, width, seed=1)
        state = random_patterns(circuit.flops, width, seed=2)
        del state[next(iter(circuit.flops))]
        pos_s, nxt_s = scalar.run(pis, state, mask_of(width))
        pos_v, nxt_v = soa.run(pis, state)
        assert {po: _as_int(v) for po, v in pos_v.items()} == pos_s
        assert {q: _as_int(v) for q, v in nxt_v.items()} == nxt_s

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000),
           width=st.sampled_from((65, 192, 1024)))
    def test_cone_and_det_match_interpreter(self, seed, width):
        circuit = _random_circuit(seed, sequential=False)
        faults, _ = collapse(circuit)
        pis = random_patterns(circuit.inputs, width, seed=seed + 5)
        good = simulate(circuit, pis, width)
        mask = mask_of(width)
        observe = _observe_nets(circuit, True)
        blocks = vector.blocks_for(width)
        good_nd = vector.to_block_dict(good, blocks)
        interp = circuit.copy()
        checked = 0
        for fault in faults[::3]:
            cone = compiled.soa_cone_program(circuit, fault.line, width)
            det = compiled.soa_det_program(circuit, fault.line, observe,
                                           width)
            if cone is None or det is None:  # PI/stem corner with no cone
                continue
            forced = (vector.mask_array(width, blocks) if fault.value
                      else vector.zeros(blocks))
            with compiled.disabled():
                ref_vals = faulty_values(interp, fault, good, mask)
                ref_det = detection_mask(interp, fault, good, mask, observe)
            got = cone.apply(good_nd, forced)
            assert {n: _as_int(v) for n, v in got.items()} == ref_vals, fault
            assert _as_int(det.detect(good_nd, forced)) == ref_det, fault
            checked += 1
        assert checked  # the loop exercised real programs

    def test_stats_describe_the_schedule(self):
        circuit = load("rand_seq")
        prog = compiled.soa_step_program(circuit, 1024)
        st_ = prog.stats
        assert st_.gates > 0 and st_.levels > 0
        # fusion is the point: far fewer numpy calls than gates, and at
        # least the two mandatory calls (gather + invert) per level
        assert st_.levels < st_.fused_ops < 6 * st_.levels + st_.gates // 2
        assert st_.scratch_bytes == (2 * prog.kernel.n_slots
                                     * prog.n_blocks * 8)
        # scalar tier reports stats off its generated source; the slot
        # counts need not match (folding differs) but both are populated
        sc = compiled.step_program(circuit).program.stats
        assert sc.gates > 0
        assert sc.scratch_bytes == 0


# ----------------------------------------------------------------------
# engine lanes on the SoA backing
# ----------------------------------------------------------------------
@needs_numpy
class TestSoaLanes:
    @pytest.fixture(scope="class")
    def seq_setup(self):
        circuit = load("rand_seq")
        return circuit, random_workload(circuit, 20, seed=7)

    def _rows(self, report):
        return [(i.location, i.cycle, i.outcome)
                for i in report.injections + report.skipped]

    @pytest.mark.parametrize("width", (65, 192, 1000, 1024))
    def test_seu_identical_to_per_point(self, seq_setup, width):
        circuit, workload = seq_setup
        ref = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=1),
            EngineConfig(executor="serial"))
        backend = SeuBackend(circuit.copy(), workload, lane_width=width,
                             lane_backing="soa")
        report = run_campaign(backend, EngineConfig(executor="serial"))
        assert self._rows(report) == self._rows(ref)
        backend.prepare()
        assert backend._lane_ctx.backing == "soa"

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000),
           width=st.sampled_from((65, 192, 1000)))
    def test_property_soa_equals_packed_equals_interpreter(self, seed,
                                                           width):
        circuit = random_sequential(n_inputs=5, n_gates=40, n_flops=6,
                                    n_outputs=4, seed=seed)
        workload = random_workload(circuit, 10, seed=seed + 1)

        def rows(width_, backing_=None):
            backend = SeuBackend(circuit.copy(), workload,
                                 lane_width=width_, lane_backing=backing_)
            return self._rows(run_campaign(
                backend, EngineConfig(executor="serial")))

        packed = rows(64)
        assert rows(width, "soa") == packed
        with compiled.disabled():
            assert rows(width, "soa") == packed  # interpreter reference

    def test_slicing_identical_to_64(self):
        circuit = load("rand_seq")
        faults, _ = collapse(circuit)
        workload = random_workload(circuit, 12, seed=3)
        ref = run_campaign(
            SlicingBackend(circuit.copy(), faults[:30], workload,
                           lane_width=64),
            EngineConfig(batch_size=32, executor="serial"))
        wide = run_campaign(
            SlicingBackend(circuit.copy(), faults[:30], workload,
                           lane_width=192, lane_backing="soa"),
            EngineConfig(batch_size=32, executor="serial"))
        assert sorted(self._rows(wide)) == sorted(self._rows(ref))

    def test_transient_dispatch_identical_to_per_point(self):
        # SlicingBackend's packed path goes through transient_outcomes:
        # per-lane state deltas injected mid-stream, propagated shared.
        # SoA must honour the same flip schedule as the int backing.
        circuit = load("rand_seq")
        faults, _ = collapse(circuit)
        workload = random_workload(circuit, 12, seed=3)
        ref = run_campaign(
            SlicingBackend(circuit.copy(), faults[:40], workload,
                           use_filter=False, lane_width=1),
            EngineConfig(executor="serial"))
        soa = run_campaign(
            SlicingBackend(circuit.copy(), faults[:40], workload,
                           use_filter=False, lane_width=256,
                           lane_backing="soa"),
            EngineConfig(executor="serial"))
        assert sorted(self._rows(soa)) == sorted(self._rows(ref))

    def test_soa_survives_process_pickling(self, seq_setup):
        circuit, workload = seq_setup
        serial = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=1),
            EngineConfig(executor="serial"))
        shipped = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=192,
                       lane_backing="soa"),
            EngineConfig(batch_size=64, workers=2, executor="process"))
        assert self._rows(shipped) == self._rows(serial)
        shutdown_pools()

    def test_soa_falls_back_under_no_compile(self, seq_setup):
        circuit, workload = seq_setup
        with compiled.disabled():
            ctx = lanes.build_context(circuit, workload, 192, backing="soa")
            assert ctx.backing == "int"

    def test_auto_resolution_uses_level_width(self, seq_setup, monkeypatch):
        circuit, workload = seq_setup
        # rand_seq is tiny: a handful of gates per level, so auto keeps
        # the int backing even past SOA_MIN_LANES
        monkeypatch.setattr(vector, "SOA_MIN_LANES", 128)
        ctx = lanes.build_context(circuit, workload, 256)
        assert ctx.backing == "int"
        # ...unless the level-width gate is disabled
        monkeypatch.setattr(vector, "SOA_MIN_LEVEL_WIDTH", 0)
        ctx = lanes.build_context(circuit, workload, 256)
        assert ctx.backing == "soa"
        # explicit request always wins over the hint
        monkeypatch.setattr(vector, "SOA_MIN_LEVEL_WIDTH", 32)
        ctx = lanes.build_context(circuit, workload, 256, backing="soa")
        assert ctx.backing == "soa"
        # beyond the per-net crossover SoA takes over regardless
        monkeypatch.setattr(vector, "NDARRAY_MIN_LANES", 256)
        ctx = lanes.build_context(circuit, workload, 256)
        assert ctx.backing == "soa"


# ----------------------------------------------------------------------
# pickling: metadata ships, lane mask rebuilds lazily
# ----------------------------------------------------------------------
@needs_numpy
class TestSoaPickling:
    def test_step_program_roundtrip(self):
        circuit = load("rand_seq")
        width = 256
        prog = compiled.soa_step_program(circuit, width)
        pis = random_patterns(circuit.inputs, width, seed=6)
        state = random_patterns(circuit.flops, width, seed=7)
        prog.run(pis, state)
        clone = pickle.loads(pickle.dumps(prog))
        assert clone._mask is None  # lane mask rebuilds lazily
        assert clone.n_blocks == prog.n_blocks
        pos_c, nxt_c = clone.run(pis, state)
        pos_p, nxt_p = prog.run(pis, state)
        assert {k: _as_int(v) for k, v in pos_c.items()} \
            == {k: _as_int(v) for k, v in pos_p.items()}
        assert {k: _as_int(v) for k, v in nxt_c.items()} \
            == {k: _as_int(v) for k, v in nxt_p.items()}

    def test_circuit_pickle_drops_soa_cache(self):
        circuit = load("rand_seq")
        compiled.soa_step_program(circuit, 128)
        assert ("soa_step", 128) in circuit._program_cache
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone._program_cache == {}


# ----------------------------------------------------------------------
# invalidation: mutation drops SoA programs with the other caches
# ----------------------------------------------------------------------
@needs_numpy
class TestSoaInvalidation:
    def test_mutation_invalidates_soa_programs(self):
        circuit = random_combinational(6, 30, seed=4)
        width = 65
        pis = random_patterns(circuit.inputs, width, seed=1)
        compiled.soa_circuit_program(circuit, width).run(pis)
        assert ("soa_full", width) in circuit._program_cache
        circuit.add_gate("smut", "NOR",
                         [circuit.inputs[0], circuit.inputs[1]])
        circuit.add_output("smut")
        assert not circuit._program_cache  # invalidated with topo/cones
        after = compiled.soa_circuit_program(circuit, width).run(pis)
        assert {net: _as_int(v) for net, v in after.items()} \
            == simulate(circuit, pis, width, compile=False)

    def test_width_wrappers_share_one_meta(self):
        circuit = load("rand_seq")
        a = compiled.soa_step_program(circuit, 128)
        b = compiled.soa_step_program(circuit, 1024)
        assert a.meta is b.meta  # schedule built once per circuit
        assert a.n_blocks != b.n_blocks


# ----------------------------------------------------------------------
# degradation: no numpy, no crash, no divergence
# ----------------------------------------------------------------------
class TestSoaDegradation:
    def test_factories_return_none_without_numpy(self, monkeypatch):
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        circuit = load("rand_seq")
        assert compiled.soa_step_program(circuit, 256) is None
        assert compiled.soa_circuit_program(circuit, 256) is None

    def test_backing_degrades_with_warning(self, monkeypatch, caplog):
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        monkeypatch.setattr(vector, "_warned_no_numpy", False)
        with caplog.at_level(logging.WARNING, logger="repro.sim.vector"):
            assert vector.resolve_backing(4096, "soa") == "int"
        assert any("numpy unavailable" in rec.message
                   for rec in caplog.records)

    def test_campaign_without_numpy_matches_packed_64(self, monkeypatch):
        circuit = load("rand_seq")
        workload = random_workload(circuit, 12, seed=9)
        ref = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=64),
            EngineConfig(executor="serial"))
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        monkeypatch.setattr(vector, "_warned_no_numpy", True)
        backend = SeuBackend(circuit.copy(), workload, lane_width=2048,
                             lane_backing="soa")
        assert backend.lane_width == 64  # degraded, not crashed
        report = run_campaign(backend, EngineConfig(executor="serial"))
        rows = [(i.location, i.cycle, i.outcome) for i in report.injections]
        assert rows == [(i.location, i.cycle, i.outcome)
                        for i in ref.injections]


# ----------------------------------------------------------------------
# vector helpers grown alongside the tier
# ----------------------------------------------------------------------
@needs_numpy
class TestVectorHelpers:
    def test_mask_array_matches_bigint_path(self):
        for width in (1, 63, 64, 65, 192, 1000, 1024, 4096):
            arr = vector.mask_array(width)
            assert vector.from_blocks(arr) == (1 << width) - 1
            explicit = vector.mask_array(width, vector.blocks_for(width) + 2)
            assert vector.from_blocks(explicit) == (1 << width) - 1

    def test_to_blocks_zero_fast_path(self):
        arr = vector.to_blocks(0, 16)
        assert arr.shape == (16,) and not arr.any()
        arr[0] = 1  # writable (frombuffer views are not)

    def test_calibrate_crossover_cached(self, monkeypatch):
        # register restores: calibration rewrites the module crossovers
        monkeypatch.setattr(vector, "_calibrated", None)
        monkeypatch.setattr(vector, "SOA_MIN_LANES", vector.SOA_MIN_LANES)
        monkeypatch.setattr(vector, "NDARRAY_MIN_LANES",
                            vector.NDARRAY_MIN_LANES)
        first = vector.calibrate_crossover(level_width=8,
                                           candidates=(64, 256))
        assert first in (64, 256, 1 << 62)
        # second call is a cache hit returning the same value
        assert vector.calibrate_crossover() == first

    def test_outcome_list_wide_matches_probe(self):
        rng = __import__("random").Random(3)
        for count in (65, 200, 1024):
            fail = rng.getrandbits(count)
            latent = rng.getrandbits(count) & ~fail
            wide = lanes._outcome_list(fail, latent, count)
            probe = [lanes.FAILURE if (fail >> i) & 1 else
                     lanes.LATENT if (latent >> i) & 1 else lanes.MASKED
                     for i in range(count)]
            assert wide == probe
