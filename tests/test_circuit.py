"""Tests for the gate-level circuit substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import (
    BENCHMARKS,
    Circuit,
    CircuitBuilder,
    CircuitError,
    GateType,
    compute_scoap,
    cone_of_influence,
    depth,
    emit_verilog,
    fanin_cone,
    fanout_cone,
    hard_to_test_nets,
    levels,
    load,
    observable_outputs,
    parse_verilog,
)
from repro.circuit.library import random_combinational
from repro.sim import exhaustive_patterns, pack_patterns, simulate


class TestNetlistConstruction:
    def test_duplicate_input_rejected(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(CircuitError):
            c.add_input("a")

    def test_double_driver_rejected(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("y", GateType.NOT, ["a"])
        with pytest.raises(CircuitError):
            c.add_gate("y", GateType.BUF, ["a"])

    def test_flop_cannot_shadow_gate(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("y", GateType.BUF, ["a"])
        with pytest.raises(CircuitError):
            c.add_flop("y", "a")

    def test_not_gate_arity_enforced(self):
        c = Circuit()
        c.add_input("a")
        c.add_input("b")
        with pytest.raises(ValueError):
            c.add_gate("y", GateType.NOT, ["a", "b"])

    def test_and_gate_needs_two_inputs(self):
        c = Circuit()
        c.add_input("a")
        with pytest.raises(ValueError):
            c.add_gate("y", GateType.AND, ["a"])

    def test_validate_catches_undriven(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("y", GateType.AND, ["a", "ghost"])
        with pytest.raises(CircuitError, match="undriven"):
            c.validate()

    def test_cycle_detection(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", GateType.AND, ["a", "y"])
        c.add_gate("y", GateType.AND, ["a", "x"])
        with pytest.raises(CircuitError, match="cycle"):
            c.topo_order()

    def test_flop_breaks_cycle(self):
        c = Circuit()
        c.add_input("a")
        c.add_gate("x", GateType.XOR, ["a", "q"])
        c.add_flop("q", "x")
        c.add_output("x")
        c.validate()  # no exception: the loop goes through a flop

    def test_stats_counts(self):
        c17 = load("c17")
        stats = c17.stats()
        assert stats["inputs"] == 5
        assert stats["outputs"] == 2
        assert stats["gates"] == 6
        assert stats["gates_nand"] == 6

    def test_copy_is_independent(self):
        c = load("c17")
        dup = c.copy("dup")
        dup.add_output("N10")
        assert "N10" not in c.outputs


class TestBenchmarkLibrary:
    def test_all_benchmarks_validate(self):
        for name in BENCHMARKS:
            circuit = load(name)
            circuit.validate()

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            load("nonexistent")

    @pytest.mark.parametrize("a,b,cin", [(0, 0, 0), (255, 255, 1), (123, 45, 1)])
    def test_ripple_adder_math(self, a, b, cin):
        c = load("rca8")
        pat = {f"a{i}": (a >> i) & 1 for i in range(8)}
        pat |= {f"b{i}": (b >> i) & 1 for i in range(8)}
        pat["cin"] = cin
        vals = simulate(c, pack_patterns([pat]), 1)
        total = sum((vals[f"s{i}"] & 1) << i for i in range(8))
        total += (vals["cout"] & 1) << 8
        assert total == a + b + cin

    @pytest.mark.parametrize("a,b", [(0, 0), (15, 15), (7, 9), (12, 3)])
    def test_multiplier_math(self, a, b):
        c = load("mul4")
        pat = {f"a{i}": (a >> i) & 1 for i in range(4)}
        pat |= {f"b{i}": (b >> i) & 1 for i in range(4)}
        vals = simulate(c, pack_patterns([pat]), 1)
        product = sum((vals[f"p{i}"] & 1) << i for i in range(8))
        assert product == a * b

    def test_decoder_one_hot(self):
        c = load("dec4")
        packed, n = exhaustive_patterns(c.inputs)
        vals = simulate(c, packed, n)
        for i in range(n):
            lines = [(vals[f"w{k}"] >> i) & 1 for k in range(16)]
            assert sum(lines) == 1
            addr = sum(((packed[f"a{b}"] >> i) & 1) << b for b in range(4))
            assert lines[addr] == 1

    def test_parity_tree(self):
        c = load("par8")
        packed, n = exhaustive_patterns(c.inputs)
        vals = simulate(c, packed, n)
        for i in range(n):
            bits = [(packed[f"d{k}"] >> i) & 1 for k in range(8)]
            assert (vals["p"] >> i) & 1 == sum(bits) % 2

    def test_comparator_equality(self):
        c = load("cmp8")
        cases = [(5, 5, 1), (5, 6, 0), (255, 255, 1), (0, 128, 0)]
        pats = []
        for a, b, _eq in cases:
            pat = {f"a{i}": (a >> i) & 1 for i in range(8)}
            pat |= {f"b{i}": (b >> i) & 1 for i in range(8)}
            pats.append(pat)
        vals = simulate(c, pack_patterns(pats), len(pats))
        for i, (_a, _b, eq) in enumerate(cases):
            assert (vals["eq"] >> i) & 1 == eq

    def test_majority_voter(self):
        c = load("maj8")
        pat = {}
        for i in range(8):
            pat[f"a{i}"] = 1
            pat[f"b{i}"] = i % 2
            pat[f"c{i}"] = 1 if i < 4 else 0
        vals = simulate(c, pack_patterns([pat]), 1)
        for i in range(8):
            votes = pat[f"a{i}"] + pat[f"b{i}"] + pat[f"c{i}"]
            assert vals[f"v{i}"] & 1 == (1 if votes >= 2 else 0)

    def test_random_combinational_deterministic(self):
        a = random_combinational(seed=5)
        b = random_combinational(seed=5)
        assert emit_verilog(a) == emit_verilog(b)

    def test_random_combinational_no_dead_logic(self):
        c = random_combinational(10, 80, 6, seed=2)
        observables = set(c.outputs)
        for gate in c.gates.values():
            cone = fanout_cone(c, [gate.output])
            assert cone & observables, f"{gate.output} unobservable"


class TestLevelizeAndCones:
    def test_levels_monotone(self):
        c = load("c17")
        lvl = levels(c)
        for gate in c.gates.values():
            assert lvl[gate.output] == 1 + max(lvl[i] for i in gate.inputs)

    def test_depth_positive(self):
        assert depth(load("rca8")) > 8  # carry chain dominates

    def test_fanin_fanout_inverse_relation(self):
        c = load("c17")
        assert "N11" in fanin_cone(c, ["N22"]) or "N11" in fanin_cone(c, ["N23"])
        assert "N22" in fanout_cone(c, ["N10"])

    def test_observable_outputs(self):
        c = load("c17")
        outs = observable_outputs(c, "N11")
        assert outs  # N11 reaches both outputs through N16/N19

    def test_cone_of_influence_slices(self):
        c = load("rca8")
        sliced = cone_of_influence(c, ["s0"])
        # s0 depends only on a0, b0, cin
        assert set(sliced.inputs) == {"a0", "b0", "cin"}
        assert len(sliced.gates) < len(c.gates)
        sliced.validate()

    def test_coi_preserves_function(self):
        c = load("rca8")
        sliced = cone_of_influence(c, ["s3"])
        packed, n = exhaustive_patterns(sliced.inputs)
        full_packed = dict(packed)
        for pi in c.inputs:
            full_packed.setdefault(pi, 0)
        assert (simulate(sliced, packed, n)["s3"]
                == simulate(c, full_packed, n)["s3"])


class TestScoap:
    def test_pi_controllability(self):
        sc = compute_scoap(load("c17"))
        for pi in ("N1", "N2", "N3", "N6", "N7"):
            assert sc[pi].cc0 == 1.0 and sc[pi].cc1 == 1.0

    def test_po_observability_zero(self):
        sc = compute_scoap(load("c17"))
        assert sc["N22"].co == 0.0
        assert sc["N23"].co == 0.0

    def test_constant_gate_uncontrollable(self):
        bld = CircuitBuilder("k")
        a = bld.input("a")
        k = bld.const0()
        bld.output(bld.and_(a, k, name="y"))
        sc = compute_scoap(bld.done())
        assert sc[k].cc1 == float("inf")

    def test_hard_to_test_nets_subset(self):
        c = load("mul4")
        hard = hard_to_test_nets(c, percentile=0.9)
        assert 0 < len(hard) < len(c.nets)


class TestVerilogRoundtrip:
    @pytest.mark.parametrize("name", ["c17", "s27", "rca8", "dec4", "cnt8"])
    def test_roundtrip_structure(self, name):
        c = load(name)
        c2 = parse_verilog(emit_verilog(c))
        assert c2.stats() == c.stats()
        assert c2.inputs == c.inputs
        assert c2.outputs == c.outputs

    def test_roundtrip_function(self):
        c = load("c17")
        c2 = parse_verilog(emit_verilog(c))
        packed, n = exhaustive_patterns(c.inputs)
        v1 = simulate(c, packed, n)
        v2 = simulate(c2, packed, n)
        for po in c.outputs:
            assert v1[po] == v2[po]

    def test_parse_rejects_garbage(self):
        from repro.circuit import VerilogParseError
        with pytest.raises(VerilogParseError):
            parse_verilog("module m (input a); always @* x = a; endmodule")


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_random_circuit_verilog_roundtrip_function(seed):
    """Property: any generated circuit survives a Verilog round trip."""
    c = random_combinational(6, 20, 3, seed=seed)
    c2 = parse_verilog(emit_verilog(c))
    packed, n = exhaustive_patterns(c.inputs)
    v1 = simulate(c, packed, n)
    v2 = simulate(c2, packed, n)
    assert all(v1[po] == v2[po] for po in c.outputs)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_levels_bound_depth(seed):
    """Property: every net level is within [0, depth]."""
    c = random_combinational(8, 40, 4, seed=seed)
    lvl = levels(c)
    d = depth(c)
    assert all(0 <= v <= d for v in lvl.values())
