"""Tests for aging models, decoder aging/mitigation and FinFET SRAM."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aging import (
    AgedPath,
    BtiModel,
    DelayModel,
    HciModel,
    RejuvenationSearch,
    age_decoder,
    balance_profile,
    combined_delta_vth,
    guard_band_for,
    hot_cold_profile,
    mitigate_decoder,
    uniform_profile,
)
from repro.memory import (
    DefectKind,
    MARCH_C_MINUS,
    MARCH_SS,
    MATS_PLUS,
    SramArray,
    SramCell,
    classify_severity,
    combined_test,
    current_sweep,
    inject_defect,
    march_coverage,
    pristine,
    run_march,
    seed_defect_population,
    with_bent_fin,
    with_fin_crack,
    with_gate_damage,
)


class TestBtiModel:
    def test_monotone_in_time_duty_temp(self):
        model = BtiModel()
        assert model.delta_vth_years(10, 0.5, 85) > model.delta_vth_years(1, 0.5, 85)
        assert model.delta_vth_years(10, 0.9, 85) > model.delta_vth_years(10, 0.1, 85)
        assert model.delta_vth_years(10, 0.5, 125) > model.delta_vth_years(10, 0.5, 25)

    def test_zero_cases(self):
        model = BtiModel()
        assert model.delta_vth(0.0, 1.0) == 0.0
        assert model.delta_vth(1e8, 0.0) == 0.0

    def test_validation(self):
        model = BtiModel()
        with pytest.raises(ValueError):
            model.delta_vth(-1.0, 0.5)
        with pytest.raises(ValueError):
            model.delta_vth(1.0, 1.5)

    def test_magnitude_regime(self):
        """Tens of millivolts over 10 years at 125 C — the paper's regime."""
        dvth = BtiModel().delta_vth_years(10, duty=1.0, temp_c=125)
        assert 0.01 < dvth < 0.2

    def test_rejuvenation_gain(self):
        model = BtiModel()
        gain = model.rejuvenation_gain(1.0, 0.5, years=10)
        assert 0.2 < gain < 0.5  # sqrt duty law: 1 - sqrt(0.5) ≈ 0.29

    def test_hci_activity_driven(self):
        hci = HciModel()
        assert hci.delta_vth(1e8, 0.5) > hci.delta_vth(1e8, 0.1)
        assert combined_delta_vth(5, 0.5, 0.2) > 0


class TestDelayModel:
    def test_slowdown_monotone(self):
        dm = DelayModel()
        assert dm.slowdown(0.0) == 1.0
        assert dm.slowdown(0.05) > 1.0
        assert dm.slowdown(0.10) > dm.slowdown(0.05)

    def test_slowdown_capped(self):
        dm = DelayModel()
        assert dm.slowdown(10.0) < float("inf")

    def test_path_degradation_and_lifetime(self):
        path = AgedPath("crit", base_delay=1.0,
                        gate_duties=[1.0] * 8, temp_c=125)
        assert path.degradation_percent(10) > 1.0
        years = path.years_to_failure(clock_budget=1.05)
        assert 0 < years <= 30
        margin = guard_band_for(path, mission_years=10)
        assert margin > 0


class TestDecoderAging:
    def test_hot_profile_worse_than_uniform(self):
        hot = age_decoder(3, hot_cold_profile(3, 0.9, 1), years=10)
        uniform = age_decoder(3, uniform_profile(3), years=10)
        assert hot.max_slowdown > uniform.max_slowdown
        assert hot.duty_imbalance() > uniform.duty_imbalance()

    def test_skew_nonnegative(self):
        report = age_decoder(3, hot_cold_profile(3), years=5)
        assert report.skew >= 0

    def test_mitigation_recovers_most_slowdown(self):
        """[24]: 'the address decoder can be mitigated very well'."""
        outcome = mitigate_decoder(3, hot_cold_profile(3, 0.85, 1),
                                   overhead=0.3, years=10)
        assert outcome.slowdown_reduction > 0.3
        assert outcome.imbalance_reduction > 0.2

    def test_more_overhead_helps_more(self):
        profile = hot_cold_profile(3, 0.85, 1)
        small = mitigate_decoder(3, profile, overhead=0.05, years=10)
        large = mitigate_decoder(3, profile, overhead=0.5, years=10)
        assert large.after.max_slowdown <= small.after.max_slowdown + 1e-9

    def test_balance_profile_normalized(self):
        original = hot_cold_profile(3)
        balanced = balance_profile(original, overhead=0.2)
        assert sum(balanced.values()) == pytest.approx(1.0)

        def bit_imbalance(prof):
            mass = sum(prof.values())
            return sum(
                abs(sum(w for a, w in prof.items() if (a >> b) & 1) / mass - 0.5)
                for b in range(3))

        assert bit_imbalance(balanced) < bit_imbalance(original)

    def test_balance_profile_validates(self):
        with pytest.raises(ValueError):
            balance_profile({0: 1.0}, overhead=-0.1)

    def test_rejuvenation_search_improves(self):
        search = RejuvenationSearch(3, hot_cold_profile(3, 0.9, 1),
                                    budget=8, seed=4)
        _dummies, initial, best = search.run(iterations=10)
        assert best <= initial


class TestFinFetDevices:
    def test_crack_reduces_drive(self):
        ref = pristine("ref", 2)
        assert with_fin_crack(ref, 0.5).drive_ratio_vs(ref) == pytest.approx(0.5)

    def test_bend_shifts_vth_and_leaks(self):
        ref = pristine("ref", 2)
        bent = with_bent_fin(ref, 1.0)
        assert bent.vth > ref.vth
        assert bent.leakage > ref.leakage * 50

    def test_gate_damage_is_hard(self):
        ref = pristine("ref", 2)
        assert classify_severity(with_gate_damage(ref), ref) == "hard"

    def test_classification_bins(self):
        ref = pristine("ref", 2)
        assert classify_severity(with_fin_crack(ref, 0.9), ref) == "hard"
        assert classify_severity(with_fin_crack(ref, 0.3), ref) == "weak"
        assert classify_severity(with_fin_crack(ref, 0.01), ref) == "benign"

    def test_validation(self):
        ref = pristine("ref")
        with pytest.raises(ValueError):
            with_fin_crack(ref, 0.0)
        with pytest.raises(ValueError):
            with_bent_fin(ref, 2.0)


class TestSramCellAndArray:
    def test_fresh_cell_functional(self):
        cell = SramCell.fresh("c")
        assert cell.write(1) and cell.read() == 1
        assert cell.write(0) and cell.read() == 0
        assert not cell.is_functional_faulty()
        assert not cell.is_weak()

    def test_crushed_pull_up_blocks_writes(self):
        cell = SramCell.fresh("c")
        inject_defect(cell, "pass_gate_l", DefectKind.FIN_CRACK_FULL, 0.95)
        inject_defect(cell, "pass_gate_r", DefectKind.FIN_CRACK_FULL, 0.95)
        assert cell.write_margin() < 1.0

    def test_weak_cell_detected_parametrically(self):
        cell = SramCell.fresh("c")
        inject_defect(cell, "pass_gate_l", DefectKind.FIN_CRACK_PARTIAL, 0.3)
        assert cell.is_weak()
        assert not cell.is_functional_faulty()

    def test_pull_down_crack_hidden_by_pass_gate_limit(self):
        """A partial crack in the double-fin pull-down stays invisible:
        the single-fin pass gate limits the read stack."""
        cell = SramCell.fresh("c")
        inject_defect(cell, "pull_down_l", DefectKind.FIN_CRACK_PARTIAL, 0.3)
        assert not cell.is_weak()
        assert not cell.is_functional_faulty()

    def test_array_mismatch_seeded(self):
        a = SramArray.build(4, 4, seed=7, vth_sigma=0.02)
        b = SramArray.build(4, 4, seed=7, vth_sigma=0.02)
        assert a.cell(0, 0).pull_up_l.vth == b.cell(0, 0).pull_up_l.vth


class TestMarchAndDft:
    def test_clean_array_passes_all_algorithms(self):
        for algorithm in (MATS_PLUS, MARCH_C_MINUS, MARCH_SS):
            array = SramArray.build(4, 8, seed=1)
            assert run_march(array, algorithm).passed

    def test_march_complexity_ordering(self):
        assert MATS_PLUS.complexity < MARCH_C_MINUS.complexity < MARCH_SS.complexity

    def test_march_catches_hard_defects(self):
        array = SramArray.build(8, 16, seed=1)
        defects = seed_defect_population(array, n_hard=5, n_weak=0, seed=3)
        hard = [d.cell_name for d in defects]
        cov, result = march_coverage(array, hard, MARCH_C_MINUS)
        assert cov == 1.0
        assert not result.passed

    def test_march_blind_to_weak_defects(self):
        array = SramArray.build(8, 16, seed=1)
        defects = seed_defect_population(array, n_hard=0, n_weak=8, seed=3)
        weak = [d.cell_name for d in defects]
        cov, _result = march_coverage(array, weak, MARCH_C_MINUS)
        assert cov == 0.0

    def test_dft_flags_weak_cells(self):
        array = SramArray.build(8, 16, seed=1)
        seed_defect_population(array, n_hard=0, n_weak=8, seed=3)
        result = current_sweep(array, seed=5)
        truly_weak = set(array.weak_cells())
        assert truly_weak & result.flagged == truly_weak

    def test_combined_report_closes_gap(self):
        array = SramArray.build(8, 16, seed=1)
        defects = seed_defect_population(array, n_hard=5, n_weak=8, seed=3)
        hard = [d.cell_name for d in defects if d.expected_class == "hard"]
        weak = [d.cell_name for d in defects if d.expected_class == "weak"]
        report = combined_test(array, hard, weak)
        assert report.march_coverage_hard == 1.0
        assert report.march_coverage_weak == 0.0
        assert report.combined_coverage_weak > report.march_coverage_weak
        assert report.dft_operations < report.march_operations

    def test_bad_march_op_rejected(self):
        from repro.memory import MarchElement, Order
        with pytest.raises(ValueError):
            MarchElement(Order.UP, ("q1",))


@settings(max_examples=20, deadline=None)
@given(years=st.floats(0.1, 20), duty=st.floats(0.0, 1.0),
       temp=st.floats(-20, 150))
def test_bti_always_nonnegative_and_bounded(years, duty, temp):
    dvth = BtiModel().delta_vth_years(years, duty, temp)
    assert 0.0 <= dvth < 1.0
