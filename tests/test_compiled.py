"""Tests for the compiled simulation core (`repro.sim.compiled`).

The contract under test: every compiled program — full-circuit,
detection/cone sub-programs, fused sequential step — is byte-identical
to the reference interpreter at any pattern width, survives pickling to
process workers (source ships, code objects rebuild lazily), and is
invalidated by circuit mutation exactly like the structural caches.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import load
from repro.circuit.library import random_combinational, random_sequential
from repro.engine import EngineConfig, PpsfpBackend, SeuBackend, run_campaign
from repro.faults import collapse
from repro.sim import compiled, vector
from repro.sim.fault_sim import (
    _observe_nets,
    detection_mask,
    fault_simulate,
    fault_simulate_batched,
    faulty_values,
    sequential_fault_simulate,
)
from repro.sim.logic import (
    GATE_EVAL_3V,
    X,
    eval_gate_3v,
    mask_of,
    random_patterns,
    simulate,
)
from repro.sim.sequential import SequentialSim
from repro.soft_error import random_workload

WIDTHS = (1, 7, 64)


@pytest.fixture(autouse=True)
def _compile_eagerly(monkeypatch):
    """Remove the hit gate so per-site programs compile on first use —
    these tests exercise the compiled path, not the amortization policy."""
    monkeypatch.setattr(compiled, "COMPILE_AFTER_HITS", 0)


def _random_circuit(seed: int, sequential: bool):
    if sequential:
        return random_sequential(n_inputs=5, n_gates=40, n_flops=6,
                                 n_outputs=4, seed=seed)
    return random_combinational(n_inputs=6, n_gates=50, n_outputs=4,
                                seed=seed)


# ----------------------------------------------------------------------
# property: compiled == interpreted for full-circuit evaluation
# ----------------------------------------------------------------------
class TestSimulateEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000), sequential=st.booleans(),
           width=st.sampled_from(WIDTHS), with_state=st.booleans())
    def test_simulate_matches_interpreter(self, seed, sequential, width,
                                          with_state):
        circuit = _random_circuit(seed, sequential)
        pis = random_patterns(circuit.inputs, width, seed=seed + 1)
        state = (random_patterns(circuit.flops, width, seed=seed + 2)
                 if with_state and circuit.flops else None)
        fast = simulate(circuit, pis, width, state)
        reference = simulate(circuit, pis, width, state, compile=False)
        assert fast == reference

    def test_library_circuits_match(self):
        for name in ("c17", "s27", "rand200", "alu8", "mul6", "rand_seq"):
            circuit = load(name)
            for width in WIDTHS:
                pis = random_patterns(circuit.inputs, width, seed=3)
                state = random_patterns(circuit.flops, width, seed=4)
                assert simulate(circuit, pis, width, state) \
                    == simulate(circuit, pis, width, state, compile=False)

    def test_constant_and_buffer_folding(self):
        from repro.circuit.netlist import Circuit

        circuit = Circuit("folds")
        circuit.add_input("a")
        circuit.add_gate("one", "CONST1", [])
        circuit.add_gate("zero", "CONST0", [])
        circuit.add_gate("b", "BUF", ["a"])
        circuit.add_gate("n", "NOT", ["one"])
        circuit.add_gate("x", "AND", ["b", "one"])
        circuit.add_gate("y", "OR", ["zero", "x"])
        circuit.add_output("y")
        for width in WIDTHS:
            pis = {"a": random_patterns(["a"], width, seed=9)["a"]}
            assert simulate(circuit, pis, width) \
                == simulate(circuit, pis, width, compile=False)

    def test_env_kill_switch(self, monkeypatch):
        circuit = load("c17")
        assert compiled.circuit_program(circuit) is not None
        with compiled.disabled():
            assert not compiled.compilation_enabled()
            assert compiled.circuit_program(circuit) is None
        assert compiled.compilation_enabled()


# ----------------------------------------------------------------------
# property: cone/detection sub-programs == interpreter fault simulation
# ----------------------------------------------------------------------
class TestFaultSimEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), sequential=st.booleans(),
           width=st.sampled_from(WIDTHS))
    def test_faulty_values_and_detection(self, seed, sequential, width):
        circuit = _random_circuit(seed, sequential)
        faults, _ = collapse(circuit)
        pis = random_patterns(circuit.inputs, width, seed=seed + 5)
        state = random_patterns(circuit.flops, width, seed=seed + 6)
        good = simulate(circuit, pis, width, state)
        mask = mask_of(width)
        observe = _observe_nets(circuit, True)
        fast = [(faulty_values(circuit, fault, good, mask),
                 detection_mask(circuit, fault, good, mask, observe))
                for fault in faults]
        assert any(isinstance(entry, compiled.DetProgram)
                   for entry in circuit._program_cache.values())
        interp = circuit.copy()
        with compiled.disabled():
            for fault, (values, det) in zip(faults, fast):
                assert faulty_values(interp, fault, good, mask) == values, \
                    fault
                assert detection_mask(interp, fault, good, mask,
                                      observe) == det, fault

    def test_batched_fault_simulation_identical(self):
        circuit = random_combinational(10, 150, seed=8)
        faults, _ = collapse(circuit)
        batches = [(random_patterns(circuit.inputs, 16, seed=50 + b), 16)
                   for b in range(5)]
        for drop in (True, False):
            fast = fault_simulate_batched(circuit, faults, batches,
                                          drop_detected=drop)
            with compiled.disabled():
                ref = fault_simulate_batched(circuit.copy(), faults, batches,
                                             drop_detected=drop)
            assert fast.detected == ref.detected
            assert fast.undetected == ref.undetected

    def test_sequential_fault_simulation_identical(self):
        circuit = load("s27")
        faults, _ = collapse(circuit)
        stimuli = random_workload(circuit, 30, seed=2)
        fast = sequential_fault_simulate(circuit, faults, stimuli)
        with compiled.disabled():
            ref = sequential_fault_simulate(circuit.copy(), faults, stimuli)
        assert fast.detected == ref.detected
        assert fast.undetected == ref.undetected


# ----------------------------------------------------------------------
# property: fused step == evaluate-then-capture, flip hook preserved
# ----------------------------------------------------------------------
class TestStepEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), width=st.sampled_from(WIDTHS))
    def test_step_matches_interpreter(self, seed, width):
        circuit = _random_circuit(seed, sequential=True)
        stimuli = [random_patterns(circuit.inputs, width, seed=seed + c)
                   for c in range(8)]
        fast = SequentialSim(circuit, width)
        ref = SequentialSim(circuit, width, compile=False)
        flop = next(iter(circuit.flops))
        for cyc, stim in enumerate(stimuli):
            if cyc == 2:
                fast.flip_state(flop, 0b11)
                ref.flip_state(flop, 0b11)
            assert fast.step(stim) == ref.step(stim)
            assert fast.state == ref.state
            assert fast.cycle == ref.cycle

    def test_partial_state_falls_back_to_flop_init(self):
        # the interpreter's simulate() defaults a missing flop to its
        # init value; the fused step must not diverge (or KeyError)
        circuit = _random_circuit(77, sequential=True)
        stim = random_patterns(circuit.inputs, 4, seed=1)
        fast = SequentialSim(circuit, 4)
        ref = SequentialSim(circuit, 4, compile=False)
        dropped = next(iter(circuit.flops))
        del fast.state[dropped]
        del ref.state[dropped]
        assert fast.step(stim) == ref.step(stim)
        assert fast.state == ref.state

    def test_dead_logic_is_pruned_but_observables_match(self):
        from repro.circuit.netlist import Circuit

        circuit = Circuit("deadwood")
        circuit.add_input("a")
        circuit.add_input("b")
        circuit.add_gate("live", "AND", ["a", "b"])
        circuit.add_gate("dead", "XOR", ["a", "b"])  # feeds nothing
        circuit.add_flop("q", "live")
        circuit.add_output("q")
        program = compiled.step_program(circuit)
        assert "^" not in program.program.source  # dead XOR pruned
        sim = SequentialSim(circuit, 4)
        ref = SequentialSim(circuit, 4, compile=False)
        stim = {"a": 0b1010, "b": 0b0110}
        assert sim.step(stim) == ref.step(stim)
        assert sim.state == ref.state


# ----------------------------------------------------------------------
# invalidation: mutation recompiles alongside the structural caches
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_mutation_invalidates_programs(self):
        circuit = random_combinational(6, 30, seed=4)
        pis = random_patterns(circuit.inputs, 8, seed=1)
        before = simulate(circuit, pis, 8)
        assert circuit._program_cache  # program built and cached
        new_out = circuit.add_gate("mut_new", "NAND",
                                   [circuit.inputs[0], circuit.inputs[1]])
        circuit.add_output("mut_new")
        assert not circuit._program_cache  # invalidated with topo/cones
        after = simulate(circuit, pis, 8)
        assert after == simulate(circuit, pis, 8, compile=False)
        assert "mut_new" in after and "mut_new" not in before
        assert new_out.output == "mut_new"

    def test_mutation_invalidates_cone_programs(self):
        circuit = random_combinational(6, 30, seed=4)
        faults, _ = collapse(circuit)
        pis = random_patterns(circuit.inputs, 8, seed=1)
        good = simulate(circuit, pis, 8)
        mask = mask_of(8)
        observe = _observe_nets(circuit, True)
        for fault in faults[:10]:
            detection_mask(circuit, fault, good, mask, observe)
        assert any(isinstance(k, tuple) and k[0] == "det"
                   for k in circuit._program_cache)
        circuit.add_gate("late", "NOT", [circuit.inputs[0]])
        assert not circuit._program_cache
        good = simulate(circuit, pis, 8)
        observe = _observe_nets(circuit, True)
        for fault in faults[:10]:
            det = detection_mask(circuit, fault, good, mask, observe)
            with compiled.disabled():
                assert det == detection_mask(circuit.copy(), fault, good,
                                             mask, observe)


# ----------------------------------------------------------------------
# pickling: source ships, code objects rebuild lazily
# ----------------------------------------------------------------------
class TestPickling:
    def test_compiled_program_roundtrip(self):
        circuit = load("c17")
        program = compiled.circuit_program(circuit)
        program.run(random_patterns(circuit.inputs, 4, seed=1), 4)
        clone = pickle.loads(pickle.dumps(program))
        assert clone.program._fn is None  # only the source travelled
        pis = random_patterns(circuit.inputs, 8, seed=2)
        assert clone.run(pis, 8) == program.run(pis, 8)

    def test_circuit_pickle_drops_program_cache(self):
        circuit = load("rand_seq")
        simulate(circuit, random_patterns(circuit.inputs, 4, seed=1), 4)
        assert circuit._program_cache
        clone = pickle.loads(pickle.dumps(circuit))
        assert clone._program_cache == {}
        pis = random_patterns(circuit.inputs, 8, seed=3)
        state = random_patterns(circuit.flops, 8, seed=4)
        assert simulate(clone, pis, 8, state) \
            == simulate(circuit, pis, 8, state)

    @pytest.mark.parametrize("executor", ("serial", "thread", "process"))
    def test_compiled_backends_under_process_executor(self, executor):
        circuit = load("rand_seq")
        workload = random_workload(circuit, 12, seed=7)
        report = run_campaign(
            SeuBackend(circuit.copy(), workload),
            EngineConfig(batch_size=16, workers=2, executor=executor))
        rows = [(i.location, i.cycle, i.outcome) for i in report.injections]
        with compiled.disabled():
            ref = run_campaign(
                SeuBackend(circuit.copy(), workload),
                EngineConfig(batch_size=16, executor="serial"))
        assert rows == [(i.location, i.cycle, i.outcome)
                        for i in ref.injections]

    def test_ppsfp_backend_process_identity(self):
        circuit = random_combinational(10, 120, seed=3)
        faults, _ = collapse(circuit)
        batches = [(random_patterns(circuit.inputs, 16, seed=b), 16)
                   for b in range(4)]
        reports = {}
        for executor in ("serial", "process"):
            report = run_campaign(
                PpsfpBackend(circuit.copy(), faults, batches),
                EngineConfig(batch_size=32, workers=2, executor=executor))
            reports[executor] = [(i.location, i.cycle, i.outcome, i.detail)
                                 for i in report.injections]
        assert reports["serial"] == reports["process"]


# ----------------------------------------------------------------------
# engine lanes on the compiled step path
# ----------------------------------------------------------------------
class TestLanesCompiled:
    @pytest.mark.parametrize("width", WIDTHS)
    def test_packed_seu_campaign_identical(self, width):
        circuit = load("rand_seq")
        workload = random_workload(circuit, 20, seed=5)
        fast = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=width),
            EngineConfig(batch_size=64, executor="serial"))
        with compiled.disabled():
            ref = run_campaign(
                SeuBackend(circuit.copy(), workload, lane_width=width),
                EngineConfig(batch_size=64, executor="serial"))
        assert [(i.location, i.cycle, i.outcome) for i in fast.injections] \
            == [(i.location, i.cycle, i.outcome) for i in ref.injections]


# ----------------------------------------------------------------------
# vector tier: the same sources over uint64 block arrays
# ----------------------------------------------------------------------
VECTOR_WIDTHS = (1, 64, 65, 192, 1000)

needs_numpy = pytest.mark.skipif(not vector.HAVE_NUMPY,
                                 reason="numpy not installed")


def _as_int(value) -> int:
    """Normalise a vector-program net value (block array or folded
    constant int) to the packed-int representation."""
    return value if isinstance(value, int) else vector.from_blocks(value)


@needs_numpy
class TestVectorPrograms:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000), sequential=st.booleans(),
           width=st.sampled_from(VECTOR_WIDTHS))
    def test_vector_circuit_program_matches_interpreter(self, seed,
                                                        sequential, width):
        circuit = _random_circuit(seed, sequential)
        prog = compiled.vector_circuit_program(circuit, width)
        pis = random_patterns(circuit.inputs, width, seed=seed + 1)
        state = random_patterns(circuit.flops, width, seed=seed + 2) \
            if circuit.flops else None
        got = {net: _as_int(val)
               for net, val in prog.run(pis, state).items()}
        reference = simulate(circuit, pis, width, state, compile=False)
        assert got == reference

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10_000), width=st.sampled_from(VECTOR_WIDTHS))
    def test_vector_step_program_matches_scalar(self, seed, width):
        circuit = _random_circuit(seed, sequential=True)
        vprog = compiled.vector_step_program(circuit, width)
        sprog = compiled.step_program(circuit)
        pis = random_patterns(circuit.inputs, width, seed=seed + 3)
        state = random_patterns(circuit.flops, width, seed=seed + 4)
        mask = mask_of(width)
        pos_s, nxt_s = sprog.run(pis, state, mask)
        pos_v, nxt_v = vprog.run(pis, state)
        assert {po: _as_int(v) for po, v in pos_v.items()} == pos_s
        assert {q: _as_int(v) for q, v in nxt_v.items()} == nxt_s

    def test_vector_det_program_matches_detection_mask(self):
        width = 192
        circuit = random_combinational(8, 80, seed=11)
        faults, _ = collapse(circuit)
        pis = random_patterns(circuit.inputs, width, seed=12)
        good = simulate(circuit, pis, width)
        mask = mask_of(width)
        observe = _observe_nets(circuit, True)
        blocks = vector.blocks_for(width)
        good_nd = vector.to_block_dict(good, blocks)
        checked = 0
        for fault in faults[:40]:
            expected = detection_mask(circuit, fault, good, mask, observe)
            vdet = compiled.vector_det_program(circuit, fault.line, observe,
                                               width)
            if vdet is None:  # no combinational cone for this line
                continue
            forced = vector.mask_array(width) if fault.value \
                else vector.zeros(blocks)
            assert _as_int(vdet.detect(good_nd, forced)) == expected, fault
            checked += 1
        assert checked  # the loop exercised real detection programs

    def test_vector_program_pickle_roundtrip(self):
        circuit = load("rand_seq")
        width = 256
        prog = compiled.vector_step_program(circuit, width)
        pis = random_patterns(circuit.inputs, width, seed=6)
        state = random_patterns(circuit.flops, width, seed=7)
        prog.run(pis, state)  # force compile before shipping
        clone = pickle.loads(pickle.dumps(prog))
        assert clone.scalar.program._fn is None  # only source travelled
        assert clone._mask is None  # lane mask rebuilds lazily
        pos_c, nxt_c = clone.run(pis, state)
        pos_p, nxt_p = prog.run(pis, state)
        assert {k: _as_int(v) for k, v in pos_c.items()} \
            == {k: _as_int(v) for k, v in pos_p.items()}
        assert {k: _as_int(v) for k, v in nxt_c.items()} \
            == {k: _as_int(v) for k, v in nxt_p.items()}

    def test_mutation_invalidates_vector_programs(self):
        circuit = random_combinational(6, 30, seed=4)
        width = 65
        pis = random_patterns(circuit.inputs, width, seed=1)
        compiled.vector_circuit_program(circuit, width).run(pis)
        assert ("vfull", width) in circuit._program_cache
        circuit.add_gate("vmut", "NAND",
                         [circuit.inputs[0], circuit.inputs[1]])
        circuit.add_output("vmut")
        assert not circuit._program_cache  # invalidated with topo/cones
        after = compiled.vector_circuit_program(circuit, width).run(pis)
        assert {net: _as_int(v) for net, v in after.items()} \
            == simulate(circuit, pis, width, compile=False)

    def test_scalar_and_vector_share_compiled_source(self):
        circuit = load("rand_seq")
        sprog = compiled.step_program(circuit)
        vprog = compiled.vector_step_program(circuit, 192)
        assert vprog.scalar is sprog  # one codegen, one compile()

    def test_backing_resolution(self, monkeypatch):
        assert vector.resolve_backing(64) == "int"
        assert vector.resolve_backing(1000) == "int"  # below crossover
        assert vector.resolve_backing(1000, "ndarray") == "ndarray"
        monkeypatch.setattr(vector, "NDARRAY_MIN_LANES", 512)
        # past the old per-net crossover the SoA kernel tier takes over
        # (it strictly dominates the per-net ndarray backing there); the
        # per-net backing is still reachable explicitly or via the env.
        assert vector.resolve_backing(1000) == "soa"
        monkeypatch.setenv(vector.ENV_BACKING, "ndarray")
        assert vector.resolve_backing(65) == "ndarray"
        with pytest.raises(ValueError, match="backing"):
            vector.resolve_backing(65, "bogus")

    def test_block_conversions_roundtrip(self):
        for width in VECTOR_WIDTHS:
            blocks = vector.blocks_for(width)
            full = (1 << width) - 1
            for value in (0, 1, full, full >> 1, 0x5 << max(0, width - 4)):
                arr = vector.to_blocks(value & full, blocks)
                assert vector.from_blocks(arr) == value & full


# ----------------------------------------------------------------------
# per-site source interning (shared compiles across identical cones)
# ----------------------------------------------------------------------
class TestSourceInterning:
    def test_identical_sources_share_programs(self):
        circuit = random_combinational(10, 200, seed=5)
        faults, _ = collapse(circuit)
        observe = _observe_nets(circuit, True)
        progs = []
        for fault in faults:
            det = compiled.det_program(circuit, fault.line, observe)
            if det is not None:
                progs.append(det.program)
        sources = {p.source for p in progs}
        identities = {id(p) for p in progs}
        assert len(identities) == len(sources)  # one program per source
        assert len(sources) < len(progs)  # collapsed lists do duplicate

    def test_intern_table_invalidates_with_cache(self):
        circuit = random_combinational(6, 40, seed=9)
        faults, _ = collapse(circuit)
        observe = _observe_nets(circuit, True)
        compiled.det_program(circuit, faults[0].line, observe)
        assert "_interned" in circuit._program_cache
        circuit.add_gate("imut", "NOT", [circuit.inputs[0]])
        assert not circuit._program_cache  # interned sources dropped too


# ----------------------------------------------------------------------
# three-valued dispatch table (PODEM's inner loop)
# ----------------------------------------------------------------------
class TestThreeValuedDispatch:
    def _reference(self, gate, values):
        """The pre-dispatch if/elif semantics, restated."""
        from repro.circuit.netlist import GateType

        def and3(ins):
            if any(v == 0 for v in ins):
                return 0
            if all(v == 1 for v in ins):
                return 1
            return X

        def or3(ins):
            if any(v == 1 for v in ins):
                return 1
            if all(v == 0 for v in ins):
                return 0
            return X

        def xor3(ins):
            if any(v is X for v in ins):
                return X
            return sum(ins) & 1

        def not3(v):
            return X if v is X else 1 - v

        gtype = gate.gtype
        if gtype is GateType.CONST0:
            return 0
        if gtype is GateType.CONST1:
            return 1
        ins = [values.get(i, X) for i in gate.inputs]
        if gtype is GateType.BUF:
            return ins[0]
        if gtype is GateType.NOT:
            return not3(ins[0])
        if gtype is GateType.AND:
            return and3(ins)
        if gtype is GateType.NAND:
            return not3(and3(ins))
        if gtype is GateType.OR:
            return or3(ins)
        if gtype is GateType.NOR:
            return not3(or3(ins))
        if gtype is GateType.XOR:
            return xor3(ins)
        return not3(xor3(ins))

    def test_table_covers_every_gate_type(self):
        from repro.circuit.netlist import GateType

        assert set(GATE_EVAL_3V) == set(GateType)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_dispatch_matches_reference(self, data):
        import itertools

        from repro.circuit.netlist import Gate, GateType

        gtype = data.draw(st.sampled_from(list(GateType)))
        if gtype in (GateType.CONST0, GateType.CONST1):
            arity = 0
        elif gtype in (GateType.NOT, GateType.BUF):
            arity = 1
        else:
            arity = data.draw(st.integers(2, 4))
        names = [f"i{k}" for k in range(arity)]
        gate = Gate("out", gtype, tuple(names))
        for combo in itertools.product((0, 1, X, "absent"), repeat=arity):
            values = {n: v for n, v in zip(names, combo) if v != "absent"}
            assert eval_gate_3v(gate, values) \
                == self._reference(gate, values), (gtype, combo)

    def test_simulate_3v_uses_table(self):
        from repro.sim.logic import simulate_3v

        circuit = load("c17")
        for assignment in ({}, {"n1": 1}, {"n1": 0, "n2": 1, "n3": X}):
            values = simulate_3v(circuit, assignment)
            for gate in circuit.topo_order():
                assert values[gate.output] == eval_gate_3v(gate, values)
