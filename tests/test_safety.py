"""Tests for ISO 26262 metrics, FMECA, tool confidence and FI slicing."""

import pytest

from repro.circuit import CircuitBuilder, load
from repro.faults import all_stuck_at, collapse
from repro.safety import (
    ClassifiedFault,
    FailureMode,
    FaultClass,
    Fmeca,
    atpg_classifier,
    buggy_drops_branch_faults,
    buggy_optimistic,
    classify_from_injection,
    compute_metrics,
    cross_check,
    default_engines,
    diagnostic_coverage,
    formal_classifier,
    occurrence_from_fit,
    run_naive_campaign,
    run_safety_campaign,
    run_sliced_campaign,
    verify_equivalence,
)
from repro.soft_error import random_workload


class TestIso26262:
    def test_perfect_mechanism_metrics(self):
        faults = [ClassifiedFault(f"f{i}", FaultClass.DETECTED) for i in range(10)]
        metrics = compute_metrics(faults)
        assert metrics.spfm == 1.0
        assert metrics.meets("ASIL-D")

    def test_residuals_degrade_spfm(self):
        faults = ([ClassifiedFault(f"d{i}", FaultClass.DETECTED) for i in range(90)]
                  + [ClassifiedFault(f"r{i}", FaultClass.RESIDUAL) for i in range(10)])
        metrics = compute_metrics(faults)
        assert metrics.spfm == pytest.approx(0.90)
        assert metrics.meets("ASIL-B")
        assert not metrics.meets("ASIL-D")

    def test_latents_degrade_lfm_only(self):
        faults = ([ClassifiedFault(f"d{i}", FaultClass.DETECTED) for i in range(8)]
                  + [ClassifiedFault("l", FaultClass.LATENT, fit=2.0)])
        metrics = compute_metrics(faults)
        assert metrics.spfm == 1.0
        assert metrics.lfm < 1.0

    def test_empty_fault_list(self):
        metrics = compute_metrics([])
        assert metrics.spfm == 1.0 and metrics.lfm == 1.0

    def test_gap_signs(self):
        faults = [ClassifiedFault("r", FaultClass.RESIDUAL, fit=50.0),
                  ClassifiedFault("d", FaultClass.DETECTED, fit=50.0)]
        gap = compute_metrics(faults).gap("ASIL-D")
        assert gap["spfm"] < 0 and gap["pmhf_fit"] < 0

    def test_diagnostic_coverage(self):
        faults = [ClassifiedFault("d", FaultClass.DETECTED, 3.0),
                  ClassifiedFault("r", FaultClass.RESIDUAL, 1.0)]
        assert diagnostic_coverage(faults) == pytest.approx(0.75)

    def test_classification_decision_tree(self):
        assert classify_from_injection("a", True, True).fault_class \
            is FaultClass.DETECTED
        assert classify_from_injection("b", True, False).fault_class \
            is FaultClass.RESIDUAL
        assert classify_from_injection("c", False, True).fault_class \
            is FaultClass.LATENT_DETECTED
        assert classify_from_injection("d", False, False).fault_class \
            is FaultClass.SAFE
        assert classify_from_injection("e", False, False,
                                       found_by_selftest=False).fault_class \
            is FaultClass.LATENT


class TestFmeca:
    def test_rpn_and_ranking(self):
        sheet = Fmeca("ecu")
        sheet.add(FailureMode("cpu", "seu", "crash", 9, 4, 5))
        sheet.add(FailureMode("can", "crc", "drop", 3, 2, 2))
        ranked = sheet.ranked()
        assert ranked[0].component == "cpu"
        assert ranked[0].rpn == 180

    def test_score_bounds_enforced(self):
        with pytest.raises(ValueError):
            FailureMode("x", "m", "e", 0, 5, 5)
        with pytest.raises(ValueError):
            FailureMode("x", "m", "e", 5, 11, 5)

    def test_occurrence_from_fit_decades(self):
        assert occurrence_from_fit(0.01) == 1
        assert occurrence_from_fit(5) == 3
        assert occurrence_from_fit(1e9) == 10
        assert occurrence_from_fit(0.5) < occurrence_from_fit(500)

    def test_threshold_filter(self):
        sheet = Fmeca("s")
        sheet.add(FailureMode("a", "m", "e", 10, 10, 10))
        sheet.add(FailureMode("b", "m", "e", 2, 2, 2))
        assert len(sheet.above_threshold(100)) == 1

    def test_mitigation_effect(self):
        sheet = Fmeca("s")
        sheet.add(FailureMode("sram", "retention", "stale", 7, 5, 8))
        effect = sheet.mitigation_effect("sram", new_detection=2)
        assert effect["rpn_after"] < effect["rpn_before"]
        assert effect["reduction"] == 7 * 5 * (8 - 2)

    def test_criticality_matrix(self):
        sheet = Fmeca("s")
        sheet.add(FailureMode("a", "m", "e", 7, 5, 3))
        grid = sheet.criticality_matrix()
        assert (7, 5) in grid


class TestToolConfidence:
    def test_clean_engines_agree(self):
        c17 = load("c17")
        reps, _ = collapse(c17)
        report = cross_check(c17, reps, default_engines())
        assert not report.hard_disagreements
        matrix = report.agreement_matrix()
        assert matrix[("atpg", "formal")] == 1.0

    def test_seeded_bug_caught(self):
        c17 = load("c17")
        reps, _ = collapse(c17)
        engines = default_engines()
        engines["buggy"] = buggy_drops_branch_faults(atpg_classifier)
        report = cross_check(c17, reps, engines)
        assert report.tool_bug_suspected
        # every hard disagreement involves a branch fault
        for fault, votes in report.hard_disagreements:
            assert not fault.line.is_stem
            assert votes["buggy"] == "undetectable"

    def test_optimistic_bug_caught(self):
        bld = CircuitBuilder("red")
        a = bld.input("a")
        na = bld.not_(a)
        bld.output(bld.and_(a, na, name="y"))
        red = bld.done()
        faults = all_stuck_at(red)
        engines = {"formal": formal_classifier,
                   "buggy": buggy_optimistic(formal_classifier, every=1)}
        report = cross_check(red, faults, engines)
        assert report.tool_bug_suspected

    def test_formal_engine_size_guard(self):
        big = load("rca16")  # 33 pseudo inputs
        with pytest.raises(ValueError):
            formal_classifier(big, [])

    def test_fi_soft_disagreements_allowed(self):
        """Random FI may miss faults; that is soft, never hard."""
        c = load("mul4")
        reps, _ = collapse(c)
        report = cross_check(c, reps[:40], default_engines())
        assert not report.hard_disagreements


class TestSlicing:
    @pytest.fixture(scope="class")
    def setup(self):
        circuit = load("rand_seq")
        reps, _ = collapse(circuit)
        workload = random_workload(circuit, 10, seed=21)
        return circuit, reps[:40], workload

    def test_sliced_equals_naive(self, setup):
        circuit, faults, workload = setup
        naive = run_naive_campaign(circuit, faults, workload)
        sliced = run_sliced_campaign(circuit, faults, workload)
        assert verify_equivalence(naive, sliced)

    def test_slicing_skips_work(self, setup):
        circuit, faults, workload = setup
        naive = run_naive_campaign(circuit, faults, workload)
        sliced = run_sliced_campaign(circuit, faults, workload)
        assert sliced.simulated < naive.simulated
        assert sliced.skip_fraction > 0.2
        assert sliced.speedup_estimate() > 1.2

    def test_outcome_classes_valid(self, setup):
        circuit, faults, workload = setup
        outcome = run_sliced_campaign(circuit, faults, workload)
        assert set(outcome.classifications.values()) <= \
            {"masked", "failure", "latent"}

    def test_campaign_totals(self, setup):
        circuit, faults, workload = setup
        outcome = run_sliced_campaign(circuit, faults, workload)
        assert outcome.total == len(faults) * len(workload)


class TestSafetyCampaign:
    def test_lockstep_comparator_classification(self):
        """A mission path plus a duplicated compare path: faults on the
        mission path are DETECTED (comparator fires), comparator-internal
        faults are LATENT_DETECTED or SAFE."""
        bld = CircuitBuilder("guarded")
        a, b = bld.input("a"), bld.input("b")
        mission = bld.xor(a, b, name="mission")
        shadow = bld.xor(a, b, name="shadow")
        bld.output(mission)
        bld.output(bld.xor(mission, shadow, name="alarm"))
        c = bld.done()
        from repro.sim import exhaustive_patterns
        packed, n = exhaustive_patterns(c.inputs)
        faults = all_stuck_at(c)
        result = run_safety_campaign(
            c, faults, mission_outputs=["mission"],
            detection_outputs=["alarm"], patterns=packed, n_patterns=n)
        assert result.metrics is not None
        counts = {fc: result.count(fc) for fc in FaultClass}
        assert counts[FaultClass.DETECTED] > 0
        assert counts[FaultClass.LATENT_DETECTED] > 0
        # the only residuals are common-mode faults on the shared inputs:
        # both copies see them identically, so duplication cannot flag them
        residual_names = [f.name for f in result.classified
                          if f.fault_class is FaultClass.RESIDUAL]
        assert residual_names
        assert all(name.startswith(("a ", "b ")) for name in residual_names)
        assert result.metrics.spfm < 1.0
