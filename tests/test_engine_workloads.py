"""Tests for the full-port of RSN / security / GPGPU / slicing workloads
onto the campaign engine, and for the engine's point-filter stage.

Covers: filtered outcomes as first-class rows in CampaignDb, the
early-stop interaction with pre-skipped points, serial-vs-process
executor parity for every new backend, facades reproducing their
pre-port serial loops exactly, and the lossless dead-flop filter on
``SeuBackend``.
"""

import random
from functools import partial

import pytest

from repro.circuit import CircuitBuilder, load
from repro.core import CampaignDb
from repro.crypto import AesConstantTime, AesLeaky
from repro.engine import (
    SKIP_DEAD_FLOP,
    SKIP_NO_ACTIVATION,
    SKIP_NO_PATH,
    EarlyStop,
    EngineConfig,
    GpgpuSeuBackend,
    Injection,
    LaserFiBackend,
    RsnDiagnosisBackend,
    ScaTraceBackend,
    SeuBackend,
    SlicingBackend,
    run_campaign,
)
from repro.faults import collapse
from repro.gpgpu import (
    PipeRegFault,
    seu_campaign_on_kernel,
    vector_add_kernel,
)
from repro.gpgpu.apps import _run as run_simt_kernel
from repro.rsn import (
    all_rsn_faults,
    apply_test,
    build_signature_table,
    compact_test,
    coverage,
    sib_tree,
    signature_campaign,
)
from repro.safety import (
    run_naive_campaign,
    run_sliced_campaign,
    verify_equivalence,
)
from repro.security import (
    Floorplan,
    MIN_SPOT_UM,
    LaserShot,
    attack_campaign,
    collect_traces,
    fire,
    sensitivity_map,
    targeted_attack,
    trace_campaign,
    tvla,
    tvla_campaign,
)
from repro.soft_error import random_workload
from repro.soft_error.seu import inject_seu
from repro.soft_error.seu import run_campaign as run_seu_campaign

KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")

TREE = partial(sib_tree, depth=2, regs_per_leaf=1, reg_bits=4)


def _rows(report):
    return [(i.location, i.cycle, i.outcome) for i in report.injections]


def _db_rows(db):
    return db.conn.execute(
        "SELECT location, cycle, outcome FROM injections ORDER BY id"
    ).fetchall()


# ----------------------------------------------------------------------
# backend factories for the parity sweep
# ----------------------------------------------------------------------
def _rsn_backend():
    return RsnDiagnosisBackend(TREE, all_rsn_faults(TREE()),
                               compact_test(TREE))


def _laser_backend():
    plan = Floorplan.grid("130nm", [f"sec{i}" for i in range(16)])
    shots = [LaserShot(plan.cells[5].x_um, plan.cells[5].y_um,
                       MIN_SPOT_UM, 1.5) for _ in range(40)]
    return LaserFiBackend(plan, shots, target="sec5", seed=3)


def _sca_backend():
    rng = random.Random(7)
    points = [(i, "collected", bytes(rng.randrange(256) for _ in range(16)))
              for i in range(32)]
    return ScaTraceBackend(AesConstantTime(KEY), points, seed=7)


def _gpgpu_backend():
    rng = random.Random(5)
    inputs = [rng.randrange(256) for _ in range(128)]
    _golden, issues = run_simt_kernel(vector_add_kernel(), inputs, [])
    faults = [PipeRegFault(warp=rng.randrange(2), lane=rng.randrange(8),
                           bit=rng.randrange(32),
                           at_issue=rng.randrange(issues))
              for _ in range(40)]
    return GpgpuSeuBackend(vector_add_kernel(), inputs, faults)


def _slicing_backend(use_filter=True):
    circuit = load("rand_seq")
    reps, _ = collapse(circuit)
    workload = random_workload(circuit, 5, seed=21)
    return SlicingBackend(circuit, reps[:25], workload,
                          use_filter=use_filter)


NEW_BACKENDS = {
    "rsn-diagnosis": _rsn_backend,
    "laser-fi": _laser_backend,
    "sca-trace": _sca_backend,
    "gpgpu-seu": _gpgpu_backend,
    "slicing": _slicing_backend,
}


# ----------------------------------------------------------------------
# the point-filter stage
# ----------------------------------------------------------------------
class TestPointFilterStage:
    def test_filtered_outcomes_are_first_class_in_report_and_db(self):
        db = CampaignDb()
        report = run_campaign(_slicing_backend(),
                              EngineConfig(batch_size=16), db=db)
        assert report.skipped  # the slicing rules fired
        assert report.total == report.executed + len(report.skipped)
        assert report.total == report.planned == report.population
        # every filtered point is a masked outcome with its rule tagged
        for inj in report.skipped:
            assert inj.outcome == "masked"
            assert inj.detail in (SKIP_NO_ACTIVATION, SKIP_NO_PATH)
        # DB rows cover executed AND filtered injections
        rows = _db_rows(db)
        assert len(rows) == report.total
        summary = db.summary(report.campaign_id)
        assert summary.outcomes == report.outcomes
        db.close()

    def test_filter_disabled_executes_everything(self):
        filtered = run_campaign(_slicing_backend(True),
                                EngineConfig(batch_size=16))
        naive = run_campaign(_slicing_backend(False),
                             EngineConfig(batch_size=16))
        assert not naive.skipped
        assert naive.executed == naive.planned
        assert filtered.executed < naive.executed
        # losslessness at the engine level: same outcome per point
        by_point = {inj.point: inj.outcome for inj in naive.injections}
        for inj in filtered.injections + filtered.skipped:
            assert by_point[inj.point] == inj.outcome

    def test_filter_must_account_every_point(self):
        class DroppingBackend:
            name = "dropper"
            circuit_name = "toy"
            fault_model = "none"
            workload = "toy"

            def enumerate_points(self):
                return list(range(10))

            def prepare(self):
                return None

            def filter_points(self, points):
                return points[:4], []  # silently loses six points

            def run_batch(self, points):
                return [Injection(p, f"p{p}", 0, "ok") for p in points]

        with pytest.raises(ValueError, match="dropped points"):
            run_campaign(DroppingBackend(), EngineConfig())

    def test_early_stop_pre_converges_on_filtered_outcomes(self):
        """A filter that resolves nearly all points converges the
        campaign before a single batch executes."""
        backend = _slicing_backend()
        points = backend.enumerate_points()
        executed = []

        class FullFilter:
            name = "prefiltered"
            circuit_name = "toy"
            fault_model = "stuck-at"
            workload = "toy"

            def enumerate_points(self):
                return list(points)

            def prepare(self):
                return None

            def filter_points(self, pts):
                return [], [Injection(p, "x", 0, "masked") for p in pts]

            def run_batch(self, pts):
                executed.append(len(pts))
                return []

        report = run_campaign(
            FullFilter(),
            EngineConfig(early_stop=EarlyStop(outcome="masked", margin=0.1,
                                              min_injections=10)))
        assert report.converged
        assert report.executed == 0 and not executed
        assert report.executor == "serial"
        assert report.total == len(points)

    def test_early_stop_census_tightens_with_filtered_points(self):
        """Filtered outcomes are a census (zero variance): the
        convergence check scales the executed sample's Wilson width by
        the kept stratum's share, so the filtered campaign converges on
        fewer executed injections than the unfiltered one — without
        recording any speculative batch."""
        db = CampaignDb()
        stop = EarlyStop(outcome="masked", margin=0.08, min_injections=40)
        filtered = run_campaign(
            _slicing_backend(True),
            EngineConfig(batch_size=8, early_stop=stop), db=db)
        naive = run_campaign(_slicing_backend(False),
                             EngineConfig(batch_size=8, early_stop=stop))
        assert filtered.converged
        assert filtered.total >= stop.min_injections
        assert filtered.executed < naive.executed
        # DB contains exactly the accounted injections, nothing more
        assert len(_db_rows(db)) == filtered.total
        db.close()

    def test_early_stop_not_fooled_by_a_skewed_census(self):
        """A filter that resolves a large all-masked stratum must not
        declare a tight failure-rate interval while the (different)
        kept stratum is still unsampled: convergence requires executed
        evidence whenever kept points remain."""
        half = 60

        class SkewedFilter:
            # points 0..59 filtered masked; 60..119 all "failure" when run
            name = "skewed"
            circuit_name = "toy"
            fault_model = "none"
            workload = "toy"

            def enumerate_points(self):
                return list(range(2 * half))

            def prepare(self):
                return None

            def filter_points(self, pts):
                kept = [p for p in pts if p >= half]
                skipped = [Injection(p, f"p{p}", 0, "masked")
                           for p in pts if p < half]
                return kept, skipped

            def run_batch(self, pts):
                return [Injection(p, f"p{p}", 0, "failure") for p in pts]

        report = run_campaign(
            SkewedFilter(),
            EngineConfig(batch_size=10,
                         early_stop=EarlyStop(outcome="failure", margin=0.02,
                                              min_injections=20)))
        # the census alone (60 masked, 0 failures) would have converged
        # under naive pooling with a failure rate of 0.0; the stratified
        # check forces execution, and the true rate is found
        assert report.executed > 0
        assert report.rate("failure") == pytest.approx(
            report.executed / report.total)
        assert report.count("failure") == report.executed

    def test_filter_stage_counts_in_outcome_statistics(self):
        report = run_campaign(_slicing_backend(), EngineConfig())
        # rates/counts/CI are over executed + skipped
        assert report.count("masked") >= len(report.skipped)
        assert sum(report.outcomes.values()) == report.total
        assert report.rate("masked") == \
            report.count("masked") / report.total
        assert 0.0 < report.skip_fraction < 1.0


# ----------------------------------------------------------------------
# executor parity for every new backend
# ----------------------------------------------------------------------
class TestNewBackendParity:
    @pytest.mark.parametrize("kind", sorted(NEW_BACKENDS))
    def test_serial_thread_process_identical(self, kind):
        results = {}
        for executor in ("serial", "thread", "process"):
            db = CampaignDb()
            report = run_campaign(
                NEW_BACKENDS[kind](),
                EngineConfig(batch_size=8, workers=2, executor=executor,
                             seed=13),
                db=db)
            assert report.executor == executor
            results[executor] = (report.outcomes, _rows(report),
                                 _db_rows(db))
            db.close()
        assert results["serial"] == results["thread"] == results["process"]

    @pytest.mark.parametrize("kind", sorted(NEW_BACKENDS))
    def test_backends_pickle_and_roundtrip(self, kind):
        import pickle

        original = NEW_BACKENDS[kind]()
        clone = pickle.loads(pickle.dumps(original))
        original.prepare()
        clone.prepare()
        points = list(original.enumerate_points())[:6]
        assert [(i.location, i.cycle, i.outcome)
                for i in original.run_batch(points)] \
            == [(i.location, i.cycle, i.outcome)
                for i in clone.run_batch(points)]


# ----------------------------------------------------------------------
# facades reproduce the pre-port serial loops
# ----------------------------------------------------------------------
class TestFacadeEquivalence:
    def test_rsn_signature_table_matches_reference_loop(self):
        faults = all_rsn_faults(TREE())
        test = compact_test(TREE)
        # reference: the pre-engine per-fault loop
        golden = TREE()
        golden.reset()
        golden_sig = tuple(apply_test(golden, test))
        expected = {}
        for fault in faults:
            net = TREE()
            net.reset()
            net.inject(fault)
            expected[fault] = tuple(apply_test(net, test))
        table = build_signature_table(TREE, faults, test)
        assert table.golden_signature == golden_sig
        assert table.signatures == expected
        assert list(table.signatures) == list(faults)  # order preserved
        detected = sum(1 for sig in expected.values() if sig != golden_sig)
        assert coverage(TREE, faults, test) == detected / len(faults)

    def test_rsn_campaign_report_shape(self):
        faults = all_rsn_faults(TREE())
        table, report = signature_campaign(TREE, faults, compact_test(TREE))
        assert report.total == len(faults)
        assert report.count("detected") == \
            round(table.detected_fraction() * len(faults))

    def test_laser_attack_matches_reference_loop(self):
        plan = Floorplan.grid("130nm", [f"sec{i}" for i in range(16)])
        target, attempts, seed = "sec5", 40, 3
        cell = next(c for c in plan.cells if c.name == target)
        exact = collateral = misses = 0
        for i in range(attempts):  # the pre-engine loop, shot for shot
            shot = LaserShot(cell.x_um, cell.y_um, MIN_SPOT_UM, 1.5)
            outcome = fire(plan, shot, seed=seed * 100_003 + i)
            if not outcome.flipped or target not in outcome.flipped:
                misses += 1
            elif outcome.single_bit:
                exact += 1
            else:
                collateral += 1
        stats, report = attack_campaign(plan, target, attempts, seed=seed)
        assert (stats.exact_hits, stats.collateral, stats.misses) \
            == (exact, collateral, misses)
        assert report.total == attempts
        assert targeted_attack(plan, target, attempts, seed=seed,
                               workers=2).exact_hits == exact

    def test_laser_unknown_target_still_raises(self):
        plan = Floorplan.grid("250nm", ["r0"])
        with pytest.raises(ValueError):
            targeted_attack(plan, "ghost")

    def test_sensitivity_map_covers_grid(self):
        plan = Floorplan.grid("250nm", [f"r{i}" for i in range(8)],
                              columns=4)
        grid, report = sensitivity_map(plan, energy=1.5)
        assert len(grid) == report.total > 0
        assert set(report.outcomes) <= {"no_flip", "single_bit", "multi_bit"}

    def test_leaky_traces_byte_identical_to_reference_loop(self):
        # AesLeaky is stateless, so the engine port must reproduce the
        # old sequential collection exactly (same plaintext stream)
        rng = random.Random(3)
        cipher = AesLeaky(KEY)
        expected_pts, expected_rows = [], []
        for _ in range(20):
            pt = bytes(rng.randrange(256) for _ in range(16))
            _ct, trace = cipher.encrypt(pt)
            expected_pts.append(pt)
            expected_rows.append(list(trace.power))
        traces = collect_traces(AesLeaky(KEY), 20, seed=3)
        assert traces.plaintexts == expected_pts
        assert traces.power.tolist() == [
            [float(v) for v in row] for row in expected_rows]

    def test_masked_traces_vary_per_point_but_deterministically(self):
        a = collect_traces(AesConstantTime(KEY), 12, seed=3)
        b = collect_traces(AesConstantTime(KEY), 12, seed=3, workers=2,
                           executor="thread")
        assert a.power.tolist() == b.power.tolist()
        # fresh masks per trace: rows are not all identical for the
        # fixed-plaintext TVLA population
        tvla_report, engine_report = tvla_campaign(AesConstantTime(KEY), 30,
                                                   seed=5)
        assert engine_report.outcomes == {"fixed": 30, "random": 30}
        assert not tvla_report.leaks

    def test_tvla_still_separates_implementations(self):
        assert tvla(AesLeaky(KEY), 60, seed=5).leaks
        assert not tvla(AesConstantTime(KEY), 60, seed=5).leaks

    def test_trace_campaign_report_counts(self):
        db = CampaignDb()
        traces, report = trace_campaign(AesLeaky(KEY), 16, seed=1, db=db)
        assert traces.n == 16
        assert report.outcomes == {"collected": 16}
        assert db.summary(report.campaign_id).total == 16
        db.close()

    def test_gpgpu_rates_match_reference_loop(self):
        # the pre-engine loop, draw for draw
        rng = random.Random(2)
        inputs = [rng.randrange(256) for _ in range(128)]
        kernel = vector_add_kernel()
        golden, golden_issues = run_simt_kernel(kernel, inputs, [])
        masked = sdc = 0
        for _ in range(40):
            fault = PipeRegFault(
                warp=rng.randrange(2), lane=rng.randrange(8),
                bit=rng.randrange(32), at_issue=rng.randrange(golden_issues))
            observed, _ = run_simt_kernel(kernel, inputs, [fault])
            if observed == golden:
                masked += 1
            else:
                sdc += 1
        rates = seu_campaign_on_kernel(vector_add_kernel(), 40, seed=2)
        assert rates["masked"] == masked / 40
        assert rates["sdc"] == sdc / 40
        assert rates["issue_slots"] == float(golden_issues)
        parallel = seu_campaign_on_kernel(vector_add_kernel(), 40, seed=2,
                                          workers=2, executor="thread")
        assert parallel == rates

    def test_slicing_counters_derive_from_engine_accounting(self):
        circuit = load("rand_seq")
        reps, _ = collapse(circuit)
        workload = random_workload(circuit, 6, seed=21)
        naive = run_naive_campaign(circuit, reps[:30], workload)
        sliced = run_sliced_campaign(circuit, reps[:30], workload)
        assert verify_equivalence(naive, sliced)
        # no drift: the counters and the classification table agree
        assert sliced.total == len(sliced.classifications) \
            == naive.total == 30 * 6
        assert naive.simulated == naive.total
        assert naive.skipped_no_activation == naive.skipped_no_path == 0
        skipped = sliced.skipped_no_activation + sliced.skipped_no_path
        assert sliced.simulated + skipped == sliced.total
        assert sliced.skip_fraction == skipped / sliced.total

    def test_slicing_parallel_matches_serial(self):
        circuit = load("rand_seq")
        reps, _ = collapse(circuit)
        workload = random_workload(circuit, 5, seed=9)
        serial = run_sliced_campaign(circuit, reps[:25], workload)
        parallel = run_sliced_campaign(circuit, reps[:25], workload,
                                       workers=4, executor="process")
        assert serial.classifications == parallel.classifications
        assert (serial.simulated, serial.skipped_no_activation,
                serial.skipped_no_path) == \
            (parallel.simulated, parallel.skipped_no_activation,
             parallel.skipped_no_path)


# ----------------------------------------------------------------------
# SeuBackend reuses the filter stage for dead flops
# ----------------------------------------------------------------------
class TestSeuDeadFlopFilter:
    @staticmethod
    def _circuit_with_dead_flop():
        bld = CircuitBuilder("deadflop")
        a, b = bld.input("a"), bld.input("b")
        live = bld.flop(bld.xor(a, b), name="live_q")
        bld.output(bld.and_(live, a, name="y"))
        # dead: feeds only a gate nobody observes, no flop D, no output
        dead = bld.flop(bld.or_(a, b), name="dead_q")
        bld.and_(dead, b, name="dangling")
        return bld.done()

    def test_dead_flop_filter_is_lossless(self):
        circuit = self._circuit_with_dead_flop()
        workload = random_workload(circuit, 8, seed=4)
        plain = run_campaign(SeuBackend(circuit, workload),
                             EngineConfig(batch_size=8))
        filtered = run_campaign(
            SeuBackend(circuit, workload, skip_dead_flops=True),
            EngineConfig(batch_size=8))
        assert not plain.skipped
        assert filtered.skipped  # dead_q injections resolved statically
        assert all(inj.detail == SKIP_DEAD_FLOP
                   for inj in filtered.skipped)
        assert all(inj.location == "dead_q" for inj in filtered.skipped)
        by_point = {(i.location, i.cycle): i.outcome
                    for i in plain.injections}
        for inj in filtered.injections + filtered.skipped:
            assert by_point[(inj.location, inj.cycle)] == inj.outcome
        assert filtered.outcomes == plain.outcomes

    def test_live_flops_never_filtered(self):
        circuit = load("rand_seq")
        workload = random_workload(circuit, 4, seed=4)
        filtered = run_campaign(
            SeuBackend(circuit, workload, skip_dead_flops=True),
            EngineConfig(batch_size=16))
        reference = run_seu_campaign(circuit, workload)
        assert {(i.flop, i.cycle, i.outcome) for i in reference.injections} \
            == {(i.location, i.cycle, i.outcome)
                for i in filtered.injections + filtered.skipped}
