"""Smoke tests: every shipped example must run cleanly end to end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_present():
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship six


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    sys_path = list(sys.path)
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.path[:] = sys_path
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
