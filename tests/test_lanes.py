"""Tests for lane-packed injection simulation (`repro.engine.lanes`),
the persistent worker pool, and the round-batching facades.

The load-bearing property is *lane exactness*: packed campaigns must
produce byte-identical outcome multisets to the per-point path at every
lane width — including vector-tier widths beyond 64, on both the
packed-int and ndarray backings — on every executor, with and without
the point-filter stage.
"""

import logging
from functools import partial

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import load
from repro.circuit.library import random_sequential
from repro.engine import (
    CompositeBackend,
    EngineConfig,
    SeuBackend,
    SlicingBackend,
    run_campaign,
    shutdown_pools,
)
from repro.engine import executors as executors_mod
from repro.engine import lanes
from repro.engine.workloads import GpgpuSeuBackend
from repro.faults import collapse
from repro.sim import compiled, vector
from repro.soft_error import random_workload
from repro.soft_error.seu import _golden_run, inject_seu

WIDTHS = (1, 7, 64)
VECTOR_WIDTHS = (65, 192, 1000)
BACKINGS = ("int", "ndarray", "soa")
EXECUTORS = ("serial", "thread", "process")

needs_numpy = pytest.mark.skipif(not vector.HAVE_NUMPY,
                                 reason="numpy not installed")


@pytest.fixture(scope="module")
def seq_setup():
    circuit = load("rand_seq")
    return circuit, random_workload(circuit, 20, seed=7)


def _rows(report):
    return [(i.location, i.cycle, i.outcome)
            for i in report.injections + report.skipped]


# ----------------------------------------------------------------------
# SEU lane packing
# ----------------------------------------------------------------------
class TestSeuLanes:
    def test_outcomes_identical_across_widths(self, seq_setup):
        circuit, workload = seq_setup
        reference = None
        for width in WIDTHS:
            backend = SeuBackend(circuit.copy(), workload, lane_width=width)
            report = run_campaign(backend,
                                  EngineConfig(batch_size=64,
                                               executor="serial"))
            if reference is None:
                reference = _rows(report)
            else:
                assert _rows(report) == reference, f"width {width} diverged"
        assert reference  # the campaign actually ran

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_packed_identical_across_executors(self, seq_setup, executor):
        circuit, workload = seq_setup
        serial = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=64),
            EngineConfig(batch_size=16, executor="serial"))
        other = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=64),
            EngineConfig(batch_size=16, workers=2, executor=executor))
        assert _rows(other) == _rows(serial)
        shutdown_pools()

    def test_packed_matches_per_point_with_dead_flop_filter(self, seq_setup):
        circuit, workload = seq_setup
        reports = {}
        for width in (1, 64):
            backend = SeuBackend(circuit.copy(), workload,
                                 skip_dead_flops=True, lane_width=width)
            reports[width] = run_campaign(
                backend, EngineConfig(batch_size=32, executor="serial"))
        assert _rows(reports[1]) == _rows(reports[64])
        # the filter actually fired and outcomes still cover all points
        assert reports[64].total == reports[64].population

    def test_packed_run_matches_inject_seu_directly(self, seq_setup):
        circuit, workload = seq_setup
        backend = SeuBackend(circuit.copy(), workload, lane_width=64)
        backend.prepare()
        points = list(backend.enumerate_points())[:70]  # spans two lanes
        golden = _golden_run(circuit, workload)
        expected = [inject_seu(circuit, workload, flop, cyc, golden)
                    for flop, cyc in points]
        got = [inj.outcome for inj in backend.run_batch(points)]
        assert got == expected

    def test_lane_width_one_uses_per_point_path(self, seq_setup):
        circuit, workload = seq_setup
        backend = SeuBackend(circuit.copy(), workload, lane_width=1)
        backend.prepare()
        assert backend._lane_ctx is None  # no packed context built

    def test_out_of_range_cycles_masked_like_per_point(self, seq_setup):
        circuit, workload = seq_setup
        cycles = [-1, 0, 1, len(workload) + 5]  # flip never fires at ends
        rows = {}
        for width in (1, 64):
            backend = SeuBackend(circuit.copy(), workload, cycles=cycles,
                                 lane_width=width)
            report = run_campaign(backend, EngineConfig(executor="serial"))
            rows[width] = _rows(report)
        assert rows[1] == rows[64]
        assert all(out == "masked" for _loc, cyc, out in rows[64]
                   if cyc < 0 or cyc >= len(workload))

    def test_oversized_group_rejected(self, seq_setup):
        circuit, workload = seq_setup
        ctx = lanes.build_context(circuit, workload, 4)
        points = [(flop, 0) for flop in list(circuit.flops)[:2]] * 3
        with pytest.raises(ValueError, match="exceed lane width"):
            lanes.seu_outcomes(ctx, points)

    def test_dead_flop_cone_cache_survives_campaigns(self, seq_setup,
                                                     monkeypatch):
        circuit, workload = seq_setup
        backend = SeuBackend(circuit.copy(), workload, skip_dead_flops=True)
        calls = []
        from repro.circuit import levelize

        real = levelize.fanout_cone

        def counting(circuit_, seeds, through_flops=False):
            calls.append(tuple(seeds))
            return real(circuit_, seeds, through_flops=through_flops)

        monkeypatch.setattr(levelize, "fanout_cone", counting)
        first = run_campaign(backend, EngineConfig(executor="serial"))
        n_first = len(calls)
        assert n_first == len(backend.targets)  # one cone per flop
        second = run_campaign(backend, EngineConfig(executor="serial"))
        assert len(calls) == n_first  # cached: no recompute on rerun
        assert _rows(first) == _rows(second)


# ----------------------------------------------------------------------
# vector tier: widths beyond 64 on both backings
# ----------------------------------------------------------------------
class TestVectorLanes:
    @pytest.fixture(scope="class")
    def reference_rows(self, seq_setup):
        circuit, workload = seq_setup
        report = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=1),
            EngineConfig(executor="serial"))
        return _rows(report)

    @needs_numpy
    @pytest.mark.parametrize("backing", BACKINGS)
    @pytest.mark.parametrize("width", VECTOR_WIDTHS)
    def test_seu_identical_to_per_point(self, seq_setup, reference_rows,
                                        width, backing):
        circuit, workload = seq_setup
        backend = SeuBackend(circuit.copy(), workload, lane_width=width,
                             lane_backing=backing)
        report = run_campaign(backend, EngineConfig(executor="serial"))
        assert _rows(report) == reference_rows
        backend.prepare()
        assert backend._lane_ctx.backing == backing

    @needs_numpy
    @pytest.mark.parametrize("backing", BACKINGS)
    def test_slicing_identical_to_64(self, backing):
        circuit = load("rand_seq")
        faults, _ = collapse(circuit)
        faults = faults[:30]
        workload = random_workload(circuit, 12, seed=3)
        ref = run_campaign(
            SlicingBackend(circuit.copy(), faults, workload, lane_width=64),
            EngineConfig(batch_size=32, executor="serial"))
        wide = run_campaign(
            SlicingBackend(circuit.copy(), faults, workload, lane_width=192,
                           lane_backing=backing),
            EngineConfig(batch_size=32, executor="serial"))
        assert sorted(_rows(wide)) == sorted(_rows(ref))

    @needs_numpy
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000),
           width=st.sampled_from(VECTOR_WIDTHS),
           backing=st.sampled_from(BACKINGS))
    def test_property_vector_equals_packed_equals_interpreter(
            self, seed, width, backing):
        circuit = random_sequential(n_inputs=5, n_gates=40, n_flops=6,
                                    n_outputs=4, seed=seed)
        workload = random_workload(circuit, 10, seed=seed + 1)

        def rows(width_, backing_=None):
            backend = SeuBackend(circuit.copy(), workload,
                                 lane_width=width_, lane_backing=backing_)
            return _rows(run_campaign(backend,
                                      EngineConfig(executor="serial")))

        packed = rows(64)
        assert rows(width, backing) == packed
        with compiled.disabled():
            assert rows(width, backing) == packed  # interpreter reference

    @needs_numpy
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_wide_lanes_across_executors(self, seq_setup, executor):
        circuit, workload = seq_setup
        serial = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=256),
            EngineConfig(batch_size=64, executor="serial"))
        other = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=256),
            EngineConfig(batch_size=64, workers=2, executor=executor))
        assert _rows(other) == _rows(serial)
        shutdown_pools()

    @needs_numpy
    def test_ndarray_backing_survives_process_pickling(self, seq_setup):
        circuit, workload = seq_setup
        serial = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=1),
            EngineConfig(executor="serial"))
        shipped = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=192,
                       lane_backing="ndarray"),
            EngineConfig(batch_size=64, workers=2, executor="process"))
        assert _rows(shipped) == _rows(serial)
        shutdown_pools()

    @needs_numpy
    def test_auto_backing_crossover(self, seq_setup, monkeypatch):
        circuit, workload = seq_setup
        ctx = lanes.build_context(circuit, workload, 256)
        assert ctx.backing == "int"  # below the crossover
        monkeypatch.setattr(vector, "NDARRAY_MIN_LANES", 128)
        ctx = lanes.build_context(circuit, workload, 256)
        # past the old per-net crossover the SoA kernel tier takes over
        # (it strictly dominates the per-net ndarray backing there)
        assert ctx.backing == "soa"
        monkeypatch.setenv(vector.ENV_BACKING, "int")
        ctx = lanes.build_context(circuit, workload, 256)
        assert ctx.backing == "int"  # env override beats auto

    @needs_numpy
    def test_ndarray_backing_falls_back_under_no_compile(self, seq_setup):
        # the ndarray fast path rides the compiled step program; with
        # compilation disabled the context must fall back to big ints
        # (SequentialSim carries them at any width)
        circuit, workload = seq_setup
        with compiled.disabled():
            ctx = lanes.build_context(circuit, workload, 192,
                                      backing="ndarray")
            assert ctx.backing == "int"

    def test_degrades_to_64_without_numpy(self, seq_setup, monkeypatch,
                                          caplog):
        circuit, workload = seq_setup
        monkeypatch.setattr(vector, "HAVE_NUMPY", False)
        monkeypatch.setattr(vector, "_warned_no_numpy", False)
        with caplog.at_level(logging.WARNING, logger="repro.sim.vector"):
            backend = SeuBackend(circuit.copy(), workload, lane_width=1000)
        assert backend.lane_width == 64  # degraded, not crashed
        assert any("numpy unavailable" in rec.message
                   for rec in caplog.records)
        # the warning is one-time: a second backend stays quiet
        caplog.clear()
        with caplog.at_level(logging.WARNING, logger="repro.sim.vector"):
            SeuBackend(circuit.copy(), workload, lane_width=1000)
        assert not caplog.records
        # and outcomes still match the packed-64 reference
        report = run_campaign(backend, EngineConfig(executor="serial"))
        ref = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=64),
            EngineConfig(executor="serial"))
        assert _rows(report) == _rows(ref)

    @needs_numpy
    def test_wide_default_batches_fill_the_lane(self, seq_setup):
        # the engine raises the default batch size to one full lane for
        # vector-tier widths (underfilled wide words waste the tier)
        circuit, workload = seq_setup
        sizes = []
        previous = 0

        def on_chunk(report):
            nonlocal previous
            sizes.append(report.total - previous)
            previous = report.total

        backend = SeuBackend(circuit.copy(), workload, lane_width=128)
        run_campaign(backend, EngineConfig(executor="serial"),
                     on_chunk=on_chunk)
        assert all(size == 128 for size in sizes[:-1])
        # an explicit batch_size is respected
        sizes.clear()
        previous = 0
        backend = SeuBackend(circuit.copy(), workload, lane_width=128)
        run_campaign(backend, EngineConfig(batch_size=32, executor="serial"),
                     on_chunk=on_chunk)
        assert all(size == 32 for size in sizes[:-1])


# ----------------------------------------------------------------------
# slicing lane packing
# ----------------------------------------------------------------------
class TestSlicingLanes:
    @pytest.fixture(scope="class")
    def slicing_setup(self):
        circuit = load("rand_seq")
        faults, _ = collapse(circuit)
        return circuit, faults[:30], random_workload(circuit, 12, seed=3)

    @pytest.mark.parametrize("use_filter", (False, True))
    def test_outcomes_identical_across_widths(self, slicing_setup,
                                              use_filter):
        circuit, faults, workload = slicing_setup
        reference = None
        for width in WIDTHS:
            backend = SlicingBackend(circuit.copy(), faults, workload,
                                     use_filter=use_filter, lane_width=width)
            report = run_campaign(backend,
                                  EngineConfig(batch_size=32,
                                               executor="serial"))
            rows = sorted(_rows(report))
            if reference is None:
                reference = rows
            else:
                assert rows == reference, f"width {width} diverged"

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_packed_identical_across_executors(self, slicing_setup, executor):
        circuit, faults, workload = slicing_setup
        serial = run_campaign(
            SlicingBackend(circuit.copy(), faults, workload, lane_width=64),
            EngineConfig(batch_size=32, executor="serial"))
        other = run_campaign(
            SlicingBackend(circuit.copy(), faults, workload, lane_width=64),
            EngineConfig(batch_size=32, workers=2, executor=executor))
        assert _rows(other) == _rows(serial)
        shutdown_pools()

    def test_facades_still_lossless_with_lanes(self, slicing_setup):
        from repro.safety.slicing import (run_naive_campaign,
                                          run_sliced_campaign,
                                          verify_equivalence)

        circuit, faults, workload = slicing_setup
        naive = run_naive_campaign(circuit, faults, workload,
                                   executor="serial")
        sliced = run_sliced_campaign(circuit, faults, workload,
                                     executor="serial")
        per_point = run_naive_campaign(circuit, faults, workload,
                                       executor="serial", lane_width=1)
        assert verify_equivalence(naive, sliced)
        assert verify_equivalence(naive, per_point)


# ----------------------------------------------------------------------
# GPGPU golden-prefix forking
# ----------------------------------------------------------------------
class TestGpgpuForking:
    def test_outcomes_identical_across_widths(self):
        import random

        from repro.gpgpu import reduction_kernel
        from repro.gpgpu.apps import _draw_faults, _run

        rng = random.Random(2)
        inputs = [rng.randrange(256) for _ in range(128)]
        kernel = reduction_kernel()
        _golden, issues = _run(kernel, inputs, [])
        faults = _draw_faults(rng, 100, 32, issues)
        reference = None
        for width in (1, 8, 64):
            backend = GpgpuSeuBackend(kernel, inputs, faults,
                                      label="reduction", lane_width=width)
            report = run_campaign(backend,
                                  EngineConfig(batch_size=16,
                                               executor="serial"))
            rows = _rows(report)
            if reference is None:
                reference = rows
            else:
                assert rows == reference, f"width {width} diverged"

    def test_fork_resumes_bit_exact(self):
        import random

        from repro.gpgpu import reduction_kernel
        from repro.gpgpu.simt import SimtCore

        rng = random.Random(5)
        kernel = reduction_kernel()
        full = SimtCore(kernel)
        for i in range(128):
            full.memory[i] = rng.randrange(256)
        snapshot_inputs = list(full.memory[:128])
        total = full.run()
        for cut in (0, 3, total // 2, total - 1):
            core = SimtCore(kernel)
            for i, v in enumerate(snapshot_inputs):
                core.memory[i] = v
            rr = 0
            if cut:
                core.run(max_issues=cut, rr=rr)
                rr = (core.schedule_trace[-1] + 1) % len(core.warps)
            clone = core.fork()
            clone.run(rr=rr)
            assert clone.memory == full.memory
            # the fork is independent: the original can still advance
            core.run(rr=rr)
            assert core.memory == full.memory


# ----------------------------------------------------------------------
# persistent worker pool
# ----------------------------------------------------------------------
class TestPersistentPool:
    def test_pool_reused_across_campaigns_with_identical_results(self):
        shutdown_pools()
        circuit = load("rand_seq")
        workload = random_workload(circuit, 8, seed=7)

        def campaign(reuse):
            return run_campaign(
                SeuBackend(circuit.copy(), workload, lane_width=1),
                EngineConfig(batch_size=8, workers=2, executor="process",
                             reuse_pool=reuse))

        fresh = campaign(False)
        assert not executors_mod._pool_registry  # one-shot pool torn down
        first = campaign(True)
        pool = executors_mod._pool_registry.get(2)
        assert pool is not None
        second = campaign(True)
        assert executors_mod._pool_registry.get(2) is pool  # reused
        assert _rows(fresh) == _rows(first) == _rows(second)
        shutdown_pools()
        assert not executors_mod._pool_registry

    def test_early_stop_drains_without_killing_pool(self):
        from repro.engine import EarlyStop

        shutdown_pools()
        circuit = load("rand_seq")
        workload = random_workload(circuit, 20, seed=7)
        report = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=1),
            EngineConfig(batch_size=4, workers=2, executor="process",
                         shuffle=True, seed=5,
                         early_stop=EarlyStop(outcome="failure", margin=0.12,
                                              min_injections=12)))
        assert report.converged
        assert 2 in executors_mod._pool_registry  # survived the early stop
        # and the surviving pool still runs full campaigns correctly
        serial = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=1),
            EngineConfig(batch_size=8, executor="serial"))
        pooled = run_campaign(
            SeuBackend(circuit.copy(), workload, lane_width=1),
            EngineConfig(batch_size=8, workers=2, executor="process"))
        assert _rows(pooled) == _rows(serial)
        shutdown_pools()


# ----------------------------------------------------------------------
# round batching: composite campaigns
# ----------------------------------------------------------------------
class TestRoundBatching:
    def test_composite_matches_separate_campaigns(self, seq_setup):
        circuit, workload = seq_setup
        part_a = SeuBackend(circuit.copy(), workload, cycles=range(4))
        part_b = SeuBackend(circuit.copy(), workload, cycles=range(4, 8))
        composite = CompositeBackend([("a", part_a), ("b", part_b)])
        fused = run_campaign(composite,
                             EngineConfig(batch_size=16, executor="serial"))
        separate = []
        for cycles in (range(4), range(4, 8)):
            report = run_campaign(
                SeuBackend(circuit.copy(), workload, cycles=cycles),
                EngineConfig(batch_size=16, executor="serial"))
            separate.extend(_rows(report))
        assert [(loc.split(":", 1)[1], cyc, out)
                for loc, cyc, out in _rows(fused)] == separate
        assert fused.population == len(separate)

    def test_composite_rejects_duplicate_tags(self, seq_setup):
        circuit, workload = seq_setup
        backend = SeuBackend(circuit.copy(), workload)
        with pytest.raises(ValueError, match="unique"):
            CompositeBackend([("a", backend), ("a", backend)])

    def test_encoding_style_study_single_campaign(self):
        from repro.core import CampaignDb
        from repro.gpgpu import encoding_style_study

        db = CampaignDb()
        results = encoding_style_study(n_injections=20, executor="serial",
                                       db=db)
        campaigns = db.conn.execute(
            "SELECT COUNT(*) FROM campaigns").fetchone()[0]
        assert campaigns == 1  # both encodings fused into one campaign
        assert [r.encoding for r in results] == ["branchy", "predicated"]
        assert all(r.masked + r.sdc == 20 for r in results)
        db.close()

    def test_diagnostic_test_batched_matches_sequential(self):
        from repro.rsn import (all_rsn_faults, compact_test, diagnostic_test,
                               sib_tree)

        factory = partial(sib_tree, depth=2, regs_per_leaf=1, reg_bits=4)
        faults = all_rsn_faults(factory())
        base = compact_test(factory)
        seq_test, seq_table = diagnostic_test(factory, faults, base,
                                              batch_rounds=False)
        bat_test, bat_table = diagnostic_test(factory, faults, base,
                                              batch_rounds=True)
        assert [(s.bits, s.update) for s in seq_test.steps] \
            == [(s.bits, s.update) for s in bat_test.steps]
        assert seq_table.signatures == bat_table.signatures
        assert seq_table.resolution() == bat_table.resolution()


# ----------------------------------------------------------------------
# engine lane awareness
# ----------------------------------------------------------------------
class TestLaneAwareChunking:
    def test_chunks_align_down_to_lane_multiples(self, seq_setup):
        circuit, workload = seq_setup
        sizes = []
        backend = SeuBackend(circuit.copy(), workload, lane_width=16)
        previous = 0

        def on_chunk(report):
            nonlocal previous
            sizes.append(report.total - previous)
            previous = report.total

        run_campaign(backend, EngineConfig(batch_size=24, executor="serial"),
                     on_chunk=on_chunk)
        assert all(size == 16 for size in sizes[:-1])  # 24 aligned down

    def test_small_batches_not_inflated(self, seq_setup):
        circuit, workload = seq_setup
        sizes = []
        previous = 0

        def on_chunk(report):
            nonlocal previous
            sizes.append(report.total - previous)
            previous = report.total

        backend = SeuBackend(circuit.copy(), workload, lane_width=64)
        run_campaign(backend, EngineConfig(batch_size=8, executor="serial"),
                     on_chunk=on_chunk)
        assert all(size == 8 for size in sizes[:-1])  # early stop unchanged
