"""Concurrent multi-process CampaignDb access.

The campaign service hinges on many writers sharing one SQLite file:
WAL mode keeps readers unblocked, the busy timeout serializes writers
instead of failing them, idempotent chunk records make interleaved
writes safe, and schema migration must tolerate two fresh connections
racing the same ``ALTER TABLE``.  These tests drive each of those
properties with real processes (and threads where the contention is
identical) rather than trusting the pragmas.
"""

import os
import sqlite3
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.core import CampaignDb
from repro.core import campaign as campaign_mod

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")

#: The pre-checkpoint schema (no ``chunk_index`` column, no service
#: tables) — what a database from before the fault-tolerance work
#: looks like on disk.
OLD_SCHEMA = """
CREATE TABLE campaigns (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    circuit TEXT NOT NULL,
    fault_model TEXT NOT NULL,
    workload TEXT NOT NULL,
    params TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE injections (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    location TEXT NOT NULL,
    cycle INTEGER NOT NULL DEFAULT 0,
    outcome TEXT NOT NULL
);
"""


def _make_old_schema_db(path) -> None:
    conn = sqlite3.connect(str(path))
    conn.executescript(OLD_SCHEMA)
    conn.execute(
        "INSERT INTO campaigns (name, circuit, fault_model, workload)"
        " VALUES ('legacy', 'c', 'seu', 'w')")
    conn.execute(
        "INSERT INTO injections (campaign_id, location, cycle, outcome)"
        " VALUES (1, 'ff0', 3, 'masked')")
    conn.commit()
    conn.close()


def _run_writers(db_path, script_body: str, n: int) -> None:
    """Run ``n`` copies of a writer script concurrently against
    ``db_path``; each gets WORKER_INDEX in argv and starts on a shared
    go-file so the opens genuinely overlap."""
    go_file = str(db_path) + ".go"
    script = textwrap.dedent(f"""
        import os, sys, time
        sys.path.insert(0, {REPO_SRC!r})
        index = int(sys.argv[1])
        while not os.path.exists({go_file!r}):
            time.sleep(0.001)
    """) + textwrap.dedent(script_body)
    procs = [subprocess.Popen([sys.executable, "-c", script, str(i)],
                              stdout=subprocess.PIPE,
                              stderr=subprocess.PIPE)
             for i in range(n)]
    with open(go_file, "w"):
        pass
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()


class TestMultiProcessWriters:
    def test_interleaved_record_chunk_from_two_processes(self, tmp_path):
        """Two processes checkpoint alternating chunks of one campaign;
        every chunk and every row must land exactly once."""
        db_path = tmp_path / "shared.sqlite"
        with CampaignDb(db_path) as db:
            campaign_id = db.create_campaign("svc", "c", "seu", "w")
        _run_writers(db_path, f"""
            from repro.core import CampaignDb
            db = CampaignDb({str(db_path)!r})
            for chunk in range(index, 40, 2):
                rows = [(f"ff{{chunk}}_{{i}}", i, "masked") for i in range(5)]
                db.record_chunk({campaign_id}, chunk, rows, seed=chunk)
            db.close()
        """, n=2)
        with CampaignDb(db_path) as db:
            records = db.chunk_records(campaign_id)
            rows = db.chunk_rows(campaign_id)
        assert sorted(records) == list(range(40))
        assert all(records[i].status == "done" for i in range(40))
        assert all(len(rows[i]) == 5 for i in range(40))

    def test_same_chunk_written_by_both_processes_lands_once(self,
                                                             tmp_path):
        """Both writers race every chunk — the stale-worker shape.
        INSERT OR IGNORE must keep exactly one copy of each."""
        db_path = tmp_path / "dup.sqlite"
        with CampaignDb(db_path) as db:
            campaign_id = db.create_campaign("svc", "c", "seu", "w")
        _run_writers(db_path, f"""
            from repro.core import CampaignDb
            db = CampaignDb({str(db_path)!r})
            for chunk in range(20):
                rows = [(f"ff{{chunk}}_{{i}}", i, "masked") for i in range(5)]
                db.record_chunk({campaign_id}, chunk, rows, seed=chunk)
            db.close()
        """, n=2)
        with CampaignDb(db_path) as db:
            rows = db.chunk_rows(campaign_id)
        assert sorted(rows) == list(range(20))
        assert all(len(rows[i]) == 5 for i in range(20))  # never doubled

    def test_concurrent_opens_migrate_an_old_schema_file(self, tmp_path):
        """Several service workers opening a pre-checkpoint database at
        once: every connection must come up migrated, with the loser of
        the ALTER race swallowing its benign 'duplicate column'."""
        db_path = tmp_path / "legacy.sqlite"
        _make_old_schema_db(db_path)
        _run_writers(db_path, f"""
            from repro.core import CampaignDb
            db = CampaignDb({str(db_path)!r})
            db.record_chunk(1, 100 + index, [("ffx", 0, "masked")], seed=1)
            db.close()
        """, n=4)
        with CampaignDb(db_path) as db:
            cols = {row[1] for row in
                    db.conn.execute("PRAGMA table_info(injections)")}
            assert "chunk_index" in cols
            assert sorted(db.chunk_records(1)) == [100, 101, 102, 103]


class TestWriterContention:
    def test_busy_timeout_rides_out_a_held_write_lock(self, tmp_path):
        """A writer blocked behind another's open transaction waits (up
        to the busy timeout) instead of raising 'database is locked'."""
        db_path = tmp_path / "contend.sqlite"
        with CampaignDb(db_path) as db:
            campaign_id = db.create_campaign("svc", "c", "seu", "w")

        holder = CampaignDb(db_path)
        contender = CampaignDb(db_path)
        lock_taken = threading.Event()
        release = threading.Event()

        def hold_lock():
            with holder.transaction():
                holder.record_chunk(campaign_id, 0, [("a", 0, "masked")])
                lock_taken.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=hold_lock)
        thread.start()
        try:
            assert lock_taken.wait(timeout=10)
            # schedule the lock release while the contender is blocked
            threading.Timer(0.3, release.set).start()
            t0 = time.perf_counter()
            assert contender.record_chunk(campaign_id, 1,
                                          [("b", 0, "masked")])
            waited = time.perf_counter() - t0
        finally:
            release.set()
            thread.join(timeout=10)
        assert 0.05 < waited < 5.0  # really blocked, then really won
        with CampaignDb(db_path) as db:
            assert sorted(db.chunk_records(campaign_id)) == [0, 1]
        holder.close()
        contender.close()

    def test_wal_readers_are_not_blocked_by_a_writer(self, tmp_path):
        """A reader during another connection's open write transaction
        sees the last committed snapshot — never an error, never the
        uncommitted rows."""
        db_path = tmp_path / "wal.sqlite"
        with CampaignDb(db_path) as db:
            campaign_id = db.create_campaign("svc", "c", "seu", "w")
            db.record_chunk(campaign_id, 0, [("a", 0, "masked")])

        writer = CampaignDb(db_path)
        reader = CampaignDb(db_path)
        try:
            with writer.transaction():
                writer.record_chunk(campaign_id, 1, [("b", 0, "masked")])
                seen_mid_tx = sorted(reader.chunk_records(campaign_id))
            seen_after = sorted(reader.chunk_records(campaign_id))
        finally:
            writer.close()
            reader.close()
        assert seen_mid_tx == [0]
        assert seen_after == [0, 1]


class TestMigrationRace:
    def test_losing_the_alter_race_is_benign(self, tmp_path, monkeypatch):
        """Deterministically reproduce the migration race: between this
        connection's column check and its ALTER, a rival connection
        lands the same ALTER first.  The loser must shrug off the
        'duplicate column' error and come up fully migrated."""
        db_path = tmp_path / "race.sqlite"
        _make_old_schema_db(db_path)
        real_connect = sqlite3.connect
        fired = []

        class RacingConnection(sqlite3.Connection):
            def execute(self, sql, *args):
                if sql.startswith("ALTER TABLE injections") and not fired:
                    fired.append(True)
                    rival = real_connect(str(db_path))
                    rival.execute(sql)
                    rival.commit()
                    rival.close()
                return super().execute(sql, *args)

        monkeypatch.setattr(
            campaign_mod.sqlite3, "connect",
            lambda path, **kw: real_connect(path,
                                            factory=RacingConnection, **kw))
        db = CampaignDb(db_path)  # must not raise despite losing the race
        assert fired  # the rival really did beat us to the ALTER
        cols = {row[1] for row in
                db.conn.execute("PRAGMA table_info(injections)")}
        assert "chunk_index" in cols
        assert db.record_chunk(1, 0, [("ffy", 0, "masked")], seed=9)
        db.close()

    def test_other_alter_failures_still_propagate(self, tmp_path,
                                                  monkeypatch):
        """The guard is for the duplicate-column race only — a genuinely
        broken ALTER (e.g. a corrupt table) must still raise."""
        db_path = tmp_path / "broken.sqlite"
        _make_old_schema_db(db_path)
        real_connect = sqlite3.connect

        class BrokenConnection(sqlite3.Connection):
            def execute(self, sql, *args):
                if sql.startswith("ALTER TABLE injections"):
                    raise sqlite3.OperationalError("disk I/O error")
                return super().execute(sql, *args)

        monkeypatch.setattr(
            campaign_mod.sqlite3, "connect",
            lambda path, **kw: real_connect(path,
                                            factory=BrokenConnection, **kw))
        with pytest.raises(sqlite3.OperationalError, match="disk I/O"):
            CampaignDb(db_path)
