"""Tests for the pluggable executor layer (`repro.engine.executors`).

Covers: backend/circuit picklability (caches dropped, behavior
preserved), process/thread/serial result parity down to the DB rows,
the auto probe's fallback decisions, early-stop draining (no
speculative injections recorded), and per-chunk RNG determinism across
executors and worker counts.
"""

import pickle
import time

import pytest

from repro.autosoc import APPLICATIONS, SocConfig
from repro.autosoc.fi import make_injections
from repro.circuit import load
from repro.core import CampaignDb
from repro.engine import (
    EarlyStop,
    EngineConfig,
    Injection,
    PpsfpBackend,
    SafetyBackend,
    SeuBackend,
    SocBackend,
    chunk_seed,
    plan_executor,
    run_campaign,
)
from repro.engine import executors
from repro.faults import collapse
from repro.sim import exhaustive_patterns, fault_simulate, random_patterns, simulate
from repro.soft_error import random_workload

EXECUTORS = ("serial", "thread", "process")


def _seu_backend():
    circuit = load("rand_seq")
    return SeuBackend(circuit, random_workload(circuit, 6, seed=7))


def _ppsfp_backend():
    circuit = load("c17")
    faults, _ = collapse(circuit)
    packed, n = exhaustive_patterns(circuit.inputs)
    return PpsfpBackend(circuit, faults, [(packed, n)])


def _safety_backend():
    circuit = load("c17")
    faults, _ = collapse(circuit)
    packed, n = exhaustive_patterns(circuit.inputs)
    return SafetyBackend(circuit, faults, [circuit.outputs[0]],
                         circuit.outputs[1:], packed, n)


def _soc_backend():
    app = APPLICATIONS["fibonacci"]
    return SocBackend(app, SocConfig.LOCKSTEP,
                      make_injections(app, n_cpu=6, n_ram=4, seed=1))

BACKEND_FACTORIES = {
    "seu": _seu_backend,
    "ppsfp": _ppsfp_backend,
    "safety": _safety_backend,
    "autosoc": _soc_backend,
}


class NoisyBackend:
    """Stochastic toy backend: outcomes come from the per-chunk RNG the
    engine hands to ``run_batch_seeded`` — the hook stochastic workloads
    use to stay deterministic at any worker count/executor."""

    name = "noisy"
    circuit_name = "toy"
    fault_model = "bernoulli"

    def __init__(self, n: int = 96) -> None:
        self.n = n
        self.workload = f"rng[{n}]"

    def enumerate_points(self):
        return list(range(self.n))

    def prepare(self) -> None:
        return None

    def run_batch(self, points):
        raise AssertionError("engine must use the seeded hook when present")

    def run_batch_seeded(self, points, rng):
        return [Injection(point=p, location=f"p{p}", cycle=0,
                          outcome="hit" if rng.random() < 0.3 else "miss")
                for p in points]


class CheapWideLaneBackend:
    """Batches cheaper than MIN_BATCH_COST_S but denser than a scalar
    chunk: a vector-tier lane width means each dispatch retires many
    points, so the auto probe must not bail to thread/serial on the
    per-batch floor alone.  The 1ms sleep sits between the raw dispatch
    floor (MIN_DISPATCH_COST_S) and the scalar per-batch floor
    (MIN_BATCH_COST_S)."""

    name = "cheap-wide"
    circuit_name = "toy"
    fault_model = "none"
    workload = "toy"

    def __init__(self, n: int = 96, lane_width: int = 1024) -> None:
        self.n = n
        self.lane_width = lane_width

    def enumerate_points(self):
        return list(range(self.n))

    def prepare(self) -> None:
        return None

    def run_batch(self, points):
        time.sleep(0.001)
        return [Injection(point=p, location=f"p{p}", cycle=0,
                          outcome="ok") for p in points]


class UnpicklableBackend:
    """A backend the process pool cannot ship (holds a lambda)."""

    name = "unpicklable"
    circuit_name = "toy"
    fault_model = "none"
    workload = "toy"

    def __init__(self, n: int = 40) -> None:
        self.classify = lambda p: "even" if p % 2 == 0 else "odd"
        self.n = n

    def enumerate_points(self):
        return list(range(self.n))

    def prepare(self) -> None:
        return None

    def run_batch(self, points):
        return [Injection(point=p, location=f"p{p}", cycle=0,
                          outcome=self.classify(p)) for p in points]


def _rows(report):
    return [(i.location, i.cycle, i.outcome) for i in report.injections]


def _db_rows(db):
    return db.conn.execute(
        "SELECT location, cycle, outcome FROM injections ORDER BY id"
    ).fetchall()


# ----------------------------------------------------------------------
# picklability
# ----------------------------------------------------------------------
class TestPickling:
    def test_circuit_pickle_drops_caches_and_rebuilds(self):
        circuit = load("rand_seq")
        faults, _ = collapse(circuit)
        packed = random_patterns(circuit.inputs, 8, seed=3)
        state = random_patterns(circuit.flops, 8, seed=4)
        reference = fault_simulate(circuit, faults, packed, 8, state=state)
        assert circuit._topo_cache and circuit._cone_cache  # caches warm

        clone = pickle.loads(pickle.dumps(circuit))
        assert clone._topo_cache is None
        assert clone._fanout_cache is None
        assert clone._topo_index_cache is None
        assert clone._cone_cache == {}
        # lazily rebuilt caches reproduce identical behavior
        assert [g.output for g in clone.topo_order()] \
            == [g.output for g in circuit.topo_order()]
        assert simulate(clone, packed, 8, state) \
            == simulate(circuit, packed, 8, state)
        replay = fault_simulate(clone, faults, packed, 8, state=state)
        assert replay.detected == reference.detected
        assert replay.undetected == reference.undetected

    @pytest.mark.parametrize("kind", sorted(BACKEND_FACTORIES))
    def test_backend_roundtrip_preserves_batches(self, kind):
        original = BACKEND_FACTORIES[kind]()
        clone = pickle.loads(pickle.dumps(original))
        original.prepare()
        clone.prepare()
        points = list(original.enumerate_points())[:8]
        assert [(i.location, i.cycle, i.outcome)
                for i in original.run_batch(points)] \
            == [(i.location, i.cycle, i.outcome)
                for i in clone.run_batch(points)]

    def test_prepare_is_idempotent(self):
        backend = _seu_backend()
        backend.prepare()
        golden = backend._golden
        backend.prepare()
        assert backend._golden is golden  # not recomputed

    def test_prepared_state_not_shipped(self):
        backend = _seu_backend()
        backend.prepare()
        clone = pickle.loads(pickle.dumps(backend))
        assert clone._golden is None  # workers rebuild it via prepare()
        clone.prepare()
        points = list(backend.enumerate_points())[:6]
        assert clone.run_batch(points) == backend.run_batch(points)


# ----------------------------------------------------------------------
# executor parity: identical campaigns on serial / thread / process
# ----------------------------------------------------------------------
class TestExecutorParity:
    @pytest.mark.parametrize("kind", sorted(BACKEND_FACTORIES))
    def test_all_executors_identical_outcomes_and_db_rows(self, kind):
        results = {}
        for executor in EXECUTORS:
            db = CampaignDb()
            report = run_campaign(
                BACKEND_FACTORIES[kind](),
                EngineConfig(batch_size=8, workers=2, executor=executor,
                             seed=13),
                db=db)
            assert report.executor == executor
            results[executor] = (report.outcomes, _rows(report), _db_rows(db))
            db.close()
        assert results["serial"] == results["thread"] == results["process"]

    def test_process_matches_serial_with_sampling_and_shuffle(self):
        rows = []
        for executor in ("serial", "process"):
            report = run_campaign(
                _seu_backend(),
                EngineConfig(batch_size=8, workers=2, executor=executor,
                             sample=48, seed=21))
            rows.append(_rows(report))
        assert rows[0] == rows[1]


# ----------------------------------------------------------------------
# the auto probe
# ----------------------------------------------------------------------
class TestAutoProbe:
    def test_single_cpu_resolves_serial(self, monkeypatch):
        monkeypatch.setattr(executors, "_usable_cpus", lambda: 1)
        backend = _seu_backend()
        config = EngineConfig(batch_size=8, workers=4)
        chunks = [[0], [1], [2]]
        plan = plan_executor(backend, chunks, config, [1, 2, 3])
        assert plan.name == "serial"
        assert "CPU" in plan.reason

    def test_single_worker_resolves_serial(self):
        plan = plan_executor(_seu_backend(), [[0], [1]],
                             EngineConfig(workers=1), [1, 2])
        assert plan.name == "serial"

    def test_unpicklable_backend_avoids_process(self, monkeypatch):
        monkeypatch.setattr(executors, "_usable_cpus", lambda: 4)
        # zero thresholds so the probe reaches the pickle attempt
        monkeypatch.setattr(executors, "MIN_BATCH_COST_S", 0.0)
        monkeypatch.setattr(executors, "MIN_CAMPAIGN_COST_S", 0.0)
        backend = UnpicklableBackend()
        plan = plan_executor(backend, [[0], [1]],
                             EngineConfig(workers=2), [1, 2])
        # two tiny chunks: nothing left to overlap once one is probed
        assert plan.name == "serial"
        assert "not picklable" in plan.reason
        assert plan.probe_batches is not None  # probe work still handed back

    def test_cheap_gil_bound_batches_fall_back_to_serial(self, monkeypatch):
        # BENCH showed thread_x4 *slower* than serial (0.82x) on
        # pure-Python backends: the auto probe must not pick threads
        # when the 2-thread probe shows the batches hold the GIL
        monkeypatch.setattr(executors, "_usable_cpus", lambda: 4)
        backend = _seu_backend()
        points = list(backend.enumerate_points())
        chunks = [points[i:i + 4] for i in range(0, 24, 4)]
        seeds = [chunk_seed(0, i) for i in range(len(chunks))]
        plan = plan_executor(backend, chunks, EngineConfig(workers=2), seeds)
        assert plan.name == "serial"
        assert "GIL" in plan.reason
        assert len(plan.probe_batches) == 4  # chunk 0 + warm + 2 threaded

    def test_gil_releasing_batches_still_pick_threads(self, monkeypatch):
        import time as _time

        class SleepyBackend:
            """Batches that release the GIL (sleep stands in for I/O)."""

            name = "sleepy"
            circuit_name = "toy"
            fault_model = "none"
            workload = "toy"

            def enumerate_points(self):
                return list(range(24))

            def prepare(self):
                return None

            def run_batch(self, points):
                _time.sleep(0.02)
                return [Injection(point=p, location=f"p{p}", cycle=0,
                                  outcome="ok") for p in points]

        monkeypatch.setattr(executors, "_usable_cpus", lambda: 4)
        monkeypatch.setattr(executors, "MIN_BATCH_COST_S", 1.0)  # force the
        # cheap-batch branch so the GIL probe decides thread vs serial
        plan = plan_executor(SleepyBackend(),
                             [[i] for i in range(8)],
                             EngineConfig(workers=2),
                             [chunk_seed(0, i) for i in range(8)])
        assert plan.name == "thread"
        assert "2-thread probe" in plan.reason
        assert len(plan.probe_batches) == 4

    def test_gil_probe_batches_accounted_exactly_once(self, monkeypatch):
        # the serial fallback must resume after the four probed chunks
        monkeypatch.setattr(executors, "_usable_cpus", lambda: 4)
        serial = run_campaign(_seu_backend(),
                              EngineConfig(batch_size=4, executor="serial"))
        auto = run_campaign(_seu_backend(),
                            EngineConfig(batch_size=4, workers=2,
                                         executor="auto"))
        assert _rows(auto) == _rows(serial)
        assert auto.total == serial.planned

    def test_wide_lane_cheap_batches_still_pick_process(self, monkeypatch):
        # a vector-tier chunk (lane_width > 64) retires up to lane_width
        # points per dispatch, so the conservative per-batch floor must
        # not send large wide-lane campaigns to the serial loop: only
        # batches below the raw dispatch cost bail
        monkeypatch.setattr(executors, "_usable_cpus", lambda: 4)
        # "enough remaining work" at ~1ms batches, without a slow test
        monkeypatch.setattr(executors, "MIN_CAMPAIGN_COST_S", 0.005)
        backend = CheapWideLaneBackend(lane_width=1024)
        points = list(backend.enumerate_points())
        chunks = [points[i:i + 8] for i in range(0, len(points), 8)]
        seeds = [chunk_seed(0, i) for i in range(len(chunks))]
        plan = plan_executor(backend, chunks, EngineConfig(workers=2), seeds)
        assert plan.name == "process"
        assert plan.payload is not None
        # the scalar-width control with the identical cost profile bails
        # at the per-batch floor (its sleepy batches release the GIL, so
        # the fallback probe then picks threads)
        control = CheapWideLaneBackend(lane_width=1)
        plan1 = plan_executor(control, chunks, EngineConfig(workers=2),
                              seeds)
        assert plan1.name in ("thread", "serial")
        assert "below process dispatch overhead" in plan1.reason

    def test_costly_picklable_campaign_resolves_process(self, monkeypatch):
        monkeypatch.setattr(executors, "_usable_cpus", lambda: 4)
        monkeypatch.setattr(executors, "MIN_BATCH_COST_S", 0.0)
        monkeypatch.setattr(executors, "MIN_CAMPAIGN_COST_S", 0.0)
        backend = _seu_backend()
        points = list(backend.enumerate_points())
        chunks = [points[i:i + 8] for i in range(0, 32, 8)]
        seeds = [chunk_seed(0, i) for i in range(len(chunks))]
        plan = plan_executor(backend, chunks, EngineConfig(workers=2), seeds)
        assert plan.name == "process"
        assert plan.payload is not None

    def test_auto_campaign_matches_serial(self, monkeypatch):
        # whatever the probe decides (serial for GIL-bound batches,
        # thread/process otherwise), probed chunks run in the parent and
        # must be accounted exactly once, in order
        monkeypatch.setattr(executors, "_usable_cpus", lambda: 4)
        serial = run_campaign(_seu_backend(),
                              EngineConfig(batch_size=8, executor="serial"))
        auto = run_campaign(_seu_backend(),
                            EngineConfig(batch_size=8, workers=2,
                                         executor="auto"))
        assert auto.executor in ("serial", "thread", "process")
        assert _rows(auto) == _rows(serial)
        assert auto.total == serial.planned

    def test_explicit_process_with_unpicklable_backend_falls_back(
            self, caplog):
        import logging

        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            report = run_campaign(
                UnpicklableBackend(),
                EngineConfig(batch_size=8, workers=2, executor="process"))
        assert report.executor == "thread"
        assert any("falling back" in r.message for r in caplog.records)
        assert report.total == 40
        assert report.outcomes == {"even": 20, "odd": 20}

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            EngineConfig(executor="bogus")


# ----------------------------------------------------------------------
# shared shipping of large pattern payloads (ShippedBlob)
# ----------------------------------------------------------------------
class TestPatternShipping:
    def _backend(self):
        from repro.circuit.library import random_combinational

        circuit = random_combinational(12, 120, seed=6)
        faults, _ = collapse(circuit)
        batches = [(random_patterns(circuit.inputs, 64, seed=b), 64)
                   for b in range(4)]
        return PpsfpBackend(circuit, faults, batches), batches

    def test_small_payloads_ship_inline(self):
        backend, batches = self._backend()
        clone = pickle.loads(pickle.dumps(backend))
        assert backend._batches_blob is None  # under the threshold
        assert clone.batches == batches

    def test_large_payloads_park_in_temp_file(self, monkeypatch):
        import os

        monkeypatch.setattr(executors, "SHIP_BYTES_MIN", 1 << 60)
        inline_backend, _ = self._backend()  # deterministic twin
        inline_size = len(pickle.dumps(inline_backend))
        monkeypatch.setattr(executors, "SHIP_BYTES_MIN", 64)
        backend, batches = self._backend()
        first = pickle.dumps(backend)
        blob = backend._batches_blob
        assert blob is not None and os.path.exists(blob.path)
        # the parked patterns no longer ride in the backend pickle
        assert len(first) <= inline_size - blob.nbytes + 256
        # repeated pickles reuse the same parked file, no re-pickling
        assert backend._batches_blob is blob
        second = pickle.dumps(backend)
        assert len(second) == len(first)

        clone = pickle.loads(first)
        assert clone.batches is None  # lazy until prepare()
        clone.prepare()
        assert clone.batches == batches
        backend.prepare()
        points = backend.faults[:10]
        assert [(i.location, i.outcome, i.detail)
                for i in clone.run_batch(points)] \
            == [(i.location, i.outcome, i.detail)
                for i in backend.run_batch(points)]
        # the parent still owns the in-memory batches and the file
        assert backend.batches == batches
        blob.close()
        assert not os.path.exists(blob.path)
        blob.close()  # idempotent

    def test_replaced_batches_reship_fresh_patterns(self, monkeypatch):
        monkeypatch.setattr(executors, "SHIP_BYTES_MIN", 64)
        backend, batches = self._backend()
        pickle.dumps(backend)
        first_blob = backend._batches_blob
        extra = random_patterns(backend.circuit.inputs, 64, seed=99)
        backend.batches = batches + [(extra, 64)]  # new pattern set
        clone = pickle.loads(pickle.dumps(backend))
        assert backend._batches_blob is not first_blob  # stale blob dropped
        clone.prepare()
        assert clone.batches == backend.batches  # workers see the new set

    def test_blob_worker_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(executors, "SHIP_BYTES_MIN", 1)
        blobs = [executors.ShippedBlob(list(range(100 + i)))
                 for i in range(executors._BLOB_CACHE_MAX + 3)]
        clones = [pickle.loads(pickle.dumps(b)) for b in blobs]
        for blob, clone in zip(blobs, clones):
            assert clone.load() == blob.load()
        assert len(executors._blob_cache) <= executors._BLOB_CACHE_MAX
        for blob in blobs:
            blob.close()

    def test_campaign_identity_with_shipping_forced(self, monkeypatch):
        monkeypatch.setattr(executors, "SHIP_BYTES_MIN", 64)
        results = {}
        for executor in ("serial", "process"):
            backend, _ = self._backend()
            report = run_campaign(
                backend,
                EngineConfig(batch_size=32, workers=2, executor=executor))
            assert report.executor == executor
            results[executor] = _rows(report)
        assert results["serial"] == results["process"]


# ----------------------------------------------------------------------
# early stop: speculative chunks are cancelled, drained, never recorded
# ----------------------------------------------------------------------
class TestEarlyStopDrain:
    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_no_speculative_injections_recorded(self, executor):
        db = CampaignDb()
        accounted = []
        report = run_campaign(
            _seu_backend(),
            EngineConfig(batch_size=4, workers=2, executor=executor,
                         shuffle=True, seed=5,
                         early_stop=EarlyStop(outcome="failure", margin=0.12,
                                              min_injections=12)),
            db=db,
            on_chunk=lambda r: accounted.append(r.total))
        assert report.converged
        assert report.total < report.planned
        # every accounted chunk is in the DB; nothing speculative leaked
        assert len(_db_rows(db)) == report.total
        assert accounted == sorted(accounted)
        assert accounted[-1] == report.total
        db.close()

    def test_convergence_point_identical_across_executors(self):
        totals = set()
        for executor in EXECUTORS:
            report = run_campaign(
                _seu_backend(),
                EngineConfig(batch_size=4, workers=3, executor=executor,
                             shuffle=True, seed=5,
                             early_stop=EarlyStop(outcome="failure",
                                                  margin=0.12,
                                                  min_injections=12)))
            totals.add((report.converged, report.total))
        assert len(totals) == 1


# ----------------------------------------------------------------------
# per-chunk RNG: one stream per chunk, same stream everywhere
# ----------------------------------------------------------------------
class TestChunkRng:
    def test_chunk_seed_is_deterministic_and_spread(self):
        seeds = [chunk_seed(42, i) for i in range(64)]
        assert seeds == [chunk_seed(42, i) for i in range(64)]
        assert len(set(seeds)) == 64
        assert set(seeds).isdisjoint({chunk_seed(43, i) for i in range(64)})

    @pytest.mark.parametrize("executor,workers", [
        ("serial", 1), ("thread", 3), ("process", 2)])
    def test_seeded_backend_identical_everywhere(self, executor, workers):
        reference = run_campaign(
            NoisyBackend(), EngineConfig(batch_size=16, executor="serial",
                                         seed=9))
        report = run_campaign(
            NoisyBackend(), EngineConfig(batch_size=16, workers=workers,
                                         executor=executor, seed=9))
        assert _rows(report) == _rows(reference)
        assert 0 < report.count("hit") < report.total  # both outcomes occur

    def test_batch_size_changes_streams_but_not_determinism(self):
        a = run_campaign(NoisyBackend(),
                         EngineConfig(batch_size=8, executor="serial", seed=9))
        b = run_campaign(NoisyBackend(),
                         EngineConfig(batch_size=8, workers=2,
                                      executor="process", seed=9))
        assert _rows(a) == _rows(b)
