"""Tests for ECC, redundancy, monitors and the cross-layer fault manager."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftol import (
    Action,
    AgingMonitor,
    DecodeStatus,
    EccMemory,
    FaultEvent,
    FaultKind,
    Hamming,
    Lockstep,
    MeetInTheMiddle,
    PulseStretchingDetector,
    ScrubbingSchedule,
    SramSeuMonitor,
    TemperatureSensor,
    Tmr,
    make_transient_storm,
    parity,
    temporal_redundancy,
    vote_majority,
)


class TestHamming:
    @pytest.mark.parametrize("data_bits", [4, 8, 16])
    def test_clean_roundtrip(self, data_bits):
        code = Hamming(data_bits, extended=True)
        for data in (0, 1, (1 << data_bits) - 1, 0x5 & ((1 << data_bits) - 1)):
            result = code.decode(code.encode(data))
            assert result.status is DecodeStatus.CLEAN
            assert result.data == data

    def test_all_single_errors_corrected(self):
        code = Hamming(8, extended=True)
        word = code.encode(0xA7)
        for bit in range(code.code_bits):
            result = code.decode(word ^ (1 << bit))
            assert result.status is DecodeStatus.CORRECTED
            assert result.data == 0xA7

    def test_all_double_errors_detected(self):
        code = Hamming(8, extended=True)
        word = code.encode(0x3C)
        for b1, b2 in itertools.combinations(range(code.code_bits), 2):
            result = code.decode(word ^ (1 << b1) ^ (1 << b2))
            assert result.status is DecodeStatus.DETECTED

    def test_non_extended_corrects_but_cannot_flag_doubles(self):
        code = Hamming(4, extended=False)
        word = code.encode(0xB)
        for bit in range(code.code_bits):
            assert code.decode(word ^ (1 << bit)).data == 0xB

    def test_overhead_decreases_with_width(self):
        assert Hamming(4).overhead() > Hamming(16).overhead()

    def test_encode_range_checked(self):
        with pytest.raises(ValueError):
            Hamming(4).encode(16)

    def test_parity_helper(self):
        assert parity(0b1011, 4) == 1
        assert parity(0b1001, 4) == 0


class TestEccMemory:
    def test_seu_corrected_and_counted(self):
        mem = EccMemory(8, 8)
        mem.write(2, 0x5A)
        mem.inject_bitflips(2, [4])
        result = mem.read(2)
        assert result.data == 0x5A
        assert mem.corrected_count == 1

    def test_double_flip_detected(self):
        mem = EccMemory(8, 8)
        mem.write(0, 0xFF)
        mem.inject_bitflips(0, [0, 5])
        result = mem.read(0)
        assert result.status is DecodeStatus.DETECTED
        assert mem.detected_count == 1

    def test_scrub_repairs(self):
        mem = EccMemory(8, 8)
        mem.write(1, 0x42)
        mem.inject_bitflips(1, [3])
        assert mem.scrub(1)
        assert mem.read(1).status is DecodeStatus.CLEAN

    def test_address_bounds(self):
        mem = EccMemory(4, 8)
        with pytest.raises(IndexError):
            mem.read(4)
        with pytest.raises(ValueError):
            mem.inject_bitflips(0, [999])


class TestRedundancy:
    def test_tmr_masks_single_bad_replica(self):
        t = Tmr([lambda: 7, lambda: 7, lambda: 9])
        assert t() == 7
        assert t.stats.voted_out == 1

    def test_tmr_fails_without_majority(self):
        t = Tmr([lambda: 1, lambda: 2, lambda: 3])
        with pytest.raises(ValueError):
            t()
        assert t.stats.failures == 1

    def test_tmr_requires_three(self):
        with pytest.raises(ValueError):
            Tmr([lambda: 1, lambda: 2])

    def test_vote_majority(self):
        assert vote_majority([1, 2, 1]) == 1
        with pytest.raises(ValueError):
            vote_majority([1, 2])

    def test_lockstep_detects_with_delay_latency(self):
        main = [0, 1, 99, 3, 4]
        shadow = [0, 1, 2, 3, 4]
        ls = Lockstep(lambda i: main[i], lambda i: shadow[i], delay=2)
        for _ in range(5):
            ls.step()
        assert ls.detected
        assert ls.detection_latency == 2
        assert ls.events[0].step == 4  # compared index 2 at step 4

    def test_lockstep_clean_run_silent(self):
        ls = Lockstep(lambda i: i, lambda i: i, delay=1)
        for _ in range(10):
            ls.step()
        assert not ls.detected
        assert ls.detection_latency is None

    def test_temporal_redundancy(self):
        flaky = iter([1, 1, 2])
        value, consistent = temporal_redundancy(lambda: 5, runs=3)
        assert value == 5 and consistent
        value, consistent = temporal_redundancy(lambda: next(flaky), runs=3)
        assert not consistent
        with pytest.raises(ValueError):
            temporal_redundancy(lambda: 1, runs=1)

    def test_scrubbing_quadratic_in_period(self):
        slow = ScrubbingSchedule(1_000_000, 1e-9)
        fast = ScrubbingSchedule(10_000, 1e-9)
        ratio = slow.double_error_probability() / fast.double_error_probability()
        assert ratio == pytest.approx((100) ** 2)


class TestMonitors:
    def test_seu_monitor_estimates_flux(self):
        monitor = SramSeuMonitor(words=128, seed=2)
        true_flux = 2e-5
        landed = monitor.expose(true_flux, 5_000)
        reading = monitor.sample(5_000)
        # double hits on one bit cancel, so counted <= landed (and close)
        assert reading.events <= landed
        assert reading.events >= landed * 0.7
        if landed > 5:
            assert reading.value == pytest.approx(true_flux, rel=0.8)

    def test_seu_monitor_pattern_restored(self):
        monitor = SramSeuMonitor(words=16, seed=3)
        monitor.expose(1e-3, 1000)
        monitor.sample(1000)
        second = monitor.sample(2000)
        assert second.events == 0  # pattern was rewritten

    def test_pulse_detector_sensitivity_scales_with_stages(self):
        short = PulseStretchingDetector(stages=4)
        long = PulseStretchingDetector(stages=18)
        assert long.min_detectable_width() < short.min_detectable_width()

    def test_pulse_detector_counts(self):
        det = PulseStretchingDetector(stages=16)
        assert det.strike(0.5)
        assert not det.strike(0.05)
        reading = det.sample(100)
        assert reading.events == 1

    def test_aging_monitor_tracks_vth(self):
        mon = AgingMonitor()
        mon.observe(0.02)
        assert 0 < mon.degradation() < 0.2

    def test_temperature_first_order(self):
        sensor = TemperatureSensor()
        hot = sensor.update(activity=1.0, cycles=100_000)
        assert hot > 50
        cooled = sensor.update(activity=0.0, cycles=1_000_000)
        assert cooled < hot


class TestMeetInTheMiddle:
    def test_local_latency_much_lower_than_global(self):
        units = ["alu", "lsu", "fpu"]
        system = MeetInTheMiddle(units, local_latency=2, poll_period=500)
        for event in make_transient_storm(units, 30, 20_000,
                                          permanent_unit="fpu", seed=1):
            system.inject(event)
        latency = system.latency_stats()
        assert latency["local"] <= 4
        assert latency["global"] > 10 * latency["local"]

    def test_permanent_unit_retired(self):
        units = ["alu", "lsu", "fpu"]
        system = MeetInTheMiddle(units, poll_period=300)
        for event in make_transient_storm(units, 20, 20_000,
                                          permanent_unit="fpu", seed=2):
            system.inject(event)
        assert "fpu" in system.manager.state.retired_units

    def test_flux_spike_shortens_scrubbing(self):
        from repro.ftol import MonitorReading
        system = MeetInTheMiddle(["alu"])
        before = system.manager.state.scrub_period
        system.feed_monitors(1000, [MonitorReading(1000, "sram_seu", 1e-3, 9)])
        assert system.manager.state.scrub_period < before

    def test_aging_reading_reduces_frequency(self):
        from repro.ftol import MonitorReading
        system = MeetInTheMiddle(["alu"])
        system.feed_monitors(500, [MonitorReading(500, "aging_ro", 0.08)])
        assert system.manager.state.frequency_scale < 1.0

    def test_unknown_unit_unhandled(self):
        system = MeetInTheMiddle(["alu"])
        record = system.inject(FaultEvent(10, "ghost", FaultKind.TRANSIENT))
        assert record.layer == "unhandled"

    def test_isolated_unit_stops_acting(self):
        from repro.ftol import LocalHandler
        handler = LocalHandler("alu")
        handler.isolated = True
        action, _ = handler.handle(FaultEvent(5, "alu", FaultKind.TRANSIENT))
        assert action is Action.NONE


@settings(max_examples=30, deadline=None)
@given(data=st.integers(0, 255), bit=st.integers(0, 12))
def test_hamming_single_flip_roundtrip_property(data, bit):
    """Property: any single flip of any codeword is corrected to the data."""
    code = Hamming(8, extended=True)
    word = code.encode(data)
    result = code.decode(word ^ (1 << (bit % code.code_bits)))
    assert result.data == data
    assert result.status in (DecodeStatus.CORRECTED, DecodeStatus.CLEAN)
