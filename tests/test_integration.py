"""Cross-package integration tests: the holistic-flow wiring the paper
motivates, exercised end to end."""

import random

import pytest

from repro.atpg import generate_tests, random_tpg
from repro.autosoc import APPLICATIONS, AutoSoC, SocConfig, UnitFault
from repro.circuit import load
from repro.core import CampaignDb, Flow, Stage
from repro.faults import collapse
from repro.safety import run_safety_campaign
from repro.security import FaultAttackDetector
from repro.sim import fault_simulate, pack_patterns
from repro.soft_error import ComponentSER, FitBudget, random_workload, run_campaign


class TestDetectorOnSocTraces:
    """The III.F AI detector consuming real AutoSoC program-flow traces:
    train on clean application runs, detect fault-injected runs."""

    @pytest.fixture(scope="class")
    def detector_and_app(self):
        app = APPLICATIONS["cruise_control"]
        clean_traces = []
        for seed in range(24):
            soc = AutoSoC(app.program(), SocConfig.QM)
            result = soc.run(app.max_cycles)
            # benign variation: truncate the tail by a few ops, as a
            # supervisor sampling window would
            cut = len(result.trace) - (seed % 3)
            clean_traces.append(result.trace[:cut])
        detector = FaultAttackDetector(epochs=200, seed=3,
                                       threshold_percentile=99.0)
        detector.fit(clean_traces)
        return detector, app

    def test_clean_runs_pass(self, detector_and_app):
        detector, app = detector_and_app
        result = AutoSoC(app.program(), SocConfig.QM).run(app.max_cycles)
        assert not detector.is_attack(result.trace)

    def test_branch_unit_fault_changes_flow_and_is_detected(self,
                                                            detector_and_app):
        detector, app = detector_and_app
        rng = random.Random(5)
        detections = 0
        attempts = 0
        for _ in range(12):
            soc = AutoSoC(app.program(), SocConfig.QM)
            cycle = rng.randrange(10, 120)
            soc.inject_cpu_fault(UnitFault("branch", "transient", 0,
                                           from_cycle=cycle,
                                           to_cycle=cycle + 4))
            result = soc.run(app.max_cycles)
            golden = AutoSoC(app.program(), SocConfig.QM).run(app.max_cycles)
            if result.trace == golden.trace:
                continue  # fault did not alter control flow
            attempts += 1
            if detector.is_attack(result.trace):
                detections += 1
        assert attempts > 0
        assert detections / attempts > 0.5


class TestCampaignToDatabaseToBudget:
    """SEU campaign → community database → FIT budget, one artifact chain."""

    def test_chain(self):
        circuit = load("rand_seq")
        workload = random_workload(circuit, 12, seed=2)
        campaign = run_campaign(circuit, workload, sample=100, seed=3)

        with CampaignDb() as db:
            cid = db.create_campaign("seu", circuit.name, "seu", "rand12")
            db.record_many(cid, [(i.flop, i.cycle, i.outcome)
                                 for i in campaign.injections])
            summary = db.summary(cid)
            assert summary.total == 100
            avf_from_db = summary.rate("failure")

        assert avf_from_db == pytest.approx(campaign.failure_rate)
        budget = FitBudget("ASIL-B").add(ComponentSER(
            "state", len(circuit.flops) * 64, "28nm",
            functional_derating=avf_from_db))
        assert budget.total_effective_fit > 0


class TestAtpgFeedsSafetyCampaign:
    """Quality artifacts (test patterns) reused as the safety workload."""

    def test_patterns_drive_classification(self):
        circuit = load("alu4")
        faults, _ = collapse(circuit)
        rt = random_tpg(circuit, faults, max_patterns=96, seed=4)
        extra, _unt, _ab = generate_tests(circuit, rt.remaining)
        patterns = rt.patterns + extra
        packed = pack_patterns(patterns)

        mission = [f"y{i}" for i in range(4)]
        result = run_safety_campaign(
            circuit, faults[:80], mission_outputs=mission,
            detection_outputs=["cout"], patterns=packed,
            n_patterns=len(patterns))
        assert result.metrics is not None
        assert len(result.classified) == 80
        assert 0.0 <= result.metrics.spfm <= 1.0


class TestFlowComposesAllLayers:
    def test_three_aspect_flow(self):
        flow = Flow("mini-holistic")
        flow.add_stage(Stage("design", (), ("circuit",),
                             lambda a: {"circuit": load("s27")}, "quality"))

        def quality(art):
            c = art["circuit"]
            faults, _ = collapse(c)
            patterns, untestable, _ab = generate_tests(c, faults)
            packed = pack_patterns(patterns)
            sim = fault_simulate(c, faults, packed, len(patterns),
                                 state=packed)
            return {"coverage": sim.coverage,
                    "untestable": len(untestable)}

        flow.add_stage(Stage("atpg", ("circuit",),
                             ("coverage", "untestable"), quality, "quality"))

        def reliability(art):
            c = art["circuit"]
            campaign = run_campaign(c, random_workload(c, 8, seed=1))
            return {"avf": campaign.failure_rate}

        flow.add_stage(Stage("seu", ("circuit",), ("avf",), reliability,
                             "reliability"))
        report = flow.run()
        assert report.artifacts["coverage"] == 1.0
        assert 0.0 <= report.artifacts["avf"] <= 1.0
        assert [s.name for s in report.stages][0] == "design"


class TestVerilogInterchange:
    """Emit a generated design, re-import it, and reproduce the analysis —
    the 'open formats' requirement of IV.A."""

    def test_same_coverage_after_roundtrip(self):
        from repro.circuit import emit_verilog, parse_verilog
        original = load("mul4")
        reimported = parse_verilog(emit_verilog(original))
        for circuit in (original, reimported):
            faults, _ = collapse(circuit)
            rt = random_tpg(circuit, faults, max_patterns=64, seed=9)
            assert rt.coverage > 0.9
        faults_a, _ = collapse(original)
        faults_b, _ = collapse(reimported)
        assert len(faults_a) == len(faults_b)
