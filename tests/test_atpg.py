"""Tests for PODEM, random TPG, compaction, untestability and CPU SBST."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import CircuitBuilder, load
from repro.circuit.library import random_combinational
from repro.faults import Line, StuckAtFault, all_stuck_at, collapse
from repro.atpg import (
    compact_greedy,
    compact_reverse,
    cpu_fault_universe,
    functionally_untestable_delta,
    generate_tests,
    identify_untestable,
    podem,
    random_tpg,
    run_cpu_sbst,
    unobservable_nets,
)
from repro.sim import exhaustive_patterns, fault_simulate, pack_patterns


def _redundant_circuit():
    """y = a AND (NOT a): constant 0, so y s-a-0 is untestable."""
    bld = CircuitBuilder("red")
    a = bld.input("a")
    na = bld.not_(a)
    bld.output(bld.and_(a, na, name="y"))
    return bld.done()


class TestPodem:
    def test_c17_all_faults_testable(self):
        c17 = load("c17")
        reps, _ = collapse(c17)
        patterns, untestable, aborted = generate_tests(c17, reps)
        assert not untestable and not aborted
        packed = pack_patterns(patterns)
        assert fault_simulate(c17, reps, packed, len(patterns)).coverage == 1.0

    def test_generated_pattern_detects_its_fault(self):
        c17 = load("c17")
        for fault in collapse(c17)[0][:10]:
            result = podem(c17, fault)
            assert result.detected
            packed = pack_patterns([result.pattern])
            sim = fault_simulate(c17, [fault], packed, 1)
            assert fault in sim.detected

    def test_redundant_fault_proved_untestable(self):
        red = _redundant_circuit()
        assert podem(red, StuckAtFault(Line("y"), 0)).status == "untestable"
        assert podem(red, StuckAtFault(Line("y"), 1)).status == "detected"

    def test_sequential_full_scan_view(self):
        s27 = load("s27")
        reps, _ = collapse(s27)
        patterns, untestable, aborted = generate_tests(s27, reps)
        assert not aborted and not untestable
        packed = pack_patterns(patterns)
        sim = fault_simulate(s27, reps, packed, len(patterns),
                             state=packed, full_scan=True)
        assert sim.coverage == 1.0

    def test_constraints_respected(self):
        """Patterns generated under pin constraints must honor them."""
        alu = load("alu4")
        constraints = {"op0": 1, "op1": 0}
        reps, _ = collapse(alu)
        for fault in reps[:20]:
            result = podem(alu, fault, constraints=constraints)
            if result.detected:
                assert result.pattern["op0"] == 1
                assert result.pattern["op1"] == 0


class TestRandomTpgAndCompaction:
    def test_random_tpg_coverage_rises(self):
        c = load("rca8")
        reps, _ = collapse(c)
        result = random_tpg(c, reps, max_patterns=128, seed=0)
        assert result.coverage > 0.95
        xs = [n for n, _ in result.curve]
        assert xs == sorted(xs)

    def test_compaction_preserves_coverage(self):
        c = load("rand200")
        reps, _ = collapse(c)
        rt = random_tpg(c, reps, max_patterns=128, seed=1)
        for compactor in (compact_greedy, compact_reverse):
            small = compactor(c, reps, rt.patterns)
            assert len(small) <= len(rt.patterns)
            packed_small = pack_patterns(small)
            packed_full = pack_patterns(rt.patterns)
            cov_small = fault_simulate(c, reps, packed_small, len(small)).coverage
            cov_full = fault_simulate(c, reps, packed_full,
                                      len(rt.patterns)).coverage
            assert cov_small == pytest.approx(cov_full)

    def test_compact_empty_patterns(self):
        c = load("c17")
        reps, _ = collapse(c)
        assert compact_greedy(c, reps, []) == []
        assert compact_reverse(c, reps, []) == []


class TestUntestable:
    def test_dead_logic_structurally_untestable(self):
        bld = CircuitBuilder("dead")
        a = bld.input("a")
        bld.not_(a, name="dangling")
        bld.output(bld.buf(a, name="y"))
        c = bld.done()
        assert "dangling" in unobservable_nets(c)
        report = identify_untestable(c, all_stuck_at(c))
        dead = [f for f in report.structurally_untestable
                if f.line.net == "dangling"]
        assert len(dead) == 2

    def test_report_consistent_with_exhaustive_sim(self):
        """PODEM's untestable set must equal the exhaustively-undetectable set."""
        c = load("mul4")
        reps, _ = collapse(c)
        report = identify_untestable(c, reps)
        packed, n = exhaustive_patterns(c.inputs)
        sim = fault_simulate(c, reps, packed, n)
        sim_undetectable = set(sim.undetected)
        assert set(report.untestable) == sim_undetectable
        assert not report.aborted

    def test_functional_constraints_create_untestables(self):
        alu = load("alu4")
        reps, _ = collapse(alu)
        delta = functionally_untestable_delta(alu, reps, {"op0": 0, "op1": 0})
        # the AND/OR/XOR paths are unreachable in ADD mode
        assert len(delta) > 20

    def test_effective_coverage_accounts_untestables(self):
        red = _redundant_circuit()
        report = identify_untestable(red, all_stuck_at(red))
        assert report.effective_coverage(len(report.testable)) == 1.0


class TestCpuSbst:
    def test_sbst_detects_most_faults(self):
        report = run_cpu_sbst()
        assert report.coverage > 0.8

    def test_fetch_and_decode_fully_covered(self):
        report = run_cpu_sbst()
        per_unit = report.per_unit()
        assert per_unit["fetch"] == 1.0
        assert per_unit["decode"] == 1.0

    def test_universe_covers_all_units(self):
        units = {f.unit for f in cpu_fault_universe()}
        assert units == {"fetch", "decode", "regfile", "alu", "lsu", "branch"}


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 3_000))
def test_podem_agrees_with_exhaustive(seed):
    """Property: on small random circuits PODEM's verdicts are exact."""
    c = random_combinational(5, 15, 3, seed=seed)
    reps, _ = collapse(c)
    packed, n = exhaustive_patterns(c.inputs)
    sim = fault_simulate(c, reps, packed, n)
    detectable = set(sim.detected)
    for fault in reps:
        result = podem(c, fault)
        assert result.status != "aborted"
        assert result.detected == (fault in detectable), fault.describe()
