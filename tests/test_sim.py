"""Tests for the simulation engines: bit-parallel, 3-valued, sequential,
event-driven, fault simulation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import CircuitBuilder, GateType, load
from repro.circuit.library import random_combinational
from repro.faults import Line, StuckAtFault, all_stuck_at, collapse
from repro.sim import (
    EventSim,
    SequentialSim,
    X,
    eval_gate_3v,
    exhaustive_patterns,
    fault_simulate,
    mask_of,
    output_trace,
    pack_patterns,
    random_patterns,
    sequential_fault_simulate,
    simulate,
    simulate_3v,
    unpack_patterns,
)


class TestBitParallel:
    def test_pack_unpack_roundtrip(self):
        pats = [{"a": 1, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 1}]
        packed = pack_patterns(pats)
        assert unpack_patterns(packed, 3) == pats

    def test_exhaustive_patterns_cover_space(self):
        packed, n = exhaustive_patterns(["x", "y", "z"])
        assert n == 8
        seen = {tuple((packed[k] >> i) & 1 for k in "xyz") for i in range(8)}
        assert len(seen) == 8

    def test_simulation_matches_python_semantics(self):
        bld = CircuitBuilder("mix")
        a, b, c = bld.input("a"), bld.input("b"), bld.input("c")
        bld.output(bld.and_(a, b, name="and_o"))
        bld.output(bld.nor(b, c, name="nor_o"))
        bld.output(bld.xnor(a, c, name="xnor_o"))
        circuit = bld.done()
        packed, n = exhaustive_patterns(circuit.inputs)
        vals = simulate(circuit, packed, n)
        for i in range(n):
            av = (packed["a"] >> i) & 1
            bv = (packed["b"] >> i) & 1
            cv = (packed["c"] >> i) & 1
            assert (vals["and_o"] >> i) & 1 == (av & bv)
            assert (vals["nor_o"] >> i) & 1 == (1 - (bv | cv))
            assert (vals["xnor_o"] >> i) & 1 == (1 - (av ^ cv))

    def test_random_patterns_deterministic(self):
        assert random_patterns(["a", "b"], 64, seed=9) == \
            random_patterns(["a", "b"], 64, seed=9)

    def test_mask_of(self):
        assert mask_of(1) == 1
        assert mask_of(64) == (1 << 64) - 1


class TestThreeValued:
    def test_controlling_value_dominates_x(self):
        bld = CircuitBuilder("t")
        a, b = bld.input("a"), bld.input("b")
        bld.output(bld.and_(a, b, name="y"))
        bld.output(bld.or_(a, b, name="z"))
        c = bld.done()
        vals = simulate_3v(c, {"a": 0})
        assert vals["y"] == 0          # AND with a 0 input
        assert vals["z"] is X          # OR needs the other input
        vals = simulate_3v(c, {"a": 1})
        assert vals["y"] is X
        assert vals["z"] == 1

    def test_xor_with_x_is_x(self):
        bld = CircuitBuilder("t")
        a, b = bld.input("a"), bld.input("b")
        bld.output(bld.xor(a, b, name="y"))
        c = bld.done()
        assert simulate_3v(c, {"a": 1})["y"] is X
        assert simulate_3v(c, {"a": 1, "b": 1})["y"] == 0

    def test_3v_agrees_with_binary_when_fully_assigned(self):
        c = load("c17")
        rng = random.Random(4)
        for _ in range(10):
            assign = {pi: rng.randint(0, 1) for pi in c.inputs}
            v3 = simulate_3v(c, assign)
            v2 = simulate(c, pack_patterns([assign]), 1)
            for net in c.nets:
                assert v3[net] == (v2[net] & 1)


class TestSequentialSim:
    def test_counter_counts(self):
        sim = SequentialSim(load("cnt8"))
        for _ in range(10):
            sim.step({"en": 1})
        # outputs reflect pre-edge state; internal state is the count
        count = sum((sim.state[f"q{i}"] & 1) << i for i in range(8))
        assert count == 10

    def test_counter_hold(self):
        sim = SequentialSim(load("cnt8"))
        sim.step({"en": 1})
        sim.step({"en": 0})
        count = sum((sim.state[f"q{i}"] & 1) << i for i in range(8))
        assert count == 1

    def test_lfsr_full_period(self):
        sim = SequentialSim(load("lfsr8"))
        seen = set()
        for _ in range(255):
            state = tuple(sim.state[f"q{i}"] & 1 for i in range(8))
            seen.add(state)
            sim.step({})
        assert len(seen) == 255  # maximal-length sequence, zero excluded

    def test_shift_register_delay(self):
        c = load("sr16")
        stimuli = [{"si": 1}] + [{"si": 0}] * 20
        trace = output_trace(c, stimuli)
        arrivals = [i for i, out in enumerate(trace) if out["so"] & 1]
        assert arrivals and arrivals[0] == 16

    def test_flip_state_injects(self):
        sim = SequentialSim(load("cnt8"))
        sim.step({"en": 1})
        sim.flip_state("q7")
        count = sum((sim.state[f"q{i}"] & 1) << i for i in range(8))
        assert count == 1 + 128

    def test_parallel_universes_independent(self):
        sim = SequentialSim(load("cnt8"), n_patterns=2)
        sim.flip_state("q0", pattern_mask=0b10)  # corrupt universe 1 only
        sim.step({"en": mask_of(2)})
        assert (sim.state["q1"] & 1) != ((sim.state["q1"] >> 1) & 1)


class TestFaultSim:
    def test_c17_exhaustive_full_coverage(self):
        c = load("c17")
        packed, n = exhaustive_patterns(c.inputs)
        reps, _ = collapse(c)
        result = fault_simulate(c, reps, packed, n)
        assert result.coverage == 1.0

    def test_detection_masks_are_sound(self):
        """Every claimed detecting pattern must actually detect the fault
        when simulated alone."""
        c = load("c17")
        packed, n = exhaustive_patterns(c.inputs)
        reps, _ = collapse(c)
        result = fault_simulate(c, reps, packed, n)
        singles = unpack_patterns(packed, n)
        for fault, det in list(result.detected.items())[:8]:
            idx = result.detecting_patterns(fault)[0]
            single = pack_patterns([singles[idx]])
            again = fault_simulate(c, [fault], single, 1)
            assert fault in again.detected

    def test_equivalent_faults_same_detection(self):
        """Faults collapsed into a class must have identical detection sets."""
        c = load("c17")
        packed, n = exhaustive_patterns(c.inputs)
        _reps, classes = collapse(c)
        for rep, members in classes.items():
            if len(members) < 2:
                continue
            results = fault_simulate(c, members, packed, n)
            masks = {results.detected.get(m, 0) for m in members}
            assert len(masks) == 1, f"class of {rep.describe()} diverges"

    def test_undetectable_without_observation(self):
        bld = CircuitBuilder("dead")
        a = bld.input("a")
        bld.not_(a, name="dangling")
        bld.output(bld.buf(a, name="y"))
        c = bld.done()
        fault = StuckAtFault(Line("dangling"), 0)
        packed, n = exhaustive_patterns(c.inputs)
        result = fault_simulate(c, [fault], packed, n)
        assert fault in set(result.undetected)

    def test_sequential_fault_sim_detects(self):
        c = load("cnt8")
        fault = StuckAtFault(Line("c0"), 0)  # counter LSB output stuck
        stimuli = [{"en": 1}] * 4
        result = sequential_fault_simulate(c, [fault], stimuli)
        assert fault in result.detected

    def test_full_scan_flag_changes_observability(self):
        c = load("s27")
        reps, _ = collapse(c)
        packed = random_patterns(c.inputs + list(c.flops), 32, seed=3)
        state = {q: packed[q] for q in c.flops}
        with_scan = fault_simulate(c, reps, packed, 32, state=state,
                                   full_scan=True)
        without = fault_simulate(c, reps, packed, 32, state=state,
                                 full_scan=False)
        assert with_scan.coverage >= without.coverage


class TestEventSim:
    def test_wide_pulse_reaches_output(self):
        c17 = load("c17")
        sim = EventSim(c17, delays=1.0)
        pattern = {"N1": 1, "N2": 1, "N3": 1, "N6": 1, "N7": 1}
        outcome = sim.inject_set(pattern, "N11", width=3.0)
        assert outcome.reached_outputs

    def test_narrow_pulse_filtered_by_inertia(self):
        c17 = load("c17")
        sim = EventSim(c17, delays=1.0, inertial=2.0)
        pattern = {"N1": 1, "N2": 1, "N3": 1, "N6": 1, "N7": 1}
        outcome = sim.inject_set(pattern, "N11", width=0.5)
        assert not outcome.reached_outputs

    def test_logical_masking_blocks_pulse(self):
        bld = CircuitBuilder("m")
        a, b = bld.input("a"), bld.input("b")
        mid = bld.buf(a, name="mid")
        bld.output(bld.and_(mid, b, name="y"))
        c = bld.done()
        sim = EventSim(c, delays=1.0)
        blocked = sim.inject_set({"a": 1, "b": 0}, "mid", width=2.0)
        assert "y" not in blocked.reached_outputs
        passed = sim.inject_set({"a": 1, "b": 1}, "mid", width=2.0)
        assert "y" in passed.reached_outputs

    def test_flop_capture_window(self):
        bld = CircuitBuilder("f")
        a = bld.input("a")
        mid = bld.buf(a, name="mid")
        bld.circuit.add_flop("q", mid)
        bld.output(bld.buf("q", name="y"))
        c = bld.done()
        sim = EventSim(c, delays=1.0)
        # capture right when the pulse is live at the flop D
        hit = sim.inject_set({"a": 0}, "mid", width=2.0, capture_time=1.5)
        assert "q" in hit.captured_flops
        # capture long after the pulse has passed
        miss = sim.inject_set({"a": 0}, "mid", width=2.0, capture_time=50.0)
        assert "q" not in miss.captured_flops

    def test_waveform_pulse_widths(self):
        from repro.sim import Waveform
        w = Waveform(0, [(1.0, 1), (3.0, 0), (7.0, 1), (7.5, 0)])
        assert w.pulse_widths() == [2.0, 0.5]
        assert w.value_at(2.0) == 1
        assert w.value_at(5.0) == 0


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5_000))
def test_ppsfp_agrees_with_serial(seed):
    """Property: bit-parallel fault sim matches per-pattern simulation."""
    c = random_combinational(6, 25, 3, seed=seed)
    rng = random.Random(seed)
    faults = all_stuck_at(c)
    sample = rng.sample(faults, min(6, len(faults)))
    pats = [{pi: rng.randint(0, 1) for pi in c.inputs} for _ in range(8)]
    packed = pack_patterns(pats)
    batch = fault_simulate(c, sample, packed, 8)
    for i, pat in enumerate(pats):
        single = fault_simulate(c, sample, pack_patterns([pat]), 1)
        for fault in sample:
            batch_bit = bool((batch.detected.get(fault, 0) >> i) & 1)
            single_bit = fault in single.detected
            assert batch_bit == single_bit
