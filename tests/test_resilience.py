"""Fault-tolerant campaign tests.

Covers: crash-consistent chunk checkpointing in CampaignDb (WAL, busy
timeout, idempotent chunk records, schema migration), kill-and-resume
identity (in-process aborts across executors × lane widths × early
stop, plus a real SIGKILL'd subprocess), chunk retry with backoff and
quarantine driven by ChaosBackend, the process → thread → serial
recovery ladder, chunk timeouts, and the executor drain path's
suppressed-error aggregation.
"""

import logging
import os
import signal
import sqlite3
import subprocess
import sys
import tempfile
import textwrap
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import load
from repro.core import CampaignDb
from repro.engine import (
    ChaosBackend,
    ChaosError,
    ChaosFault,
    EarlyStop,
    EngineConfig,
    Injection,
    SeuBackend,
    resume_campaign,
    run_campaign,
)
from repro.engine import executors
from repro.soft_error import random_workload

N_CYCLES = 8  # 12 flops x 8 cycles = 96 points


def _backend(lane_width: int = 1) -> SeuBackend:
    circuit = load("rand_seq")
    return SeuBackend(circuit, random_workload(circuit, N_CYCLES, seed=7),
                      lane_width=lane_width)


def _rows(report):
    return [inj.row() for inj in report.injections]


def _signature(report):
    """Everything resume identity promises: outcomes, counts, interval,
    early-stop decision."""
    return (_rows(report), report.outcomes, report.total, report.converged,
            report.confidence_interval("failure"))


class AbortCampaign(Exception):
    """Simulated crash raised from the accounting path."""


def _abort_after(n_chunks: int):
    """An on_chunk hook that records the campaign id, then kills the
    campaign after ``n_chunks`` accounted chunks."""
    seen = {"n": 0, "campaign_id": None}

    def hook(report):
        seen["campaign_id"] = report.campaign_id
        seen["n"] += 1
        if seen["n"] >= n_chunks:
            raise AbortCampaign(f"aborted after {n_chunks} chunks")

    return hook, seen


# ----------------------------------------------------------------------
# CampaignDb: crash-consistent chunk checkpointing
# ----------------------------------------------------------------------
class TestCampaignDbCheckpointing:
    def test_wal_and_busy_timeout_on_file_databases(self, tmp_path):
        db = CampaignDb(tmp_path / "c.sqlite")
        assert db.conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert db.conn.execute("PRAGMA busy_timeout").fetchone()[0] == 5000
        db.close()

    def test_record_chunk_is_idempotent(self):
        db = CampaignDb()
        cid = db.create_campaign("c", "circ", "seu", "w")
        rows = [("f1", 0, "masked"), ("f2", 1, "failure")]
        assert db.record_chunk(cid, 0, rows, seed=7) is True
        # replaying the same chunk (crash between commit and checkpoint,
        # then resume) must not double-count
        assert db.record_chunk(cid, 0, rows, seed=7) is False
        assert db.summary(cid).total == 2
        assert db.chunk_records(cid)[0].n_points == 2
        assert db.chunk_rows(cid) == {0: rows}

    def test_record_chunk_upgrades_quarantined_to_done(self):
        db = CampaignDb()
        cid = db.create_campaign("c", "circ", "seu", "w")
        assert db.record_chunk(cid, 3, [], status="failed", attempts=4,
                               error="ChaosError: boom") is True
        assert db.chunk_records(cid)[3].status == "failed"
        rows = [("f1", 0, "masked")]
        assert db.record_chunk(cid, 3, rows, attempts=1) is True
        record = db.chunk_records(cid)[3]
        assert record.status == "done" and record.error is None
        assert db.chunk_rows(cid) == {3: rows}
        # but done never downgrades back to failed
        assert db.record_chunk(cid, 3, [], status="failed") is False
        assert db.chunk_records(cid)[3].status == "done"

    def test_chunk_seed_roundtrips_past_signed_64bit(self):
        db = CampaignDb()
        cid = db.create_campaign("c", "circ", "seu", "w")
        seed = (1 << 64) - 3  # unsigned 64-bit, overflows SQLite INTEGER
        db.record_chunk(cid, 0, [("f", 0, "masked")], seed=seed)
        assert db.chunk_records(cid)[0].seed == seed

    def test_schema_migration_from_pre_checkpoint_database(self, tmp_path):
        path = tmp_path / "old.sqlite"
        conn = sqlite3.connect(path)
        conn.executescript("""
            CREATE TABLE campaigns (
                id INTEGER PRIMARY KEY, name TEXT NOT NULL,
                circuit TEXT NOT NULL, fault_model TEXT NOT NULL,
                workload TEXT NOT NULL, params TEXT NOT NULL DEFAULT '{}');
            CREATE TABLE injections (
                id INTEGER PRIMARY KEY,
                campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
                location TEXT NOT NULL, cycle INTEGER NOT NULL DEFAULT 0,
                outcome TEXT NOT NULL);
            INSERT INTO campaigns (name, circuit, fault_model, workload)
                VALUES ('legacy', 'c17', 'stuck-at', 'w');
            INSERT INTO injections (campaign_id, location, cycle, outcome)
                VALUES (1, 'f1', 0, 'failure');
        """)
        conn.commit()
        conn.close()
        db = CampaignDb(path)
        # old rows still readable, new chunk machinery available
        assert db.summary(1).total == 1
        assert db.chunk_records(1) == {}
        db.record_chunk(1, 0, [("f2", 1, "masked")])
        assert db.summary(1).total == 2
        db.close()

    def test_campaign_params_stores_fingerprint(self):
        db = CampaignDb()
        report = run_campaign(
            _backend(), EngineConfig(batch_size=16, executor="serial"), db=db)
        params = db.campaign_params(report.campaign_id)
        assert params["fingerprint"]
        assert params["chunk_size"] == 16
        with pytest.raises(KeyError):
            db.campaign_params(9999)

    def test_checkpoints_cover_every_chunk(self):
        db = CampaignDb()
        report = run_campaign(
            _backend(),
            EngineConfig(batch_size=16, executor="serial", commit_every=3),
            db=db)
        records = db.chunk_records(report.campaign_id)
        chunk_rows = db.chunk_rows(report.campaign_id)
        assert sorted(records) == list(range(96 // 16))
        assert all(r.status == "done" for r in records.values())
        flattened = [row for i in sorted(chunk_rows) for row in chunk_rows[i]]
        assert flattened == _rows(report)


# ----------------------------------------------------------------------
# resume: byte-identical reports
# ----------------------------------------------------------------------
class TestResume:
    def test_resume_requires_db(self):
        with pytest.raises(ValueError, match="resume requires"):
            run_campaign(_backend(), EngineConfig(executor="serial"),
                         resume=1)

    def test_resume_rejects_mismatched_config(self):
        db = CampaignDb()
        config = EngineConfig(batch_size=16, executor="serial")
        report = run_campaign(_backend(), config, db=db)
        other = EngineConfig(batch_size=16, executor="serial", seed=99)
        with pytest.raises(ValueError, match="fingerprint"):
            run_campaign(_backend(), other, db=db,
                         resume=report.campaign_id)
        # different workers / executor / retry policy is legitimate
        relaxed = EngineConfig(batch_size=16, executor="thread", workers=2,
                               max_chunk_retries=5)
        resumed = resume_campaign(_backend(), report.campaign_id, relaxed,
                                  db=db)
        assert _signature(resumed) == _signature(report)

    def test_aborted_campaign_resumes_byte_identical(self):
        config = EngineConfig(batch_size=8, executor="serial",
                              commit_every=1, shuffle=True,
                              early_stop=EarlyStop(margin=0.12,
                                                   min_injections=24))
        reference = run_campaign(_backend(), config, db=CampaignDb())
        db = CampaignDb()
        hook, seen = _abort_after(3)
        with pytest.raises(AbortCampaign):
            run_campaign(_backend(), config, db=db, on_chunk=hook)
        resumed = resume_campaign(_backend(), seen["campaign_id"], config,
                                  db=db)
        assert _signature(resumed) == _signature(reference)
        assert resumed.resumed_chunks == 3
        assert resumed.describe().endswith("3 chunks resumed")
        # the database converges to exactly the uninterrupted row set
        assert db.summary(seen["campaign_id"]).total == reference.total

    def test_commit_batching_loses_only_uncommitted_chunks(self):
        # commit_every=4: aborting after 6 chunks leaves 4 committed
        config = EngineConfig(batch_size=8, executor="serial",
                              commit_every=4)
        reference = run_campaign(_backend(), config)
        db = CampaignDb()
        hook, seen = _abort_after(6)
        with pytest.raises(AbortCampaign):
            run_campaign(_backend(), config, db=db, on_chunk=hook)
        assert sorted(db.chunk_records(seen["campaign_id"])) == [0, 1, 2, 3]
        resumed = resume_campaign(_backend(), seen["campaign_id"], config,
                                  db=db)
        assert resumed.resumed_chunks == 4
        assert _signature(resumed) == _signature(reference)

    def test_resume_of_complete_campaign_replays_everything(self):
        config = EngineConfig(batch_size=16, executor="serial",
                              commit_every=1)
        db = CampaignDb()
        report = run_campaign(_backend(), config, db=db)
        resumed = resume_campaign(_backend(), report.campaign_id, config,
                                  db=db)
        assert _signature(resumed) == _signature(report)
        assert resumed.resumed_chunks == 96 // 16
        assert resumed.executor == "serial"
        # no rows were double-recorded by the replay
        assert db.summary(report.campaign_id).total == report.total

    @settings(max_examples=12, deadline=None)
    @given(
        kill_after=st.integers(min_value=1, max_value=6),
        executor=st.sampled_from(["serial", "thread", "process"]),
        lane_width=st.sampled_from([1, 64, 256]),
        early_stop=st.booleans(),
    )
    def test_kill_and_resume_identity(self, kill_after, executor, lane_width,
                                      early_stop):
        """SIGKILL-equivalent abort after chunk k + resume == one run,
        across executors x lane widths x early stop."""
        stop = (EarlyStop(margin=0.12, min_injections=24)
                if early_stop else None)
        config = EngineConfig(batch_size=8, executor=executor, workers=2,
                              commit_every=1, shuffle=True, early_stop=stop)
        reference = run_campaign(_backend(lane_width), config)
        db = CampaignDb()
        hook, seen = _abort_after(kill_after)
        try:
            run_campaign(_backend(lane_width), config, db=db, on_chunk=hook)
        except AbortCampaign:
            pass  # converged-early campaigns may finish under the hook
        resumed = resume_campaign(_backend(lane_width), seen["campaign_id"],
                                  config, db=db)
        assert _signature(resumed) == _signature(reference)
        assert db.summary(seen["campaign_id"]).total == reference.total

    def test_sigkilled_subprocess_resumes_byte_identical(self, tmp_path):
        """A real SIGKILL mid-campaign: WAL-committed chunks survive the
        dead process and the resumed report matches an uninterrupted run."""
        db_path = tmp_path / "killed.sqlite"
        script = textwrap.dedent(f"""
            import os, signal
            from repro.circuit import load
            from repro.core import CampaignDb
            from repro.engine import EngineConfig, SeuBackend, run_campaign
            from repro.soft_error import random_workload

            circuit = load("rand_seq")
            backend = SeuBackend(circuit,
                                 random_workload(circuit, {N_CYCLES}, seed=7),
                                 lane_width=1)
            config = EngineConfig(batch_size=8, executor="serial",
                                  commit_every=1)
            seen = {{"n": 0}}
            def hook(report):
                seen["n"] += 1
                if seen["n"] >= 4:
                    os.kill(os.getpid(), signal.SIGKILL)
            run_campaign(backend, config, db=CampaignDb({str(db_path)!r}),
                         on_chunk=hook)
        """)
        env = dict(os.environ)
        env["PYTHONPATH"] = (os.path.join(os.path.dirname(__file__), os.pardir,
                                          "src")
                             + os.pathsep + env.get("PYTHONPATH", ""))
        proc = subprocess.run([sys.executable, "-c", script], env=env,
                              capture_output=True, text=True, timeout=120)
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        config = EngineConfig(batch_size=8, executor="serial",
                              commit_every=1)
        reference = run_campaign(_backend(), config)
        db = CampaignDb(db_path)
        campaign_id = db.campaigns_for("rand_s_12f_s3")[-1]
        assert 1 <= len(db.chunk_records(campaign_id)) < 96 // 8
        resumed = resume_campaign(_backend(), campaign_id, config, db=db)
        assert resumed.resumed_chunks >= 1
        assert _signature(resumed) == _signature(reference)
        assert db.summary(campaign_id).total == reference.total
        db.close()

    def test_resume_on_auto_process_executor_runs_correct_chunks(
            self, monkeypatch):
        """Resume + auto-probe → process: the probe's payload pickles the
        *sliced* remaining lists, but process workers index chunks by
        absolute index — a resumed campaign must not execute shifted
        chunks (or shifted seeds) and still report identity."""
        monkeypatch.setattr(executors, "MIN_BATCH_COST_S", 0.0)
        monkeypatch.setattr(executors, "MIN_CAMPAIGN_COST_S", 0.0)
        monkeypatch.setattr(executors, "_usable_cpus", lambda: 2)
        config = EngineConfig(batch_size=8, executor="auto", workers=2,
                              commit_every=1)
        reference = run_campaign(
            _backend(), EngineConfig(batch_size=8, executor="serial",
                                     commit_every=1))
        db = CampaignDb()
        hook, seen = _abort_after(3)
        with pytest.raises(AbortCampaign):
            run_campaign(_backend(), config, db=db, on_chunk=hook)
        resumed = resume_campaign(_backend(), seen["campaign_id"], config,
                                  db=db)
        assert resumed.resumed_chunks >= 1
        assert resumed.executor == "process"  # the probe did pick process
        assert not resumed.quarantined
        assert _signature(resumed) == _signature(reference)
        assert db.summary(seen["campaign_id"]).total == reference.total


# ----------------------------------------------------------------------
# chunk retry, quarantine, and the recovery ladder (via ChaosBackend)
# ----------------------------------------------------------------------
def _chaos(mode, failures, lane_width=1, point_index=20, **kwargs):
    backend = _backend(lane_width)
    trigger = backend.enumerate_points()[point_index]
    return ChaosBackend(backend, [ChaosFault(trigger, mode, failures)],
                        **kwargs)


RETRY_CONFIG = EngineConfig(batch_size=8, executor="serial",
                            max_chunk_retries=2, retry_backoff_s=0.001)


class TestRetryAndQuarantine:
    def test_chaos_fault_validates_mode(self):
        with pytest.raises(ValueError, match="unknown chaos mode"):
            ChaosFault(("x", 0), "explode")

    def test_chaos_backend_is_transparent_when_quiet(self):
        report = run_campaign(_chaos("raise", failures=0), RETRY_CONFIG)
        reference = run_campaign(_backend(), RETRY_CONFIG)
        assert _signature(report) == _signature(reference)
        assert report.retried_chunks == 0 and not report.quarantined

    @pytest.mark.parametrize("mode", ["raise", "malform"])
    def test_transient_chunk_failure_is_retried(self, mode, caplog):
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            report = run_campaign(_chaos(mode, failures=2), RETRY_CONFIG)
        reference = run_campaign(_backend(), RETRY_CONFIG)
        assert _signature(report) == _signature(reference)
        assert report.retried_chunks == 1
        assert not report.quarantined
        assert any("retry" in r.message for r in caplog.records)

    def test_backoff_is_exponential_and_capped(self):
        from repro.engine.core import RETRY_BACKOFF_CAP_S

        config = EngineConfig(batch_size=8, executor="serial",
                              max_chunk_retries=3, retry_backoff_s=0.01)
        t0 = time.perf_counter()
        report = run_campaign(_chaos("raise", failures=3), config)
        elapsed = time.perf_counter() - t0
        assert report.retried_chunks == 1
        # three backoffs: 0.01 + 0.02 + 0.04
        assert elapsed >= 0.07
        assert RETRY_BACKOFF_CAP_S >= 0.04

    def test_persistent_failure_is_quarantined_not_fatal(self, caplog):
        config = EngineConfig(batch_size=8, executor="serial",
                              max_chunk_retries=1, retry_backoff_s=0.001)
        with caplog.at_level(logging.ERROR, logger="repro.engine"):
            report = run_campaign(_chaos("raise", failures=None), config)
        reference = run_campaign(_backend(), config)
        # the campaign completed: every chunk but the poisoned one
        assert len(report.quarantined) == 1
        quarantined = report.quarantined[0]
        assert quarantined.index == 2 and quarantined.n_points == 8
        assert quarantined.attempts == 2  # original + 1 retry
        assert "ChaosError" in quarantined.error
        assert report.executed == reference.executed - 8
        assert report.quarantined_points == 8
        assert "1 chunks quarantined (8 points failed)" in report.describe()
        assert any("quarantin" in r.message for r in caplog.records)

    def test_quarantine_checkpoints_failed_stratum(self):
        config = EngineConfig(batch_size=8, executor="serial",
                              max_chunk_retries=0, commit_every=1,
                              retry_backoff_s=0.001)
        db = CampaignDb()
        report = run_campaign(_chaos("raise", failures=None), config, db=db)
        records = db.chunk_records(report.campaign_id)
        assert records[2].status == "failed"
        assert "ChaosError" in records[2].error
        # resume with the harness fault fixed: the quarantined chunk is
        # re-executed and its record upgraded — full identity restored
        reference = run_campaign(_backend(), config)
        resumed = resume_campaign(_backend(), report.campaign_id, config,
                                  db=db)
        assert _signature(resumed) == _signature(reference)
        assert not resumed.quarantined
        records = db.chunk_records(report.campaign_id)
        assert all(r.status == "done" for r in records.values())
        assert db.summary(report.campaign_id).total == reference.total

    def test_max_chunk_retries_zero_quarantines_immediately(self):
        config = EngineConfig(batch_size=8, executor="serial",
                              max_chunk_retries=0, retry_backoff_s=0.001)
        report = run_campaign(_chaos("raise", failures=1), config)
        assert report.quarantined and report.quarantined[0].attempts == 1
        assert report.retried_chunks == 0

    def test_die_in_worker_walks_ladder_and_recovers(self, caplog):
        config = EngineConfig(batch_size=8, executor="process", workers=2,
                              max_chunk_retries=2, retry_backoff_s=0.001,
                              reuse_pool=False)
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            report = run_campaign(_chaos("die", failures=1), config)
        reference = run_campaign(
            _backend(), EngineConfig(batch_size=8, executor="serial"))
        assert _signature(report) == _signature(reference)
        assert report.executor == "thread"  # degraded exactly one rung
        assert report.retried_chunks >= 1
        assert not report.quarantined
        assert any("falling back" in r.message for r in caplog.records)

    def test_hung_chunk_times_out_and_recovers(self, caplog):
        config = EngineConfig(batch_size=8, executor="thread", workers=2,
                              chunk_timeout=0.4, max_chunk_retries=2,
                              retry_backoff_s=0.001)
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            report = run_campaign(
                _chaos("hang", failures=1, hang_s=2.0), config)
        reference = run_campaign(
            _backend(), EngineConfig(batch_size=8, executor="serial"))
        assert _signature(report) == _signature(reference)
        assert report.executor == "serial"  # thread rung abandoned
        assert report.retried_chunks == 1
        assert any("timed out" in r.message for r in caplog.records)

    def test_hang_without_timeout_fails_and_retries(self):
        # no chunk_timeout: the hang wakes up, raises, and the retry
        # loop recovers — campaigns without timeouts still terminate
        config = EngineConfig(batch_size=8, executor="serial",
                              max_chunk_retries=1, retry_backoff_s=0.001)
        report = run_campaign(
            _chaos("hang", failures=1, hang_s=0.05), config)
        reference = run_campaign(_backend(), config)
        assert _signature(report) == _signature(reference)
        assert report.retried_chunks == 1

    def test_accounting_errors_are_not_retried(self):
        # an on_chunk crash is the campaign's problem, not the chunk's:
        # it must propagate without burning the retry budget
        config = EngineConfig(batch_size=8, executor="serial",
                              max_chunk_retries=5, retry_backoff_s=0.001)
        hook, _ = _abort_after(2)
        with pytest.raises(AbortCampaign):
            run_campaign(_backend(), config, on_chunk=hook)

    @pytest.mark.parametrize("executor", ["serial", "thread"])
    def test_accounting_oserror_propagates_raw(self, executor):
        # an OSError from the accounting path must not be mistaken for a
        # pool failure: pre-tagging, the ladder fed it to the retry loop
        # (which re-executed the *next* chunk) and swallowed the error
        config = EngineConfig(batch_size=8, executor=executor, workers=2,
                              max_chunk_retries=5, retry_backoff_s=0.001)
        calls = {"n": 0}

        def hook(report):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("checkpoint disk full")

        with pytest.raises(OSError, match="checkpoint disk full"):
            run_campaign(_backend(), config, on_chunk=hook)
        assert calls["n"] == 2  # no retry re-entered the accounting path

    def test_persistently_hung_chunk_is_quarantined_not_deadlocked(self):
        # parent-side retries honour chunk_timeout too: a chunk that
        # hangs deterministically must quarantine after its budget, not
        # block the campaign forever in the untimed retry loop
        config = EngineConfig(batch_size=8, executor="thread", workers=2,
                              chunk_timeout=0.4, max_chunk_retries=1,
                              retry_backoff_s=0.001)
        t0 = time.perf_counter()
        report = run_campaign(
            _chaos("hang", failures=None, hang_s=8.0), config)
        elapsed = time.perf_counter() - t0
        assert elapsed < 5.0  # never waited out the 8s hang
        assert len(report.quarantined) == 1
        assert report.quarantined[0].index == 2
        assert "ChunkTimeout" in report.quarantined[0].error
        reference = run_campaign(
            _backend(), EngineConfig(batch_size=8, executor="serial"))
        assert report.executed == reference.executed - 8

    def test_chaos_triggers_on_seeded_backends(self):
        class SeededNoise:
            name = "noise"
            circuit_name = "none"
            fault_model = "noise"
            workload = "w"
            lane_width = 1

            def enumerate_points(self):
                return list(range(16))

            def prepare(self):
                return None

            def run_batch(self, points):  # pragma: no cover - seeded wins
                raise AssertionError("seeded path expected")

            def run_batch_seeded(self, points, rng):
                return [Injection(point=p, location=f"p{p}", cycle=0,
                                  outcome="failure" if rng.random() < 0.5
                                  else "masked")
                        for p in points]

        config = EngineConfig(batch_size=4, executor="serial", seed=3,
                              max_chunk_retries=2, retry_backoff_s=0.001)
        reference = run_campaign(SeededNoise(), config)
        chaos = ChaosBackend(SeededNoise(), [ChaosFault(5, "raise", 1)])
        report = run_campaign(chaos, config)
        assert _rows(report) == _rows(reference)  # per-chunk RNG replayed
        assert report.retried_chunks == 1


# ----------------------------------------------------------------------
# executor drain aggregation
# ----------------------------------------------------------------------
class TestDrainAggregation:
    def test_drain_logs_suppressed_errors(self, caplog):
        class StaggeredBackend:
            """Chunk 0 converges (slowly); later chunks fail fast, so
            speculative in-flight futures hold errors at drain time."""

            name = "staggered"
            circuit_name = "none"
            fault_model = "chaos"
            workload = "w"

            def enumerate_points(self):
                return list(range(8))

            def prepare(self):
                return None

            def run_batch(self, points):
                if points[0] == 0:
                    time.sleep(0.15)
                    return [Injection(point=p, location=f"p{p}", cycle=0,
                                      outcome="failure") for p in points]
                time.sleep(0.01)
                raise ChaosError(f"speculative chunk {points[0]} failed")

        backend = StaggeredBackend()
        chunks = [[0, 1], [2, 3], [4, 5], [6, 7]]
        seeds = [executors.chunk_seed(0, i) for i in range(4)]
        with caplog.at_level(logging.WARNING, logger="repro.engine"):
            converged = executors.run_thread(backend, chunks, seeds,
                                             lambda batch: True, workers=2)
        assert converged
        drained = [r for r in caplog.records if "suppressed" in r.message]
        assert drained and "ChaosError" in drained[0].message


# ----------------------------------------------------------------------
# executor timeout taxonomy
# ----------------------------------------------------------------------
class _StubFuture:
    def __init__(self, exc):
        self._exc = exc

    def result(self, timeout=None):
        raise self._exc

    def cancel(self):
        return True

    def cancelled(self):
        return True


class _StubPool:
    def __init__(self):
        self.shutdown_calls = []

    def shutdown(self, wait=True, cancel_futures=False):
        self.shutdown_calls.append((wait, cancel_futures))


class TestExecutorTimeouts:
    def test_futures_timeout_classifies_as_chunk_timeout(self):
        # concurrent.futures.TimeoutError is NOT the builtin TimeoutError
        # on 3.10; misclassifying it as ChunkError would send the finally
        # path into _drain — blocking forever on the hung future
        import concurrent.futures

        pool = _StubPool()
        future = _StubFuture(concurrent.futures.TimeoutError())
        with pytest.raises(executors.ChunkTimeout):
            executors._run_pool(pool, lambda i: future, 1, 2,
                                lambda batch: False, 0, timeout=0.1)
        # the hung pool was abandoned without waiting, never drained
        assert pool.shutdown_calls == [(False, True)]

    def test_execute_chunk_timed_returns_fast_results(self):
        backend = _backend()
        chunk = list(backend.enumerate_points())[:4]
        seed = executors.chunk_seed(0, 0)
        backend.prepare()
        direct = executors.execute_chunk(backend, chunk, seed)
        timed = executors.execute_chunk_timed(backend, chunk, seed, 30.0)
        assert [inj.row() for inj in timed] == [inj.row() for inj in direct]

    def test_execute_chunk_timed_abandons_hung_chunk(self):
        class Sleeper:
            name = "sleeper"
            circuit_name = "none"
            fault_model = "chaos"
            workload = "w"

            def enumerate_points(self):
                return [0]

            def prepare(self):
                return None

            def run_batch(self, points):  # pragma: no cover - abandoned
                time.sleep(8.0)
                return []

        t0 = time.perf_counter()
        with pytest.raises(executors.ChunkTimeout, match="overdue"):
            executors.execute_chunk_timed(Sleeper(), [0], 1, 0.2)
        assert time.perf_counter() - t0 < 2.0


# ----------------------------------------------------------------------
# chaos scratch hygiene: attempt markers must not outlive campaigns
# ----------------------------------------------------------------------
class TestChaosScratchCleanup:
    def test_markers_cleared_on_clean_campaign_completion(self):
        backend = _chaos("raise", failures=1)
        report = run_campaign(backend, RETRY_CONFIG)
        assert report.retried_chunks == 1  # the fault really fired
        # the campaign_finished hook swept this campaign's markers
        assert os.path.isdir(backend.scratch_dir)
        assert os.listdir(backend.scratch_dir) == []
        # and the budget reset with them: the same wrapper re-runs its
        # scripted fault afresh on the next campaign
        report2 = run_campaign(backend, RETRY_CONFIG)
        assert report2.retried_chunks == 1

    def test_markers_survive_an_aborted_campaign(self):
        """Only *clean* completion clears markers: an aborted campaign
        must keep its attempt counts for the resume that follows."""
        backend = _chaos("raise", failures=1)
        hook, _ = _abort_after(3)  # past chunk 2, where the fault fires
        with pytest.raises(AbortCampaign):
            run_campaign(backend, RETRY_CONFIG, on_chunk=hook)
        assert os.listdir(backend.scratch_dir) != []

    def test_shutdown_pools_sweeps_owned_scratch_dirs(self):
        from repro.engine import chaos as chaos_mod

        backend = _chaos("raise", failures=1)
        scratch = backend.scratch_dir
        assert scratch in chaos_mod._scratch_dirs
        executors.shutdown_pools()
        assert scratch not in chaos_mod._scratch_dirs
        assert not os.path.exists(scratch)

    def test_caller_supplied_scratch_is_not_owned(self, tmp_path):
        scratch = tmp_path / "mine"
        scratch.mkdir()
        from repro.engine import chaos as chaos_mod

        _chaos("raise", failures=1, scratch_dir=str(scratch))
        assert str(scratch) not in chaos_mod._scratch_dirs
        chaos_mod.cleanup_scratch()
        assert scratch.is_dir()  # cleanup never touches borrowed dirs
