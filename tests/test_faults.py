"""Tests for fault models, universes, collapsing and sampling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import load
from repro.circuit.library import random_combinational
from repro.faults import (
    DelayFault,
    DelayFaultKind,
    Line,
    SETFault,
    SEUFault,
    StuckAtFault,
    all_stuck_at,
    collapse,
    collapse_ratio,
    draw_sample,
    lines_of,
    sample_size,
    stratified_sample,
)


class TestModels:
    def test_stuck_at_value_validated(self):
        with pytest.raises(ValueError):
            StuckAtFault(Line("n"), 2)

    def test_line_describe(self):
        assert Line("n").describe() == "n"
        assert Line("n", "g", 1).describe() == "n->g.1"
        assert StuckAtFault(Line("n"), 1).describe() == "n s-a-1"

    def test_ordering_stable(self):
        faults = [StuckAtFault(Line("b"), 0), StuckAtFault(Line("a"), 1),
                  StuckAtFault(Line("a", "g", 0), 0)]
        ordered = sorted(faults)
        assert ordered[0].line.net == "a"

    def test_other_fault_kinds(self):
        assert "SEU" in SEUFault("q1", 5).describe()
        assert "SET" in SETFault("n1", 2.0, 0.5).describe()
        assert "STR" in DelayFault("n1", DelayFaultKind.SLOW_TO_RISE).describe()


class TestUniverse:
    def test_c17_universe_size(self):
        c17 = load("c17")
        faults = all_stuck_at(c17)
        # 11 stems (5 PI + 6 gates) + branches at fanout stems
        sites = lines_of(c17)
        assert len(faults) == 2 * len(sites)
        branch_sites = [s for s in sites if not s.is_stem]
        assert branch_sites  # N3, N11, N16 all have fanout > 1

    def test_branches_only_on_fanout(self):
        c17 = load("c17")
        fmap = c17.fanout_map()
        for site in lines_of(c17):
            if not site.is_stem:
                assert len(fmap[site.net]) > 1

    def test_collapse_classes_partition_universe(self):
        c17 = load("c17")
        universe = set(all_stuck_at(c17))
        reps, classes = collapse(c17)
        members = [f for group in classes.values() for f in group]
        assert set(members) == universe
        assert len(members) == len(universe)  # no duplicates
        assert set(reps) == set(classes)

    def test_c17_collapse_ratio_textbook(self):
        # the classic figure for c17 is 22 collapsed / 34 total ≈ 0.647
        assert abs(collapse_ratio(load("c17")) - 22 / 34) < 1e-9

    def test_inverter_chain_collapses_fully(self):
        from repro.circuit import CircuitBuilder
        bld = CircuitBuilder("chain")
        net = bld.input("a")
        for _ in range(4):
            net = bld.not_(net)
        bld.output(net)
        c = bld.done()
        reps, _classes = collapse(c)
        # a pure inverter chain has exactly 2 equivalence classes
        assert len(reps) == 2


class TestSampling:
    def test_sample_size_bounds(self):
        n = sample_size(10_000, margin=0.01, confidence=0.95)
        assert 4000 < n < 5000  # classic ~4899 for 1%@95%
        assert sample_size(100, margin=0.01) == 100 or \
            sample_size(100, margin=0.01) < 100

    def test_sample_size_monotone_in_margin(self):
        n_tight = sample_size(100_000, margin=0.01)
        n_loose = sample_size(100_000, margin=0.05)
        assert n_tight > n_loose

    def test_sample_size_validates(self):
        with pytest.raises(ValueError):
            sample_size(100, margin=0.0)
        with pytest.raises(ValueError):
            sample_size(100, confidence=1.5)
        assert sample_size(0) == 0

    def test_draw_sample_deterministic(self):
        pop = list(range(100))
        assert draw_sample(pop, 10, seed=3) == draw_sample(pop, 10, seed=3)
        assert draw_sample(pop, 200, seed=3) == pop

    def test_stratified_sample_allocates_proportionally(self):
        groups = {"big": list(range(90)), "small": list(range(10))}
        alloc = stratified_sample(groups, 20, seed=1)
        assert len(alloc["big"]) > len(alloc["small"])
        assert len(alloc["small"]) >= 1
        assert len(alloc["big"]) + len(alloc["small"]) == 20

    def test_stratified_sample_empty_group(self):
        alloc = stratified_sample({"a": [1, 2, 3], "b": []}, 2, seed=0)
        assert alloc["b"] == []


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_collapse_is_partition(seed):
    """Property: collapsing any circuit yields a partition of the universe."""
    c = random_combinational(5, 20, 3, seed=seed)
    universe = all_stuck_at(c)
    reps, classes = collapse(c)
    members = [f for group in classes.values() for f in group]
    assert len(members) == len(universe)
    assert set(members) == set(universe)
    assert len(reps) <= len(universe)
    for rep, group in classes.items():
        assert rep in group


@settings(max_examples=15, deadline=None)
@given(population=st.integers(1, 10**7),
       margin=st.floats(0.005, 0.2),
       confidence=st.sampled_from([0.9, 0.95, 0.99]))
def test_sample_size_never_exceeds_population(population, margin, confidence):
    n = sample_size(population, margin, confidence)
    assert 0 < n <= population
