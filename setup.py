"""Setup shim.

This environment has no ``wheel`` package and no network, so PEP 517
editable builds are unavailable; this shim lets ``pip install -e .`` fall
back to the legacy ``setup.py develop`` path. All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
