"""Transistor-aging models, decoder aging, and software mitigation."""

from .bti import SECONDS_PER_YEAR, BtiModel, HciModel, combined_delta_vth
from .decoder_aging import (
    DecoderAgingReport,
    age_decoder,
    gate_duties_from_profile,
    gate_input_stress,
    hot_cold_profile,
    uniform_profile,
)
from .delay import AgedPath, DelayModel, guard_band_for
from .mitigation import (
    MitigationOutcome,
    RejuvenationSearch,
    balance_profile,
    mitigate_decoder,
)

__all__ = [
    "AgedPath",
    "BtiModel",
    "DecoderAgingReport",
    "DelayModel",
    "HciModel",
    "MitigationOutcome",
    "RejuvenationSearch",
    "SECONDS_PER_YEAR",
    "age_decoder",
    "balance_profile",
    "combined_delta_vth",
    "gate_duties_from_profile",
    "gate_input_stress",
    "guard_band_for",
    "hot_cold_profile",
    "mitigate_decoder",
    "uniform_profile",
]
