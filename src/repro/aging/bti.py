"""BTI and HCI transistor-aging models (paper III.E).

Bias temperature instability is "the dominant phenomenon for the current
technologies": a pMOS (NBTI) or nMOS (PBTI) threshold voltage drifts
while the device is under bias (its *duty factor*), partially recovering
otherwise.  We use the standard long-term power-law form

    ΔVth(t) = A · duty^p · t^n · AF(T)

with time exponent n ≈ 0.2, duty exponent p ≈ 0.5 (reaction-diffusion
long-term average with recovery folded in) and Arrhenius temperature
acceleration AF.  Hot-carrier injection adds a switching-activity-driven
term with t^0.5.  Absolute constants are calibrated to produce tens of
millivolts over a 10-year mission at 125 °C — the magnitude regime the
RESCUE aging studies ([36], [24], [7]) operate in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

BOLTZMANN_EV = 8.617333262e-5
SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class BtiModel:
    """Long-term BTI ΔVth model with duty and temperature dependence."""

    prefactor_v: float = 4.5e-4   # ΔVth at duty=1, t=1 s, T=ref (volts)
    time_exponent: float = 0.2
    duty_exponent: float = 0.5
    activation_energy_ev: float = 0.08
    reference_temp_c: float = 25.0

    def acceleration(self, temp_c: float) -> float:
        """Arrhenius acceleration factor relative to the reference temp."""
        t_ref = self.reference_temp_c + 273.15
        t = temp_c + 273.15
        return math.exp(self.activation_energy_ev / BOLTZMANN_EV
                        * (1.0 / t_ref - 1.0 / t))

    def delta_vth(self, t_seconds: float, duty: float = 1.0,
                  temp_c: float = 25.0) -> float:
        """Threshold shift (volts) after ``t_seconds`` of operation."""
        if t_seconds < 0:
            raise ValueError("time must be non-negative")
        if not 0.0 <= duty <= 1.0:
            raise ValueError("duty factor must be in [0, 1]")
        if t_seconds == 0 or duty == 0:
            return 0.0
        return (self.prefactor_v
                * duty ** self.duty_exponent
                * t_seconds ** self.time_exponent
                * self.acceleration(temp_c))

    def delta_vth_years(self, years: float, duty: float = 1.0,
                        temp_c: float = 25.0) -> float:
        return self.delta_vth(years * SECONDS_PER_YEAR, duty, temp_c)

    def rejuvenation_gain(self, duty_before: float, duty_after: float,
                          years: float, temp_c: float = 25.0) -> float:
        """Fractional ΔVth reduction from a duty-balancing change."""
        before = self.delta_vth_years(years, duty_before, temp_c)
        if before == 0:
            return 0.0
        after = self.delta_vth_years(years, duty_after, temp_c)
        return 1.0 - after / before


@dataclass(frozen=True)
class HciModel:
    """Hot-carrier injection: switching-driven Vth drift, ~sqrt(t)."""

    prefactor_v: float = 4.0e-4
    time_exponent: float = 0.5

    def delta_vth(self, t_seconds: float, activity: float = 0.1) -> float:
        """``activity`` is the toggle rate (transitions per cycle, 0..1)."""
        if t_seconds < 0:
            raise ValueError("time must be non-negative")
        if not 0.0 <= activity <= 1.0:
            raise ValueError("activity must be in [0, 1]")
        return self.prefactor_v * activity * t_seconds ** self.time_exponent


def combined_delta_vth(
    years: float,
    duty: float,
    activity: float,
    temp_c: float = 85.0,
    bti: BtiModel | None = None,
    hci: HciModel | None = None,
) -> float:
    """Total ΔVth from BTI + HCI over a mission profile."""
    bti = bti or BtiModel()
    hci = hci or HciModel()
    seconds = years * SECONDS_PER_YEAR
    return bti.delta_vth(seconds, duty, temp_c) + hci.delta_vth(seconds, activity)
