"""From ΔVth to gate/path delay degradation and lifetime.

The alpha-power-law approximation: gate delay scales as
``Vdd / (Vdd − Vth)^α``, so a threshold shift ΔVth slows a gate by

    d(ΔVth)/d0 = ((Vdd − Vth0) / (Vdd − Vth0 − ΔVth))^α

Path delay degradation is the sum over its gates (each with its own duty
profile); a path *fails* when degraded delay exceeds the clock budget —
giving the years-to-failure metric the mitigation experiments improve.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bti import BtiModel, SECONDS_PER_YEAR


@dataclass(frozen=True)
class DelayModel:
    """Alpha-power-law delay model for one technology point."""

    vdd: float = 1.0
    vth0: float = 0.35
    alpha: float = 1.3

    def slowdown(self, delta_vth: float) -> float:
        """Multiplicative delay factor (≥ 1) for a threshold shift."""
        if delta_vth < 0:
            raise ValueError("delta_vth must be non-negative")
        headroom = self.vdd - self.vth0
        degraded = headroom - delta_vth
        if degraded <= 0.05 * headroom:
            # device essentially unusable: cap to a large, finite factor
            degraded = 0.05 * headroom
        return (headroom / degraded) ** self.alpha


@dataclass
class AgedPath:
    """A timing path whose gates age with individual duty factors."""

    name: str
    base_delay: float                  # fresh delay (ns)
    gate_duties: list[float]           # one duty factor per gate on the path
    temp_c: float = 85.0

    def degraded_delay(self, years: float, bti: BtiModel | None = None,
                       delay_model: DelayModel | None = None) -> float:
        """Path delay after ``years``, assuming equal per-gate base delay."""
        bti = bti or BtiModel()
        dm = delay_model or DelayModel()
        if not self.gate_duties:
            return self.base_delay
        per_gate = self.base_delay / len(self.gate_duties)
        total = 0.0
        for duty in self.gate_duties:
            dvth = bti.delta_vth(years * SECONDS_PER_YEAR, duty, self.temp_c)
            total += per_gate * dm.slowdown(dvth)
        return total

    def degradation_percent(self, years: float, **kw) -> float:
        return 100.0 * (self.degraded_delay(years, **kw) / self.base_delay - 1.0)

    def years_to_failure(self, clock_budget: float, max_years: float = 30.0,
                         step: float = 0.25, **kw) -> float:
        """First year where the degraded delay exceeds the clock budget."""
        if self.base_delay > clock_budget:
            return 0.0
        years = step
        while years <= max_years:
            if self.degraded_delay(years, **kw) > clock_budget:
                return years
            years += step
        return max_years


def guard_band_for(path: AgedPath, mission_years: float = 10.0,
                   bti: BtiModel | None = None,
                   delay_model: DelayModel | None = None) -> float:
    """Fractional timing margin needed to survive the mission lifetime."""
    degraded = path.degraded_delay(mission_years, bti=bti, delay_model=delay_model)
    return degraded / path.base_delay - 1.0
