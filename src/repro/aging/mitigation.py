"""Software-based aging mitigation (III.E, [24] and [7]).

Two strategies:

* :func:`balance_profile` — the [24] idea: spend an *overhead budget* of
  extra memory accesses on cold addresses so the decoder's stress
  flattens.  The mitigation quality metric is the drop in duty imbalance
  and in worst-wordline slowdown, at a given overhead.
* :class:`RejuvenationSearch` — the [7] idea (evolutionary generation of
  rejuvenating assembler programs), reduced to its optimization core: a
  seeded hill-climber over candidate dummy-access sequences minimizing
  the aged decoder's worst slowdown under a fixed instruction budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping

from .bti import BtiModel
from .decoder_aging import DecoderAgingReport, age_decoder
from .delay import DelayModel


def balance_profile(
    profile: Mapping[int, float],
    overhead: float = 0.2,
    steps: int = 40,
) -> dict[int, float]:
    """Spend ``overhead`` worth of dummy accesses to balance the decoder.

    [24]'s software mitigation chooses *which* extra addresses to touch:
    what ages the decoder is the per-address-bit duty (the predecoder
    lines), so the budget is allocated greedily — each chunk goes to the
    address that best pulls every bit line toward 50 % duty (accessing
    the bitwise complement of a hot address is the canonical move).
    Returns the re-normalized profile.
    """
    if overhead < 0:
        raise ValueError("overhead must be non-negative")
    base = dict(profile)
    total = sum(base.values()) or 1.0
    filled = {a: w / total for a, w in base.items()}
    if overhead == 0 or not filled:
        return filled
    addresses = sorted(filled)
    address_bits = max(1, max(addresses).bit_length())
    chunk = overhead / steps

    def bit_imbalance(prof: Mapping[int, float]) -> float:
        mass = sum(prof.values())
        score = 0.0
        for bit in range(address_bits):
            high = sum(w for a, w in prof.items() if (a >> bit) & 1)
            score += abs(high / mass - 0.5)
        return score

    for _ in range(steps):
        best_addr = min(
            addresses,
            key=lambda a: bit_imbalance(
                {**filled, a: filled.get(a, 0.0) + chunk}),
        )
        filled[best_addr] = filled.get(best_addr, 0.0) + chunk
    total = sum(filled.values())
    return {a: w / total for a, w in filled.items()}


@dataclass
class MitigationOutcome:
    """Before/after aging comparison at a given software overhead."""

    overhead: float
    before: DecoderAgingReport
    after: DecoderAgingReport

    @property
    def slowdown_reduction(self) -> float:
        """Fraction of the aging-induced slowdown removed by mitigation."""
        aged_before = self.before.max_slowdown - 1.0
        aged_after = self.after.max_slowdown - 1.0
        if aged_before <= 0:
            return 0.0
        return 1.0 - aged_after / aged_before

    @property
    def imbalance_reduction(self) -> float:
        imb_before = self.before.duty_imbalance()
        if imb_before == 0:
            return 0.0
        return 1.0 - self.after.duty_imbalance() / imb_before


def mitigate_decoder(
    address_bits: int,
    profile: Mapping[int, float],
    overhead: float = 0.2,
    years: float = 10.0,
    temp_c: float = 85.0,
) -> MitigationOutcome:
    """Run the full before/after experiment for one overhead point."""
    before = age_decoder(address_bits, profile, years, temp_c)
    balanced = balance_profile(profile, overhead)
    after = age_decoder(address_bits, balanced, years, temp_c)
    return MitigationOutcome(overhead, before, after)


class RejuvenationSearch:
    """Hill-climbing search for a rejuvenating access sequence ([7]-lite).

    State: a multiset of dummy addresses of size ``budget``.  Fitness:
    the aged decoder's max slowdown when the dummy accesses are blended
    into the workload profile.  Mutation: move one dummy access to a
    random other address.  Deterministic per seed.
    """

    def __init__(self, address_bits: int, profile: Mapping[int, float],
                 budget: int = 16, years: float = 10.0, temp_c: float = 85.0,
                 seed: int = 0) -> None:
        self.address_bits = address_bits
        self.profile = dict(profile)
        self.budget = budget
        self.years = years
        self.temp_c = temp_c
        self.rng = random.Random(seed)
        self.n_addresses = 1 << address_bits
        self.bti = BtiModel()
        self.delay_model = DelayModel()

    def _fitness(self, dummies: list[int]) -> float:
        blended = dict(self.profile)
        weight = sum(self.profile.values()) / max(1, len(self.profile))
        for addr in dummies:
            blended[addr] = blended.get(addr, 0.0) + weight
        report = age_decoder(self.address_bits, blended, self.years,
                             self.temp_c, self.bti, self.delay_model)
        return report.max_slowdown

    def run(self, iterations: int = 40) -> tuple[list[int], float, float]:
        """Returns (best dummy sequence, initial fitness, best fitness)."""
        dummies = [self.rng.randrange(self.n_addresses) for _ in range(self.budget)]
        initial = self._fitness([])
        best = self._fitness(dummies)
        for _ in range(iterations):
            candidate = list(dummies)
            candidate[self.rng.randrange(len(candidate))] = \
                self.rng.randrange(self.n_addresses)
            fitness = self._fitness(candidate)
            if fitness <= best:
                best = fitness
                dummies = candidate
        return dummies, initial, best
