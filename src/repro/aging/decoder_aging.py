"""Memory address-decoder aging under unbalanced access profiles (III.E, [24]).

Real workloads hammer a few hot addresses: the decoder gates on those
paths sit at asymmetric duty factors and age fast, while cold paths stay
fresh — the resulting *delay skew* eventually violates the read timing
on hot rows.  [24]'s observation: because the decoder's stress is purely
a function of the address stream, software can rebalance it by issuing
spare accesses to cold addresses — "the address decoder can be mitigated
very well".

The decoder here is the real gate-level circuit from
``repro.circuit.library.decoder``; per-gate duty factors come from
bit-parallel simulation of the address stream, so gate sharing between
addresses (the predecoder structure) is modelled exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..circuit.library import decoder
from ..circuit.netlist import Circuit
from ..sim.logic import pack_patterns, simulate
from .bti import BtiModel, SECONDS_PER_YEAR
from .delay import DelayModel


@dataclass
class DecoderAgingReport:
    """Per-wordline delay degradation after a mission period."""

    years: float
    wordline_delay_factor: dict[int, float] = field(default_factory=dict)
    gate_duty: dict[str, float] = field(default_factory=dict)

    @property
    def max_slowdown(self) -> float:
        return max(self.wordline_delay_factor.values(), default=1.0)

    @property
    def skew(self) -> float:
        """Worst-case slowdown spread between wordlines."""
        values = list(self.wordline_delay_factor.values())
        return (max(values) - min(values)) if values else 0.0

    def duty_imbalance(self) -> float:
        """Mean stress duty over decoder gates (0 = perfectly balanced).

        ``gate_duty`` holds input-referred stress duties in [0, 1].
        """
        if not self.gate_duty:
            return 0.0
        return sum(self.gate_duty.values()) / len(self.gate_duty)


def gate_duties_from_profile(
    circuit: Circuit,
    address_bits: int,
    profile: Mapping[int, float],
) -> dict[str, float]:
    """Per-net signal-high probabilities under an address distribution.

    Simulates all 2^n addresses bit-parallel once; each net's duty is
    the profile-weighted probability it carries a 1.  NBTI stresses a
    transistor through its *gate terminal*, so the aging analysis below
    converts these net duties into per-gate stress via the gate's input
    nets.
    """
    addresses = sorted(profile)
    patterns = [
        {f"a{i}": (addr >> i) & 1 for i in range(address_bits)}
        for addr in addresses
    ]
    packed = pack_patterns(patterns)
    values = simulate(circuit, packed, len(patterns))
    total_weight = sum(profile.values()) or 1.0
    duties: dict[str, float] = {}
    for net in circuit.nets:
        acc = 0.0
        word = values.get(net, 0)
        for idx, addr in enumerate(addresses):
            if (word >> idx) & 1:
                acc += profile[addr]
        duties[net] = acc / total_weight
    return duties


def gate_input_stress(circuit: Circuit, net_duties: Mapping[str, float]) -> dict[str, float]:
    """Per-gate stress duty from the duties of its *input* nets.

    A device is BTI-stressed while its gate terminal sits at the
    stressing polarity; a balanced input (duty 0.5) alternates stress
    and recovery, a static input (duty 0 or 1) stresses one device
    continuously.  Stress = mean over inputs of ``|duty − 0.5| · 2``.
    """
    stress: dict[str, float] = {}
    for gate in circuit.topo_order():
        if not gate.inputs:
            stress[gate.output] = 0.0
            continue
        acc = sum(abs(net_duties.get(src, 0.5) - 0.5) * 2 for src in gate.inputs)
        stress[gate.output] = acc / len(gate.inputs)
    return stress


def _wordline_support(circuit: Circuit, line: int) -> list[str]:
    """Gates in the fan-in cone of wordline ``w{line}`` (its timing path)."""
    from ..circuit.levelize import fanin_cone

    cone = fanin_cone(circuit, [f"w{line}"])
    return [g.output for g in circuit.topo_order() if g.output in cone]


def age_decoder(
    address_bits: int,
    profile: Mapping[int, float],
    years: float = 10.0,
    temp_c: float = 85.0,
    bti: BtiModel | None = None,
    delay_model: DelayModel | None = None,
) -> DecoderAgingReport:
    """Aging analysis of an ``address_bits`` decoder under a usage profile.

    ``profile`` maps address → access fraction (normalized internally).
    Returns per-wordline delay factors after ``years``.
    """
    bti = bti or BtiModel()
    dm = delay_model or DelayModel()
    circuit = decoder(address_bits)
    full_profile = {addr: profile.get(addr, 0.0)
                    for addr in range(1 << address_bits)}
    duties = gate_duties_from_profile(circuit, address_bits, full_profile)
    stresses = gate_input_stress(circuit, duties)
    report = DecoderAgingReport(years=years, gate_duty=stresses)
    seconds = years * SECONDS_PER_YEAR
    for line in range(1 << address_bits):
        support = _wordline_support(circuit, line)
        if not support:
            report.wordline_delay_factor[line] = 1.0
            continue
        factor = 0.0
        for gate_out in support:
            dvth = bti.delta_vth(seconds, stresses[gate_out], temp_c)
            factor += dm.slowdown(dvth)
        report.wordline_delay_factor[line] = factor / len(support)
    return report


def hot_cold_profile(address_bits: int, hot_fraction: float = 0.8,
                     n_hot: int = 2) -> dict[int, float]:
    """A skewed access profile: ``n_hot`` addresses take ``hot_fraction``."""
    n = 1 << address_bits
    n_hot = min(n_hot, n)
    profile = {}
    for addr in range(n):
        if addr < n_hot:
            profile[addr] = hot_fraction / n_hot
        else:
            profile[addr] = (1 - hot_fraction) / (n - n_hot) if n > n_hot else 0.0
    return profile


def uniform_profile(address_bits: int) -> dict[int, float]:
    n = 1 << address_bits
    return {addr: 1.0 / n for addr in range(n)}
