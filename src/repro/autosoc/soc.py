"""The AutoSoC system-on-chip (paper IV.B).

"A SoC hardware based on the OR1200 CPU and including application-
specific, memory and peripheral blocks ... available in a number of
configurations, including different safety mechanisms to increase
reliability, such as LockStep for the CPU and ECCs for the memories and
a security block."

Memory map (word addresses)::

    0x0000-0x1FFF   ROM (program)
    0x2000-0x3FFF   RAM (plain or ECC-protected by configuration)
    0xF000          UART TX (write: append char)
    0xF010          TIMER (read: current cycle)
    0xF020-0xF023   CAN-lite: DATA, SEND, STATUS, last CRC
    0xF100-0xF10B   AES security block: 4×PT, 4×KEY, GO, 4×CT

Configurations: ``qm`` (no mechanisms), ``lockstep`` (dual core +
comparator), ``ecc`` (SEC-DED RAM), ``full`` (both).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from enum import Enum

from ..crypto.aes import encrypt_block
from ..ftol.ecc import DecodeStatus, EccMemory
from .cpu import Cpu, UnitFault
from .isa import WORD_MASK

ROM_BASE, ROM_SIZE = 0x0000, 0x2000
RAM_BASE, RAM_SIZE = 0x2000, 0x2000
UART_TX = 0xF000
TIMER = 0xF010
CAN_DATA, CAN_SEND, CAN_STATUS, CAN_CRC = 0xF020, 0xF021, 0xF022, 0xF023
AES_PT, AES_KEY, AES_GO, AES_CT = 0xF100, 0xF104, 0xF108, 0xF109


class SocConfig(str, Enum):
    QM = "qm"
    LOCKSTEP = "lockstep"
    ECC = "ecc"
    FULL = "full"

    @property
    def has_lockstep(self) -> bool:
        return self in (SocConfig.LOCKSTEP, SocConfig.FULL)

    @property
    def has_ecc(self) -> bool:
        return self in (SocConfig.ECC, SocConfig.FULL)


@dataclass
class CanFrame:
    """One transmitted CAN-lite frame with its CRC."""

    payload: list[int]
    crc: int


class Bus:
    """The SoC interconnect: ROM, RAM (optionally ECC), peripherals."""

    def __init__(self, program: list[int], config: SocConfig,
                 cycle_source=None) -> None:
        self.config = config
        self.rom = list(program) + [0] * (ROM_SIZE - len(program))
        if config.has_ecc:
            # four 8-bit ECC banks per 32-bit word
            self._ecc_banks = [EccMemory(RAM_SIZE, 8) for _ in range(4)]
            self.ram = None
        else:
            self._ecc_banks = None
            self.ram = [0] * RAM_SIZE
        self.uart: list[str] = []
        self.can_buffer: list[int] = []
        self.can_frames: list[CanFrame] = []
        self.write_log: list[tuple[int, int]] = []
        self.aes_pt = [0] * 4
        self.aes_key = [0] * 4
        self.aes_ct = [0] * 4
        self.ecc_events = 0
        self.ecc_uncorrectable = 0
        self._cycle_source = cycle_source

    # ------------------------------------------------------------------
    def load_word(self, addr: int) -> int:
        addr &= WORD_MASK
        if ROM_BASE <= addr < ROM_BASE + ROM_SIZE:
            return self.rom[addr - ROM_BASE]
        if RAM_BASE <= addr < RAM_BASE + RAM_SIZE:
            return self._ram_read(addr - RAM_BASE)
        if addr == TIMER:
            return self._cycle_source() if self._cycle_source else 0
        if addr == CAN_STATUS:
            return len(self.can_frames)
        if addr == CAN_CRC:
            return self.can_frames[-1].crc if self.can_frames else 0
        if AES_CT <= addr < AES_CT + 4:
            return self.aes_ct[addr - AES_CT]
        return 0

    def store_word(self, addr: int, value: int) -> None:
        addr &= WORD_MASK
        value &= WORD_MASK
        self.write_log.append((addr, value))
        if RAM_BASE <= addr < RAM_BASE + RAM_SIZE:
            self._ram_write(addr - RAM_BASE, value)
            return
        if addr == UART_TX:
            self.uart.append(chr(value & 0xFF))
            return
        if addr == CAN_DATA:
            self.can_buffer.append(value)
            return
        if addr == CAN_SEND:
            payload = list(self.can_buffer)
            raw = b"".join(w.to_bytes(4, "little") for w in payload)
            self.can_frames.append(CanFrame(payload, zlib.crc32(raw) & WORD_MASK))
            self.can_buffer = []
            return
        if AES_PT <= addr < AES_PT + 4:
            self.aes_pt[addr - AES_PT] = value
            return
        if AES_KEY <= addr < AES_KEY + 4:
            self.aes_key[addr - AES_KEY] = value
            return
        if addr == AES_GO:
            pt = b"".join(w.to_bytes(4, "little") for w in self.aes_pt)
            key = b"".join(w.to_bytes(4, "little") for w in self.aes_key)
            ct = encrypt_block(pt, key)
            self.aes_ct = [int.from_bytes(ct[i:i + 4], "little")
                           for i in range(0, 16, 4)]
            return
        # writes to ROM / unmapped space are ignored (bus master error)

    # ------------------------------------------------------------------
    def _ram_read(self, offset: int) -> int:
        if self._ecc_banks is None:
            return self.ram[offset]
        value = 0
        for b, bank in enumerate(self._ecc_banks):
            result = bank.read(offset)
            if result.status is DecodeStatus.CORRECTED:
                self.ecc_events += 1
            elif result.status is DecodeStatus.DETECTED:
                self.ecc_uncorrectable += 1
            value |= result.data << (8 * b)
        return value

    def _ram_write(self, offset: int, value: int) -> None:
        if self._ecc_banks is None:
            self.ram[offset] = value
            return
        for b, bank in enumerate(self._ecc_banks):
            bank.write(offset, (value >> (8 * b)) & 0xFF)

    def ram_snapshot(self, start: int = 0, count: int = 64) -> list[int]:
        """RAM contents for golden-vs-faulty comparison (no ECC side
        effects are counted: uses a direct decode)."""
        if self._ecc_banks is None:
            return list(self.ram[start:start + count])
        out = []
        for offset in range(start, start + count):
            value = 0
            for b, bank in enumerate(self._ecc_banks):
                value |= bank.code.decode(bank._store[offset]).data << (8 * b)
            out.append(value)
        return out

    def inject_ram_bitflip(self, offset: int, bit: int) -> None:
        """SEU in RAM: flips one stored bit (data or check bit)."""
        if self._ecc_banks is None:
            self.ram[offset] ^= 1 << (bit % 32)
            return
        bank = self._ecc_banks[(bit // 8) % 4]
        bank.inject_bitflips(offset, [bit % bank.code.code_bits])


@dataclass
class RunResult:
    """Observable outcome of one SoC run."""

    cycles: int
    halted: bool
    uart: str
    ram: list[int]
    can_crcs: list[int]
    lockstep_mismatch_cycle: int | None = None
    ecc_corrections: int = 0
    ecc_uncorrectable: int = 0
    trace: list[str] = field(default_factory=list)


class AutoSoC:
    """One AutoSoC instance: CPU(s) + bus in a chosen safety configuration."""

    def __init__(self, program: list[int], config: SocConfig = SocConfig.QM) -> None:
        self.config = config
        self.bus = Bus(program, config, cycle_source=lambda: self.main.cycle)
        self.main = Cpu(self.bus)
        if config.has_lockstep:
            # the shadow core executes the same program on a private bus;
            # the comparator checks architectural state every cycle
            self.shadow_bus = Bus(program, SocConfig.QM,
                                  cycle_source=lambda: self.shadow.cycle)
            self.shadow = Cpu(self.shadow_bus)
        else:
            self.shadow = None
        self.lockstep_mismatch_cycle: int | None = None

    def inject_cpu_fault(self, fault: UnitFault) -> None:
        """Faults target the main core only (the shadow is the reference)."""
        self.main.inject(fault)

    def run(self, max_cycles: int = 50_000, ram_words: int = 64) -> RunResult:
        while not self.main.halted and self.main.cycle < max_cycles:
            self.main.step()
            if self.shadow is not None:
                self.shadow.step()
                if self.lockstep_mismatch_cycle is None and self._diverged():
                    self.lockstep_mismatch_cycle = self.main.cycle
        return RunResult(
            cycles=self.main.cycle,
            halted=self.main.halted,
            uart="".join(self.bus.uart),
            ram=self.bus.ram_snapshot(0, ram_words),
            can_crcs=[f.crc for f in self.bus.can_frames],
            lockstep_mismatch_cycle=self.lockstep_mismatch_cycle,
            ecc_corrections=self.bus.ecc_events,
            ecc_uncorrectable=self.bus.ecc_uncorrectable,
            trace=list(self.main.trace),
        )

    def _diverged(self) -> bool:
        """Lockstep comparator: architectural state plus bus transactions.

        Comparing bus writes is what catches LSU faults that corrupt a
        store address/value without touching any register.
        """
        if self.main.pc != self.shadow.pc or self.main.regs != self.shadow.regs:
            return True
        main_log = self.bus.write_log
        shadow_log = self.shadow_bus.write_log
        if len(main_log) != len(shadow_log):
            return True
        return bool(main_log) and main_log[-1] != shadow_log[-1]
