"""OR1K-lite: the AutoSoC CPU instruction set (paper IV.B).

A 32-bit RISC ISA modelled on the OR1200's ORBIS32 subset that the
AutoSoC benchmark builds on: 32 GPRs (r0 wired to zero), 16-bit signed
immediates, word-addressed loads/stores, compare-and-branch.

Encoding (32 bits)::

    R-type: [op:6][rd:5][ra:5][rb:5][unused:11]
    I-type: [op:6][rd:5][ra:5][imm:16]            (imm sign-extended)
    B-type: [op:6][ra:5][rb:5][offset:16]         (offset in words)
    J-type: [op:6][target:26]                     (absolute word address)

The assembler accepts labels, comments (`#`/`;`) and decimal/hex
immediates; ``disassemble`` inverts ``assemble`` exactly (property-
tested).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

WORD_MASK = 0xFFFFFFFF

R_TYPE = {"add": 0x00, "sub": 0x01, "and": 0x02, "or": 0x03, "xor": 0x04,
          "sll": 0x05, "srl": 0x06, "sra": 0x07, "mul": 0x08, "sltu": 0x09}
I_TYPE = {"addi": 0x10, "andi": 0x11, "ori": 0x12, "xori": 0x13,
          "slli": 0x14, "srli": 0x15, "movhi": 0x16, "lw": 0x17, "sw": 0x18}
B_TYPE = {"beq": 0x20, "bne": 0x21, "blt": 0x22, "bge": 0x23}
J_TYPE = {"j": 0x30, "jal": 0x31}
MISC = {"jr": 0x32, "nop": 0x3E, "halt": 0x3F}

OPCODES = {**R_TYPE, **I_TYPE, **B_TYPE, **J_TYPE, **MISC}
_BY_CODE = {code: name for name, code in OPCODES.items()}


@dataclass(frozen=True)
class Instruction:
    """A decoded instruction."""

    op: str
    rd: int = 0
    ra: int = 0
    rb: int = 0
    imm: int = 0
    target: int = 0

    @property
    def clazz(self) -> str:
        """Instruction class (feeds the security detector's trace model)."""
        if self.op in ("lw",):
            return "load"
        if self.op in ("sw",):
            return "store"
        if self.op in B_TYPE or self.op in ("j", "jr"):
            return "branch"
        if self.op == "jal":
            return "call"
        if self.op in ("halt", "nop"):
            return "ret" if self.op == "halt" else "alu"
        return "alu"


class AsmError(ValueError):
    """Assembly-time error with line context."""


def encode(ins: Instruction) -> int:
    """Instruction → 32-bit word."""
    op = OPCODES[ins.op]
    if ins.op in R_TYPE:
        return (op << 26) | (ins.rd << 21) | (ins.ra << 16) | (ins.rb << 11)
    if ins.op in I_TYPE:
        return (op << 26) | (ins.rd << 21) | (ins.ra << 16) | (ins.imm & 0xFFFF)
    if ins.op in B_TYPE:
        return (op << 26) | (ins.ra << 21) | (ins.rb << 16) | (ins.imm & 0xFFFF)
    if ins.op in J_TYPE:
        return (op << 26) | (ins.target & 0x3FFFFFF)
    if ins.op == "jr":
        return (op << 26) | (ins.ra << 16)
    return op << 26  # nop / halt


def _sext16(value: int) -> int:
    return value - 0x10000 if value & 0x8000 else value


def decode(word: int) -> Instruction:
    """32-bit word → instruction (raises on unknown opcode)."""
    op_code = (word >> 26) & 0x3F
    name = _BY_CODE.get(op_code)
    if name is None:
        raise AsmError(f"unknown opcode 0x{op_code:02x}")
    if name in R_TYPE:
        return Instruction(name, rd=(word >> 21) & 31, ra=(word >> 16) & 31,
                           rb=(word >> 11) & 31)
    if name in I_TYPE:
        return Instruction(name, rd=(word >> 21) & 31, ra=(word >> 16) & 31,
                           imm=_sext16(word & 0xFFFF))
    if name in B_TYPE:
        return Instruction(name, ra=(word >> 21) & 31, rb=(word >> 16) & 31,
                           imm=_sext16(word & 0xFFFF))
    if name in J_TYPE:
        return Instruction(name, target=word & 0x3FFFFFF)
    if name == "jr":
        return Instruction(name, ra=(word >> 16) & 31)
    return Instruction(name)


_REG = r"r(\d+)"
_IMM = r"(-?(?:0x[0-9a-fA-F]+|\d+))"
_SYM = r"([A-Za-z_][A-Za-z0-9_]*)"


def _reg(tok: str) -> int:
    m = re.fullmatch(_REG, tok.strip())
    if not m or not 0 <= int(m.group(1)) <= 31:
        raise AsmError(f"bad register {tok!r}")
    return int(m.group(1))


def _imm(tok: str, labels: dict[str, int]) -> int:
    tok = tok.strip()
    if re.fullmatch(_IMM, tok):
        return int(tok, 0)
    if tok in labels:
        return labels[tok]
    raise AsmError(f"bad immediate or unknown label {tok!r}")


def assemble(source: str, origin: int = 0) -> list[int]:
    """Two-pass assembler: text → encoded words.

    Branch targets written as labels become *relative word offsets*;
    jump targets become absolute word addresses.
    """
    lines = []
    for raw in source.splitlines():
        line = re.split(r"[#;]", raw, 1)[0].strip()
        if line:
            lines.append(line)

    # pass 1: label addresses
    labels: dict[str, int] = {}
    addr = origin
    for line in lines:
        if line.endswith(":"):
            labels[line[:-1].strip()] = addr
        else:
            addr += 1

    # pass 2: encode
    words: list[int] = []
    addr = origin
    for line in lines:
        if line.endswith(":"):
            continue
        parts = line.replace(",", " ").split()
        op = parts[0].lower()
        args = parts[1:]
        try:
            ins = _parse_one(op, args, labels, addr)
        except AsmError as exc:
            raise AsmError(f"{exc} in line {line!r}") from None
        words.append(encode(ins))
        addr += 1
    return words


def _parse_one(op: str, args: list[str], labels: dict[str, int],
               addr: int) -> Instruction:
    if op in R_TYPE:
        if len(args) != 3:
            raise AsmError(f"{op} needs rd, ra, rb")
        return Instruction(op, rd=_reg(args[0]), ra=_reg(args[1]), rb=_reg(args[2]))
    if op in ("lw", "sw"):
        # lw rd, off(ra)
        if len(args) != 2:
            raise AsmError(f"{op} needs reg, off(base)")
        m = re.fullmatch(rf"{_IMM}?\(\s*{_REG}\s*\)", args[1].strip())
        if not m:
            raise AsmError(f"bad memory operand {args[1]!r}")
        offset = int(m.group(1), 0) if m.group(1) else 0
        return Instruction(op, rd=_reg(args[0]), ra=int(m.group(2)), imm=offset)
    if op in I_TYPE:  # remaining immediates incl. movhi
        if len(args) != 3 and op != "movhi":
            raise AsmError(f"{op} needs rd, ra, imm")
        if op == "movhi":
            if len(args) != 2:
                raise AsmError("movhi needs rd, imm")
            return Instruction(op, rd=_reg(args[0]), imm=_imm(args[1], labels))
        return Instruction(op, rd=_reg(args[0]), ra=_reg(args[1]),
                           imm=_imm(args[2], labels))
    if op in B_TYPE:
        if len(args) != 3:
            raise AsmError(f"{op} needs ra, rb, target")
        target = args[2].strip()
        if target in labels:
            offset = labels[target] - (addr + 1)
        else:
            offset = _imm(target, {})
        return Instruction(op, ra=_reg(args[0]), rb=_reg(args[1]), imm=offset)
    if op in J_TYPE:
        if len(args) != 1:
            raise AsmError(f"{op} needs a target")
        return Instruction(op, target=_imm(args[0], labels))
    if op == "jr":
        if len(args) != 1:
            raise AsmError("jr needs a register")
        return Instruction(op, ra=_reg(args[0]))
    if op in ("nop", "halt"):
        return Instruction(op)
    raise AsmError(f"unknown mnemonic {op!r}")


def disassemble(words: list[int]) -> list[str]:
    """Encoded words → canonical text (one line per instruction)."""
    out = []
    for word in words:
        ins = decode(word)
        if ins.op in R_TYPE:
            out.append(f"{ins.op} r{ins.rd}, r{ins.ra}, r{ins.rb}")
        elif ins.op in ("lw", "sw"):
            out.append(f"{ins.op} r{ins.rd}, {ins.imm}(r{ins.ra})")
        elif ins.op == "movhi":
            out.append(f"movhi r{ins.rd}, {ins.imm}")
        elif ins.op in I_TYPE:
            out.append(f"{ins.op} r{ins.rd}, r{ins.ra}, {ins.imm}")
        elif ins.op in B_TYPE:
            out.append(f"{ins.op} r{ins.ra}, r{ins.rb}, {ins.imm}")
        elif ins.op in J_TYPE:
            out.append(f"{ins.op} {ins.target}")
        elif ins.op == "jr":
            out.append(f"jr r{ins.ra}")
        else:
            out.append(ins.op)
    return out
