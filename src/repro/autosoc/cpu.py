"""OR1K-lite CPU micro-architectural simulator with per-unit fault hooks.

The CPU is organized into named functional units (fetch, decode,
regfile, alu, lsu, branch) so faults can be injected where the RESCUE
test-generation work targets them: a stuck bit in the register file, a
transient flip on the ALU result, a decoder corrupting its opcode.  The
instruction-class trace each run produces doubles as input for the
program-flow anomaly detector (``repro.security.detector``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .isa import Instruction, WORD_MASK, decode

UNITS = ("fetch", "decode", "regfile", "alu", "lsu", "branch")


@dataclass(frozen=True)
class UnitFault:
    """A fault bound to one functional unit.

    ``kind`` ∈ {"transient", "stuck0", "stuck1"}; ``bit`` selects the
    corrupted data bit; transients apply only in ``[from_cycle,
    to_cycle)``, stuck faults always.
    """

    unit: str
    kind: str
    bit: int
    from_cycle: int = 0
    to_cycle: int = 1 << 62

    def __post_init__(self) -> None:
        if self.unit not in UNITS:
            raise ValueError(f"unknown unit {self.unit!r}; known {UNITS}")
        if self.kind not in ("transient", "stuck0", "stuck1"):
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def applies(self, cycle: int) -> bool:
        if self.kind == "transient":
            return self.from_cycle <= cycle < self.to_cycle
        return True

    def corrupt(self, value: int) -> int:
        if self.kind == "transient":
            return value ^ (1 << self.bit)
        if self.kind == "stuck0":
            return value & ~(1 << self.bit)
        return value | (1 << self.bit)


class Halted(Exception):
    """Raised internally when the CPU executes ``halt``."""


@dataclass
class Cpu:
    """A single OR1K-lite core attached to a bus-like memory object.

    ``bus`` must provide ``load_word(addr) -> int`` and
    ``store_word(addr, value)``.
    """

    bus: object
    regs: list[int] = field(default_factory=lambda: [0] * 32)
    pc: int = 0
    cycle: int = 0
    halted: bool = False
    faults: list[UnitFault] = field(default_factory=list)
    unit_usage: dict[str, int] = field(default_factory=lambda: {u: 0 for u in UNITS})
    trace: list[str] = field(default_factory=list)

    def inject(self, fault: UnitFault) -> None:
        self.faults.append(fault)

    # ------------------------------------------------------------------
    def _unit(self, unit: str, value: int) -> int:
        """Pass a value through a unit, applying any active faults."""
        self.unit_usage[unit] += 1
        for fault in self.faults:
            if fault.unit == unit and fault.applies(self.cycle):
                value = fault.corrupt(value)
        return value & WORD_MASK

    def _read_reg(self, idx: int) -> int:
        if idx == 0:
            return 0
        return self._unit("regfile", self.regs[idx])

    def _write_reg(self, idx: int, value: int) -> None:
        if idx != 0:
            self.regs[idx] = self._unit("regfile", value & WORD_MASK)

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction."""
        if self.halted:
            return
        word = self.bus.load_word(self.pc)
        word = self._unit("fetch", word)
        ins = self._decode(word)
        self.trace.append(ins.clazz)
        self.cycle += 1
        next_pc = self.pc + 1
        try:
            next_pc = self._execute(ins, next_pc)
        except Halted:
            self.halted = True
            return
        self.pc = next_pc & WORD_MASK

    def _decode(self, word: int) -> Instruction:
        word = self._unit("decode", word)
        try:
            return decode(word)
        except Exception:
            return Instruction("nop")  # corrupted opcode behaves as a bubble

    def _execute(self, ins: Instruction, next_pc: int) -> int:
        op = ins.op
        if op == "halt":
            raise Halted
        if op == "nop":
            return next_pc
        if op in ("add", "sub", "and", "or", "xor", "sll", "srl", "sra",
                  "mul", "sltu"):
            a, b = self._read_reg(ins.ra), self._read_reg(ins.rb)
            self._write_reg(ins.rd, self._unit("alu", _alu(op, a, b)))
            return next_pc
        if op in ("addi", "andi", "ori", "xori", "slli", "srli"):
            a = self._read_reg(ins.ra)
            imm = ins.imm & WORD_MASK if op != "addi" else ins.imm
            self._write_reg(ins.rd, self._unit("alu", _alu_imm(op, a, ins.imm)))
            del imm
            return next_pc
        if op == "movhi":
            self._write_reg(ins.rd, self._unit("alu", (ins.imm & 0xFFFF) << 16))
            return next_pc
        if op == "lw":
            addr = (self._read_reg(ins.ra) + ins.imm) & WORD_MASK
            addr = self._unit("lsu", addr)
            self._write_reg(ins.rd, self.bus.load_word(addr))
            return next_pc
        if op == "sw":
            addr = (self._read_reg(ins.ra) + ins.imm) & WORD_MASK
            addr = self._unit("lsu", addr)
            self.bus.store_word(addr, self._read_reg(ins.rd))
            return next_pc
        if op in ("beq", "bne", "blt", "bge"):
            a, b = self._read_reg(ins.ra), self._read_reg(ins.rb)
            taken = _branch_taken(op, a, b)
            decision = self._unit("branch", 1 if taken else 0)
            if decision & 1:
                return self.pc + 1 + ins.imm
            return next_pc
        if op == "j":
            return self._unit("branch", ins.target)
        if op == "jal":
            self._write_reg(31, next_pc)
            return self._unit("branch", ins.target)
        if op == "jr":
            return self._unit("branch", self._read_reg(ins.ra))
        raise ValueError(f"unhandled op {op!r}")  # pragma: no cover

    def run(self, max_cycles: int = 100_000) -> int:
        """Run until halt or budget exhaustion; returns cycles executed."""
        start = self.cycle
        while not self.halted and self.cycle - start < max_cycles:
            self.step()
        return self.cycle - start


def _alu(op: str, a: int, b: int) -> int:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "sll":
        return a << (b & 31)
    if op == "srl":
        return (a & WORD_MASK) >> (b & 31)
    if op == "sra":
        return _signed(a) >> (b & 31)
    if op == "mul":
        return a * b
    if op == "sltu":
        return 1 if (a & WORD_MASK) < (b & WORD_MASK) else 0
    raise ValueError(op)  # pragma: no cover


def _alu_imm(op: str, a: int, imm: int) -> int:
    if op == "addi":
        return a + imm
    if op == "andi":
        return a & (imm & 0xFFFF)
    if op == "ori":
        return a | (imm & 0xFFFF)
    if op == "xori":
        return a ^ (imm & 0xFFFF)
    if op == "slli":
        return a << (imm & 31)
    if op == "srli":
        return (a & WORD_MASK) >> (imm & 31)
    raise ValueError(op)  # pragma: no cover


def _branch_taken(op: str, a: int, b: int) -> bool:
    if op == "beq":
        return a == b
    if op == "bne":
        return a != b
    if op == "blt":
        return _signed(a) < _signed(b)
    return _signed(a) >= _signed(b)


def _signed(x: int) -> int:
    x &= WORD_MASK
    return x - 0x100000000 if x & 0x80000000 else x
