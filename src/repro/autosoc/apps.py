"""Representative AutoSoC applications (paper IV.B: "a few representative
applications").

Each application is OR1K-lite assembly plus an oracle validating the run
result, so fault-injection campaigns can classify silent data corruption
without per-app ad-hoc checks.  The set covers the automotive-flavoured
workloads the benchmark suite motivates: a control loop (cruise
control), bus communication (CAN frames), data integrity (CRC), and a
compute kernel (matrix multiply).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable

from .isa import assemble
from .soc import RAM_BASE, RunResult


@dataclass(frozen=True)
class Application:
    """A program, its entry state and its correctness oracle."""

    name: str
    source: str
    oracle: Callable[[RunResult], bool]
    max_cycles: int = 30_000

    def program(self) -> list[int]:
        return assemble(self.source)


# ----------------------------------------------------------------------
# fibonacci: writes fib(0..9) to RAM[0..9]
# ----------------------------------------------------------------------
_FIB_SRC = f"""
    addi r1, r0, 0          # fib(i-2)
    addi r2, r0, 1          # fib(i-1)
    addi r3, r0, 0          # i
    addi r4, r0, 10         # limit
    movhi r10, 0x0000
    ori  r10, r10, 0x2000   # RAM base
loop:
    sw   r1, 0(r10)
    add  r5, r1, r2
    add  r1, r0, r2
    add  r2, r0, r5
    addi r10, r10, 1
    addi r3, r3, 1
    blt  r3, r4, loop
    halt
"""


def _fib_oracle(result: RunResult) -> bool:
    expected = [0, 1, 1, 2, 3, 5, 8, 13, 21, 34]
    return result.halted and result.ram[:10] == expected


# ----------------------------------------------------------------------
# cruise control: integer P-controller tracking a setpoint profile
# ----------------------------------------------------------------------
_CRUISE_SRC = """
    addi r1, r0, 50         # current speed
    addi r2, r0, 90         # setpoint
    addi r3, r0, 0          # step counter
    addi r4, r0, 24         # steps
    movhi r10, 0x0000
    ori  r10, r10, 0x2000
loop:
    sub  r5, r2, r1         # error = setpoint - speed
    sra  r6, r5, r0         # throttle = error (P gain 1) -- sra by 0
    addi r7, r0, 2
    sra  r6, r5, r7         # throttle = error >> 2
    add  r1, r1, r6         # speed += throttle
    sw   r1, 0(r10)
    addi r10, r10, 1
    addi r3, r3, 1
    blt  r3, r4, loop
    sw   r1, 0(r10)         # final speed
    halt
"""


def _cruise_expected() -> list[int]:
    speed, setpoint = 50, 90
    trace = []
    for _ in range(24):
        error = setpoint - speed
        speed += error >> 2
        trace.append(speed)
    return trace + [speed]


def _cruise_oracle(result: RunResult) -> bool:
    expected = _cruise_expected()
    return result.halted and result.ram[:len(expected)] == expected


# ----------------------------------------------------------------------
# CAN telemetry: send two frames of sensor words; oracle checks CRCs
# ----------------------------------------------------------------------
_CAN_SRC = """
    movhi r10, 0x0000
    ori  r10, r10, 0xF020   # CAN_DATA
    addi r1, r0, 257        # sensor words
    addi r2, r0, 514
    sw   r1, 0(r10)
    sw   r2, 0(r10)
    addi r3, r0, 1
    sw   r3, 1(r10)         # SEND
    addi r1, r0, 1028
    sw   r1, 0(r10)
    sw   r3, 1(r10)         # SEND second frame
    halt
"""


def _can_oracle(result: RunResult) -> bool:
    frame1 = b"".join(w.to_bytes(4, "little") for w in (257, 514))
    frame2 = (1028).to_bytes(4, "little")
    expected = [zlib.crc32(frame1) & 0xFFFFFFFF, zlib.crc32(frame2) & 0xFFFFFFFF]
    return result.halted and result.can_crcs == expected


# ----------------------------------------------------------------------
# 3x3 matrix multiply: C = A*B with constant A, B; result to RAM[32..40]
# ----------------------------------------------------------------------
_MATMUL_SRC = """
    movhi r10, 0x0000
    ori  r10, r10, 0x2000   # A at RAM[0], B at RAM[9], C at RAM[32]
    # --- initialize A = 1..9, B = 9..1
    addi r1, r0, 0          # k
    addi r2, r0, 9
initA:
    addi r3, r1, 1
    add  r4, r10, r1
    sw   r3, 0(r4)
    addi r1, r1, 1
    blt  r1, r2, initA
    addi r1, r0, 0
initB:
    addi r3, r0, 9
    sub  r3, r3, r1
    add  r4, r10, r1
    sw   r3, 9(r4)
    addi r1, r1, 1
    blt  r1, r2, initB
    # --- C[i][j] = sum_k A[i][k] * B[k][j]
    addi r1, r0, 0          # i
rowloop:
    addi r2, r0, 0          # j
colloop:
    addi r5, r0, 0          # acc
    addi r3, r0, 0          # k
kloop:
    addi r6, r0, 3
    mul  r7, r1, r6         # i*3
    add  r7, r7, r3         # i*3+k
    add  r7, r10, r7
    lw   r8, 0(r7)          # A[i][k]
    mul  r7, r3, r6         # k*3
    add  r7, r7, r2
    add  r7, r10, r7
    lw   r9, 9(r7)          # B[k][j]
    mul  r8, r8, r9
    add  r5, r5, r8
    addi r3, r3, 1
    addi r6, r0, 3
    blt  r3, r6, kloop
    mul  r7, r1, r6
    add  r7, r7, r2
    add  r7, r10, r7
    sw   r5, 32(r7)         # C[i][j]
    addi r2, r2, 1
    addi r6, r0, 3
    blt  r2, r6, colloop
    addi r1, r1, 1
    blt  r1, r6, rowloop
    halt
"""


def _matmul_expected() -> list[int]:
    a = [[1, 2, 3], [4, 5, 6], [7, 8, 9]]
    b = [[9, 8, 7], [6, 5, 4], [3, 2, 1]]
    c = [[sum(a[i][k] * b[k][j] for k in range(3)) for j in range(3)]
         for i in range(3)]
    return [c[i][j] for i in range(3) for j in range(3)]


def _matmul_oracle(result: RunResult) -> bool:
    return result.halted and result.ram[32:41] == _matmul_expected()


APPLICATIONS: dict[str, Application] = {
    "fibonacci": Application("fibonacci", _FIB_SRC, _fib_oracle),
    "cruise_control": Application("cruise_control", _CRUISE_SRC, _cruise_oracle),
    "can_telemetry": Application("can_telemetry", _CAN_SRC, _can_oracle),
    "matmul": Application("matmul", _MATMUL_SRC, _matmul_oracle),
}
