"""SoC-level fault-injection campaigns (the E17 experiment).

Injects per-unit CPU transients and RAM SEUs into AutoSoC runs across
safety configurations and classifies each outcome:

* ``masked``        — application result correct, no mechanism fired;
* ``sdc``           — silent data corruption: oracle fails, nothing fired;
* ``detected_lockstep`` / ``corrected_ecc`` — a mechanism caught it
  (for lockstep also *when*: the detection latency);
* ``hang``          — the run did not halt within its cycle budget.

The campaign table per configuration is the AutoSoC safety-mechanism
comparison the paper's benchmark motivates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from .apps import Application
from .cpu import UNITS, UnitFault
from .soc import AutoSoC, SocConfig

MASKED = "masked"
SDC = "sdc"
DETECTED_LOCKSTEP = "detected_lockstep"
CORRECTED_ECC = "corrected_ecc"
DETECTED_ECC = "detected_ecc"
HANG = "hang"

OUTCOMES = (MASKED, SDC, DETECTED_LOCKSTEP, CORRECTED_ECC, DETECTED_ECC, HANG)


@dataclass(frozen=True)
class SocInjection:
    """One experiment: either a CPU unit transient or a RAM bit flip."""

    kind: str              # "cpu" | "ram"
    unit: str = ""         # for cpu faults
    bit: int = 0
    cycle: int = 0
    ram_offset: int = 0


@dataclass
class SocCampaignResult:
    """Outcome histogram plus detection latencies."""

    config: str
    app: str
    outcomes: dict[str, int] = field(default_factory=lambda: {o: 0 for o in OUTCOMES})
    lockstep_latencies: list[int] = field(default_factory=list)
    total: int = 0

    def rate(self, outcome: str) -> float:
        return self.outcomes.get(outcome, 0) / self.total if self.total else 0.0

    @property
    def dangerous_rate(self) -> float:
        """SDC + hang: the outcomes a safety case must drive to ~0."""
        return self.rate(SDC) + self.rate(HANG)

    @property
    def mean_detection_latency(self) -> float:
        if not self.lockstep_latencies:
            return 0.0
        return sum(self.lockstep_latencies) / len(self.lockstep_latencies)


def make_injections(
    app: Application,
    n_cpu: int = 40,
    n_ram: int = 20,
    seed: int = 0,
    golden_cycles: int | None = None,
) -> list[SocInjection]:
    """A mixed injection list sized to the app's golden run length."""
    rng = random.Random(seed)
    if golden_cycles is None:
        soc = AutoSoC(app.program(), SocConfig.QM)
        golden_cycles = soc.run(app.max_cycles).cycles
    horizon = max(2, golden_cycles - 1)
    injections = [
        SocInjection("cpu", unit=rng.choice(UNITS), bit=rng.randrange(32),
                     cycle=rng.randrange(horizon))
        for _ in range(n_cpu)
    ]
    injections += [
        SocInjection("ram", ram_offset=rng.randrange(16),
                     bit=rng.randrange(32), cycle=rng.randrange(horizon))
        for _ in range(n_ram)
    ]
    return injections


def run_injection(
    app: Application,
    config: SocConfig,
    injection: SocInjection,
) -> tuple[str, int | None]:
    """Execute one faulted run; returns (outcome, lockstep latency or None)."""
    soc = AutoSoC(app.program(), config)
    if injection.kind == "cpu":
        soc.inject_cpu_fault(UnitFault(
            injection.unit, "transient", injection.bit,
            from_cycle=injection.cycle, to_cycle=injection.cycle + 1))
        result = soc.run(app.max_cycles)
    else:
        # run to the injection cycle, flip the RAM bit, continue
        while not soc.main.halted and soc.main.cycle < injection.cycle:
            soc.main.step()
            if soc.shadow is not None:
                soc.shadow.step()
                if (soc.lockstep_mismatch_cycle is None and soc._diverged()):
                    soc.lockstep_mismatch_cycle = soc.main.cycle
        soc.bus.inject_ram_bitflip(injection.ram_offset, injection.bit)
        result = soc.run(app.max_cycles)

    correct = app.oracle(result)
    latency = None
    if result.lockstep_mismatch_cycle is not None:
        latency = result.lockstep_mismatch_cycle - injection.cycle
    if not result.halted:
        outcome = HANG
    elif correct:
        if result.lockstep_mismatch_cycle is not None:
            outcome = DETECTED_LOCKSTEP  # caught, and outcome stayed clean
        elif injection.kind == "ram" and result.ecc_corrections > 0:
            outcome = CORRECTED_ECC
        else:
            outcome = MASKED
    else:
        if result.lockstep_mismatch_cycle is not None:
            outcome = DETECTED_LOCKSTEP  # wrong result but flagged in time
        elif result.ecc_uncorrectable > 0:
            outcome = DETECTED_ECC
        else:
            outcome = SDC
    return outcome, latency


def run_campaign(
    app: Application,
    config: SocConfig,
    injections: list[SocInjection],
    db=None,
    workers: int = 1,
    executor: str = "auto",
) -> SocCampaignResult:
    """Full campaign for one (application, configuration) pair.

    Executes on the unified campaign engine: ``db`` streams every
    injection into a :class:`repro.core.campaign.CampaignDb`, and
    ``workers`` > 1 runs batches concurrently (faulted SoC runs are
    independent; ``executor`` picks threads, processes or auto) with
    results identical to the serial run.
    """
    from ..engine.backends import SocBackend
    from ..engine.core import EngineConfig, run_campaign as run_engine

    backend = SocBackend(app, config, injections)
    report = run_engine(backend,
                        EngineConfig(workers=workers, batch_size=8,
                                     executor=executor),
                        db=db)
    result = SocCampaignResult(config.value, app.name)
    for inj in report.injections:
        result.outcomes[inj.outcome] += 1
        result.total += 1
        if inj.detail is not None and inj.outcome == DETECTED_LOCKSTEP:
            result.lockstep_latencies.append(inj.detail)
    return result


def compare_configurations(
    app: Application,
    configs: list[SocConfig],
    n_cpu: int = 40,
    n_ram: int = 20,
    seed: int = 0,
    db=None,
    workers: int = 1,
    executor: str = "auto",
) -> dict[SocConfig, SocCampaignResult]:
    """The same injection list replayed against every configuration."""
    injections = make_injections(app, n_cpu, n_ram, seed)
    return {cfg: run_campaign(app, cfg, injections, db=db, workers=workers,
                              executor=executor)
            for cfg in configs}
