"""The AutoSoC open-source automotive benchmark (paper Section IV.B)."""

from .apps import APPLICATIONS, Application
from .cpu import UNITS, Cpu, UnitFault
from .fi import (
    CORRECTED_ECC,
    DETECTED_ECC,
    DETECTED_LOCKSTEP,
    HANG,
    MASKED,
    OUTCOMES,
    SDC,
    SocCampaignResult,
    SocInjection,
    compare_configurations,
    make_injections,
    run_campaign,
    run_injection,
)
from .isa import (
    AsmError,
    Instruction,
    OPCODES,
    assemble,
    decode,
    disassemble,
    encode,
)
from .soc import AutoSoC, Bus, CanFrame, RunResult, SocConfig

__all__ = [
    "APPLICATIONS",
    "Application",
    "AsmError",
    "AutoSoC",
    "Bus",
    "CORRECTED_ECC",
    "CanFrame",
    "Cpu",
    "DETECTED_ECC",
    "DETECTED_LOCKSTEP",
    "HANG",
    "Instruction",
    "MASKED",
    "OPCODES",
    "OUTCOMES",
    "RunResult",
    "SDC",
    "SocCampaignResult",
    "SocConfig",
    "SocInjection",
    "UNITS",
    "UnitFault",
    "assemble",
    "compare_configurations",
    "decode",
    "disassemble",
    "encode",
    "make_injections",
    "run_campaign",
    "run_injection",
]
