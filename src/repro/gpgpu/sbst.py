"""Software-based self-test for the GPGPU (III.A, [11][42][46]).

SBST kernels run as ordinary workloads but are constructed so that every
targeted structure influences a memory *signature* the host checks:

* the **scheduler kernel** makes each warp write a per-issue sequence
  number, so starvation or hijacking permutes the signature ([11]);
* the **mask kernel** has every lane write a lane-unique token, exposing
  stuck mask bits;
* the **pipeline kernel** funnels arithmetic through each lane's
  pipeline register with alternating 0x55/0xAA patterns, catching
  single-bit flips in either polarity ([42]).

``untestable_scheduler_faults`` reproduces the [46] observation: some
faults cannot produce any functional difference for a given kernel
configuration (e.g. scheduler faults on warps beyond the launched grid)
and must be excluded from the coverage denominator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .simt import MaskFault, PipeRegFault, SchedulerFault, SimtCore, SimtIns


def scheduler_test_kernel(warp_size: int = 8) -> list[SimtIns]:
    """Order-sensitive scheduler signature.

    Two parts: (a) each thread stores tid+1000 at mem[tid] — starvation
    leaves missing tokens; (b) a deliberate per-lane read-modify-write
    race on mem[lane+200]: with round-robin both warps read *before*
    either writes (a lost update), so the final value encodes the issue
    interleaving.  A hijacked scheduler serializes the warps and the
    race resolves differently — catching faults that only permute
    execution order without suppressing any write ([11]'s key point:
    scheduler faults need *functional* sequences, not just data tests).
    """
    return [
        SimtIns("tid", dst=0),
        SimtIns("addi", dst=1, a=0, imm=1000),
        SimtIns("stg", dst=1, a=0, imm=0),        # part (a): presence token
        SimtIns("addi", dst=6, a=5, imm=warp_size - 1),
        SimtIns("slt", dst=7, a=6, b=0),          # warp id (0/1 for 2 warps)
        SimtIns("addi", dst=7, a=7, imm=1),       # wid + 1
        SimtIns("and", dst=4, a=0, b=6),          # lane = tid & (ws-1)
        SimtIns("addi", dst=3, a=5, imm=4),
        SimtIns("ldg", dst=1, a=4, imm=200),      # racy read
        SimtIns("mul", dst=1, a=1, b=3),
        SimtIns("add", dst=1, a=1, b=7),
        SimtIns("stg", dst=1, a=4, imm=200),      # racy write
        SimtIns("halt"),
    ]


def mask_test_kernel() -> list[SimtIns]:
    """Lane-unique tokens plus two divergent sections.

    Stuck-0 mask bits suppress the baseline token.  Stuck-1 bits only
    matter while a lane *should* be inactive, so the kernel forces both
    parities through a divergent region: even lanes skip pc 6-7, odd
    lanes skip pc 10-11 — a stuck-1 lane of either parity then executes
    a section it must not, leaving an extra token.
    """
    return [
        SimtIns("tid", dst=0),
        SimtIns("addi", dst=3, a=5, imm=1),     # r3 = 1 (r5 reads 0)
        SimtIns("and", dst=2, a=0, b=3),        # r2 = parity(tid)
        SimtIns("addi", dst=1, a=0, imm=0x55),
        SimtIns("stg", dst=1, a=0, imm=0),      # baseline token
        SimtIns("branch_ez", a=2, imm=8),       # even lanes skip odd section
        SimtIns("addi", dst=1, a=0, imm=0xAA),  # odd lanes only
        SimtIns("stg", dst=1, a=0, imm=64),
        SimtIns("sub", dst=4, a=3, b=2),        # r4 = 1 - parity
        SimtIns("branch_ez", a=4, imm=12),      # odd lanes skip even section
        SimtIns("addi", dst=1, a=0, imm=0x77),  # even lanes only
        SimtIns("stg", dst=1, a=0, imm=96),
        SimtIns("halt"),
    ]


def pipeline_test_kernel() -> list[SimtIns]:
    """Alternating-pattern arithmetic exposing pipeline-register flips."""
    return [
        SimtIns("tid", dst=0),
        SimtIns("addi", dst=1, a=0, imm=0x5555),
        SimtIns("addi", dst=2, a=0, imm=0x2AAA),
        SimtIns("add", dst=3, a=1, b=2),
        SimtIns("stg", dst=3, a=0, imm=0),
        SimtIns("sub", dst=4, a=3, b=1),
        SimtIns("stg", dst=4, a=0, imm=64),
        SimtIns("mul", dst=5, a=4, b=2),
        SimtIns("stg", dst=5, a=0, imm=128),
        SimtIns("halt"),
    ]


def run_kernel(kernel: list[SimtIns], faults: list[object] | None = None,
               n_warps: int = 2, warp_size: int = 8) -> list[int]:
    """Run a kernel; the signature is the full memory image."""
    core = SimtCore(kernel, n_warps=n_warps, warp_size=warp_size)
    for fault in faults or []:
        core.inject(fault)
    core.run()
    return list(core.memory)


def gpgpu_fault_universe(n_warps: int = 2, warp_size: int = 8) -> list[object]:
    """The structural fault list for one core configuration.

    Pipeline-register transients are placed on an issue slot where their
    warp actually executes: with round-robin scheduling warp *w* owns
    issue slots ``k·n_warps + w``, so slot ``2·n_warps + w`` is warp w's
    third instruction — inside every SBST kernel's compute section.
    """
    faults: list[object] = []
    for w in range(n_warps):
        faults.append(SchedulerFault("starve", w))
        faults.append(SchedulerFault("hijack", w, (w + 1) % max(1, n_warps)))
        for lane in range(warp_size):
            faults.append(MaskFault(w, lane, 0))
            faults.append(MaskFault(w, lane, 1))
    for w in range(n_warps):
        for lane in (0, warp_size - 1):
            for bit in (0, 7, 13):
                faults.append(PipeRegFault(w, lane, bit,
                                           at_issue=2 * n_warps + w))
    return faults


@dataclass
class SbstReport:
    """Coverage of one SBST kernel suite over a fault universe."""

    detected: list[object] = field(default_factory=list)
    undetected: list[object] = field(default_factory=list)
    untestable: list[object] = field(default_factory=list)

    @property
    def raw_coverage(self) -> float:
        total = len(self.detected) + len(self.undetected) + len(self.untestable)
        return len(self.detected) / total if total else 1.0

    @property
    def effective_coverage(self) -> float:
        """Coverage with untestable faults removed from the denominator —
        the corrected figure the [46] methodology produces."""
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0


def untestable_scheduler_faults(faults: list[object], launched_warps: int) -> list[object]:
    """Faults on structures the kernel configuration never exercises."""
    untestable = []
    for fault in faults:
        if isinstance(fault, SchedulerFault) and fault.victim >= launched_warps:
            untestable.append(fault)
        if isinstance(fault, MaskFault) and fault.warp >= launched_warps:
            untestable.append(fault)
        if isinstance(fault, PipeRegFault) and fault.warp >= launched_warps:
            untestable.append(fault)
    return untestable


def run_sbst_suite(
    n_warps: int = 2,
    warp_size: int = 8,
    launched_warps: int | None = None,
) -> SbstReport:
    """Run the three SBST kernels against the full fault universe.

    ``launched_warps`` < ``n_warps`` models the [46] configuration gap:
    hardware warps the workload never launches are functionally
    untestable for it.
    """
    if launched_warps is None:
        launched_warps = n_warps
    kernels = [scheduler_test_kernel(warp_size), mask_test_kernel(),
               pipeline_test_kernel()]
    goldens = [run_kernel(k, None, launched_warps, warp_size) for k in kernels]

    universe = gpgpu_fault_universe(n_warps, warp_size)
    structurally_untestable = set(
        id(f) for f in untestable_scheduler_faults(universe, launched_warps))
    report = SbstReport()
    for fault in universe:
        if id(fault) in structurally_untestable:
            report.untestable.append(fault)
            continue
        caught = False
        for kernel, golden in zip(kernels, goldens):
            observed = run_kernel(kernel, [fault], launched_warps, warp_size)
            if observed != golden:
                caught = True
                break
        if caught:
            report.detected.append(fault)
        else:
            report.undetected.append(fault)
    return report
