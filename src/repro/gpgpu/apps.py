"""GPGPU application kernels and the encoding-style reliability study.

[25] evaluates SEU effects on typical GPGPU applications; [40] shows
that *how* software encodes the same computation changes its fault
vulnerability.  Two encodings of the same saturating-add workload are
provided:

* **branchy** — per-thread data-dependent branch (divergence: more
  issue slots, state in the divergence machinery);
* **predicated** — branch-free arithmetic (select via masks computed in
  registers).

The campaign injects pipeline-register transients at random issue slots
and compares outcome distributions (masked / SDC) between encodings —
the [40] experiment shape — plus a plain SEU study on vector-add and
reduction kernels ([25]).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .simt import PipeRegFault, SimtCore, SimtIns


def vector_add_kernel() -> list[SimtIns]:
    """mem[tid+128] = mem[tid] + mem[tid+64]."""
    return [
        SimtIns("tid", dst=0),
        SimtIns("ldg", dst=1, a=0, imm=0),
        SimtIns("ldg", dst=2, a=0, imm=64),
        SimtIns("add", dst=3, a=1, b=2),
        SimtIns("stg", dst=3, a=0, imm=128),
        SimtIns("halt"),
    ]


def reduction_kernel() -> list[SimtIns]:
    """Per-thread partial sums: mem[tid+128] = mem[tid] + mem[tid+32] + mem[tid+64]."""
    return [
        SimtIns("tid", dst=0),
        SimtIns("ldg", dst=1, a=0, imm=0),
        SimtIns("ldg", dst=2, a=0, imm=32),
        SimtIns("add", dst=1, a=1, b=2),
        SimtIns("ldg", dst=2, a=0, imm=64),
        SimtIns("add", dst=1, a=1, b=2),
        SimtIns("stg", dst=1, a=0, imm=128),
        SimtIns("halt"),
    ]


def saturating_add_branchy(limit: int = 100) -> list[SimtIns]:
    """out = min(a + b, limit) using a data-dependent branch.

    The comparison is kept unsigned-safe: ``over = (limit < sum)`` with
    the limit materialized in a register (r5 is never written, so it
    reads 0 and serves as the zero source).
    """
    return [
        SimtIns("tid", dst=0),
        SimtIns("ldg", dst=1, a=0, imm=0),
        SimtIns("ldg", dst=2, a=0, imm=64),
        SimtIns("add", dst=3, a=1, b=2),
        SimtIns("addi", dst=6, a=5, imm=limit),    # r6 = limit
        SimtIns("slt", dst=4, a=6, b=3),           # over = limit < sum
        SimtIns("branch_ez", a=4, imm=8),          # if not over: skip clamp
        SimtIns("add", dst=3, a=6, b=5),           # clamp: r3 = limit
        SimtIns("stg", dst=3, a=0, imm=128),
        SimtIns("halt"),
    ]


def saturating_add_predicated(limit: int = 100) -> list[SimtIns]:
    """Branch-free encoding: out = sum*(1-over) + limit*over."""
    return [
        SimtIns("tid", dst=0),
        SimtIns("ldg", dst=1, a=0, imm=0),
        SimtIns("ldg", dst=2, a=0, imm=64),
        SimtIns("add", dst=3, a=1, b=2),
        SimtIns("addi", dst=4, a=5, imm=limit),    # r4 = limit
        SimtIns("slt", dst=6, a=4, b=3),           # over = limit < sum
        SimtIns("addi", dst=7, a=5, imm=1),
        SimtIns("sub", dst=7, a=7, b=6),           # keep = 1 - over
        SimtIns("mul", dst=3, a=3, b=7),           # sum*keep
        SimtIns("mul", dst=4, a=4, b=6),           # limit*over
        SimtIns("add", dst=3, a=3, b=4),
        SimtIns("stg", dst=3, a=0, imm=128),
        SimtIns("halt"),
    ]


def _run(kernel: list[SimtIns], inputs: list[int], faults: list[object],
         n_warps: int = 2, warp_size: int = 8) -> tuple[list[int], int]:
    core = SimtCore(kernel, n_warps=n_warps, warp_size=warp_size)
    for i, value in enumerate(inputs):
        core.memory[i] = value
    for fault in faults:
        core.inject(fault)
    issues = core.run()
    return core.memory[128:128 + core.n_threads], issues


@dataclass
class EncodingStudyResult:
    """The [40]-style comparison row for one encoding."""

    encoding: str
    issue_slots: int
    masked: int
    sdc: int
    injections: int

    @property
    def sdc_rate(self) -> float:
        return self.sdc / self.injections if self.injections else 0.0


def encoding_style_study(
    n_injections: int = 60,
    limit: int = 100,
    seed: int = 0,
) -> list[EncodingStudyResult]:
    """Inject pipeline transients into both encodings of the same kernel."""
    rng = random.Random(seed)
    inputs = [rng.randrange(90) for _ in range(128)]
    results = []
    for name, kernel in (("branchy", saturating_add_branchy(limit)),
                         ("predicated", saturating_add_predicated(limit))):
        golden, golden_issues = _run(kernel, inputs, [])
        masked = sdc = 0
        for k in range(n_injections):
            fault = PipeRegFault(
                warp=rng.randrange(2), lane=rng.randrange(8),
                bit=rng.randrange(16), at_issue=rng.randrange(golden_issues))
            observed, _ = _run(kernel, inputs, [fault])
            if observed == golden:
                masked += 1
            else:
                sdc += 1
        results.append(EncodingStudyResult(name, golden_issues, masked, sdc,
                                           n_injections))
    return results


def seu_campaign_on_kernel(
    kernel: list[SimtIns],
    n_injections: int = 80,
    seed: int = 0,
) -> dict[str, float]:
    """Random pipeline-register SEUs on one kernel: outcome rates ([25])."""
    rng = random.Random(seed)
    inputs = [rng.randrange(256) for _ in range(128)]
    golden, golden_issues = _run(kernel, inputs, [])
    masked = sdc = 0
    for _ in range(n_injections):
        fault = PipeRegFault(
            warp=rng.randrange(2), lane=rng.randrange(8),
            bit=rng.randrange(32), at_issue=rng.randrange(golden_issues))
        observed, _ = _run(kernel, inputs, [fault])
        if observed == golden:
            masked += 1
        else:
            sdc += 1
    return {"masked": masked / n_injections, "sdc": sdc / n_injections,
            "issue_slots": float(golden_issues)}
