"""GPGPU application kernels and the encoding-style reliability study.

[25] evaluates SEU effects on typical GPGPU applications; [40] shows
that *how* software encodes the same computation changes its fault
vulnerability.  Two encodings of the same saturating-add workload are
provided:

* **branchy** — per-thread data-dependent branch (divergence: more
  issue slots, state in the divergence machinery);
* **predicated** — branch-free arithmetic (select via masks computed in
  registers).

The campaign injects pipeline-register transients at random issue slots
and compares outcome distributions (masked / SDC) between encodings —
the [40] experiment shape — plus a plain SEU study on vector-add and
reduction kernels ([25]).  Both studies execute on the unified campaign
engine via :class:`repro.engine.GpgpuSeuBackend`, keeping their result
types while gaining ``db=``/``workers=``/``executor=``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .simt import PipeRegFault, SimtCore, SimtIns


def vector_add_kernel() -> list[SimtIns]:
    """mem[tid+128] = mem[tid] + mem[tid+64]."""
    return [
        SimtIns("tid", dst=0),
        SimtIns("ldg", dst=1, a=0, imm=0),
        SimtIns("ldg", dst=2, a=0, imm=64),
        SimtIns("add", dst=3, a=1, b=2),
        SimtIns("stg", dst=3, a=0, imm=128),
        SimtIns("halt"),
    ]


def reduction_kernel() -> list[SimtIns]:
    """Per-thread partial sums: mem[tid+128] = mem[tid] + mem[tid+32] + mem[tid+64]."""
    return [
        SimtIns("tid", dst=0),
        SimtIns("ldg", dst=1, a=0, imm=0),
        SimtIns("ldg", dst=2, a=0, imm=32),
        SimtIns("add", dst=1, a=1, b=2),
        SimtIns("ldg", dst=2, a=0, imm=64),
        SimtIns("add", dst=1, a=1, b=2),
        SimtIns("stg", dst=1, a=0, imm=128),
        SimtIns("halt"),
    ]


def saturating_add_branchy(limit: int = 100) -> list[SimtIns]:
    """out = min(a + b, limit) using a data-dependent branch.

    The comparison is kept unsigned-safe: ``over = (limit < sum)`` with
    the limit materialized in a register (r5 is never written, so it
    reads 0 and serves as the zero source).
    """
    return [
        SimtIns("tid", dst=0),
        SimtIns("ldg", dst=1, a=0, imm=0),
        SimtIns("ldg", dst=2, a=0, imm=64),
        SimtIns("add", dst=3, a=1, b=2),
        SimtIns("addi", dst=6, a=5, imm=limit),    # r6 = limit
        SimtIns("slt", dst=4, a=6, b=3),           # over = limit < sum
        SimtIns("branch_ez", a=4, imm=8),          # if not over: skip clamp
        SimtIns("add", dst=3, a=6, b=5),           # clamp: r3 = limit
        SimtIns("stg", dst=3, a=0, imm=128),
        SimtIns("halt"),
    ]


def saturating_add_predicated(limit: int = 100) -> list[SimtIns]:
    """Branch-free encoding: out = sum*(1-over) + limit*over."""
    return [
        SimtIns("tid", dst=0),
        SimtIns("ldg", dst=1, a=0, imm=0),
        SimtIns("ldg", dst=2, a=0, imm=64),
        SimtIns("add", dst=3, a=1, b=2),
        SimtIns("addi", dst=4, a=5, imm=limit),    # r4 = limit
        SimtIns("slt", dst=6, a=4, b=3),           # over = limit < sum
        SimtIns("addi", dst=7, a=5, imm=1),
        SimtIns("sub", dst=7, a=7, b=6),           # keep = 1 - over
        SimtIns("mul", dst=3, a=3, b=7),           # sum*keep
        SimtIns("mul", dst=4, a=4, b=6),           # limit*over
        SimtIns("add", dst=3, a=3, b=4),
        SimtIns("stg", dst=3, a=0, imm=128),
        SimtIns("halt"),
    ]


def _run(kernel: list[SimtIns], inputs: list[int], faults: list[object],
         n_warps: int = 2, warp_size: int = 8) -> tuple[list[int], int]:
    core = SimtCore(kernel, n_warps=n_warps, warp_size=warp_size)
    for i, value in enumerate(inputs):
        core.memory[i] = value
    for fault in faults:
        core.inject(fault)
    issues = core.run()
    return core.memory[128:128 + core.n_threads], issues


@dataclass
class EncodingStudyResult:
    """The [40]-style comparison row for one encoding."""

    encoding: str
    issue_slots: int
    masked: int
    sdc: int
    injections: int

    @property
    def sdc_rate(self) -> float:
        return self.sdc / self.injections if self.injections else 0.0


def _draw_faults(rng: random.Random, n: int, bits: int,
                 golden_issues: int) -> list[PipeRegFault]:
    """The fault sequence of the pre-engine loops, draw for draw."""
    return [PipeRegFault(warp=rng.randrange(2), lane=rng.randrange(8),
                         bit=rng.randrange(bits),
                         at_issue=rng.randrange(golden_issues))
            for _ in range(n)]


def _seu_report(kernel: list[SimtIns], inputs: list[int],
                faults: list[PipeRegFault], label: str,
                db, workers: int, executor: str):
    """Run one GPGPU SEU campaign on the unified engine."""
    from ..engine.core import EngineConfig, run_campaign
    from ..engine.workloads import GpgpuSeuBackend

    backend = GpgpuSeuBackend(kernel, inputs, faults, label=label)
    return run_campaign(
        backend, EngineConfig(batch_size=16, workers=workers,
                              executor=executor), db=db)


def encoding_style_study(
    n_injections: int = 60,
    limit: int = 100,
    seed: int = 0,
    db=None,
    workers: int = 1,
    executor: str = "auto",
) -> list[EncodingStudyResult]:
    """Inject pipeline transients into both encodings of the same kernel.

    Both encodings run as **one** engine campaign (a
    :class:`repro.engine.CompositeBackend` with one part per encoding),
    so campaign setup — and, on the process executor, worker spawn and
    backend shipping — is paid once instead of per round.  The fault
    sequences continue a single RNG stream exactly like the pre-engine
    loop, so the outcome counts are draw-for-draw identical.
    """
    from ..engine.core import EngineConfig, run_campaign
    from ..engine.workloads import CompositeBackend, GpgpuSeuBackend

    rng = random.Random(seed)
    inputs = [rng.randrange(90) for _ in range(128)]
    rounds = []
    for name, kernel in (("branchy", saturating_add_branchy(limit)),
                         ("predicated", saturating_add_predicated(limit))):
        _golden, golden_issues = _run(kernel, inputs, [])
        faults = _draw_faults(rng, n_injections, 16, golden_issues)
        rounds.append((name, kernel, golden_issues, faults))
    backend = CompositeBackend(
        [(name, GpgpuSeuBackend(kernel, inputs, faults, label=name))
         for name, kernel, _issues, faults in rounds])
    report = run_campaign(
        backend, EngineConfig(batch_size=16, workers=workers,
                              executor=executor), db=db)
    by_tag: dict[str, dict[str, int]] = {name: {} for name, *_ in rounds}
    for inj in report.injections:
        counts = by_tag[inj.point[0]]
        counts[inj.outcome] = counts.get(inj.outcome, 0) + 1
    return [EncodingStudyResult(
        name, golden_issues, masked=by_tag[name].get("masked", 0),
        sdc=by_tag[name].get("sdc", 0), injections=n_injections)
        for name, _kernel, golden_issues, _faults in rounds]


def seu_campaign_on_kernel(
    kernel: list[SimtIns],
    n_injections: int = 80,
    seed: int = 0,
    db=None,
    workers: int = 1,
    executor: str = "auto",
) -> dict[str, float]:
    """Random pipeline-register SEUs on one kernel: outcome rates ([25]).

    Runs on the unified campaign engine (``db``/``workers``/``executor``
    passthrough); inputs and fault sequence match the pre-port loop, so
    the rates are injection-for-injection identical.
    """
    rng = random.Random(seed)
    inputs = [rng.randrange(256) for _ in range(128)]
    _golden, golden_issues = _run(kernel, inputs, [])
    faults = _draw_faults(rng, n_injections, 32, golden_issues)
    report = _seu_report(kernel, inputs, faults, "kernel", db, workers,
                         executor)
    return {"masked": report.count("masked") / n_injections,
            "sdc": report.count("sdc") / n_injections,
            "issue_slots": float(golden_issues)}
