"""A FlexGrip-style SIMT GPGPU core (paper III.A/III.B).

The RESCUE GPGPU work ([11], [25], [40]-[43], [46]) models an
OpenCL-class device: warps of threads execute one instruction per issue
slot in lockstep under a predicate mask, a warp scheduler picks the next
ready warp, and divergence is handled with a reconvergence stack.  This
simulator reproduces that micro-architecture at the fidelity the
experiments need:

* a **warp scheduler** (round-robin) whose state is a fault target —
  [11]'s "functional test of the GPGPU scheduler";
* per-warp **active masks** and a divergence stack — mask bits are fault
  targets;
* **pipeline registers** between issue and writeback — [42]'s fault
  site;
* a small SIMT ISA sufficient for the kernels of [25]/[40].

Kernels are lists of :class:`SimtIns`; thread-ID-dependent control flow
uses the ``tid`` special register.
"""

from __future__ import annotations

from dataclasses import dataclass, field

WORD = 0xFFFFFFFF

#: Default issue-slot budget of one kernel run — shared by every path
#: that replays or resumes a core, so forked/partial runs stay bit-exact
#: with a from-scratch run.
MAX_ISSUES = 10_000

#: ops: (dst, a, b) registers unless noted
SIMT_OPS = ("add", "sub", "mul", "and", "or", "xor", "slt",
            "addi",      # dst, a, imm
            "ldg",       # dst <- mem[a + imm]
            "stg",       # mem[a + imm] <- dst
            "tid",       # dst <- global thread id
            "branch_ez", # if reg a == 0: jump to imm (uniform per-thread)
            "jump",      # unconditional jump to imm
            "halt")


@dataclass(frozen=True)
class SimtIns:
    """One SIMT instruction."""

    op: str
    dst: int = 0
    a: int = 0
    b: int = 0
    imm: int = 0

    def __post_init__(self) -> None:
        if self.op not in SIMT_OPS:
            raise ValueError(f"unknown SIMT op {self.op!r}")


@dataclass(frozen=True)
class SchedulerFault:
    """Warp-scheduler corruption: warp ``victim`` is never scheduled
    (starvation) or replaces ``impostor``'s slot (double issue)."""

    kind: str  # "starve" | "hijack"
    victim: int
    impostor: int = 0


@dataclass(frozen=True)
class MaskFault:
    """A stuck bit in one warp's active mask."""

    warp: int
    lane: int
    stuck_to: int


@dataclass(frozen=True)
class PipeRegFault:
    """Transient flip in the issue→writeback pipeline register of a lane."""

    warp: int
    lane: int
    bit: int
    at_issue: int  # global issue-slot index


@dataclass
class Warp:
    """One warp's architectural state."""

    wid: int
    size: int
    pc: int = 0
    active_mask: int = 0
    regs: list[list[int]] = field(default_factory=list)
    done: bool = False
    stack: list[tuple[int, int]] = field(default_factory=list)  # (rejoin pc, mask)


class SimtCore:
    """The SIMT core: warps × lanes over a shared global memory."""

    def __init__(self, kernel: list[SimtIns], n_warps: int = 2,
                 warp_size: int = 8, mem_words: int = 256,
                 n_regs: int = 8) -> None:
        self.kernel = kernel
        self.warp_size = warp_size
        self.memory = [0] * mem_words
        self.warps = []
        for w in range(n_warps):
            warp = Warp(w, warp_size, active_mask=(1 << warp_size) - 1,
                        regs=[[0] * n_regs for _ in range(warp_size)])
            self.warps.append(warp)
        self.faults: list[object] = []
        self.issue_count = 0
        self.schedule_trace: list[int] = []

    def inject(self, fault: object) -> None:
        self.faults.append(fault)

    # ------------------------------------------------------------------
    def _next_warp(self, rr_pointer: int) -> Warp | None:
        order = [(rr_pointer + i) % len(self.warps) for i in range(len(self.warps))]
        for idx in order:
            warp = self.warps[idx]
            if warp.done:
                continue
            chosen = warp
            for fault in self.faults:
                if isinstance(fault, SchedulerFault):
                    if fault.kind == "starve" and chosen.wid == fault.victim:
                        chosen = None
                    elif (fault.kind == "hijack" and chosen is not None
                          and chosen.wid == fault.victim):
                        impostor = self.warps[fault.impostor % len(self.warps)]
                        if not impostor.done:
                            chosen = impostor
            if chosen is not None:
                return chosen
        return None

    def _effective_mask(self, warp: Warp) -> int:
        mask = warp.active_mask
        for fault in self.faults:
            if isinstance(fault, MaskFault) and fault.warp == warp.wid:
                if fault.stuck_to:
                    mask |= 1 << fault.lane
                else:
                    mask &= ~(1 << fault.lane)
        return mask & ((1 << warp.size) - 1)

    def _writeback(self, warp: Warp, lane: int, value: int) -> int:
        for fault in self.faults:
            if (isinstance(fault, PipeRegFault) and fault.warp == warp.wid
                    and fault.lane == lane and fault.at_issue == self.issue_count):
                value ^= 1 << fault.bit
        return value & WORD

    def fork(self) -> "SimtCore":
        """An independent copy of the architectural state (registers,
        memory, divergence stacks, issue count).  The kernel is shared
        (immutable) and the schedule trace starts fresh; resuming a fork
        with :meth:`run`'s ``rr`` continuation reproduces a from-scratch
        run exactly — the snapshot trick golden-prefix fault campaigns
        use to avoid replaying the fault-free prefix per injection."""
        clone = SimtCore.__new__(SimtCore)
        clone.kernel = self.kernel
        clone.warp_size = self.warp_size
        clone.memory = list(self.memory)
        clone.warps = [Warp(w.wid, w.size, w.pc, w.active_mask,
                            [regs[:] for regs in w.regs], w.done,
                            list(w.stack)) for w in self.warps]
        clone.faults = list(self.faults)
        clone.issue_count = self.issue_count
        clone.schedule_trace = []
        return clone

    # ------------------------------------------------------------------
    def run(self, max_issues: int = MAX_ISSUES, rr: int = 0) -> int:
        """Execute until all warps halt; returns issue slots consumed.

        ``rr`` seeds the round-robin pointer — pass ``(last scheduled
        warp + 1) % n_warps`` to continue a partially-run core exactly
        where a single uninterrupted run would be."""
        rr = rr % len(self.warps)
        start = self.issue_count
        while self.issue_count - start < max_issues:
            warp = self._next_warp(rr)
            if warp is None:
                break
            rr = (warp.wid + 1) % len(self.warps)
            self.schedule_trace.append(warp.wid)
            self._issue(warp)
            self.issue_count += 1
        return self.issue_count - start

    def _issue(self, warp: Warp) -> None:
        if warp.pc >= len(self.kernel):
            warp.done = True
            return
        ins = self.kernel[warp.pc]
        mask = self._effective_mask(warp)
        next_pc = warp.pc + 1
        if ins.op == "halt":
            warp.done = True
            return
        if ins.op == "jump":
            warp.pc = ins.imm
            return
        if ins.op == "branch_ez":
            # per-thread predicate; divergence via stack
            taken_mask = 0
            for lane in range(warp.size):
                if not (mask >> lane) & 1:
                    continue
                if warp.regs[lane][ins.a] == 0:
                    taken_mask |= 1 << lane
            fallthrough_mask = mask & ~taken_mask
            if taken_mask and fallthrough_mask:
                # execute fallthrough first, then the taken side
                warp.stack.append((ins.imm, taken_mask))
                warp.active_mask = fallthrough_mask
                warp.pc = next_pc
            elif taken_mask:
                warp.pc = ins.imm
            else:
                warp.pc = next_pc
            return
        for lane in range(warp.size):
            if not (mask >> lane) & 1:
                continue
            self._lane_exec(warp, lane, ins)
        warp.pc = next_pc
        # reconvergence: a lane partition finished when pc reaches rejoin
        while warp.stack and warp.pc == warp.stack[-1][0]:
            rejoin_pc, other_mask = warp.stack.pop()
            warp.active_mask |= other_mask
            del rejoin_pc

    def _lane_exec(self, warp: Warp, lane: int, ins: SimtIns) -> None:
        regs = warp.regs[lane]
        op = ins.op
        if op == "tid":
            value = warp.wid * warp.size + lane
        elif op == "addi":
            value = (regs[ins.a] + ins.imm) & WORD
        elif op == "ldg":
            addr = (regs[ins.a] + ins.imm) % len(self.memory)
            value = self.memory[addr]
        elif op == "stg":
            addr = (regs[ins.a] + ins.imm) % len(self.memory)
            self.memory[addr] = self._writeback(warp, lane, regs[ins.dst])
            return
        elif op == "slt":
            value = 1 if regs[ins.a] < regs[ins.b] else 0
        elif op == "add":
            value = (regs[ins.a] + regs[ins.b]) & WORD
        elif op == "sub":
            value = (regs[ins.a] - regs[ins.b]) & WORD
        elif op == "mul":
            value = (regs[ins.a] * regs[ins.b]) & WORD
        elif op == "and":
            value = regs[ins.a] & regs[ins.b]
        elif op == "or":
            value = regs[ins.a] | regs[ins.b]
        elif op == "xor":
            value = regs[ins.a] ^ regs[ins.b]
        else:  # pragma: no cover - op set is closed
            raise ValueError(op)
        regs[ins.dst] = self._writeback(warp, lane, value)

    # ------------------------------------------------------------------
    @property
    def n_threads(self) -> int:
        return len(self.warps) * self.warp_size
