"""FlexGrip-style SIMT GPGPU: core, SBST kernels, reliability studies."""

from .apps import (
    EncodingStudyResult,
    encoding_style_study,
    reduction_kernel,
    saturating_add_branchy,
    saturating_add_predicated,
    seu_campaign_on_kernel,
    vector_add_kernel,
)
from .sbst import (
    SbstReport,
    gpgpu_fault_universe,
    mask_test_kernel,
    pipeline_test_kernel,
    run_kernel,
    run_sbst_suite,
    scheduler_test_kernel,
    untestable_scheduler_faults,
)
from .simt import (
    MaskFault,
    PipeRegFault,
    SchedulerFault,
    SimtCore,
    SimtIns,
    Warp,
)

__all__ = [
    "EncodingStudyResult",
    "MaskFault",
    "PipeRegFault",
    "SbstReport",
    "SchedulerFault",
    "SimtCore",
    "SimtIns",
    "Warp",
    "encoding_style_study",
    "gpgpu_fault_universe",
    "mask_test_kernel",
    "pipeline_test_kernel",
    "reduction_kernel",
    "run_kernel",
    "run_sbst_suite",
    "saturating_add_branchy",
    "saturating_add_predicated",
    "scheduler_test_kernel",
    "seu_campaign_on_kernel",
    "untestable_scheduler_faults",
    "vector_add_kernel",
]
