"""Fault models, universes, collapsing and statistical sampling."""

from .models import (
    DelayFault,
    DelayFaultKind,
    Fault,
    Line,
    SETFault,
    SEUFault,
    StuckAtFault,
)
from .sampling import draw_sample, sample_size, stratified_sample
from .universe import all_stuck_at, collapse, collapse_ratio, lines_of

__all__ = [
    "DelayFault",
    "DelayFaultKind",
    "Fault",
    "Line",
    "SETFault",
    "SEUFault",
    "StuckAtFault",
    "all_stuck_at",
    "collapse",
    "collapse_ratio",
    "draw_sample",
    "lines_of",
    "sample_size",
    "stratified_sample",
]
