"""Statistical fault sampling.

Exhaustive fault injection is "ultimate in terms of accuracy but very
cumbersome" (RESCUE, Section III.B); random sampling with a statistically
justified size is the practical alternative.  This module draws seeded
samples and computes the classic sample-size bound (Leveugle et al.,
DATE 2009) used throughout the soft-error experiments.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


def sample_size(population: int, margin: float = 0.01, confidence: float = 0.95,
                p_estimate: float = 0.5) -> int:
    """Required number of fault injections for a target error margin.

    Finite-population corrected formula::

        n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))

    where ``t`` is the normal quantile for the requested confidence,
    ``e`` the margin of error and ``p`` the (worst-case 0.5 by default)
    estimated failure probability.
    """
    if population <= 0:
        return 0
    if not 0 < margin < 1:
        raise ValueError("margin must be in (0, 1)")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    t = _normal_quantile(0.5 + confidence / 2)
    p = min(max(p_estimate, 1e-9), 1 - 1e-9)
    n = population / (1 + margin ** 2 * (population - 1) / (t ** 2 * p * (1 - p)))
    return min(population, math.ceil(n))


def _normal_quantile(q: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Implemented locally so the faults layer stays scipy-free; accurate to
    ~1e-9 over (0, 1), far beyond what sample sizing needs.
    """
    if not 0 < q < 1:
        raise ValueError("quantile argument must be in (0, 1)")
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if q < p_low:
        u = math.sqrt(-2 * math.log(q))
        return (((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
               ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1)
    if q > 1 - p_low:
        u = math.sqrt(-2 * math.log(1 - q))
        return -(((((c[0] * u + c[1]) * u + c[2]) * u + c[3]) * u + c[4]) * u + c[5]) / \
               ((((d[0] * u + d[1]) * u + d[2]) * u + d[3]) * u + 1)
    u = q - 0.5
    r = u * u
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * u / \
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1)


def draw_sample(faults: Sequence[T], n: int, seed: int = 0) -> list[T]:
    """Seeded uniform sample without replacement (whole list if n >= len)."""
    if n >= len(faults):
        return list(faults)
    return random.Random(seed).sample(list(faults), n)


def stratified_sample(groups: dict[str, Sequence[T]], total: int, seed: int = 0) -> dict[str, list[T]]:
    """Proportionally allocate ``total`` samples across named strata.

    Each non-empty stratum receives at least one sample; remainders go to
    the largest strata first (deterministic).
    """
    rng = random.Random(seed)
    population = sum(len(g) for g in groups.values())
    if population == 0:
        return {name: [] for name in groups}
    alloc: dict[str, int] = {}
    for name, members in groups.items():
        if not members:
            alloc[name] = 0
            continue
        share = max(1, round(total * len(members) / population))
        alloc[name] = min(share, len(members))
    # trim or grow to match the requested total where possible
    order = sorted(groups, key=lambda k: -len(groups[k]))
    while sum(alloc.values()) > total:
        for name in order:
            if alloc[name] > 1 and sum(alloc.values()) > total:
                alloc[name] -= 1
        if all(alloc[name] <= 1 for name in order):
            break
    while sum(alloc.values()) < total:
        grew = False
        for name in order:
            if alloc[name] < len(groups[name]) and sum(alloc.values()) < total:
                alloc[name] += 1
                grew = True
        if not grew:
            break
    return {
        name: (rng.sample(list(members), alloc[name]) if alloc[name] < len(members)
               else list(members))
        for name, members in groups.items()
    }
