"""Fault models.

Three families cover the paper's needs:

* **Stuck-at** faults (quality / test generation, Sections III.A, III.D):
  a circuit *line* permanently at 0 or 1.  Lines are either a net's stem
  (the driver output) or a specific gate input pin (a fanout branch).
* **SEU** — single-event upset (reliability, Section III.B): a state
  bit-flip in a flop or memory cell at a given cycle.
* **SET** — single-event transient (Section III.B): a voltage pulse of
  finite width on a combinational net at a given time.
* **Transition-delay** faults: a line that is slow to rise or fall, used
  by the aging-to-failure mapping (Section III.E).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


@dataclass(frozen=True)
class Line:
    """A fault site: a net stem or one gate-input pin (fanout branch).

    ``sink``/``pin`` are ``None`` for stem faults; for branch faults they
    name the consuming gate (by its output net) and the input position.
    """

    net: str
    sink: str | None = None
    pin: int | None = None

    @property
    def is_stem(self) -> bool:
        return self.sink is None

    def describe(self) -> str:
        if self.is_stem:
            return self.net
        return f"{self.net}->{self.sink}.{self.pin}"

    def _key(self) -> tuple:
        return (self.net, self.sink or "", -1 if self.pin is None else self.pin)

    def __lt__(self, other: "Line") -> bool:
        return self._key() < other._key()


@dataclass(frozen=True)
class StuckAtFault:
    """Line permanently stuck at ``value``."""

    line: Line
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    def describe(self) -> str:
        return f"{self.line.describe()} s-a-{self.value}"

    def __lt__(self, other: "StuckAtFault") -> bool:
        return (self.line._key(), self.value) < (other.line._key(), other.value)


@dataclass(frozen=True, order=True)
class SEUFault:
    """Bit-flip of flop/memory bit ``target`` at cycle ``cycle``."""

    target: str
    cycle: int

    def describe(self) -> str:
        return f"SEU {self.target} @cycle {self.cycle}"


@dataclass(frozen=True, order=True)
class SETFault:
    """Transient pulse on ``net`` starting at ``time`` lasting ``width``."""

    net: str
    time: float
    width: float

    def describe(self) -> str:
        return f"SET {self.net} @t={self.time} w={self.width}"


class DelayFaultKind(str, Enum):
    SLOW_TO_RISE = "STR"
    SLOW_TO_FALL = "STF"


@dataclass(frozen=True, order=True)
class DelayFault:
    """Transition-delay fault: ``net`` transitions late by ``extra`` time."""

    net: str
    kind: DelayFaultKind
    extra: float = 1.0

    def describe(self) -> str:
        return f"{self.net} {self.kind.value} (+{self.extra})"


Fault = StuckAtFault | SEUFault | SETFault | DelayFault
