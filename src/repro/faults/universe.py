"""Fault-universe generation and equivalence collapsing.

``all_stuck_at`` enumerates the classic single-stuck-at universe: two
faults per stem plus two per fanout branch.  ``collapse`` merges faults
that are provably equivalent by local gate rules (Mc Cluskey's classic
structural equivalences), returning representatives and the equivalence
classes — the fault simulator and ATPG then only pay for one fault per
class, and coverage accounting credits the whole class.
"""

from __future__ import annotations

from ..circuit.netlist import Circuit, GateType
from .models import Line, StuckAtFault


def lines_of(circuit: Circuit) -> list[Line]:
    """All fault sites: stems for every net, branches for fanout > 1."""
    sites: list[Line] = [Line(net) for net in circuit.nets]
    fmap = circuit.fanout_map()
    for gate in circuit.gates.values():
        for pin, src in enumerate(gate.inputs):
            if len(fmap.get(src, ())) > 1:
                sites.append(Line(src, gate.output, pin))
    for q, flop in circuit.flops.items():
        if len(fmap.get(flop.d, ())) > 1:
            sites.append(Line(flop.d, q, 0))
    return sites


def all_stuck_at(circuit: Circuit) -> list[StuckAtFault]:
    """The full single-stuck-at universe of a circuit."""
    faults = []
    for line in lines_of(circuit):
        faults.append(StuckAtFault(line, 0))
        faults.append(StuckAtFault(line, 1))
    return faults


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[StuckAtFault, StuckAtFault] = {}

    def find(self, item: StuckAtFault) -> StuckAtFault:
        parent = self.parent.setdefault(item, item)
        if parent is item:
            return item
        root = self.find(parent)
        self.parent[item] = root
        return root

    def union(self, a: StuckAtFault, b: StuckAtFault) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # deterministic representative: the smaller by ordering
            lo, hi = sorted((ra, rb))
            self.parent[hi] = lo


def _input_line(circuit: Circuit, gate_out: str, pin: int, src: str) -> Line:
    """Line of a gate input: the branch if the source has fanout, else the stem."""
    if len(circuit.fanout_map().get(src, ())) > 1:
        return Line(src, gate_out, pin)
    return Line(src)


def collapse(circuit: Circuit) -> tuple[list[StuckAtFault], dict[StuckAtFault, list[StuckAtFault]]]:
    """Equivalence-collapse the stuck-at universe.

    Returns ``(representatives, classes)`` where ``classes`` maps each
    representative to every fault it stands for (including itself).

    Rules applied (all exact equivalences):

    * AND: any input s-a-0 ≡ output s-a-0;  NAND: input s-a-0 ≡ output s-a-1
    * OR:  any input s-a-1 ≡ output s-a-1;  NOR: input s-a-1 ≡ output s-a-0
    * BUF: input s-a-v ≡ output s-a-v;      NOT: input s-a-v ≡ output s-a-(1-v)
    """
    universe = all_stuck_at(circuit)
    uf = _UnionFind()
    for fault in universe:
        uf.find(fault)

    for gate in circuit.gates.values():
        out_stem = Line(gate.output)
        for pin, src in enumerate(gate.inputs):
            in_line = _input_line(circuit, gate.output, pin, src)
            if gate.gtype is GateType.AND:
                uf.union(StuckAtFault(in_line, 0), StuckAtFault(out_stem, 0))
            elif gate.gtype is GateType.NAND:
                uf.union(StuckAtFault(in_line, 0), StuckAtFault(out_stem, 1))
            elif gate.gtype is GateType.OR:
                uf.union(StuckAtFault(in_line, 1), StuckAtFault(out_stem, 1))
            elif gate.gtype is GateType.NOR:
                uf.union(StuckAtFault(in_line, 1), StuckAtFault(out_stem, 0))
            elif gate.gtype is GateType.BUF:
                uf.union(StuckAtFault(in_line, 0), StuckAtFault(out_stem, 0))
                uf.union(StuckAtFault(in_line, 1), StuckAtFault(out_stem, 1))
            elif gate.gtype is GateType.NOT:
                uf.union(StuckAtFault(in_line, 0), StuckAtFault(out_stem, 1))
                uf.union(StuckAtFault(in_line, 1), StuckAtFault(out_stem, 0))
            # XOR/XNOR/CONST have no local stuck-at equivalences

    classes: dict[StuckAtFault, list[StuckAtFault]] = {}
    for fault in universe:
        classes.setdefault(uf.find(fault), []).append(fault)
    reps = sorted(classes)
    for members in classes.values():
        members.sort()
    return reps, classes


def collapse_ratio(circuit: Circuit) -> float:
    """|collapsed| / |universe| — a standard quality metric of collapsing."""
    reps, classes = collapse(circuit)
    total = sum(len(v) for v in classes.values())
    return len(reps) / total if total else 1.0
