"""Laser fault-injection modelling (III.F, [18]).

[18] studies physical laser FI setups on IHP technologies: "for test
structures we could show that fault injections switching a single
transistor at least in the 250 nm technology are successful and
repeatable", enabling an attacker to flip "identified registers that
allow/prevent access to sensitive data".

The model substitutes the optical bench (see DESIGN.md): a chip
floorplan places register cells on a grid with technology-dependent
pitch; a laser shot has a position, spot diameter (bounded below by the
optical wavelength) and energy.  A cell flips when the spot covers it
with fluence above the node's upset threshold.  The key technology
effect reproduces directly: at 250 nm the minimum spot covers one cell
(precise, repeatable single-bit flips); at deep-submicron pitches the
same spot covers many cells (multi-bit upsets, imprecise targeting).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

#: Cell pitch (µm) per technology node — register cell edge length.
CELL_PITCH_UM: dict[str, float] = {
    "250nm": 3.0,
    "130nm": 1.6,
    "65nm": 0.8,
    "28nm": 0.4,
}

#: Upset energy threshold (arbitrary fluence units) per node.
UPSET_THRESHOLD: dict[str, float] = {
    "250nm": 1.0,
    "130nm": 0.8,
    "65nm": 0.6,
    "28nm": 0.5,
}

#: Practical minimum laser spot diameter (µm), limited by the IR optics.
MIN_SPOT_UM = 2.0


@dataclass(frozen=True)
class RegisterCell:
    """One register bit placed on the floorplan."""

    name: str
    x_um: float
    y_um: float


@dataclass
class Floorplan:
    """A register file laid out on a grid."""

    technology: str
    cells: list[RegisterCell] = field(default_factory=list)

    @property
    def pitch(self) -> float:
        return CELL_PITCH_UM[self.technology]

    @classmethod
    def grid(cls, technology: str, names: list[str], columns: int = 8) -> "Floorplan":
        pitch = CELL_PITCH_UM[technology]
        cells = [
            RegisterCell(name, (i % columns) * pitch, (i // columns) * pitch)
            for i, name in enumerate(names)
        ]
        return cls(technology, cells)


@dataclass(frozen=True)
class LaserShot:
    """One laser pulse."""

    x_um: float
    y_um: float
    spot_diameter_um: float
    energy: float


@dataclass
class ShotOutcome:
    """Cells flipped by one shot."""

    flipped: list[str] = field(default_factory=list)

    @property
    def single_bit(self) -> bool:
        return len(self.flipped) == 1


def fire(floorplan: Floorplan, shot: LaserShot,
         jitter_um: float = 0.15, seed: int = 0) -> ShotOutcome:
    """Evaluate a shot: cells inside the (jittered) spot above threshold flip.

    ``jitter_um`` models stage positioning noise — the term that makes
    repeated shots at fine pitches occasionally miss.
    """
    rng = random.Random(seed)
    spot = max(shot.spot_diameter_um, MIN_SPOT_UM)
    cx = shot.x_um + rng.gauss(0, jitter_um)
    cy = shot.y_um + rng.gauss(0, jitter_um)
    radius = spot / 2
    threshold = UPSET_THRESHOLD[floorplan.technology]
    outcome = ShotOutcome()
    if shot.energy < threshold:
        return outcome
    # fluence is approximately uniform inside the spot for our purposes
    for cell in floorplan.cells:
        if math.hypot(cell.x_um - cx, cell.y_um - cy) <= radius:
            outcome.flipped.append(cell.name)
    return outcome


@dataclass
class AttackStats:
    """Repeatability statistics for a targeted single-bit attack."""

    technology: str
    attempts: int
    exact_hits: int      # only the target flipped
    collateral: int      # target plus neighbours flipped
    misses: int

    @property
    def single_bit_success_rate(self) -> float:
        return self.exact_hits / self.attempts if self.attempts else 0.0


def attack_campaign(
    floorplan: Floorplan,
    target: str,
    attempts: int = 100,
    energy: float = 1.5,
    seed: int = 0,
    db=None,
    workers: int = 1,
    executor: str = "auto",
):
    """Targeted shot campaign on the unified engine.

    Returns ``(AttackStats, CampaignReport)``: the same per-shot
    outcomes as the old serial loop (each shot keeps its
    ``seed * 100_003 + i`` jitter stream, so the counts are
    shot-for-shot identical) plus the engine's campaign report.
    """
    from ..engine.core import EngineConfig, run_campaign
    from ..engine.workloads import LaserFiBackend

    cell = next((c for c in floorplan.cells if c.name == target), None)
    if cell is None:
        raise ValueError(f"no cell named {target!r}")
    shots = [LaserShot(cell.x_um, cell.y_um, MIN_SPOT_UM, energy)
             for _ in range(attempts)]
    backend = LaserFiBackend(floorplan, shots, target=target, seed=seed)
    report = run_campaign(
        backend, EngineConfig(batch_size=16, workers=workers,
                              executor=executor), db=db)
    stats = AttackStats(
        floorplan.technology, attempts,
        exact_hits=report.count("exact_hit"),
        collateral=report.count("collateral"),
        misses=report.count("miss"))
    return stats, report


def targeted_attack(
    floorplan: Floorplan,
    target: str,
    attempts: int = 100,
    energy: float = 1.5,
    seed: int = 0,
    db=None,
    workers: int = 1,
    executor: str = "auto",
) -> AttackStats:
    """Repeatedly aim at one register bit; measure single-bit success.

    Reproduces the [18] claim structure: at 250 nm the pitch exceeds the
    spot, so hits are single-bit and repeatable; at smaller nodes the
    spot covers several cells and collateral flips dominate.  Runs on
    the unified campaign engine (``db``/``workers``/``executor``
    passthrough) with shot-for-shot identical outcomes to the pre-port
    serial loop.
    """
    stats, _report = attack_campaign(floorplan, target, attempts, energy,
                                     seed, db=db, workers=workers,
                                     executor=executor)
    return stats


def grid_shots(floorplan: Floorplan, energy: float = 1.5,
               step_um: float | None = None,
               spot_diameter_um: float = MIN_SPOT_UM) -> list[LaserShot]:
    """A raster of shots covering the floorplan's bounding box — the
    stage sweep a real bench performs when mapping sensitive regions."""
    if not floorplan.cells:
        return []
    step = step_um if step_um is not None else floorplan.pitch
    max_x = max(c.x_um for c in floorplan.cells)
    max_y = max(c.y_um for c in floorplan.cells)
    shots = []
    y = 0.0
    while y <= max_y + 1e-9:
        x = 0.0
        while x <= max_x + 1e-9:
            shots.append(LaserShot(x, y, spot_diameter_um, energy))
            x += step
        y += step
    return shots


def sensitivity_map(
    floorplan: Floorplan,
    energy: float = 1.5,
    step_um: float | None = None,
    seed: int = 0,
    db=None,
    workers: int = 1,
    executor: str = "auto",
):
    """Shot-grid campaign over the floorplan: upset class per position.

    Returns ``(dict[(x, y)] -> flipped cell list, CampaignReport)`` —
    the laser-FI sensitivity map as an engine campaign whose outcome
    histogram splits the grid into no-flip / single-bit / multi-bit
    regions.
    """
    from ..engine.core import EngineConfig, run_campaign
    from ..engine.workloads import LaserFiBackend

    shots = grid_shots(floorplan, energy, step_um)
    backend = LaserFiBackend(floorplan, shots, seed=seed)
    report = run_campaign(
        backend, EngineConfig(batch_size=32, workers=workers,
                              executor=executor), db=db)
    grid = {}
    for inj in report.injections:
        _index, shot = inj.point
        grid[(shot.x_um, shot.y_um)] = inj.detail
    return grid, report


def unlock_register_attack(
    technology: str,
    n_registers: int = 32,
    unlock_bit: int = 7,
    attempts: int = 100,
    seed: int = 0,
    db=None,
    workers: int = 1,
    executor: str = "auto",
) -> AttackStats:
    """The paper's scenario: flip the register bit gating sensitive data."""
    names = [f"sec{i}" for i in range(n_registers)]
    plan = Floorplan.grid(technology, names)
    return targeted_attack(plan, f"sec{unlock_bit}", attempts, seed=seed,
                           db=db, workers=workers, executor=executor)
