"""PASCAL-style timing side-channel verification (III.F, [34]).

[34] ("PASCAL: Timing SCA Resistant Design and Verification Flow")
verifies designs against timing side channels before deployment.  The
audit here follows the same structure:

1. **Fixed-vs-random leakage test** — Welch's t-test between execution
   times of a fixed secret class and a random class; |t| above the TVLA
   threshold (4.5) marks a leak.
2. **Secret-dependence test** — correlation between execution time and a
   secret-derived quantity (e.g. exponent Hamming weight) over random
   secrets; significant correlation gives the attacker a regression
   model for key recovery.

Every audited implementation is a callable ``secret, data -> cycles``,
so the same harness audits AES variants, modexp variants or any future
core.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core.stats import welch_t_test

TVLA_THRESHOLD = 4.5


@dataclass
class TimingAuditReport:
    """Outcome of the three-part audit."""

    name: str
    t_statistic: float
    t_threshold: float
    hw_correlation: float
    n_measurements: int
    fixed_distinct_timings: int = 1
    random_distinct_timings: int = 1
    leak_details: list[str] = field(default_factory=list)

    @property
    def input_dependent_time(self) -> bool:
        """Constant-time code shows one timing for the fixed class and the
        random class alike; any spread means time depends on inputs."""
        return self.random_distinct_timings > 1 or self.fixed_distinct_timings > 1

    @property
    def leaks(self) -> bool:
        return (abs(self.t_statistic) > self.t_threshold
                or abs(self.hw_correlation) > 0.5
                or self.input_dependent_time)

    @property
    def verdict(self) -> str:
        return "LEAKY" if self.leaks else "constant-time"


def audit_timing(
    name: str,
    run: Callable[[int, int], int],
    secret_bits: int = 16,
    n_measurements: int = 200,
    seed: int = 0,
) -> TimingAuditReport:
    """Audit ``run(secret, data) -> cycles`` for timing leakage.

    Fixed-vs-random: the fixed class uses one secret; the random class a
    fresh secret per measurement (data randomized in both).  The
    secret-dependence test regresses time on the secret Hamming weight.
    """
    rng = random.Random(seed)
    top = 1 << secret_bits
    fixed_secret = rng.randrange(1, top) | (1 << (secret_bits - 1))

    fixed_times, random_times = [], []
    hw_values, hw_times = [], []
    for _ in range(n_measurements):
        data = rng.randrange(1, top)
        fixed_times.append(run(fixed_secret, data))
        secret = rng.randrange(1, top) | (1 << (secret_bits - 1))
        cycles = run(secret, data)
        random_times.append(cycles)
        hw_values.append(bin(secret).count("1"))
        hw_times.append(cycles)

    if np.std(fixed_times) == 0 and np.std(random_times) == 0:
        t_stat = 0.0  # both classes constant: no mean test possible or needed
    else:
        t_stat, _p = welch_t_test(fixed_times, random_times)
        if np.isnan(t_stat):
            t_stat = 0.0
    if np.std(hw_times) == 0 or np.std(hw_values) == 0:
        corr = 0.0
    else:
        corr = float(np.corrcoef(hw_values, hw_times)[0, 1])

    report = TimingAuditReport(name, float(t_stat), TVLA_THRESHOLD, corr,
                               n_measurements,
                               fixed_distinct_timings=len(set(fixed_times)),
                               random_distinct_timings=len(set(random_times)))
    if abs(report.t_statistic) > TVLA_THRESHOLD:
        report.leak_details.append(
            f"fixed-vs-random t={report.t_statistic:.1f} exceeds "
            f"{TVLA_THRESHOLD}")
    if abs(corr) > 0.5:
        report.leak_details.append(
            f"time correlates with secret Hamming weight (r={corr:.2f})")
    if report.input_dependent_time:
        report.leak_details.append(
            f"execution time varies with inputs "
            f"({report.random_distinct_timings} distinct timings)")
    return report


def recover_exponent_hw(
    run: Callable[[int, int], int],
    secret: int,
    calibration_secrets: list[int],
    data: int = 0x1234,
) -> int:
    """Estimate a secret's Hamming weight from its execution time.

    Calibrates cycles-per-HW-bit by linear regression over known
    calibration secrets, then inverts the model at the victim's time —
    the first stage of a classic timing key-recovery attack.
    """
    hws = np.array([bin(s).count("1") for s in calibration_secrets], dtype=float)
    times = np.array([run(s, data) for s in calibration_secrets], dtype=float)
    if np.std(hws) == 0:
        raise ValueError("calibration secrets must have varied Hamming weight")
    slope, intercept = np.polyfit(hws, times, 1)
    victim_time = run(secret, data)
    if slope == 0:
        raise ValueError("no timing dependence to invert")
    return round((victim_time - intercept) / slope)
