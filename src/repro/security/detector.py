"""Autoencoder-based fault-attack detection (III.F).

"We are developing a new strategy based on neural networks which can
detect faults in the program flow of critical functions such as the
crypto engines.  The neural network is trained with non-faulty traces
only and hence has the potential to not only detect existing fault
attacks but also future attacks."

Implementation: program-flow traces are summarized into fixed-length
feature vectors (instruction-class histogram + transition counts); a
numpy autoencoder learns to reconstruct *clean* vectors; at run time a
reconstruction error above the calibration percentile raises the alarm.
Because nothing about specific attacks enters training, unseen fault
types are detected exactly as seen ones — the property bench E14 checks
with held-out fault classes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

INSTRUCTION_CLASSES = ("alu", "load", "store", "branch", "call", "ret", "crypto")


def trace_features(trace: list[str]) -> np.ndarray:
    """Histogram + bigram + length features of an instruction-class trace."""
    index = {c: i for i, c in enumerate(INSTRUCTION_CLASSES)}
    n = len(INSTRUCTION_CLASSES)
    hist = np.zeros(n)
    bigrams = np.zeros(n * n)
    prev = None
    for op in trace:
        i = index.get(op)
        if i is None:
            continue
        hist[i] += 1
        if prev is not None:
            bigrams[prev * n + i] += 1
        prev = i
    total = max(1.0, hist.sum())
    length_feature = np.array([len(trace) / 64.0])
    return np.concatenate([hist / total, bigrams / total, length_feature])


def clean_program_trace(rng: random.Random, rounds: int = 10) -> list[str]:
    """A crypto-routine control flow: setup, fixed round count, teardown.

    Crypto engines execute a *fixed* number of rounds (AES-128: 10), so
    the clean program flow is highly regular — which is exactly what the
    autoencoder learns and what fault attacks break.  Benign variation
    is limited to scheduling jitter (two independent ops swapped).
    """
    trace = ["call", "load", "load", "alu"]
    for _ in range(rounds):
        trace += ["crypto", "alu", "crypto", "alu", "store", "branch"]
    trace += ["store", "ret"]
    if rng.random() < 0.3:  # benign compiler jitter: swap two round ops
        pos = 4 + 6 * rng.randrange(rounds)
        trace[pos + 1], trace[pos + 3] = trace[pos + 3], trace[pos + 1]
    return trace


def faulted_trace(base: list[str], attack: str, rng: random.Random) -> list[str]:
    """Apply one of several program-flow fault effects."""
    trace = list(base)
    if attack == "skip":            # instruction skip: drop a round op
        del trace[rng.randrange(4, len(trace) - 2)]
    elif attack == "loop_exit":     # premature loop exit: truncate rounds
        cut = rng.randrange(6, max(7, len(trace) // 2))
        trace = trace[:cut] + ["store", "ret"]
    elif attack == "wrong_branch":  # control-flow hijack: branch storm
        pos = rng.randrange(4, len(trace) - 2)
        trace[pos:pos] = ["branch", "branch", "alu"]
    elif attack == "double_round":  # replayed round body (unseen in training)
        pos = rng.randrange(4, len(trace) - 8)
        trace[pos:pos] = ["crypto", "alu", "crypto", "alu", "store", "branch"]
    else:
        raise ValueError(f"unknown attack {attack!r}")
    return trace


class Autoencoder:
    """Tied-weight single-hidden-layer autoencoder trained with Adam."""

    def __init__(self, hidden: int = 12, epochs: int = 300, lr: float = 0.01,
                 seed: int = 0) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.w: np.ndarray | None = None
        self.b_enc: np.ndarray | None = None
        self.b_dec: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "Autoencoder":
        rng = np.random.default_rng(self.seed)
        n_in = x.shape[1]
        w = rng.normal(0, np.sqrt(2 / n_in), (n_in, self.hidden))
        b_enc = np.zeros(self.hidden)
        b_dec = np.zeros(n_in)
        params = [w, b_enc, b_dec]
        m = [np.zeros_like(p) for p in params]
        v = [np.zeros_like(p) for p in params]
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for t in range(1, self.epochs + 1):
            h_pre = x @ w + b_enc
            h = np.maximum(h_pre, 0)
            recon = h @ w.T + b_dec
            err = recon - x
            d_recon = 2 * err / x.size
            g_bdec = d_recon.sum(axis=0)
            d_h = d_recon @ w
            d_h[h_pre <= 0] = 0
            g_benc = d_h.sum(axis=0)
            g_w = x.T @ d_h + d_recon.T @ h  # tied weights: both paths
            grads = [g_w, g_benc, g_bdec]
            for i, (p, g) in enumerate(zip(params, grads)):
                m[i] = beta1 * m[i] + (1 - beta1) * g
                v[i] = beta2 * v[i] + (1 - beta2) * g * g
                m_hat = m[i] / (1 - beta1 ** t)
                v_hat = v[i] / (1 - beta2 ** t)
                p -= self.lr * m_hat / (np.sqrt(v_hat) + eps)
        self.w, self.b_enc, self.b_dec = params
        return self

    def reconstruction_error(self, x: np.ndarray) -> np.ndarray:
        if self.w is None:
            raise RuntimeError("fit() before reconstruction_error()")
        h = np.maximum(x @ self.w + self.b_enc, 0)
        recon = h @ self.w.T + self.b_dec
        return np.mean((recon - x) ** 2, axis=1)


@dataclass
class DetectorReport:
    """Detection quality per attack class plus the false-positive rate."""

    threshold: float
    false_positive_rate: float
    detection_rate: dict[str, float] = field(default_factory=dict)
    auc: float = 0.0


class FaultAttackDetector:
    """Train-on-clean-only anomaly detector for program-flow traces."""

    def __init__(self, hidden: int = 12, epochs: int = 300, seed: int = 0,
                 threshold_percentile: float = 99.0) -> None:
        self.model = Autoencoder(hidden=hidden, epochs=epochs, seed=seed)
        self.threshold_percentile = threshold_percentile
        self.threshold: float | None = None

    def fit(self, clean_traces: list[list[str]]) -> "FaultAttackDetector":
        x = np.stack([trace_features(t) for t in clean_traces])
        self.model.fit(x)
        errors = self.model.reconstruction_error(x)
        # the margin guards against a knife-edge threshold when training
        # errors cluster tightly (few distinct benign variants)
        percentile = float(np.percentile(errors, self.threshold_percentile))
        self.threshold = max(percentile, float(errors.max())) * 1.5
        return self

    def score(self, trace: list[str]) -> float:
        x = trace_features(trace).reshape(1, -1)
        return float(self.model.reconstruction_error(x)[0])

    def is_attack(self, trace: list[str]) -> bool:
        if self.threshold is None:
            raise RuntimeError("fit() before is_attack()")
        return self.score(trace) > self.threshold


def evaluate_detector(
    detector: FaultAttackDetector,
    clean_traces: list[list[str]],
    attacks: dict[str, list[list[str]]],
) -> DetectorReport:
    """FPR on held-out clean traces, detection rate per attack class, AUC."""
    clean_scores = [detector.score(t) for t in clean_traces]
    fpr = sum(1 for s in clean_scores if s > detector.threshold) / len(clean_scores)
    report = DetectorReport(detector.threshold or 0.0, fpr)
    all_attack_scores: list[float] = []
    for name, traces in attacks.items():
        scores = [detector.score(t) for t in traces]
        all_attack_scores.extend(scores)
        report.detection_rate[name] = (
            sum(1 for s in scores if s > detector.threshold) / len(scores))
    # AUC via rank statistic (Mann-Whitney)
    combined = [(s, 0) for s in clean_scores] + [(s, 1) for s in all_attack_scores]
    combined.sort()
    rank_sum = sum(rank for rank, (s, label) in enumerate(combined, 1) if label)
    n_pos = len(all_attack_scores)
    n_neg = len(clean_scores)
    if n_pos and n_neg:
        report.auc = (rank_sum - n_pos * (n_pos + 1) / 2) / (n_pos * n_neg)
    return report
