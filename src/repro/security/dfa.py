"""Differential fault analysis on AES (III.F fault-attack payload).

Why laser FI matters: a single well-placed fault breaks the cipher.  The
attack implemented is the classic last-round DFA: a byte fault injected
*before the final SubBytes* changes exactly one state byte, and for the
faulted byte position ``j`` the attacker knows

    SBOX⁻¹(c_j ⊕ k_j) ⊕ SBOX⁻¹(c'_j ⊕ k_j) = δ   for some δ ≠ 0.

The attacker's power comes from a *restricted* fault model: the laser
experiments of [18] flip a single transistor, so δ is a one-hot byte
(δ ∈ {0x01, 0x02, …, 0x80}).  Each (correct, faulty) ciphertext pair
then restricts k_j to the few candidates consistent with *some* single-
bit δ; intersecting over a handful of pairs isolates the true key byte.
With the last round key, the AES-128 key schedule inverts to the master
key.
"""

from __future__ import annotations

import random

from ..crypto.aes import INV_SBOX, RCON, SBOX, encrypt_block, expand_key


def _shift_rows_position(byte_index: int) -> int:
    """Where state byte ``byte_index`` (before ShiftRows) lands in the CT."""
    col, row = divmod(byte_index, 4)
    new_col = (col - row) % 4
    return 4 * new_col + row


SINGLE_BIT_DELTAS = frozenset(1 << b for b in range(8))


def candidate_key_bytes(correct: bytes, faulty: bytes, ct_position: int,
                        delta_set: frozenset[int] = SINGLE_BIT_DELTAS) -> set[int]:
    """Key-byte candidates from one ciphertext pair at one position.

    ``delta_set`` is the attacker's fault model (pre-SubBytes XOR values
    considered possible); the default single-bit set matches the laser
    single-transistor capability of [18].
    """
    c, f = correct[ct_position], faulty[ct_position]
    if c == f:
        return set(range(256))  # fault did not reach this byte: no info
    candidates = set()
    for key_guess in range(256):
        delta = INV_SBOX[c ^ key_guess] ^ INV_SBOX[f ^ key_guess]
        if delta in delta_set:
            candidates.add(key_guess)
    return candidates


def dfa_recover_round_key(
    key: bytes,
    pairs_per_byte: int = 3,
    seed: int = 0,
) -> tuple[bytes, dict[int, int]]:
    """Simulate the full attack; returns (recovered round-10 key, #pairs used).

    For each state byte, random plaintexts are encrypted twice — clean
    and with a random fault before round-10 SubBytes — until the
    candidate intersection is a singleton.
    """
    rng = random.Random(seed)
    recovered = [0] * 16
    pairs_used: dict[int, int] = {}
    for state_byte in range(16):
        ct_pos = _shift_rows_position(state_byte)
        candidates = set(range(256))
        used = 0
        while len(candidates) > 1 and used < pairs_per_byte * 4:
            pt = bytes(rng.randrange(256) for _ in range(16))
            fault_val = 1 << rng.randrange(8)  # single-bit laser fault
            clean = encrypt_block(pt, key)
            faulty = encrypt_block(pt, key, fault=(10, state_byte, fault_val))
            step = candidate_key_bytes(clean, faulty, ct_pos)
            candidates &= step
            used += 1
        pairs_used[state_byte] = used
        if len(candidates) != 1:
            raise RuntimeError(
                f"DFA did not converge for byte {state_byte} "
                f"({len(candidates)} candidates left)")
        recovered[ct_pos] = candidates.pop()
    return bytes(recovered), pairs_used


def invert_key_schedule(round10_key: bytes) -> bytes:
    """Walk the AES-128 key schedule backward from round key 10 to the key.

    ``w[i-4] = w[i] ⊕ g(w[i-1])`` solves backward because descending
    ``i`` always has ``w[i-1]`` available (computed at a larger ``i``).
    """
    words = [list(round10_key[i:i + 4]) for i in range(0, 16, 4)]
    full: list[list[int] | None] = [None] * 40 + words
    for i in range(43, 3, -1):
        w_i = full[i]
        w_im1 = full[i - 1]
        if i % 4 == 0:
            temp = w_im1[1:] + w_im1[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // 4 - 1]
            full[i - 4] = [a ^ b for a, b in zip(w_i, temp)]
        else:
            full[i - 4] = [a ^ b for a, b in zip(w_i, w_im1)]
    master = full[0] + full[1] + full[2] + full[3]
    return bytes(master)


def full_dfa_attack(key: bytes, seed: int = 0) -> bytes:
    """End-to-end DFA: recover round key 10, invert to the master key."""
    round10, _pairs = dfa_recover_round_key(key, seed=seed)
    return invert_key_schedule(round10)


def dfa_with_redundancy_countermeasure(
    key: bytes,
    seed: int = 0,
) -> tuple[int, int]:
    """Duplicate-and-compare blocks the attack: returns (faulty outputs
    released without countermeasure, with countermeasure).

    The countermeasure recomputes each encryption and suppresses the
    output on mismatch — faulty ciphertexts never reach the attacker, so
    the DFA collects zero usable pairs.
    """
    rng = random.Random(seed)
    released_without = released_with = 0
    for _ in range(32):
        pt = bytes(rng.randrange(256) for _ in range(16))
        fault = (10, rng.randrange(16), rng.randrange(1, 256))
        faulty = encrypt_block(pt, key, fault=fault)
        clean = encrypt_block(pt, key)
        released_without += 1  # unprotected device always emits
        if faulty == clean:    # protected device emits only on agreement
            released_with += 1
    return released_without, released_with
