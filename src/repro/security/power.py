"""Power-analysis attacks and leakage assessment (III.F).

Implements the standard toolbox against the instrumented AES cores:

* **CPA** (correlation power analysis): hypothesize each key byte,
  predict HW(SBOX(pt ⊕ k)) and correlate against the measured round-1
  power samples; the right key ranks first once enough traces accumulate
  — success-rate-vs-traces is the headline curve.
* **TVLA** fixed-vs-random leakage assessment on the same traces, the
  pass/fail gate used before attempting attacks.

Against :class:`~repro.crypto.aes.AesLeaky` CPA recovers the key with
tens of traces; against :class:`AesConstantTime` (masked) both TVLA and
CPA stay silent — the countermeasure story of the RESCUE security line.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..core.stats import welch_t_test
from ..crypto.aes import SBOX, hamming_weight

TVLA_THRESHOLD = 4.5


@dataclass
class TraceSet:
    """Plaintexts and their power traces (rows: traces, cols: samples)."""

    plaintexts: list[bytes] = field(default_factory=list)
    power: np.ndarray | None = None

    @property
    def n(self) -> int:
        return len(self.plaintexts)


def collect_traces(cipher, n_traces: int, seed: int = 0) -> TraceSet:
    """Encrypt random plaintexts, recording the power samples."""
    rng = random.Random(seed)
    plaintexts, rows = [], []
    for _ in range(n_traces):
        pt = bytes(rng.randrange(256) for _ in range(16))
        _ct, trace = cipher.encrypt(pt)
        plaintexts.append(pt)
        rows.append(trace.power)
    return TraceSet(plaintexts, np.asarray(rows, dtype=float))


def cpa_attack(traces: TraceSet, byte_index: int) -> tuple[int, np.ndarray]:
    """CPA on one key byte; returns (best key guess, per-guess |r|)."""
    if traces.power is None or traces.n == 0:
        raise ValueError("empty trace set")
    measured = traces.power[:, byte_index]
    pts = np.array([pt[byte_index] for pt in traces.plaintexts])
    correlations = np.zeros(256)
    m_centered = measured - measured.mean()
    m_norm = np.sqrt((m_centered ** 2).sum())
    if m_norm == 0:
        return 0, correlations
    for guess in range(256):
        predicted = np.array([hamming_weight(SBOX[p ^ guess]) for p in pts],
                             dtype=float)
        p_centered = predicted - predicted.mean()
        p_norm = np.sqrt((p_centered ** 2).sum())
        if p_norm == 0:
            continue
        correlations[guess] = abs(float(m_centered @ p_centered) / (m_norm * p_norm))
    return int(np.argmax(correlations)), correlations


def recover_key(traces: TraceSet) -> bytes:
    """CPA over all 16 key bytes."""
    return bytes(cpa_attack(traces, i)[0] for i in range(16))


def success_rate_curve(
    cipher_factory,
    true_key: bytes,
    trace_counts: list[int],
    seed: int = 0,
) -> list[tuple[int, float]]:
    """Fraction of correctly recovered key bytes vs number of traces."""
    out = []
    biggest = max(trace_counts)
    full = collect_traces(cipher_factory(), biggest, seed)
    for n in trace_counts:
        subset = TraceSet(full.plaintexts[:n], full.power[:n])
        recovered = recover_key(subset)
        correct = sum(1 for a, b in zip(recovered, true_key) if a == b)
        out.append((n, correct / 16))
    return out


@dataclass
class TvlaReport:
    """Fixed-vs-random leakage assessment result."""

    max_t: float
    per_sample_t: list[float]
    threshold: float = TVLA_THRESHOLD

    @property
    def leaks(self) -> bool:
        return self.max_t > self.threshold


def tvla(cipher, n_traces: int = 200, seed: int = 0) -> TvlaReport:
    """Fixed-vs-random t-test over every power sample."""
    rng = random.Random(seed)
    fixed_pt = bytes(range(16))
    fixed_rows, random_rows = [], []
    for _ in range(n_traces):
        _ct, tr = cipher.encrypt(fixed_pt)
        fixed_rows.append(tr.power)
        pt = bytes(rng.randrange(256) for _ in range(16))
        _ct, tr = cipher.encrypt(pt)
        random_rows.append(tr.power)
    fixed = np.asarray(fixed_rows, dtype=float)
    rnd = np.asarray(random_rows, dtype=float)
    t_values = []
    for col in range(fixed.shape[1]):
        if np.std(fixed[:, col]) == 0 and np.std(rnd[:, col]) == 0:
            t_values.append(0.0)
            continue
        t_stat, _p = welch_t_test(fixed[:, col], rnd[:, col])
        t_values.append(abs(float(t_stat)))
    return TvlaReport(max(t_values) if t_values else 0.0, t_values)
