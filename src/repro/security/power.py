"""Power-analysis attacks and leakage assessment (III.F).

Implements the standard toolbox against the instrumented AES cores:

* **CPA** (correlation power analysis): hypothesize each key byte,
  predict HW(SBOX(pt ⊕ k)) and correlate against the measured round-1
  power samples; the right key ranks first once enough traces accumulate
  — success-rate-vs-traces is the headline curve.
* **TVLA** fixed-vs-random leakage assessment on the same traces, the
  pass/fail gate used before attempting attacks.

Against :class:`~repro.crypto.aes.AesLeaky` CPA recovers the key with
tens of traces; against :class:`AesConstantTime` (masked) both TVLA and
CPA stay silent — the countermeasure story of the RESCUE security line.

Trace acquisition runs on the unified campaign engine
(:class:`repro.engine.ScaTraceBackend`): CPA and TVLA consume
engine-produced traces, ``collect_traces``/``tvla`` gain
``db=``/``workers=``/``executor=``, and ``trace_campaign`` also returns
the engine's :class:`~repro.engine.CampaignReport`.  Masked ciphers
stay sound under parallel collection via the ``cipher.fork(seed)``
protocol — each trace gets an independent, point-seeded mask stream.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..core.stats import welch_t_test
from ..crypto.aes import SBOX, hamming_weight

TVLA_THRESHOLD = 4.5


@dataclass
class TraceSet:
    """Plaintexts and their power traces (rows: traces, cols: samples)."""

    plaintexts: list[bytes] = field(default_factory=list)
    power: np.ndarray | None = None

    @property
    def n(self) -> int:
        return len(self.plaintexts)


def _random_plaintexts(n: int, seed: int) -> list[bytes]:
    rng = random.Random(seed)
    return [bytes(rng.randrange(256) for _ in range(16)) for _ in range(n)]


def _run_trace_campaign(cipher, points, seed, db, workers, executor,
                        batch_size: int = 16):
    """Engine execution shared by collection and TVLA campaigns."""
    from ..engine.core import EngineConfig, run_campaign
    from ..engine.workloads import ScaTraceBackend

    backend = ScaTraceBackend(cipher, points, seed=seed)
    return run_campaign(
        backend, EngineConfig(batch_size=batch_size, workers=workers,
                              executor=executor), db=db)


def trace_campaign(cipher, n_traces: int, seed: int = 0, db=None,
                   workers: int = 1, executor: str = "auto"):
    """Collect random-plaintext traces on the unified engine.

    Returns ``(TraceSet, CampaignReport)``; the trace set is what
    :func:`cpa_attack`/:func:`recover_key` consume.
    """
    points = [(i, "collected", pt)
              for i, pt in enumerate(_random_plaintexts(n_traces, seed))]
    report = _run_trace_campaign(cipher, points, seed, db, workers, executor)
    rows = [None] * len(report.injections)
    plaintexts: list[bytes] = [b""] * len(report.injections)
    for inj in report.injections:
        index, _group, pt = inj.point
        plaintexts[index] = pt
        rows[index] = inj.detail[1]
    return (TraceSet(plaintexts, np.asarray(rows, dtype=float)), report)


def collect_traces(cipher, n_traces: int, seed: int = 0, db=None,
                   workers: int = 1, executor: str = "auto") -> TraceSet:
    """Encrypt random plaintexts, recording the power samples.

    Runs on the unified campaign engine (``db``/``workers``/``executor``
    passthrough); plaintext sequence is identical to the pre-port loop.
    """
    traces, _report = trace_campaign(cipher, n_traces, seed, db=db,
                                     workers=workers, executor=executor)
    return traces


def cpa_attack(traces: TraceSet, byte_index: int) -> tuple[int, np.ndarray]:
    """CPA on one key byte; returns (best key guess, per-guess |r|)."""
    if traces.power is None or traces.n == 0:
        raise ValueError("empty trace set")
    measured = traces.power[:, byte_index]
    pts = np.array([pt[byte_index] for pt in traces.plaintexts])
    correlations = np.zeros(256)
    m_centered = measured - measured.mean()
    m_norm = np.sqrt((m_centered ** 2).sum())
    if m_norm == 0:
        return 0, correlations
    for guess in range(256):
        predicted = np.array([hamming_weight(SBOX[p ^ guess]) for p in pts],
                             dtype=float)
        p_centered = predicted - predicted.mean()
        p_norm = np.sqrt((p_centered ** 2).sum())
        if p_norm == 0:
            continue
        correlations[guess] = abs(float(m_centered @ p_centered) / (m_norm * p_norm))
    return int(np.argmax(correlations)), correlations


def recover_key(traces: TraceSet) -> bytes:
    """CPA over all 16 key bytes."""
    return bytes(cpa_attack(traces, i)[0] for i in range(16))


def success_rate_curve(
    cipher_factory,
    true_key: bytes,
    trace_counts: list[int],
    seed: int = 0,
) -> list[tuple[int, float]]:
    """Fraction of correctly recovered key bytes vs number of traces."""
    out = []
    biggest = max(trace_counts)
    full = collect_traces(cipher_factory(), biggest, seed)
    for n in trace_counts:
        subset = TraceSet(full.plaintexts[:n], full.power[:n])
        recovered = recover_key(subset)
        correct = sum(1 for a, b in zip(recovered, true_key) if a == b)
        out.append((n, correct / 16))
    return out


@dataclass
class TvlaReport:
    """Fixed-vs-random leakage assessment result."""

    max_t: float
    per_sample_t: list[float]
    threshold: float = TVLA_THRESHOLD

    @property
    def leaks(self) -> bool:
        return self.max_t > self.threshold


def tvla_campaign(cipher, n_traces: int = 200, seed: int = 0, db=None,
                  workers: int = 1, executor: str = "auto"):
    """Fixed-vs-random leakage assessment on the unified engine.

    Points interleave the fixed and random populations exactly like the
    bench-style serial loop; the campaign's outcome histogram is the
    group split.  Returns ``(TvlaReport, CampaignReport)``.
    """
    fixed_pt = bytes(range(16))
    randoms = _random_plaintexts(n_traces, seed)
    points = []
    for i in range(n_traces):
        points.append((2 * i, "fixed", fixed_pt))
        points.append((2 * i + 1, "random", randoms[i]))
    report = _run_trace_campaign(cipher, points, seed, db, workers, executor)
    fixed_rows = [inj.detail[1] for inj in report.injections
                  if inj.point[1] == "fixed"]
    random_rows = [inj.detail[1] for inj in report.injections
                   if inj.point[1] == "random"]
    return _tvla_from_rows(fixed_rows, random_rows), report


def tvla(cipher, n_traces: int = 200, seed: int = 0, db=None,
         workers: int = 1, executor: str = "auto") -> TvlaReport:
    """Fixed-vs-random t-test over every power sample (engine-backed)."""
    tvla_report, _report = tvla_campaign(cipher, n_traces, seed, db=db,
                                         workers=workers, executor=executor)
    return tvla_report


def _tvla_from_rows(fixed_rows: list, random_rows: list) -> TvlaReport:
    fixed = np.asarray(fixed_rows, dtype=float)
    rnd = np.asarray(random_rows, dtype=float)
    t_values = []
    for col in range(fixed.shape[1]):
        if np.std(fixed[:, col]) == 0 and np.std(rnd[:, col]) == 0:
            t_values.append(0.0)
            continue
        t_stat, _p = welch_t_test(fixed[:, col], rnd[:, col])
        t_values.append(abs(float(t_stat)))
    return TvlaReport(max(t_values) if t_values else 0.0, t_values)
