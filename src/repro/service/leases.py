"""Chunk leases: the work-claim state machine of the campaign service.

A lease is one row per ``(campaign_id, chunk_index)`` in the shared
:class:`~repro.core.campaign.CampaignDb` file, contended for by any
number of worker processes/hosts.  All mutation is single-row
**conditional UPDATEs** — SQLite serializes writers, so a claim either
wins (``rowcount == 1``) or harmlessly loses; there is no lock manager
beyond the database file itself.

State machine::

    pending ──claim──▶ held ──complete──▶ done
       ▲                │ │
       │    release /   │ └─fail (budget spent)──▶ failed
       │    expiry ─────┘
       └──(released leases and expired 'held' leases are re-claimable;
           each re-claim of a live-but-expired lease is a *takeover*)

    any non-terminal state ──job cancelled──▶ cancelled

``done``/``failed``/``cancelled`` are terminal.  A ``held`` lease whose
``deadline`` passed is claimable by anyone — that is the entire
dead-worker recovery protocol, and it is safe because chunk *records*
(the engine's checkpoint log) are idempotent and chunk execution is
deterministic: a stale worker finishing after its lease was reassigned
writes byte-identical rows that ``INSERT OR IGNORE`` collapses.

Heartbeats are deadline extensions: a live worker pushes the deadlines
of all leases it holds every ``ttl / 3`` seconds, so only a worker that
died, froze, or lost its clock lets a deadline lapse.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..core.campaign import CampaignDb

LEASE_STATES = ("pending", "held", "released", "done", "failed", "cancelled")

#: Terminal lease states: the chunk needs no further execution.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: How many missed heartbeat intervals before a worker row is reaped.
STALE_WORKER_TTLS = 3.0


@dataclass(frozen=True)
class Lease:
    """One chunk's work claim, as read from the database."""

    campaign_id: int
    chunk_index: int
    state: str
    worker_id: str | None
    deadline: float | None
    attempts: int
    takeovers: int
    error: str | None


class LeaseManager:
    """Lease and worker-registry operations on one CampaignDb connection.

    ``now`` is injectable for two reasons: deterministic tests, and
    :class:`~repro.engine.chaos.HostChaos` clock skew — a skewed worker
    must make *all* its deadline arithmetic through its own broken
    clock, exactly like a real host with a drifting clock would.
    """

    def __init__(self, db: CampaignDb,
                 now: Callable[[], float] = time.time) -> None:
        self.db = db
        self.now = now

    # -- lease lifecycle -----------------------------------------------
    def create(self, campaign_id: int, n_chunks: int) -> None:
        """Materialize one ``pending`` lease per chunk (idempotent)."""
        self.db.conn.executemany(
            "INSERT OR IGNORE INTO leases (campaign_id, chunk_index)"
            " VALUES (?, ?)",
            [(campaign_id, index) for index in range(n_chunks)])
        self.db._maybe_commit()

    def claim_next(self, campaign_id: int, worker_id: str,
                   ttl: float) -> Lease | None:
        """Claim the lowest claimable chunk, or None when nothing is.

        Claimable: ``pending``, ``released``, or ``held`` past its
        deadline (a takeover).  The candidate SELECT is advisory — the
        conditional UPDATE re-checks the predicate atomically, so a
        lost race just moves on to the next candidate.  Chunks whose
        *record* already committed are skipped even if their lease is
        stale (no point re-executing work the checkpoint log already
        holds).
        """
        conn = self.db.conn
        while True:
            now = self.now()
            row = conn.execute(
                "SELECT chunk_index FROM leases WHERE campaign_id=?"
                " AND (state='pending' OR state='released'"
                "      OR (state='held' AND deadline < ?))"
                " AND chunk_index NOT IN (SELECT chunk_index FROM chunks"
                "      WHERE campaign_id=? AND status='done')"
                " ORDER BY chunk_index LIMIT 1",
                (campaign_id, now, campaign_id)).fetchone()
            if row is None:
                return None
            index = int(row[0])
            cur = conn.execute(
                "UPDATE leases SET state='held', worker_id=?, deadline=?,"
                " attempts=attempts+1,"
                " takeovers=takeovers + (state='held')"
                " WHERE campaign_id=? AND chunk_index=?"
                " AND (state='pending' OR state='released'"
                "      OR (state='held' AND deadline < ?))",
                (worker_id, now + ttl, campaign_id, index, now))
            self.db._maybe_commit()
            if cur.rowcount:
                return self.get(campaign_id, index)
            # lost the race for this index; the next SELECT skips it

    def extend(self, worker_id: str, ttl: float) -> int:
        """Heartbeat: push every held lease's deadline out by ``ttl``.
        Returns how many leases were extended."""
        cur = self.db.conn.execute(
            "UPDATE leases SET deadline=? WHERE worker_id=? AND state='held'",
            (self.now() + ttl, worker_id))
        self.db._maybe_commit()
        return cur.rowcount

    def complete(self, campaign_id: int, chunk_index: int,
                 worker_id: str) -> bool:
        """Mark a held lease done — only if ``worker_id`` still holds it.

        A stale worker whose lease was taken over loses here (rowcount
        0); its chunk record was still accepted idempotently, and the
        current holder will complete the lease.
        """
        cur = self.db.conn.execute(
            "UPDATE leases SET state='done', error=NULL"
            " WHERE campaign_id=? AND chunk_index=? AND worker_id=?"
            " AND state='held'",
            (campaign_id, chunk_index, worker_id))
        self.db._maybe_commit()
        return bool(cur.rowcount)

    def release(self, campaign_id: int, chunk_index: int, worker_id: str,
                error: str | None = None) -> bool:
        """Give a held lease back (failed execution or graceful drain):
        immediately claimable by any worker, attempt count retained."""
        cur = self.db.conn.execute(
            "UPDATE leases SET state='released', deadline=NULL, error=?"
            " WHERE campaign_id=? AND chunk_index=? AND worker_id=?"
            " AND state='held'",
            (error, campaign_id, chunk_index, worker_id))
        self.db._maybe_commit()
        return bool(cur.rowcount)

    def fail(self, campaign_id: int, chunk_index: int, worker_id: str,
             error: str) -> bool:
        """Quarantine: the chunk's execution budget is spent (terminal)."""
        cur = self.db.conn.execute(
            "UPDATE leases SET state='failed', deadline=NULL, error=?"
            " WHERE campaign_id=? AND chunk_index=? AND worker_id=?"
            " AND state='held'",
            (error, campaign_id, chunk_index, worker_id))
        self.db._maybe_commit()
        return bool(cur.rowcount)

    def release_all(self, worker_id: str) -> int:
        """Drain: hand back every lease this worker still holds."""
        cur = self.db.conn.execute(
            "UPDATE leases SET state='released', deadline=NULL"
            " WHERE worker_id=? AND state='held'", (worker_id,))
        self.db._maybe_commit()
        return cur.rowcount

    def cancel_open(self, campaign_id: int) -> int:
        """Cancel every non-terminal lease (job cancelled / converged)."""
        cur = self.db.conn.execute(
            "UPDATE leases SET state='cancelled', deadline=NULL"
            " WHERE campaign_id=? AND state NOT IN ('done', 'failed')",
            (campaign_id,))
        self.db._maybe_commit()
        return cur.rowcount

    # -- views ---------------------------------------------------------
    def get(self, campaign_id: int, chunk_index: int) -> Lease:
        row = self.db.conn.execute(
            "SELECT state, worker_id, deadline, attempts, takeovers, error"
            " FROM leases WHERE campaign_id=? AND chunk_index=?",
            (campaign_id, chunk_index)).fetchone()
        if row is None:
            raise KeyError(f"no lease ({campaign_id}, {chunk_index})")
        return Lease(campaign_id, chunk_index, *row)

    def leases(self, campaign_id: int) -> list[Lease]:
        return [Lease(campaign_id, *row) for row in self.db.conn.execute(
            "SELECT chunk_index, state, worker_id, deadline, attempts,"
            " takeovers, error FROM leases WHERE campaign_id=?"
            " ORDER BY chunk_index", (campaign_id,))]

    def counts(self, campaign_id: int) -> dict[str, int]:
        return dict(self.db.conn.execute(
            "SELECT state, COUNT(*) FROM leases WHERE campaign_id=?"
            " GROUP BY state", (campaign_id,)))

    def takeover_total(self, campaign_id: int) -> int:
        """How many times expired leases were reassigned — the service's
        dead/frozen-worker recovery odometer."""
        row = self.db.conn.execute(
            "SELECT COALESCE(SUM(takeovers), 0) FROM leases"
            " WHERE campaign_id=?", (campaign_id,)).fetchone()
        return int(row[0])

    # -- worker registry (heartbeat + failure accounting) --------------
    def register_worker(self, worker_id: str, pid: int, host: str) -> None:
        now = self.now()
        self.db.conn.execute(
            "INSERT OR REPLACE INTO service_workers (worker_id, pid, host,"
            " state, started_at, last_heartbeat) VALUES (?, ?, ?, 'alive',"
            " ?, ?)", (worker_id, pid, host, now, now))
        self.db._maybe_commit()

    def heartbeat_worker(self, worker_id: str) -> None:
        self.db.conn.execute(
            "UPDATE service_workers SET last_heartbeat=? WHERE worker_id=?",
            (self.now(), worker_id))
        self.db._maybe_commit()

    def bump_worker(self, worker_id: str, done: int = 0,
                    failures: int = 0) -> None:
        self.db.conn.execute(
            "UPDATE service_workers SET chunks_done=chunks_done+?,"
            " failures=failures+? WHERE worker_id=?",
            (done, failures, worker_id))
        self.db._maybe_commit()

    def retire_worker(self, worker_id: str, state: str = "gone") -> None:
        self.db.conn.execute(
            "UPDATE service_workers SET state=? WHERE worker_id=?",
            (state, worker_id))
        self.db._maybe_commit()

    def reap_stale_workers(self, ttl: float) -> int:
        """Mark workers whose heartbeat lapsed ``STALE_WORKER_TTLS``
        lease-TTLs ago as gone (observability only — recovery is lease
        expiry, which needs no reaper)."""
        cur = self.db.conn.execute(
            "UPDATE service_workers SET state='gone' WHERE state='alive'"
            " AND last_heartbeat < ?",
            (self.now() - STALE_WORKER_TTLS * ttl,))
        self.db._maybe_commit()
        return cur.rowcount

    def workers(self) -> list[tuple]:
        return list(self.db.conn.execute(
            "SELECT worker_id, pid, host, state, last_heartbeat,"
            " chunks_done, failures FROM service_workers ORDER BY worker_id"))
