"""Convenience facade over the campaign service.

``submit_campaign`` / ``poll_campaign`` / ``cancel_campaign`` /
``fetch_report`` are thin wrappers that accept a database *path* (or an
open CampaignDb) so callers needn't hold a CampaignQueue.

:class:`LocalWorkerPool` spawns N ``CampaignWorker`` processes against
one shared file — the single-host deployment, and the harness the
resilience tests and benchmarks drive (it exposes ``kill(i)`` for
SIGKILL scenarios and ``terminate()`` for SIGTERM drains).  Multi-host
deployments need none of this: point ``CampaignWorker`` at the shared
file from each host.

``run_service_campaign`` is the one-call local mode: submit, run a
pool to completion, assemble the report by replay.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import tempfile
from pathlib import Path
from typing import Any

from ..core.campaign import CampaignDb
from ..engine.core import CampaignReport, EngineConfig
from .queue import CampaignQueue, Job
from .worker import worker_main


def _queue_for(db: CampaignDb | str | Path) -> CampaignQueue:
    return CampaignQueue(db)


def submit_campaign(db: CampaignDb | str | Path, backend: Any,
                    config: EngineConfig = EngineConfig()) -> int:
    with _queue_for(db) as queue:
        return queue.submit(backend, config)


def poll_campaign(db: CampaignDb | str | Path, job_id: int) -> Job:
    with _queue_for(db) as queue:
        return queue.poll(job_id)


def cancel_campaign(db: CampaignDb | str | Path, job_id: int) -> bool:
    with _queue_for(db) as queue:
        return queue.cancel(job_id)


def fetch_report(db: CampaignDb | str | Path, job_id: int,
                 backend: Any = None,
                 config: EngineConfig | None = None) -> CampaignReport:
    with _queue_for(db) as queue:
        return queue.result(job_id, backend=backend, config=config)


class LocalWorkerPool:
    """N worker *processes* on this host, sharing one CampaignDb file.

    ``worker_kwargs`` is passed to every :class:`CampaignWorker`;
    ``per_worker`` overrides it per index — how tests hand worker 2 a
    :class:`~repro.engine.chaos.HostChaos` script while its peers run
    clean.  Workers run with ``idle_timeout`` seconds of patience for
    new jobs (default: exit as soon as the queue drains).
    """

    def __init__(self, db_path: str | os.PathLike, n_workers: int = 2, *,
                 worker_kwargs: dict | None = None,
                 per_worker: dict[int, dict] | None = None,
                 idle_timeout: float = 0.0) -> None:
        self.db_path = os.fspath(db_path)
        ctx = multiprocessing.get_context("spawn")
        self.procs = []
        for i in range(n_workers):
            kwargs = dict(worker_kwargs or {})
            kwargs.update((per_worker or {}).get(i, {}))
            kwargs.setdefault("worker_id", f"local-{i}")
            self.procs.append(ctx.Process(
                target=worker_main,
                args=(self.db_path, kwargs, idle_timeout),
                name=f"campaign-worker-{i}", daemon=True))

    def start(self) -> "LocalWorkerPool":
        for proc in self.procs:
            proc.start()
        return self

    def join(self, timeout: float | None = None) -> None:
        for proc in self.procs:
            proc.join(timeout)

    def alive(self) -> list[int]:
        return [i for i, proc in enumerate(self.procs) if proc.is_alive()]

    def kill(self, index: int) -> None:
        """SIGKILL one worker — the hard-death scenario (no drain, no
        cleanup; its leases must expire and be reclaimed by peers)."""
        proc = self.procs[index]
        if proc.pid is not None:
            os.kill(proc.pid, signal.SIGKILL)
        proc.join(timeout=10.0)

    def terminate(self) -> None:
        """SIGTERM everyone: graceful drain."""
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()

    def stop(self) -> None:
        self.terminate()
        self.join(timeout=10.0)
        for proc in self.procs:
            if proc.is_alive():  # drain ignored: escalate
                proc.kill()
                proc.join(timeout=5.0)

    def __enter__(self) -> "LocalWorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def run_service_campaign(backend: Any,
                         config: EngineConfig = EngineConfig(), *,
                         db_path: str | os.PathLike | None = None,
                         n_workers: int = 2,
                         worker_kwargs: dict | None = None,
                         per_worker: dict[int, dict] | None = None,
                         wait_timeout: float | None = 300.0
                         ) -> CampaignReport:
    """Submit one campaign, run a local pool until it finishes, and
    return the replay-assembled report (byte-identical to serial)."""
    own_dir: tempfile.TemporaryDirectory | None = None
    if db_path is None:
        own_dir = tempfile.TemporaryDirectory(prefix="repro-service-")
        db_path = os.path.join(own_dir.name, "service.sqlite")
    try:
        with CampaignQueue(db_path) as queue:
            job_id = queue.submit(backend, config)
        pool = LocalWorkerPool(db_path, n_workers,
                               worker_kwargs=worker_kwargs,
                               per_worker=per_worker)
        with pool:
            with CampaignQueue(db_path) as queue:
                job = queue.wait(job_id, timeout=wait_timeout)
                if job.state != "done":
                    raise RuntimeError(
                        f"service campaign did not finish: job {job_id} "
                        f"is {job.state!r} after {wait_timeout}s "
                        f"(error: {job.error})")
                return queue.result(job_id)
    finally:
        if own_dir is not None:
            own_dir.cleanup()
