"""Campaign service: distributed, fault-tolerant campaign execution.

The engine (:mod:`repro.engine`) runs one campaign in one process; this
package runs campaigns across any number of worker processes or hosts
that share nothing but a :class:`~repro.core.campaign.CampaignDb`
SQLite file (WAL mode).  The division of labour:

* :mod:`.queue`  — ``CampaignQueue``: submit / poll / cancel jobs;
  job activation; completion + distributed early-stop detection;
  report assembly by engine replay.
* :mod:`.leases` — ``LeaseManager``: the per-chunk work-claim state
  machine (atomic conditional-UPDATE claims, heartbeat deadline
  extensions, expiry takeovers, quarantine).
* :mod:`.worker` — ``CampaignWorker``: the claim → execute → record
  loop, heartbeat thread, SIGTERM graceful drain, and the
  :class:`~repro.engine.chaos.HostChaos` sabotage points.
* :mod:`.api`    — one-call helpers and ``LocalWorkerPool`` for
  single-host deployments, tests and benchmarks.

The load-bearing invariant, proven in ``tests/test_service.py``: a
campaign run by N workers — including workers that are SIGKILLed
mid-chunk, freeze their heartbeats, skew their clocks, or stall and
resume after their lease was reassigned — produces a report
byte-identical to a serial ``run_campaign`` of the same (backend,
config).
"""

from .api import (LocalWorkerPool, cancel_campaign, fetch_report,
                  poll_campaign, run_service_campaign, submit_campaign)
from .leases import Lease, LeaseManager
from .queue import CampaignQueue, Job
from .worker import CampaignWorker, worker_main

__all__ = [
    "CampaignQueue",
    "CampaignWorker",
    "Job",
    "Lease",
    "LeaseManager",
    "LocalWorkerPool",
    "cancel_campaign",
    "fetch_report",
    "poll_campaign",
    "run_service_campaign",
    "submit_campaign",
    "worker_main",
]
