"""Campaign job queue: submit / poll / cancel over the shared CampaignDb.

A *job* is a pickled ``(backend, config)`` pair in the ``service_jobs``
table.  Submitting writes the payload; any :class:`~repro.service
.worker.CampaignWorker` polling the same database file can then
*activate* the job — one winner atomically creates the campaign row,
its filter-census rows and one lease per chunk in a single transaction
— and every worker (winner or not) re-derives the identical
:class:`~repro.engine.core.CampaignPlan` from the payload, claims
leases by bare chunk index, and records results through the engine's
idempotent checkpoint log.

Job state machine::

    pending ──activate──▶ running ──all chunks terminal /
                             │       early-stop converged──▶ done
                             │──unrunnable payload──▶ failed
    pending/running ──cancel──▶ cancelled

The final report is **assembled by replay**: :meth:`CampaignQueue
.result` calls ``run_campaign(resume=campaign_id)``, which walks the
committed chunk prefix through the engine's normal accounting path.
That is what makes an N-worker service run byte-identical to a serial
one — the service only decides *who executes which chunk when*; what a
chunk produces and how results are folded into the report never left
the engine.
"""

from __future__ import annotations

import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from ..core.campaign import CampaignDb
from ..engine.core import (CampaignPlan, CampaignReport, EngineConfig,
                           plan_campaign, run_campaign, stop_satisfied)
from .leases import LeaseManager

JOB_STATES = ("pending", "running", "done", "failed", "cancelled")

#: Terminal job states.
JOB_TERMINAL = ("done", "failed", "cancelled")


@dataclass(frozen=True)
class Job:
    """A queue entry's visible state (one :meth:`CampaignQueue.poll`)."""

    id: int
    state: str
    campaign_id: int | None
    fingerprint: str | None
    n_chunks: int | None
    converged_chunk: int | None
    error: str | None
    submitted_at: float | None
    started_at: float | None
    finished_at: float | None
    chunks_done: int = 0
    chunks_failed: int = 0

    @property
    def finished(self) -> bool:
        return self.state in JOB_TERMINAL


class CampaignQueue:
    """Submit/poll/cancel campaigns against one shared CampaignDb file.

    Accepts an open :class:`CampaignDb` or a path (opened and owned).
    The database must be file-backed for multi-process workers — an
    in-memory database is private to one connection and the service's
    whole point is that it isn't.
    """

    def __init__(self, db: CampaignDb | str | Path,
                 now: Callable[[], float] = time.time) -> None:
        if isinstance(db, (str, Path)):
            db = CampaignDb(db)
            self._owns_db = True
        else:
            self._owns_db = False
        self.db = db
        self.now = now
        self.leases = LeaseManager(db, now=now)

    def close(self) -> None:
        if self._owns_db:
            self.db.close()

    def __enter__(self) -> "CampaignQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- client side ---------------------------------------------------
    def submit(self, backend: Any,
               config: EngineConfig = EngineConfig()) -> int:
        """Enqueue a campaign; returns the job id.

        The backend must be picklable (the same requirement the process
        executor imposes) — workers in other processes rebuild it from
        the payload.
        """
        payload = pickle.dumps((backend, config),
                               protocol=pickle.HIGHEST_PROTOCOL)
        cur = self.db.conn.execute(
            "INSERT INTO service_jobs (state, payload, submitted_at)"
            " VALUES ('pending', ?, ?)", (payload, self.now()))
        self.db._maybe_commit()
        return int(cur.lastrowid)

    def poll(self, job_id: int) -> Job:
        row = self.db.conn.execute(
            "SELECT id, state, campaign_id, fingerprint, n_chunks,"
            " converged_chunk, error, submitted_at, started_at, finished_at"
            " FROM service_jobs WHERE id=?", (job_id,)).fetchone()
        if row is None:
            raise KeyError(f"no job {job_id}")
        campaign_id = row[2]
        done = failed = 0
        if campaign_id is not None:
            # progress comes from the chunk checkpoint log, the ground
            # truth (leases can briefly lag it after a stale complete)
            for status, count in self.db.conn.execute(
                    "SELECT status, COUNT(*) FROM chunks WHERE campaign_id=?"
                    " GROUP BY status", (campaign_id,)):
                if status == "done":
                    done = count
                elif status == "failed":
                    failed = count
        return Job(*row, chunks_done=done, chunks_failed=failed)

    def cancel(self, job_id: int) -> bool:
        """Cancel a pending/running job; open leases are cancelled and
        workers stop claiming at their next job-state check."""
        with self.db.transaction():
            cur = self.db.conn.execute(
                "UPDATE service_jobs SET state='cancelled', finished_at=?"
                " WHERE id=? AND state IN ('pending', 'running')",
                (self.now(), job_id))
            if cur.rowcount:
                row = self.db.conn.execute(
                    "SELECT campaign_id FROM service_jobs WHERE id=?",
                    (job_id,)).fetchone()
                if row and row[0] is not None:
                    self.leases.cancel_open(row[0])
        return bool(cur.rowcount)

    def wait(self, job_id: int, timeout: float | None = None,
             poll_s: float = 0.05) -> Job:
        """Block until the job reaches a terminal state (or timeout —
        then the job is returned as-is, unfinished)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.poll(job_id)
            if job.finished:
                return job
            if deadline is not None and time.monotonic() >= deadline:
                return job
            time.sleep(poll_s)

    def load(self, job_id: int) -> tuple[Any, EngineConfig]:
        """Unpickle a job's (backend, config) payload."""
        row = self.db.conn.execute(
            "SELECT payload FROM service_jobs WHERE id=?",
            (job_id,)).fetchone()
        if row is None:
            raise KeyError(f"no job {job_id}")
        return pickle.loads(row[0])

    def result(self, job_id: int, backend: Any = None,
               config: EngineConfig | None = None) -> CampaignReport:
        """Assemble the finished job's report by engine replay.

        ``run_campaign(resume=...)`` folds the committed chunk prefix
        through the exact accounting path a serial run uses, so the
        report is byte-identical to one.  A fresh backend is unpickled
        from the payload unless the caller supplies its own (it must be
        plan-identical; the stored fingerprint enforces that).
        """
        job = self.poll(job_id)
        if job.state != "done":
            raise RuntimeError(
                f"job {job_id} is {job.state!r}, not done; no report")
        if backend is None or config is None:
            stored_backend, stored_config = self.load(job_id)
            backend = backend if backend is not None else stored_backend
            config = config if config is not None else stored_config
        return run_campaign(backend, config, db=self.db,
                            resume=job.campaign_id)

    # -- worker side ---------------------------------------------------
    def next_job(self) -> int | None:
        """Lowest-id job still needing work (pending or running)."""
        row = self.db.conn.execute(
            "SELECT id FROM service_jobs WHERE state IN"
            " ('pending', 'running') ORDER BY id LIMIT 1").fetchone()
        return None if row is None else int(row[0])

    def job_state(self, job_id: int) -> str:
        row = self.db.conn.execute(
            "SELECT state FROM service_jobs WHERE id=?",
            (job_id,)).fetchone()
        if row is None:
            raise KeyError(f"no job {job_id}")
        return str(row[0])

    def activate(self, job_id: int, plan: CampaignPlan,
                 config: EngineConfig) -> int | None:
        """Ensure the job has a campaign; returns its id (None if the
        job went terminal).

        Exactly one worker wins the conditional UPDATE and creates —
        atomically, in one transaction — the campaign row (params and
        census rows shaped exactly as ``run_campaign`` writes them, so
        the replay assembler accepts it), plus one pending lease per
        chunk.  Losers simply read the winner's committed campaign id;
        a winner that dies mid-transaction rolls back to ``pending``
        and the next worker retries the claim.
        """
        conn = self.db.conn
        while True:
            row = conn.execute(
                "SELECT state, campaign_id FROM service_jobs WHERE id=?",
                (job_id,)).fetchone()
            if row is None:
                raise KeyError(f"no job {job_id}")
            state, campaign_id = row
            if state in JOB_TERMINAL:
                return None
            if campaign_id is not None:
                return int(campaign_id)
            won: int | None = None
            with self.db.transaction():
                cur = conn.execute(
                    "UPDATE service_jobs SET state='running', started_at=?,"
                    " fingerprint=?, n_chunks=?"
                    " WHERE id=? AND state='pending' AND campaign_id IS NULL",
                    (self.now(), plan.fingerprint, len(plan.chunks), job_id))
                if cur.rowcount:
                    backend, _ = self.load(job_id)
                    won = self.db.create_campaign(
                        name=f"{backend.name}:{backend.circuit_name}",
                        circuit=backend.circuit_name,
                        fault_model=backend.fault_model,
                        workload=backend.workload,
                        params={
                            "batch_size": config.batch_size,
                            "chunk_size": plan.batch_size,
                            "workers": config.workers,
                            "executor": "service",
                            "lane_width": plan.lane_width,
                            "sample": config.sample,
                            "seed": config.seed,
                            "filtered": len(plan.skipped),
                            "early_stop": (config.early_stop.outcome
                                           if config.early_stop else None),
                            "fingerprint": plan.fingerprint,
                        })
                    if plan.skipped:
                        self.db.record_many(
                            won, [inj.row() for inj in plan.skipped])
                    self.leases.create(won, len(plan.chunks))
                    conn.execute(
                        "UPDATE service_jobs SET campaign_id=? WHERE id=?",
                        (won, job_id))
            if won is not None:
                return won
            # lost the claim: loop — the winner's transaction has
            # committed by the time our UPDATE returned, so the re-read
            # sees its campaign_id (or a fresh 'pending' if it died)

    def fail_job(self, job_id: int, error: str) -> bool:
        """Mark a job unrunnable (bad payload, planning crash)."""
        cur = self.db.conn.execute(
            "UPDATE service_jobs SET state='failed', error=?, finished_at=?"
            " WHERE id=? AND state IN ('pending', 'running')",
            (error, self.now(), job_id))
        self.db._maybe_commit()
        return bool(cur.rowcount)

    def maybe_finish(self, job_id: int, campaign_id: int, plan: CampaignPlan,
                     config: EngineConfig) -> bool:
        """Finish the job if its campaign is complete; True when done.

        Complete means either every chunk has a terminal record
        (done/quarantined), or — with early stop — the engine's own
        convergence arithmetic, replayed over the *contiguous prefix*
        of committed 'done' chunks in index order, is satisfied at some
        chunk ``k``.  Walking the prefix in order is what pins the
        distributed run to the same stopping chunk as a serial one:
        chunks recorded past ``k`` by other workers are speculative and
        the replay assembler ignores them, exactly as the engine
        discards speculative in-flight chunks on early stop.
        """
        stop = config.early_stop
        n_chunks = len(plan.chunks)
        converged_chunk: int | None = None
        if stop is None:
            # no early stop: completion is a row count, checked O(1)
            # after every chunk instead of materializing all records
            (n_recorded,) = self.db.conn.execute(
                "SELECT COUNT(*) FROM chunks WHERE campaign_id=?",
                (campaign_id,)).fetchone()
            if n_recorded < n_chunks:
                return False
        else:
            records = self.db.chunk_records(campaign_id)
            rows_by_chunk = self.db.chunk_rows(campaign_id)
            n_skipped = len(plan.skipped)
            # pre-converged by the filter census, before any execution
            if plan.skipped and stop_satisfied(stop, n_skipped, 0, 0,
                                               plan.n_kept, plan.planned):
                converged_chunk = -1
            else:
                executed = hits = 0
                for i in range(n_chunks):
                    record = records.get(i)
                    if record is None or record.status != "done":
                        break
                    chunk_rows = rows_by_chunk.get(i, [])
                    executed += len(chunk_rows)
                    hits += sum(1 for _, _, outcome in chunk_rows
                                if outcome == stop.outcome)
                    if stop_satisfied(stop, n_skipped + executed, hits,
                                      executed, plan.n_kept, plan.planned):
                        converged_chunk = i
                        break
            if converged_chunk is None and len(records) < n_chunks:
                return False
        with self.db.transaction():
            cur = self.db.conn.execute(
                "UPDATE service_jobs SET state='done', finished_at=?,"
                " converged_chunk=? WHERE id=? AND state='running'",
                (self.now(), converged_chunk, job_id))
            if cur.rowcount:
                # converged: the un-needed tail of leases is cancelled so
                # no worker burns time on chunks the report will ignore
                self.leases.cancel_open(campaign_id)
        return True
