"""CampaignWorker: the service's execution loop.

Any number of these — threads, processes, hosts — run against the same
CampaignDb file.  Each worker independently polls the job queue,
re-derives the deterministic :class:`~repro.engine.core.CampaignPlan`
from the job payload, and then loops: claim a lease, execute the chunk
with its planned seed, record the result idempotently, complete the
lease.  Coordination is *only* the lease table; workers never talk to
each other.

Crash safety falls out of two facts.  First, a chunk's result is a
pure function of ``(chunk, seed)`` — so re-executing it anywhere
yields byte-identical rows.  Second, ``record_chunk`` is idempotent —
so duplicated execution (an expired lease reclaimed while the original
worker still finishes) collapses to one committed record.  A worker
can therefore die at ANY instruction without corrupting the campaign:
its held leases expire and are re-claimed, and the worst case is
wasted duplicate work.

A heartbeat thread (own database connection — sqlite3 connections are
thread-bound) extends the deadlines of all held leases every
``lease_ttl / 3`` seconds.  ``SIGTERM`` requests a graceful drain:
finish the chunk in flight, release any held leases, retire the worker
row, exit.

Failure accounting: a chunk that fails execution releases its lease
(claimable by anyone, attempt count retained) until the attempt budget
``config.max_chunk_retries + 1`` is spent *across all workers*, at
which point it is quarantined — a terminal 'failed' chunk record, the
same first-class stratum PR 7's in-process retry loop feeds.
"""

from __future__ import annotations

import os
import signal
import socket
import threading
import time
from typing import Any

from ..core.campaign import CampaignDb
from ..engine import executors as _executors
from ..engine.core import (RETRY_BACKOFF_CAP_S, CampaignPlan, EngineConfig,
                           Injection)
from .leases import LeaseManager, Lease
from .queue import CampaignQueue


def _default_worker_id() -> str:
    return (f"{socket.gethostname()}-{os.getpid()}-"
            f"{os.urandom(3).hex()}")


class CampaignWorker:
    """One service worker bound to a CampaignDb *file*.

    ``chaos`` (a :class:`~repro.engine.chaos.HostChaos`) scripts
    host-level sabotage for tests: it is consulted at the documented
    points (claim, pre-record, every clock read, every heartbeat tick)
    and is ``None`` in production.
    """

    def __init__(self, db_path: str | os.PathLike, *,
                 worker_id: str | None = None,
                 lease_ttl: float = 10.0,
                 poll_s: float = 0.05,
                 chaos: Any = None) -> None:
        self.db_path = os.fspath(db_path)
        self.worker_id = worker_id or _default_worker_id()
        self.lease_ttl = float(lease_ttl)
        self.poll_s = float(poll_s)
        self.chaos = chaos
        self.chunks_executed = 0
        self._draining = threading.Event()
        self._hb_stop = threading.Event()
        self._hb_thread: threading.Thread | None = None

    # -- clocks and control --------------------------------------------
    def _now(self) -> float:
        real = time.time()
        return self.chaos.now(real) if self.chaos is not None else real

    def drain(self) -> None:
        """Request graceful shutdown: finish the in-flight chunk,
        release held leases, exit the run loop."""
        self._draining.set()

    def install_signal_handlers(self) -> None:
        """SIGTERM → drain (main thread only; no-op elsewhere)."""
        if threading.current_thread() is not threading.main_thread():
            return
        signal.signal(signal.SIGTERM, lambda *_: self.drain())

    # -- heartbeat -----------------------------------------------------
    def _heartbeat_loop(self) -> None:
        # sqlite3 connections are thread-bound: the heartbeat gets its
        # own, so deadline extensions never race the main loop's writes
        db = CampaignDb(self.db_path)
        leases = LeaseManager(db, now=self._now)
        try:
            interval = max(0.01, self.lease_ttl / 3.0)
            while not self._hb_stop.wait(interval):
                if (self.chaos is not None
                        and self.chaos.heartbeats_frozen()):
                    continue  # scripted freeze: deadlines lapse under us
                leases.extend(self.worker_id, self.lease_ttl)
                leases.heartbeat_worker(self.worker_id)
        finally:
            db.close()

    # -- main loop -----------------------------------------------------
    def run(self, max_jobs: int | None = None,
            idle_timeout: float = 0.0) -> int:
        """Process jobs until the queue is empty (then linger up to
        ``idle_timeout`` seconds for new ones), drained, or ``max_jobs``
        processed.  Returns the number of chunks this worker executed.
        """
        db = CampaignDb(self.db_path)
        queue = CampaignQueue(db, now=self._now)
        leases = LeaseManager(db, now=self._now)
        leases.register_worker(self.worker_id, os.getpid(),
                               socket.gethostname())
        self._hb_stop.clear()
        self._hb_thread = threading.Thread(
            target=self._heartbeat_loop, name="lease-heartbeat", daemon=True)
        self._hb_thread.start()
        jobs_done = 0
        idle_since: float | None = None
        try:
            while not self._draining.is_set():
                job_id = queue.next_job()
                if job_id is None:
                    now = time.monotonic()
                    if idle_since is None:
                        idle_since = now
                    if now - idle_since >= idle_timeout:
                        break
                    time.sleep(self.poll_s)
                    continue
                idle_since = None
                self._process_job(queue, leases, job_id)
                jobs_done += 1
                if max_jobs is not None and jobs_done >= max_jobs:
                    break
        finally:
            leases.release_all(self.worker_id)
            leases.retire_worker(
                self.worker_id,
                "drained" if self._draining.is_set() else "done")
            self._hb_stop.set()
            if self._hb_thread is not None:
                self._hb_thread.join(timeout=5.0)
            db.close()
        return self.chunks_executed

    def _process_job(self, queue: CampaignQueue, leases: LeaseManager,
                     job_id: int) -> None:
        try:
            backend, config = queue.load(job_id)
            plan = plan_campaign_for(backend, config)
        except Exception as exc:  # unrunnable payload: poison the job,
            queue.fail_job(job_id,  # don't let it wedge the queue
                           f"{type(exc).__name__}: {exc}")
            return
        campaign_id = queue.activate(job_id, plan, config)
        if campaign_id is None:
            return  # went terminal while we were planning
        backend.prepare()
        if queue.maybe_finish(job_id, campaign_id, plan, config):
            return  # pre-converged by the filter census, or already done
        # Chaos-scripted workers claim one chunk at a time so fault
        # ordinals ("sigkill after the 2nd claim") stay exact; clean
        # workers batch claims and records at the engine's checkpoint
        # cadence, matching its commit cost per chunk.
        claim_n = 1 if self.chaos is not None \
            else max(1, config.commit_every)
        while not self._draining.is_set():
            if queue.job_state(job_id) != "running":
                return
            claimed: list[Lease] = []
            with queue.db.transaction():
                for _ in range(claim_n):
                    lease = leases.claim_next(campaign_id, self.worker_id,
                                              self.lease_ttl)
                    if lease is None:
                        break
                    claimed.append(lease)
            if not claimed:
                if queue.maybe_finish(job_id, campaign_id, plan, config):
                    return
                # nothing claimable right now: peers hold live leases
                time.sleep(self.poll_s)
                continue
            done: list[tuple[Lease, list[Injection]]] = []
            for lease in claimed:
                if self.chaos is not None:
                    self.chaos.on_chunk_claimed()  # a due sigkill fires
                batch = self._execute_one(queue.db, leases, campaign_id,
                                          plan, backend, config, lease)
                if batch is not None:
                    done.append((lease, batch))
                if self._draining.is_set():
                    break  # drain: record what finished, release the rest
            if done:
                # ONE transaction: each chunk record commits together
                # with its lease completion (a crash between them would
                # merely leave recorded chunks under expiring leases —
                # still convergent, the claim predicate skips them)
                with queue.db.transaction():
                    for lease, batch in done:
                        queue.db.record_chunk(
                            campaign_id, lease.chunk_index,
                            [inj.row() for inj in batch],
                            seed=plan.seeds[lease.chunk_index],
                            status="done", attempts=lease.attempts)
                        leases.complete(campaign_id, lease.chunk_index,
                                        self.worker_id)
                    leases.bump_worker(self.worker_id, done=len(done))
                self.chunks_executed += len(done)
            if queue.maybe_finish(job_id, campaign_id, plan, config):
                return

    def _execute_one(self, db: CampaignDb, leases: LeaseManager,
                     campaign_id: int, plan: CampaignPlan, backend: Any,
                     config: EngineConfig,
                     lease: Lease) -> list[Injection] | None:
        """Execute one leased chunk; return its batch, or None after
        routing a failure through release/quarantine."""
        index = lease.chunk_index
        chunk, seed = plan.chunks[index], plan.seeds[index]
        try:
            batch = _executors.execute_chunk_timed(
                backend, chunk, seed, config.chunk_timeout)
            if (not isinstance(batch, list) or len(batch) != len(chunk)
                    or (batch and not isinstance(batch[0], Injection))):
                raise _executors.ChunkError(ValueError(
                    f"malformed result for chunk {index}: expected "
                    f"{len(chunk)} Injection entries"))
        except Exception as exc:
            cause = exc.cause if isinstance(exc, _executors.ChunkError) \
                else exc
            self._chunk_failed(db, leases, campaign_id, config, lease,
                               f"{type(cause).__name__}: {cause}", seed)
            return None
        if self.chaos is not None:
            self.chaos.stall_before_record()  # scripted stale-worker gap
        return batch

    def _chunk_failed(self, db: CampaignDb, leases: LeaseManager,
                      campaign_id: int, config: EngineConfig, lease: Lease,
                      error: str, seed: int) -> None:
        """Release for retry, or quarantine once the cross-worker
        attempt budget (original + ``max_chunk_retries``) is spent."""
        leases.bump_worker(self.worker_id, failures=1)
        budget = max(0, config.max_chunk_retries) + 1
        if lease.attempts >= budget:
            with db.transaction():
                db.record_chunk(campaign_id, lease.chunk_index, [],
                                seed=seed, status="failed",
                                attempts=lease.attempts, error=error)
                leases.fail(campaign_id, lease.chunk_index,
                            self.worker_id, error)
            return
        leases.release(campaign_id, lease.chunk_index, self.worker_id,
                       error)
        backoff = min(RETRY_BACKOFF_CAP_S,
                      config.retry_backoff_s * (2 ** (lease.attempts - 1)))
        if backoff > 0:
            time.sleep(backoff)


def plan_campaign_for(backend: Any, config: EngineConfig) -> CampaignPlan:
    """The worker's plan derivation — one seam for tests to break."""
    from ..engine.core import plan_campaign
    return plan_campaign(backend, config)


def worker_main(db_path: str, worker_kwargs: dict | None = None,
                idle_timeout: float = 0.0,
                handle_signals: bool = True) -> int:
    """Process entry point (top-level, so spawn can import it)."""
    worker = CampaignWorker(db_path, **(worker_kwargs or {}))
    if handle_signals:
        worker.install_signal_handlers()
    return worker.run(idle_timeout=idle_timeout)
