"""SEU fault-injection campaigns on sequential circuits.

Each injection flips one flop at one cycle of a workload and compares the
machine against the golden run:

* **masked**     — primary outputs and final state both match;
* **latent**     — outputs match but corrupted state remains at the end;
* **failure**    — some primary output differs in some cycle (SDC).

The per-flop failure probability is the architectural vulnerability
factor (AVF) — the "functional derating" leaf of the FIT chain, and the
training label for the ML predictors of experiment E5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..circuit.netlist import Circuit
from ..sim.sequential import SequentialSim

MASKED = "masked"
LATENT = "latent"
FAILURE = "failure"


@dataclass(frozen=True)
class SeuInjection:
    """One injection point and its outcome."""

    flop: str
    cycle: int
    outcome: str


@dataclass
class SeuCampaignResult:
    """Aggregated campaign outcome."""

    injections: list[SeuInjection] = field(default_factory=list)
    n_cycles: int = 0

    @property
    def total(self) -> int:
        return len(self.injections)

    def count(self, outcome: str) -> int:
        return sum(1 for inj in self.injections if inj.outcome == outcome)

    @property
    def failure_rate(self) -> float:
        return self.count(FAILURE) / self.total if self.total else 0.0

    @property
    def masked_rate(self) -> float:
        return self.count(MASKED) / self.total if self.total else 0.0

    @property
    def latent_rate(self) -> float:
        return self.count(LATENT) / self.total if self.total else 0.0

    def avf_per_flop(self) -> dict[str, float]:
        """Per-flop failure probability (AVF) over the campaign."""
        totals: dict[str, int] = {}
        fails: dict[str, int] = {}
        for inj in self.injections:
            totals[inj.flop] = totals.get(inj.flop, 0) + 1
            if inj.outcome == FAILURE:
                fails[inj.flop] = fails.get(inj.flop, 0) + 1
        return {f: fails.get(f, 0) / totals[f] for f in totals}


def _golden_run(circuit: Circuit, stimuli: Sequence[Mapping[str, int]]):
    sim = SequentialSim(circuit, 1)
    trace = [dict(out) for out in sim.run(stimuli)]
    return trace, dict(sim.state)


def inject_seu(
    circuit: Circuit,
    stimuli: Sequence[Mapping[str, int]],
    flop: str,
    cycle: int,
    golden: tuple[list[dict[str, int]], dict[str, int]] | None = None,
) -> str:
    """Run one SEU experiment and classify the outcome."""
    if golden is None:
        golden = _golden_run(circuit, stimuli)
    golden_trace, golden_state = golden
    sim = SequentialSim(circuit, 1)
    for cyc, stim in enumerate(stimuli):
        if cyc == cycle:
            sim.flip_state(flop)
        out = sim.step(stim)
        if out != golden_trace[cyc]:
            return FAILURE
    if sim.state != golden_state:
        return LATENT
    return MASKED


def run_campaign(
    circuit: Circuit,
    stimuli: Sequence[Mapping[str, int]],
    targets: Sequence[str] | None = None,
    cycles: Sequence[int] | None = None,
    sample: int | None = None,
    seed: int = 0,
    db=None,
    workers: int = 1,
    executor: str = "auto",
    lane_width: int | None = None,
    lane_backing: str | None = None,
    resume: int | None = None,
) -> SeuCampaignResult:
    """SEU campaign over flops × cycles (exhaustive or sampled).

    ``sample`` caps the number of injections drawn uniformly from the
    space; ``None`` means exhaustive.  Execution runs on the unified
    campaign engine: ``db`` persists every injection to a
    :class:`repro.core.campaign.CampaignDb`, ``workers`` > 1 runs
    batches concurrently, and ``executor`` picks the strategy
    (serial/thread/process/auto) — results are identical to the serial
    run for any combination.  ``lane_width`` overrides the engine's
    lane packing (injections simulated per packed sequential run;
    default 64, ``1`` forces the per-point reference path, widths above
    64 ride the vector tier — packed big ints or, via
    ``lane_backing="ndarray"``, numpy block arrays) — outcomes are
    byte-identical at every width and backing.  ``resume`` restarts a
    checkpointed campaign (requires the ``db`` it was recorded in) from
    its last committed chunk, byte-identical to an uninterrupted run.
    """
    from ..engine.backends import SeuBackend
    from ..engine.core import EngineConfig, run_campaign as run_engine

    kwargs = {} if lane_width is None else {"lane_width": lane_width}
    if lane_backing is not None:
        kwargs["lane_backing"] = lane_backing
    backend = SeuBackend(circuit, stimuli, targets, cycles, **kwargs)
    config = EngineConfig(workers=workers, sample=sample, seed=seed,
                          executor=executor)
    report = run_engine(backend, config, db=db, resume=resume)
    result = SeuCampaignResult(n_cycles=len(stimuli))
    result.injections = [SeuInjection(inj.location, inj.cycle, inj.outcome)
                         for inj in report.injections]
    return result


def random_workload(circuit: Circuit, n_cycles: int, seed: int = 0) -> list[dict[str, int]]:
    """Random primary-input stimulus for campaign workloads."""
    rng = random.Random(seed)
    return [
        {pi: rng.getrandbits(1) for pi in circuit.inputs}
        for _ in range(n_cycles)
    ]
