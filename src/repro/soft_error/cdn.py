"""SETs in clock distribution networks (experiment E4, after [54]).

A particle strike on a clock buffer produces a spurious or eaten clock
edge for every flop in that buffer's subtree.  Unlike a data-path SET —
which must win three masking lotteries to matter — a captured spurious
edge corrupts *every* downstream flop whose D differs from its Q at
strike time.  [54]'s headline observation is exactly this asymmetry, plus
the depth effect: strikes near the root hit exponentially more flops.

The model: a balanced binary clock tree (H-tree abstraction) over the
circuit's flops.  A strike at level L affects ``leaves/2^L`` of the
flops.  A spurious edge at a uniformly random time inside the cycle
captures the *current* combinational D value; the flop ends up wrong iff
that mid-cycle D differs from the value it held (i.e. the flop was about
to toggle — its switching activity)."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..circuit.netlist import Circuit
from ..sim.sequential import SequentialSim


@dataclass(frozen=True)
class ClockTree:
    """Balanced binary clock tree over a circuit's flops."""

    depth: int
    leaf_groups: tuple[tuple[str, ...], ...]

    @property
    def n_buffers(self) -> int:
        return (1 << (self.depth + 1)) - 1

    def buffers_at_level(self, level: int) -> int:
        return 1 << level

    def flops_under(self, level: int, index: int) -> list[str]:
        """Flops in the subtree of buffer ``index`` at ``level``."""
        span = len(self.leaf_groups) >> level
        start = index * span
        out: list[str] = []
        for group in self.leaf_groups[start:start + span]:
            out.extend(group)
        return out


def build_clock_tree(circuit: Circuit, depth: int = 3) -> ClockTree:
    """Partition the circuit's flops under a depth-``depth`` binary tree."""
    flops = sorted(circuit.flops)
    n_leaves = 1 << depth
    groups: list[tuple[str, ...]] = []
    per = max(1, math.ceil(len(flops) / n_leaves))
    for i in range(n_leaves):
        groups.append(tuple(flops[i * per:(i + 1) * per]))
    return ClockTree(depth, tuple(groups))


@dataclass
class CdnSetResult:
    """Per-level CDN SET failure statistics."""

    level_failure_rate: dict[int, float] = field(default_factory=dict)
    level_flops_hit: dict[int, float] = field(default_factory=dict)
    datapath_failure_rate: float = 0.0

    def amplification(self, level: int) -> float:
        """CDN-vs-datapath failure ratio at a tree level."""
        if self.datapath_failure_rate <= 0:
            return math.inf if self.level_failure_rate.get(level, 0) > 0 else 1.0
        return self.level_failure_rate.get(level, 0.0) / self.datapath_failure_rate


def _spurious_capture_errors(
    circuit: Circuit,
    sim_state: dict[str, int],
    stim: Mapping[str, int],
    affected: Sequence[str],
) -> int:
    """Flops (among affected) that would latch a wrong value mid-cycle.

    A spurious edge captures the current D; the flop is corrupted iff the
    mid-cycle D differs from its current Q (it prematurely toggles).
    """
    from ..sim.logic import simulate

    values = simulate(circuit, stim, 1, sim_state)
    errors = 0
    for q in affected:
        d_now = values[circuit.flops[q].d] & 1
        q_now = sim_state.get(q, 0) & 1
        if d_now != q_now:
            errors += 1
    return errors


def run_cdn_campaign(
    circuit: Circuit,
    stimuli: Sequence[Mapping[str, int]],
    tree: ClockTree | None = None,
    strikes_per_level: int = 64,
    seed: int = 0,
) -> CdnSetResult:
    """Monte-Carlo CDN SET campaign across tree levels.

    Each strike picks a random cycle and a random buffer at the level;
    the failure metric is the probability that at least one flop is
    corrupted (a functional upset of the machine state).  The data-path
    baseline is the probability that one random flop's D≠Q mid-cycle —
    i.e. a single-flop spurious capture, the best case a data-path SET
    reaching one flop can achieve.
    """
    if tree is None:
        tree = build_clock_tree(circuit)
    rng = random.Random(seed)
    result = CdnSetResult()

    # replay states for each cycle once
    sim = SequentialSim(circuit, 1)
    states: list[dict[str, int]] = []
    for stim in stimuli:
        states.append(dict(sim.state))
        sim.step(stim)

    flop_list = sorted(circuit.flops)
    for level in range(tree.depth + 1):
        upsets = 0
        flops_hit_acc = 0
        for _ in range(strikes_per_level):
            cyc = rng.randrange(len(stimuli))
            buf = rng.randrange(tree.buffers_at_level(level))
            affected = tree.flops_under(level, buf)
            errors = _spurious_capture_errors(
                circuit, states[cyc], stimuli[cyc], affected)
            flops_hit_acc += errors
            if errors:
                upsets += 1
        result.level_failure_rate[level] = upsets / strikes_per_level
        result.level_flops_hit[level] = flops_hit_acc / strikes_per_level

    # data-path baseline: single random flop capture
    upsets = 0
    trials = strikes_per_level * max(1, tree.depth)
    for _ in range(trials):
        cyc = rng.randrange(len(stimuli))
        flop = rng.choice(flop_list)
        errors = _spurious_capture_errors(circuit, states[cyc], stimuli[cyc], [flop])
        if errors:
            upsets += 1
    result.datapath_failure_rate = upsets / trials
    return result


def failure_rate_vs_pulse_width(
    widths: Sequence[float],
    clock_period: float = 10.0,
    danger_window: float = 0.5,
) -> list[tuple[float, float]]:
    """Analytic capture probability of a clock glitch vs its width.

    A clock-path pulse becomes a spurious edge when it exceeds the sink
    flop's minimum pulse width (``danger_window``); wider pulses are
    captured with probability growing with width over the period — the
    rising curve [54] reports.
    """
    out = []
    for w in widths:
        if w <= danger_window:
            out.append((w, 0.0))
        else:
            out.append((w, min(1.0, (w - danger_window + danger_window) / clock_period)))
    return out
