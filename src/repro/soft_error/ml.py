"""Machine learning for failure-rate analysis (E5, after [31][55]-[58]).

The RESCUE line of work trains models on gate-level graph features to
predict per-instance derating factors, replacing part of the fault
simulation budget.  [56]/[58] specifically use graph convolutional
networks over the netlist graph with low-dimensional structural
features.

Implemented here with numpy only:

* feature extraction per net — structural (level, fan-in/out, cone
  sizes), SCOAP testability, and neighbourhood aggregates;
* a ridge regressor (closed form) as the linear baseline;
* a one-hidden-layer MLP trained by full-batch Adam;
* a 2-layer GCN-lite: symmetric-normalized adjacency propagation with a
  dense head, matching the "graph model-based, low-dimensional feature"
  approach of [58].

Labels come from the exact analyses (SEU AVF or SET logical derating),
so train/evaluate experiments are self-contained and deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..circuit.levelize import fanin_cone, fanout_cone, levels
from ..circuit.netlist import Circuit
from ..circuit.scoap import INF, compute_scoap

FEATURE_NAMES = (
    "level", "depth_to_out", "fanin", "fanout",
    "fanin_cone", "fanout_cone", "cc0", "cc1", "co",
    "is_flop", "neigh_mean_fanout",
)


def extract_features(circuit: Circuit, nets: list[str]) -> np.ndarray:
    """Feature matrix (len(nets) × len(FEATURE_NAMES)), standardized later."""
    lvl = levels(circuit)
    max_lvl = max(lvl.values(), default=0)
    scoap = compute_scoap(circuit)
    fmap = circuit.fanout_map()

    def cap(x: float, ceiling: float = 1e6) -> float:
        return ceiling if x is INF or x > ceiling else float(x)

    rows = []
    for net in nets:
        gate = circuit.gates.get(net)
        fanin = len(gate.inputs) if gate else 0
        fanout = len(fmap.get(net, ()))
        fic = len(fanin_cone(circuit, [net]))
        foc = len(fanout_cone(circuit, [net]))
        sc = scoap.get(net)
        neigh = fmap.get(net, ())
        neigh_fan = (sum(len(fmap.get(x, ())) for x in neigh) / len(neigh)
                     if neigh else 0.0)
        rows.append([
            lvl.get(net, 0), max_lvl - lvl.get(net, 0), fanin, fanout,
            fic, foc,
            cap(sc.cc0) if sc else 0.0, cap(sc.cc1) if sc else 0.0,
            cap(sc.co) if sc else 0.0,
            1.0 if net in circuit.flops else 0.0, neigh_fan,
        ])
    return np.asarray(rows, dtype=float)


def standardize(x_train: np.ndarray, x_test: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Z-score using train statistics only."""
    mean = x_train.mean(axis=0)
    std = x_train.std(axis=0)
    std[std == 0] = 1.0
    return (x_train - mean) / std, (x_test - mean) / std


@dataclass
class RegressionMetrics:
    mse: float
    mae: float
    r2: float

    @staticmethod
    def of(y_true: np.ndarray, y_pred: np.ndarray) -> "RegressionMetrics":
        err = y_true - y_pred
        mse = float(np.mean(err ** 2))
        mae = float(np.mean(np.abs(err)))
        var = float(np.var(y_true))
        r2 = 1.0 - mse / var if var > 0 else (1.0 if mse == 0 else 0.0)
        return RegressionMetrics(mse, mae, r2)


class RidgeRegressor:
    """Closed-form ridge regression baseline."""

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = alpha
        self.weights: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RidgeRegressor":
        xb = np.hstack([x, np.ones((x.shape[0], 1))])
        gram = xb.T @ xb + self.alpha * np.eye(xb.shape[1])
        self.weights = np.linalg.solve(gram, xb.T @ y)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise RuntimeError("fit() before predict()")
        xb = np.hstack([x, np.ones((x.shape[0], 1))])
        return np.clip(xb @ self.weights, 0.0, 1.0)


class MlpRegressor:
    """One-hidden-layer MLP, full-batch Adam, sigmoid output in [0, 1]."""

    def __init__(self, hidden: int = 16, epochs: int = 400, lr: float = 0.01,
                 seed: int = 0) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.params: dict[str, np.ndarray] = {}

    def fit(self, x: np.ndarray, y: np.ndarray) -> "MlpRegressor":
        rng = np.random.default_rng(self.seed)
        n_in = x.shape[1]
        p = {
            "w1": rng.normal(0, np.sqrt(2 / n_in), (n_in, self.hidden)),
            "b1": np.zeros(self.hidden),
            "w2": rng.normal(0, np.sqrt(2 / self.hidden), (self.hidden, 1)),
            "b2": np.zeros(1),
        }
        m = {k: np.zeros_like(v) for k, v in p.items()}
        v = {k: np.zeros_like(val) for k, val in p.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        y_col = y.reshape(-1, 1)
        for t in range(1, self.epochs + 1):
            h_pre = x @ p["w1"] + p["b1"]
            h = np.maximum(h_pre, 0)
            logits = h @ p["w2"] + p["b2"]
            out = 1 / (1 + np.exp(-logits))
            # d MSE/d logits with sigmoid
            d_out = 2 * (out - y_col) / len(y_col)
            d_logits = d_out * out * (1 - out)
            grads = {
                "w2": h.T @ d_logits,
                "b2": d_logits.sum(axis=0),
            }
            d_h = d_logits @ p["w2"].T
            d_h[h_pre <= 0] = 0
            grads["w1"] = x.T @ d_h
            grads["b1"] = d_h.sum(axis=0)
            for key in p:
                m[key] = beta1 * m[key] + (1 - beta1) * grads[key]
                v[key] = beta2 * v[key] + (1 - beta2) * grads[key] ** 2
                m_hat = m[key] / (1 - beta1 ** t)
                v_hat = v[key] / (1 - beta2 ** t)
                p[key] -= self.lr * m_hat / (np.sqrt(v_hat) + eps)
        self.params = p
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        p = self.params
        if not p:
            raise RuntimeError("fit() before predict()")
        h = np.maximum(x @ p["w1"] + p["b1"], 0)
        return (1 / (1 + np.exp(-(h @ p["w2"] + p["b2"])))).ravel()


class GcnRegressor:
    """Two-layer GCN-lite over the netlist graph ([56]/[58] style).

    Propagation: H = ReLU(Â X W1); ŷ = σ(Â H w2), with
    Â = D^{-1/2}(A + I)D^{-1/2} built over the undirected net graph.
    Training optimizes MSE on the labelled subset of nodes only
    (semi-supervised node regression).
    """

    def __init__(self, hidden: int = 16, epochs: int = 300, lr: float = 0.02,
                 seed: int = 0) -> None:
        self.hidden = hidden
        self.epochs = epochs
        self.lr = lr
        self.seed = seed
        self.params: dict[str, np.ndarray] = {}
        self._a_hat: np.ndarray | None = None

    @staticmethod
    def normalized_adjacency(circuit: Circuit, nets: list[str]) -> np.ndarray:
        index = {net: i for i, net in enumerate(nets)}
        n = len(nets)
        adj = np.eye(n)
        for gate in circuit.gates.values():
            if gate.output not in index:
                continue
            gi = index[gate.output]
            for src in gate.inputs:
                if src in index:
                    si = index[src]
                    adj[gi, si] = adj[si, gi] = 1.0
        for q, flop in circuit.flops.items():
            if q in index and flop.d in index:
                qi, di = index[q], index[flop.d]
                adj[qi, di] = adj[di, qi] = 1.0
        deg = adj.sum(axis=1)
        d_inv_sqrt = 1.0 / np.sqrt(deg)
        return adj * d_inv_sqrt[:, None] * d_inv_sqrt[None, :]

    def fit(self, circuit: Circuit, nets: list[str], features: np.ndarray,
            labels: np.ndarray, labelled_mask: np.ndarray) -> "GcnRegressor":
        rng = np.random.default_rng(self.seed)
        self._a_hat = self.normalized_adjacency(circuit, nets)
        a_hat = self._a_hat
        n_in = features.shape[1]
        p = {
            "w1": rng.normal(0, np.sqrt(2 / n_in), (n_in, self.hidden)),
            "b1": np.zeros(self.hidden),
            "w2": rng.normal(0, np.sqrt(2 / self.hidden), (self.hidden, 1)),
            "b2": np.zeros(1),
        }
        m = {k: np.zeros_like(v) for k, v in p.items()}
        v = {k: np.zeros_like(val) for k, val in p.items()}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        y_col = labels.reshape(-1, 1)
        mask = labelled_mask.reshape(-1, 1).astype(float)
        n_labelled = max(1.0, float(mask.sum()))
        ax = a_hat @ features  # constant across epochs
        for t in range(1, self.epochs + 1):
            h_pre = ax @ p["w1"] + p["b1"]
            h = np.maximum(h_pre, 0)
            ah = a_hat @ h
            logits = ah @ p["w2"] + p["b2"]
            out = 1 / (1 + np.exp(-logits))
            d_out = 2 * (out - y_col) * mask / n_labelled
            d_logits = d_out * out * (1 - out)
            grads = {
                "w2": ah.T @ d_logits,
                "b2": d_logits.sum(axis=0),
            }
            d_ah = d_logits @ p["w2"].T
            d_h = a_hat.T @ d_ah
            d_h[h_pre <= 0] = 0
            grads["w1"] = ax.T @ d_h
            grads["b1"] = d_h.sum(axis=0)
            for key in p:
                m[key] = beta1 * m[key] + (1 - beta1) * grads[key]
                v[key] = beta2 * v[key] + (1 - beta2) * grads[key] ** 2
                m_hat = m[key] / (1 - beta1 ** t)
                v_hat = v[key] / (1 - beta2 ** t)
                p[key] -= self.lr * m_hat / (np.sqrt(v_hat) + eps)
        self.params = p
        return self

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self.params or self._a_hat is None:
            raise RuntimeError("fit() before predict()")
        p = self.params
        a_hat = self._a_hat
        h = np.maximum(a_hat @ features @ p["w1"] + p["b1"], 0)
        logits = a_hat @ h @ p["w2"] + p["b2"]
        return (1 / (1 + np.exp(-logits))).ravel()


def split_indices(n: int, train_fraction: float = 0.7, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic shuffled train/test index split."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    cut = int(n * train_fraction)
    return order[:cut], order[cut:]
