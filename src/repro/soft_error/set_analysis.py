"""Analytic SET vulnerability analysis: the three-masking model.

For a transient pulse born at a gate output, the probability that it
becomes an error is the product of three survival factors:

* **logical**   — some sensitized path reaches a flop/PO under the
  applied pattern (computed exactly with the event-driven simulator);
* **electrical** — the pulse survives per-gate attenuation; width shrinks
  by ``attenuation_per_gate`` per traversed level and dies below
  ``min_width``;
* **latch-window** — the surviving pulse overlaps a capture window:
  probability ``min(1, w_eff / clock_period)`` for a uniformly random
  pulse phase.

``set_derating`` combines them per net over a pattern sample — these are
the logic-derating factors the ML models of E5 learn to predict, and the
comparison axis for the CDN study (E4).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..circuit.levelize import levels
from ..circuit.netlist import Circuit
from ..sim.event import EventSim
from ..sim.logic import mask_of, simulate


@dataclass(frozen=True)
class SetSensitivity:
    """Per-net SET sensitivity decomposition."""

    net: str
    logical: float      # fraction of patterns with a sensitized path out
    electrical: float   # pulse-survival factor (width model)
    latch_window: float # capture probability of the surviving pulse

    @property
    def combined(self) -> float:
        return self.logical * self.electrical * self.latch_window


def electrical_survival(
    pulse_width: float,
    path_depth: int,
    attenuation_per_gate: float = 0.1,
    min_width: float = 0.2,
) -> float:
    """Surviving width fraction after ``path_depth`` gates (0 if filtered)."""
    surviving = pulse_width - attenuation_per_gate * path_depth
    if surviving < min_width:
        return 0.0
    return surviving / pulse_width


def latch_window_probability(
    surviving_width: float,
    clock_period: float,
    window: float = 0.5,
) -> float:
    """Probability a pulse of the given width is captured.

    A pulse is latched when it overlaps the setup+hold window around the
    capture edge; for a uniformly random arrival phase this is
    ``(w + window) / T`` clamped to [0, 1] — 0 for a dead pulse.
    """
    if surviving_width <= 0:
        return 0.0
    return min(1.0, (surviving_width + window) / clock_period)


def logical_derating(
    circuit: Circuit,
    net: str,
    patterns: Mapping[str, int],
    n_patterns: int,
    state: Mapping[str, int] | None = None,
) -> float:
    """Fraction of patterns under which flipping ``net`` changes an output.

    Exact logical masking via the bit-parallel simulator: re-simulate the
    fan-out cone with the net inverted and compare observables (POs and
    flop Ds — a captured wrong D is an error next cycle).

    Note this models a *static* flip: transient glitches that cancel at
    reconvergence points are counted as masked even though a brief output
    glitch may exist — consistent with standard logic-derating practice.
    """
    return _logical_with_state(circuit, net, patterns, state or {}, n_patterns)


def set_derating(
    circuit: Circuit,
    nets: Sequence[str] | None = None,
    n_patterns: int = 64,
    pulse_width: float = 1.0,
    clock_period: float = 10.0,
    attenuation_per_gate: float = 0.1,
    seed: int = 0,
) -> dict[str, SetSensitivity]:
    """Three-masking SET sensitivity for each requested net."""
    rng = random.Random(seed)
    stim = {pi: rng.getrandbits(n_patterns) for pi in circuit.inputs}
    state = {q: rng.getrandbits(n_patterns) for q in circuit.flops}
    stim_all = dict(stim)
    lvl = levels(circuit)
    max_level = max(lvl.values(), default=0)

    result: dict[str, SetSensitivity] = {}
    target_nets = list(nets if nets is not None else
                       [g.output for g in circuit.topo_order()])
    for net in target_nets:
        depth_to_capture = max(0, max_level - lvl.get(net, 0))
        logical = _logical_with_state(circuit, net, stim_all, state, n_patterns)
        electrical = electrical_survival(pulse_width, depth_to_capture,
                                         attenuation_per_gate)
        latch = latch_window_probability(pulse_width * electrical, clock_period)
        result[net] = SetSensitivity(net, logical, electrical, latch)
    return result


def _logical_with_state(circuit, net, stim, state, n_patterns) -> float:
    from ..sim.fault_sim import _cone_gates
    from ..sim.logic import eval_gate

    mask = mask_of(n_patterns)
    good = simulate(circuit, stim, n_patterns, state)
    flipped = dict(good)
    flipped[net] = ~good.get(net, 0) & mask
    for gate in _cone_gates(circuit, [net]):
        if gate.output == net:
            continue
        flipped[gate.output] = eval_gate(gate, flipped, mask)
    flipped[net] = ~good.get(net, 0) & mask
    observables = list(circuit.outputs) + [f.d for f in circuit.flops.values()]
    diff = 0
    for obs in observables:
        diff |= (good.get(obs, 0) ^ flipped.get(obs, 0)) & mask
    return bin(diff).count("1") / n_patterns


def validate_against_event_sim(
    circuit: Circuit,
    net: str,
    pattern: Mapping[str, int],
    pulse_width: float = 2.0,
) -> bool:
    """Cross-check: analytic 'logically sensitized' vs event-driven outcome.

    Returns True when both engines agree on whether a wide pulse on
    ``net`` reaches an observable under ``pattern`` (wide pulses bypass
    electrical masking, isolating logical masking).
    """
    analytic = logical_derating(circuit, net, {k: v & 1 for k, v in pattern.items()}, 1)
    sim = EventSim(circuit, delays=1.0, inertial=0.0)
    outcome = sim.inject_set(pattern, net, pulse_width)
    reached = bool(outcome.reached_outputs or outcome.captured_flops)
    return (analytic > 0) == reached
