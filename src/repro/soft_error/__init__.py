"""Soft-error and transient-fault vulnerability analysis (paper III.B)."""

from .cdn import (
    CdnSetResult,
    ClockTree,
    build_clock_tree,
    failure_rate_vs_pulse_width,
    run_cdn_campaign,
)
from .fit import (
    ASIL_FIT_TARGETS,
    RAW_FIT_PER_MBIT,
    ComponentSER,
    FitBudget,
    headroom_bits,
)
from .ml import (
    FEATURE_NAMES,
    GcnRegressor,
    MlpRegressor,
    RegressionMetrics,
    RidgeRegressor,
    extract_features,
    split_indices,
    standardize,
)
from .set_analysis import (
    SetSensitivity,
    electrical_survival,
    latch_window_probability,
    logical_derating,
    set_derating,
    validate_against_event_sim,
)
from .seu import (
    FAILURE,
    LATENT,
    MASKED,
    SeuCampaignResult,
    SeuInjection,
    inject_seu,
    random_workload,
    run_campaign,
)
from .statistical import (
    AccuracyPoint,
    StatisticalStudy,
    cost_accuracy_rows,
    run_study,
    verify_fresh_sample_consistency,
)

__all__ = [
    "ASIL_FIT_TARGETS",
    "AccuracyPoint",
    "CdnSetResult",
    "ClockTree",
    "ComponentSER",
    "FAILURE",
    "FEATURE_NAMES",
    "FitBudget",
    "GcnRegressor",
    "LATENT",
    "MASKED",
    "MlpRegressor",
    "RAW_FIT_PER_MBIT",
    "RegressionMetrics",
    "RidgeRegressor",
    "SetSensitivity",
    "SeuCampaignResult",
    "SeuInjection",
    "StatisticalStudy",
    "build_clock_tree",
    "cost_accuracy_rows",
    "electrical_survival",
    "extract_features",
    "failure_rate_vs_pulse_width",
    "headroom_bits",
    "inject_seu",
    "latch_window_probability",
    "logical_derating",
    "random_workload",
    "run_campaign",
    "run_study",
    "set_derating",
    "split_indices",
    "standardize",
    "validate_against_event_sim",
]
