"""Exhaustive vs statistical fault injection (experiment E3).

The paper: exhaustive injection is "ultimate in terms of accuracy but
very cumbersome in terms of resources", random injection "avoids
unreasonable costs while allowing for accuracy (or statistical
significance)".  This module measures that trade-off concretely: the
exhaustive campaign gives the true failure rate; sampled campaigns of
increasing size give estimates, errors and confidence intervals, plus
the Leveugle bound telling you in advance how many injections buy a
target margin.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..circuit.netlist import Circuit
from ..core.stats import wilson_interval
from ..faults.sampling import sample_size
from .seu import FAILURE, SeuCampaignResult, inject_seu, run_campaign


@dataclass
class AccuracyPoint:
    """One sampled-campaign data point."""

    n_injections: int
    estimate: float
    true_rate: float
    ci_low: float
    ci_high: float

    @property
    def abs_error(self) -> float:
        return abs(self.estimate - self.true_rate)

    @property
    def ci_contains_truth(self) -> bool:
        return self.ci_low <= self.true_rate <= self.ci_high


@dataclass
class StatisticalStudy:
    """Exhaustive baseline plus the sampled accuracy curve."""

    exhaustive: SeuCampaignResult
    points: list[AccuracyPoint] = field(default_factory=list)
    recommended_n: int = 0

    @property
    def true_rate(self) -> float:
        return self.exhaustive.failure_rate

    @property
    def population(self) -> int:
        return self.exhaustive.total

    def cost_ratio(self, n: int) -> float:
        """Campaign-cost fraction of a sample of size n vs exhaustive."""
        return n / self.population if self.population else 1.0


def run_study(
    circuit: Circuit,
    stimuli: Sequence[Mapping[str, int]],
    sample_sizes: Sequence[int] = (25, 50, 100, 200, 400),
    margin: float = 0.05,
    confidence: float = 0.95,
    seed: int = 0,
    db=None,
    workers: int = 1,
    executor: str = "auto",
) -> StatisticalStudy:
    """Run the exhaustive campaign, then sampled campaigns of each size.

    Sampling is done *without* re-simulating: the exhaustive result is
    the ground-truth injection table, and each sampled campaign draws
    from it — identical outcomes to re-running, at a fraction of the
    compute (the estimator only cares which injections are drawn).

    The exhaustive baseline runs on the unified campaign engine;
    ``db``/``workers`` are forwarded to it.
    """
    exhaustive = run_campaign(circuit, stimuli, db=db, workers=workers,
                              executor=executor)
    study = StatisticalStudy(exhaustive=exhaustive)
    study.recommended_n = sample_size(exhaustive.total, margin, confidence)
    rng = random.Random(seed)
    true_rate = exhaustive.failure_rate
    for n in sample_sizes:
        n_eff = min(n, exhaustive.total)
        drawn = rng.sample(exhaustive.injections, n_eff)
        fails = sum(1 for inj in drawn if inj.outcome == FAILURE)
        est = fails / n_eff if n_eff else 0.0
        ci = wilson_interval(fails, n_eff, confidence)
        study.points.append(AccuracyPoint(n_eff, est, true_rate, ci.low, ci.high))
    return study


@dataclass
class AdaptiveEstimate:
    """Result of an engine early-stopped (statistically adaptive) campaign."""

    estimate: float
    ci_low: float
    ci_high: float
    n_injections: int
    population: int
    converged: bool

    @property
    def cost_fraction(self) -> float:
        return self.n_injections / self.population if self.population else 1.0


def adaptive_estimate(
    circuit: Circuit,
    stimuli: Sequence[Mapping[str, int]],
    margin: float = 0.05,
    confidence: float = 0.95,
    seed: int = 0,
    batch_size: int = 16,
    workers: int = 1,
    db=None,
    executor: str = "auto",
) -> AdaptiveEstimate:
    """Estimate the failure rate with the engine's Wilson early stop.

    Instead of fixing the sample size in advance (the Leveugle bound),
    the campaign shuffles the injection space (a seeded full-population
    sample) and stops as soon as the Wilson interval of the failure rate
    is narrower than ``margin`` — the DAVOS-style iterative statistical
    injection loop.
    """
    from ..engine.backends import SeuBackend
    from ..engine.core import EarlyStop, EngineConfig, run_campaign as run_engine

    backend = SeuBackend(circuit, stimuli)
    population = len(backend.targets) * len(backend.cycles)
    config = EngineConfig(
        batch_size=batch_size,
        workers=workers,
        executor=executor,
        shuffle=True,  # an early-stopped prefix must be an unbiased sample
        seed=seed,
        early_stop=EarlyStop(outcome=FAILURE, margin=margin,
                             confidence=confidence,
                             min_injections=min(population, 2 * batch_size)),
    )
    report = run_engine(backend, config, db=db)
    ci = report.confidence_interval(FAILURE, confidence)
    return AdaptiveEstimate(
        estimate=report.rate(FAILURE),
        ci_low=ci.low,
        ci_high=ci.high,
        n_injections=report.total,
        population=population,
        converged=report.converged,
    )


def verify_fresh_sample_consistency(
    circuit: Circuit,
    stimuli: Sequence[Mapping[str, int]],
    n: int,
    seed: int = 1,
) -> bool:
    """Sanity check used by tests: drawing a fresh sampled campaign (with
    real re-injection) matches the table-lookup estimator exactly."""
    exhaustive = run_campaign(circuit, stimuli)
    table = {(inj.flop, inj.cycle): inj.outcome for inj in exhaustive.injections}
    sampled = run_campaign(circuit, stimuli, sample=n, seed=seed)
    return all(
        table[(inj.flop, inj.cycle)] == inj.outcome for inj in sampled.injections
    )


def cost_accuracy_rows(study: StatisticalStudy) -> list[tuple]:
    """Report rows: n, cost fraction, estimate, |error|, CI, CI covers truth."""
    rows = []
    for pt in study.points:
        rows.append((
            pt.n_injections,
            round(study.cost_ratio(pt.n_injections), 4),
            round(pt.estimate, 4),
            round(pt.abs_error, 4),
            f"[{pt.ci_low:.3f}, {pt.ci_high:.3f}]",
            "yes" if pt.ci_contains_truth else "no",
        ))
    return rows
