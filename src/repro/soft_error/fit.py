"""FIT budgeting: from raw technology soft-error rates to system FIT.

Reproduces the paper's Section III.B arithmetic: "standard flip-flops and
SRAM memories, manufactured in relatively recent technologies ... exhibit
error rates of hundreds of FITs (events per a billion working hours per
megabit).  Complex circuits using such cells can easily overshoot the
10 FIT target mandated by the ISO 26262 for an automotive ASIL D
application."

The derating chain is the standard SER methodology: raw event rate per
bit, scaled by bit count, multiplied by masking deratings (logical,
timing/latch-window, functional/AVF) to obtain the observable failure
rate; vendor beam data is replaced by per-node raw-rate constants (see
DESIGN.md, Substitutions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.stats import scale_fit_per_mbit

#: Representative raw soft-error rates (FIT per Mbit) by technology node.
#: Values are in the "hundreds of FIT/Mbit" band the paper quotes for
#: recent bulk CMOS; FinFET nodes show reduced per-bit sensitivity.
RAW_FIT_PER_MBIT: dict[str, float] = {
    "250nm": 120.0,
    "130nm": 400.0,
    "65nm": 700.0,
    "40nm": 600.0,
    "28nm": 500.0,
    "16nm_finfet": 150.0,
    "7nm_finfet": 100.0,
}

#: ISO 26262 PMHF budgets (FIT) per ASIL level (random hardware failures).
ASIL_FIT_TARGETS: dict[str, float] = {
    "QM": float("inf"),
    "ASIL-A": 1000.0,
    "ASIL-B": 100.0,
    "ASIL-C": 100.0,
    "ASIL-D": 10.0,
}


@dataclass(frozen=True)
class ComponentSER:
    """One memory/sequential component contributing soft-error FIT."""

    name: str
    bits: int
    technology: str = "28nm"
    raw_fit_per_mbit: float | None = None
    logical_derating: float = 1.0
    timing_derating: float = 1.0
    functional_derating: float = 1.0  # AVF: fraction of upsets that matter
    protected: bool = False           # ECC or equivalent (residual rate only)
    protection_residual: float = 0.01

    @property
    def raw_fit(self) -> float:
        """Raw upset rate scaled to this component's bit count."""
        per_mbit = (self.raw_fit_per_mbit if self.raw_fit_per_mbit is not None
                    else RAW_FIT_PER_MBIT[self.technology])
        return scale_fit_per_mbit(per_mbit, self.bits)

    @property
    def effective_fit(self) -> float:
        """Observable failure rate after all deratings and protection."""
        fit = (self.raw_fit * self.logical_derating * self.timing_derating
               * self.functional_derating)
        if self.protected:
            fit *= self.protection_residual
        return fit


@dataclass
class FitBudget:
    """A system-level FIT budget against an ASIL target."""

    asil: str = "ASIL-D"
    components: list[ComponentSER] = field(default_factory=list)

    def add(self, component: ComponentSER) -> "FitBudget":
        self.components.append(component)
        return self

    @property
    def target_fit(self) -> float:
        try:
            return ASIL_FIT_TARGETS[self.asil]
        except KeyError:
            raise KeyError(f"unknown ASIL level {self.asil!r}; "
                           f"known: {sorted(ASIL_FIT_TARGETS)}") from None

    @property
    def total_raw_fit(self) -> float:
        return sum(c.raw_fit for c in self.components)

    @property
    def total_effective_fit(self) -> float:
        return sum(c.effective_fit for c in self.components)

    @property
    def meets_target(self) -> bool:
        return self.total_effective_fit <= self.target_fit

    def margin(self) -> float:
        """target / achieved (>1 means compliant with margin)."""
        eff = self.total_effective_fit
        return float("inf") if eff == 0 else self.target_fit / eff

    def rows(self) -> list[tuple]:
        """Per-component report rows (name, bits, raw, deratings, effective)."""
        out = []
        for c in self.components:
            out.append((
                c.name, c.bits, round(c.raw_fit, 3),
                c.logical_derating, c.timing_derating, c.functional_derating,
                "ECC" if c.protected else "-", round(c.effective_fit, 4),
            ))
        return out


def headroom_bits(asil: str, technology: str, mean_derating: float = 0.1) -> int:
    """How many unprotected bits fit inside an ASIL budget.

    Illustrates the paper's overshoot claim: at hundreds of FIT/Mbit and
    typical combined derating ~0.1, an ASIL-D budget of 10 FIT is consumed
    by a fraction of a megabit — far below any real SoC's state count.
    """
    target = ASIL_FIT_TARGETS[asil]
    if target == float("inf"):
        return 1 << 62
    per_mbit = RAW_FIT_PER_MBIT[technology]
    effective_per_bit = per_mbit * mean_derating / 1e6
    if effective_per_bit <= 0:
        return 1 << 62
    return int(target / effective_per_bit)
