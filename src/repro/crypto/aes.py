"""AES-128 with side-channel instrumentation.

Two encryption paths share one verified core (FIPS-197 test vectors in
the test suite):

* :class:`AesLeaky` — a table-lookup implementation with a toy cache
  model: S-box lookups hit or miss 16-entry cache lines, so execution
  *time* depends on the data/key (the timing side channel PASCAL-style
  audits must flag), and the power trace is the unmasked Hamming weight
  of the first-round S-box outputs (the CPA target).
* :class:`AesConstantTime` — same math, but timing is charged as a fixed
  cost per operation (modelling a bitsliced/prefetched implementation)
  and the power trace is masked with a fresh random mask per block.

``state`` is a 16-byte ``bytes`` in column-major AES order.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

SBOX = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16,
]

INV_SBOX = [0] * 256
for _i, _v in enumerate(SBOX):
    INV_SBOX[_v] = _i

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36]


def xtime(a: int) -> int:
    """Multiply by x in GF(2^8) mod x^8+x^4+x^3+x+1."""
    a <<= 1
    if a & 0x100:
        a ^= 0x11b
    return a & 0xFF


def gmul(a: int, b: int) -> int:
    """GF(2^8) multiplication (schoolbook; used by MixColumns and DFA)."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        b >>= 1
        a = xtime(a)
    return result


def expand_key(key: bytes) -> list[list[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [list(key[i:i + 4]) for i in range(0, 16, 4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [sum(words[4 * r:4 * r + 4], []) for r in range(11)]


def _sub_bytes(state: list[int]) -> list[int]:
    return [SBOX[b] for b in state]


def _shift_rows(state: list[int]) -> list[int]:
    # state is column-major: index = 4*col + row
    out = list(state)
    for row in range(1, 4):
        vals = [state[4 * col + row] for col in range(4)]
        vals = vals[row:] + vals[:row]
        for col in range(4):
            out[4 * col + row] = vals[col]
    return out


def _mix_columns(state: list[int]) -> list[int]:
    out = [0] * 16
    for col in range(4):
        a = state[4 * col:4 * col + 4]
        out[4 * col + 0] = gmul(a[0], 2) ^ gmul(a[1], 3) ^ a[2] ^ a[3]
        out[4 * col + 1] = a[0] ^ gmul(a[1], 2) ^ gmul(a[2], 3) ^ a[3]
        out[4 * col + 2] = a[0] ^ a[1] ^ gmul(a[2], 2) ^ gmul(a[3], 3)
        out[4 * col + 3] = gmul(a[0], 3) ^ a[1] ^ a[2] ^ gmul(a[3], 2)
    return out


def _add_round_key(state: list[int], rk: list[int]) -> list[int]:
    return [s ^ k for s, k in zip(state, rk)]


def encrypt_block(plaintext: bytes, key: bytes,
                  fault: tuple[int, int, int] | None = None) -> bytes:
    """Reference AES-128 ECB encryption of one block.

    ``fault`` optionally injects (round, byte_index, xor_value) *before*
    the SubBytes of that round — the hook the DFA experiment uses.
    """
    if len(plaintext) != 16:
        raise ValueError("block must be 16 bytes")
    round_keys = expand_key(key)
    state = _add_round_key(list(plaintext), round_keys[0])
    for rnd in range(1, 10):
        if fault is not None and fault[0] == rnd:
            state[fault[1]] ^= fault[2]
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _mix_columns(state)
        state = _add_round_key(state, round_keys[rnd])
    if fault is not None and fault[0] == 10:
        state[fault[1]] ^= fault[2]
    state = _sub_bytes(state)
    state = _shift_rows(state)
    state = _add_round_key(state, round_keys[10])
    return bytes(state)


def hamming_weight(x: int) -> int:
    return bin(x).count("1")


# ----------------------------------------------------------------------
# instrumented variants
# ----------------------------------------------------------------------
@dataclass
class SideChannelTrace:
    """Observables from one encryption."""

    cycles: int = 0
    power: list[int] = field(default_factory=list)  # per-sample HW values


class AesLeaky:
    """Table-based AES with data-dependent timing and unmasked power.

    Cache model: the 256-entry S-box spans 16 lines of 16 entries.  The
    cache is cold at the start of every round (other activity evicts the
    table between rounds, as in Bernstein's AES timing attack setting),
    so each round costs ``MISS`` per *distinct* line its 16 lookups touch
    — a quantity determined by key⊕data.  Power samples are the Hamming
    weights of round-1 S-box outputs (the classic CPA point).
    """

    HIT = 1
    MISS = 12
    LINE = 16

    def __init__(self, key: bytes) -> None:
        self.key = key
        self.round_keys = expand_key(key)

    def fork(self, seed: int) -> "AesLeaky":
        """Per-trace cipher for engine campaigns: stateless, so the
        same instance serves every trace (see ScaTraceBackend)."""
        return self

    def encrypt(self, plaintext: bytes) -> tuple[bytes, SideChannelTrace]:
        trace = SideChannelTrace()
        touched: set[int] = set()

        def lookup(index: int) -> int:
            line = index // self.LINE
            trace.cycles += self.HIT if line in touched else self.MISS
            touched.add(line)
            return SBOX[index]

        state = _add_round_key(list(plaintext), self.round_keys[0])
        for rnd in range(1, 10):
            touched.clear()  # inter-round eviction by other activity
            new_state = []
            for b in state:
                val = lookup(b)
                if rnd == 1:
                    trace.power.append(hamming_weight(val))
                new_state.append(val)
            state = _shift_rows(new_state)
            state = _mix_columns(state)
            trace.cycles += 16  # fixed MixColumns cost
            state = _add_round_key(state, self.round_keys[rnd])
        touched.clear()
        state = [lookup(b) for b in state]
        state = _shift_rows(state)
        state = _add_round_key(state, self.round_keys[10])
        return bytes(state), trace


class AesConstantTime:
    """Constant-time AES model: fixed cost per op, masked power trace."""

    OP_COST = 4

    def __init__(self, key: bytes, mask_seed: int = 0) -> None:
        self.key = key
        self.round_keys = expand_key(key)
        self._rng = random.Random(mask_seed)

    def fork(self, seed: int) -> "AesConstantTime":
        """Per-trace cipher for engine campaigns: an independent mask
        stream seeded per point, so trace values do not depend on the
        order batches execute in (pure ``run_batch`` contract)."""
        return AesConstantTime(self.key, mask_seed=seed)

    def encrypt(self, plaintext: bytes) -> tuple[bytes, SideChannelTrace]:
        trace = SideChannelTrace()
        mask = self._rng.randrange(256)
        state = _add_round_key(list(plaintext), self.round_keys[0])
        for rnd in range(1, 10):
            state = _sub_bytes(state)
            if rnd == 1:
                # masked implementation: the measured wire is value ⊕ mask
                trace.power.extend(hamming_weight(b ^ mask) for b in state)
            state = _shift_rows(state)
            state = _mix_columns(state)
            state = _add_round_key(state, self.round_keys[rnd])
            trace.cycles += 16 * self.OP_COST + 16
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _add_round_key(state, self.round_keys[10])
        trace.cycles += 16 * self.OP_COST
        return bytes(state), trace
