"""Crypto cores with side-channel instrumentation (substrate for III.F)."""

from .aes import (
    INV_SBOX,
    SBOX,
    AesConstantTime,
    AesLeaky,
    SideChannelTrace,
    encrypt_block,
    expand_key,
    gmul,
    hamming_weight,
    xtime,
)
from .modexp import (
    MULTIPLY_COST,
    SQUARE_COST,
    ModExpResult,
    montgomery_ladder,
    square_and_multiply,
)

__all__ = [
    "AesConstantTime",
    "AesLeaky",
    "INV_SBOX",
    "MULTIPLY_COST",
    "ModExpResult",
    "SBOX",
    "SQUARE_COST",
    "SideChannelTrace",
    "encrypt_block",
    "expand_key",
    "gmul",
    "hamming_weight",
    "montgomery_ladder",
    "square_and_multiply",
    "xtime",
]
