"""Modular exponentiation with timing instrumentation.

The canonical timing-side-channel pair:

* :func:`square_and_multiply` — performs a multiply only for 1-bits of
  the exponent, so its cycle count is an affine function of the
  exponent's Hamming weight (the leak timing SCA exploits);
* :func:`montgomery_ladder` — performs the same operation pattern for
  every bit, so its cycle count depends only on the exponent *length*.

Costs are charged through an explicit cycle model so the PASCAL-style
audit measures deterministic, platform-independent "time".
"""

from __future__ import annotations

from dataclasses import dataclass

SQUARE_COST = 10
MULTIPLY_COST = 13


@dataclass
class ModExpResult:
    value: int
    cycles: int
    squares: int
    multiplies: int


def square_and_multiply(base: int, exponent: int, modulus: int) -> ModExpResult:
    """Left-to-right binary exponentiation (timing-leaky)."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    result = 1
    cycles = squares = multiplies = 0
    for bit_index in range(exponent.bit_length() - 1, -1, -1):
        result = (result * result) % modulus
        squares += 1
        cycles += SQUARE_COST
        if (exponent >> bit_index) & 1:
            result = (result * base) % modulus
            multiplies += 1
            cycles += MULTIPLY_COST
    return ModExpResult(result, cycles, squares, multiplies)


def montgomery_ladder(base: int, exponent: int, modulus: int) -> ModExpResult:
    """Montgomery ladder: one square and one multiply per bit, always."""
    if modulus <= 0:
        raise ValueError("modulus must be positive")
    r0, r1 = 1, base % modulus
    cycles = squares = multiplies = 0
    for bit_index in range(exponent.bit_length() - 1, -1, -1):
        if (exponent >> bit_index) & 1:
            r0 = (r0 * r1) % modulus
            r1 = (r1 * r1) % modulus
        else:
            r1 = (r0 * r1) % modulus
            r0 = (r0 * r0) % modulus
        squares += 1
        multiplies += 1
        cycles += SQUARE_COST + MULTIPLY_COST
    return ModExpResult(r0, cycles, squares, multiplies)
