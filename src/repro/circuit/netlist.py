"""Gate-level netlist data model.

The netlist is deliberately simple and SSA-like: every gate drives exactly
one net, identified by a string name.  Primary inputs are undriven nets;
primary outputs are names of nets additionally exposed at the boundary.
Sequential elements are D flip-flops with a single implicit clock.

This model is the substrate for everything above it — fault universes,
logic/fault simulation, ATPG, soft-error analysis and the safety flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator


class GateType(str, Enum):
    """Primitive combinational gate types.

    The set is intentionally small: library circuits (muxes, decoders,
    adders) are built from these primitives so that fault collapsing and
    simulation rules stay trivial and well-tested.
    """

    AND = "AND"
    OR = "OR"
    NAND = "NAND"
    NOR = "NOR"
    XOR = "XOR"
    XNOR = "XNOR"
    NOT = "NOT"
    BUF = "BUF"
    CONST0 = "CONST0"
    CONST1 = "CONST1"

    @property
    def min_arity(self) -> int:
        if self in (GateType.CONST0, GateType.CONST1):
            return 0
        if self in (GateType.NOT, GateType.BUF):
            return 1
        return 2

    @property
    def is_inverting(self) -> bool:
        """True when the gate's output inverts its 'natural' body function."""
        return self in (GateType.NAND, GateType.NOR, GateType.NOT, GateType.XNOR)


@dataclass(frozen=True)
class Gate:
    """A combinational gate driving net ``output`` from ``inputs``."""

    output: str
    gtype: GateType
    inputs: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.gtype in (GateType.NOT, GateType.BUF) and len(self.inputs) != 1:
            raise ValueError(f"{self.gtype.value} gate {self.output!r} needs exactly 1 input")
        if self.gtype in (GateType.CONST0, GateType.CONST1) and self.inputs:
            raise ValueError(f"constant gate {self.output!r} takes no inputs")
        if self.gtype.min_arity >= 2 and len(self.inputs) < 2:
            raise ValueError(f"{self.gtype.value} gate {self.output!r} needs >= 2 inputs")


@dataclass(frozen=True)
class Flop:
    """A D flip-flop: ``q`` is driven from ``d`` at each clock edge."""

    q: str
    d: str
    init: int = 0

    def __post_init__(self) -> None:
        if self.init not in (0, 1):
            raise ValueError(f"flop {self.q!r} init must be 0 or 1")


class CircuitError(ValueError):
    """Raised for malformed circuit structure."""


class Circuit:
    """A named gate-level circuit.

    Invariants maintained by the mutation API and checked by
    :meth:`validate`:

    * every net is driven by exactly one of: a primary input, a gate, or a
      flop Q pin;
    * gate/flop input nets must exist by validation time (forward
      references are allowed while building);
    * the combinational part (PIs and flop Qs as sources, POs and flop Ds
      as sinks) is acyclic.
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self.inputs: list[str] = []
        self.outputs: list[str] = []
        self.gates: dict[str, Gate] = {}
        self.flops: dict[str, Flop] = {}
        self._topo_cache: list[Gate] | None = None
        self._fanout_cache: dict[str, tuple[str, ...]] | None = None
        self._topo_index_cache: dict[str, int] | None = None
        self._cone_cache: dict[tuple[str, ...], list[Gate]] = {}
        # compiled simulation programs (repro.sim.compiled), keyed by
        # program kind; invalidated with the structural caches above
        self._program_cache: dict = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> str:
        """Declare a primary input net."""
        if name in self.inputs:
            raise CircuitError(f"duplicate input {name!r}")
        if name in self.gates or name in self.flops:
            raise CircuitError(f"net {name!r} already driven")
        self.inputs.append(name)
        self._invalidate()
        return name

    def add_output(self, net: str) -> str:
        """Mark an existing (or forward-referenced) net as a primary output."""
        if net in self.outputs:
            raise CircuitError(f"duplicate output {net!r}")
        self.outputs.append(net)
        self._invalidate()
        return net

    def add_gate(self, output: str, gtype: GateType | str, inputs: Iterable[str]) -> Gate:
        """Add a gate driving ``output``; returns the created :class:`Gate`."""
        if isinstance(gtype, str):
            gtype = GateType(gtype.upper())
        gate = Gate(output, gtype, tuple(inputs))
        self._check_undriven(output)
        self.gates[output] = gate
        self._invalidate()
        return gate

    def add_flop(self, q: str, d: str, init: int = 0) -> Flop:
        """Add a D flip-flop driving net ``q`` from net ``d``."""
        flop = Flop(q, d, init)
        self._check_undriven(q)
        self.flops[q] = flop
        self._invalidate()
        return flop

    def _check_undriven(self, net: str) -> None:
        if net in self.inputs or net in self.gates or net in self.flops:
            raise CircuitError(f"net {net!r} already driven")

    # ------------------------------------------------------------------
    # pickling
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Serialize structure only; memoized caches are dropped.

        The topo/fan-out/cone caches can dwarf the netlist itself and are
        cheap to rebuild, so a pickled circuit (e.g. one shipped to a
        process-pool worker) carries just gates/flops/IO and re-derives
        the caches lazily on first use in the receiving process.
        """
        state = self.__dict__.copy()
        state["_topo_cache"] = None
        state["_fanout_cache"] = None
        state["_topo_index_cache"] = None
        state["_cone_cache"] = {}
        state["_program_cache"] = {}
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # snapshots pickled before the compiled core existed lack the slot
        self.__dict__.setdefault("_program_cache", {})

    def _invalidate(self) -> None:
        self._topo_cache = None
        self._fanout_cache = None
        self._topo_index_cache = None
        self._cone_cache.clear()
        self._program_cache.clear()

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def nets(self) -> list[str]:
        """All net names, sources first (PIs, flop Qs), then gate outputs."""
        seen: dict[str, None] = {}
        for name in self.inputs:
            seen.setdefault(name)
        for q in self.flops:
            seen.setdefault(q)
        for out in self.gates:
            seen.setdefault(out)
        return list(seen)

    @property
    def is_sequential(self) -> bool:
        return bool(self.flops)

    def driver_of(self, net: str) -> Gate | Flop | str | None:
        """Return the driver of ``net``: a Gate, a Flop, the string ``"input"``
        for primary inputs, or ``None`` if undriven."""
        if net in self.gates:
            return self.gates[net]
        if net in self.flops:
            return self.flops[net]
        if net in self.inputs:
            return "input"
        return None

    def fanout(self, net: str) -> tuple[str, ...]:
        """Nets of gates (and flop Qs) that consume ``net``.

        Flop consumers are reported by their Q net name.
        """
        return self.fanout_map().get(net, ())

    def fanout_map(self) -> dict[str, tuple[str, ...]]:
        """Map each net to the output nets of its consumers (cached)."""
        if self._fanout_cache is None:
            acc: dict[str, list[str]] = {}
            for gate in self.gates.values():
                for src in gate.inputs:
                    acc.setdefault(src, []).append(gate.output)
            for flop in self.flops.values():
                acc.setdefault(flop.d, []).append(flop.q)
            self._fanout_cache = {net: tuple(dst) for net, dst in acc.items()}
        return self._fanout_cache

    def validate(self) -> None:
        """Check structural invariants; raises :class:`CircuitError` on failure."""
        driven = set(self.inputs) | set(self.gates) | set(self.flops)
        for gate in self.gates.values():
            for src in gate.inputs:
                if src not in driven:
                    raise CircuitError(f"gate {gate.output!r} reads undriven net {src!r}")
        for flop in self.flops.values():
            if flop.d not in driven:
                raise CircuitError(f"flop {flop.q!r} reads undriven net {flop.d!r}")
        for out in self.outputs:
            if out not in driven:
                raise CircuitError(f"primary output {out!r} is undriven")
        self.topo_order()  # raises on combinational cycles

    # ------------------------------------------------------------------
    # topological order
    # ------------------------------------------------------------------
    def topo_order(self) -> list[Gate]:
        """Gates in combinational evaluation order (PIs/flop Qs are sources).

        Raises :class:`CircuitError` if the combinational logic is cyclic.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indeg: dict[str, int] = {}
        sources = set(self.inputs) | set(self.flops)
        for gate in self.gates.values():
            indeg[gate.output] = sum(1 for src in gate.inputs if src in self.gates)
        ready = [g.output for g in self.gates.values() if indeg[g.output] == 0]
        ready.sort()
        order: list[Gate] = []
        fanout_to_gates: dict[str, list[str]] = {}
        for gate in self.gates.values():
            for src in gate.inputs:
                if src in self.gates:
                    fanout_to_gates.setdefault(src, []).append(gate.output)
        while ready:
            net = ready.pop()
            gate = self.gates[net]
            order.append(gate)
            for dst in fanout_to_gates.get(net, ()):
                indeg[dst] -= 1
                if indeg[dst] == 0:
                    ready.append(dst)
        if len(order) != len(self.gates):
            cyclic = sorted(set(self.gates) - {g.output for g in order})
            raise CircuitError(f"combinational cycle through nets {cyclic[:5]}")
        del sources  # documented above; sources need no ordering
        self._topo_cache = order
        return order

    def topo_index(self) -> dict[str, int]:
        """Position of each gate output in :meth:`topo_order` (cached)."""
        if self._topo_index_cache is None:
            self._topo_index_cache = {
                gate.output: i for i, gate in enumerate(self.topo_order())
            }
        return self._topo_index_cache

    # ------------------------------------------------------------------
    # reporting / misc
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int]:
        """Size summary used by reports and the Fig. 1 registry."""
        by_type: dict[str, int] = {}
        for gate in self.gates.values():
            by_type[gate.gtype.value] = by_type.get(gate.gtype.value, 0) + 1
        return {
            "inputs": len(self.inputs),
            "outputs": len(self.outputs),
            "gates": len(self.gates),
            "flops": len(self.flops),
            "nets": len(self.nets),
            **{f"gates_{key.lower()}": val for key, val in sorted(by_type.items())},
        }

    def copy(self, name: str | None = None) -> "Circuit":
        """Deep-enough copy (gates/flops are frozen, so sharing them is safe)."""
        dup = Circuit(name or self.name)
        dup.inputs = list(self.inputs)
        dup.outputs = list(self.outputs)
        dup.gates = dict(self.gates)
        dup.flops = dict(self.flops)
        return dup

    def __iter__(self) -> Iterator[Gate]:
        return iter(self.topo_order())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Circuit({self.name!r}, pi={len(self.inputs)}, po={len(self.outputs)}, "
            f"gates={len(self.gates)}, flops={len(self.flops)})"
        )
