"""Generator library of benchmark circuits.

The RESCUE experiments need representative gate-level workloads
(ISCAS-style combinational and sequential circuits).  Shipping netlist
files would bloat the repository, so this module *generates* them:
classic teaching circuits (c17, an s27-like sequential core), arithmetic
blocks (adders, multipliers, ALU), interconnect/addressing blocks (mux
trees, decoders — the substrate for the address-decoder aging study) and
seeded random DAGs for statistically varied experiments.

All generators return validated :class:`~repro.circuit.netlist.Circuit`
objects and are deterministic for a given argument tuple.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from .builder import CircuitBuilder
from .netlist import Circuit, GateType


def c17() -> Circuit:
    """The ISCAS-85 c17 benchmark: 5 inputs, 2 outputs, 6 NAND gates."""
    bld = CircuitBuilder("c17")
    n1, n2, n3, n6, n7 = (bld.input(f"N{i}") for i in (1, 2, 3, 6, 7))
    n10 = bld.nand(n1, n3, name="N10")
    n11 = bld.nand(n3, n6, name="N11")
    n16 = bld.nand(n2, n11, name="N16")
    n19 = bld.nand(n11, n7, name="N19")
    bld.output(bld.nand(n10, n16, name="N22"))
    bld.output(bld.nand(n16, n19, name="N23"))
    return bld.done()


def s27() -> Circuit:
    """An s27-like small sequential circuit: 4 PIs, 1 PO, 3 flops, ~10 gates."""
    bld = CircuitBuilder("s27")
    g0, g1, g2, g3 = (bld.input(f"G{i}") for i in range(4))
    # state nets are forward-referenced via flops added at the end
    q5, q6, q7 = "G5", "G6", "G7"
    n9 = bld.not_(g0, name="n9")
    n10 = bld.not_(q7, name="n10")
    n11 = bld.and_(g2, n9, name="n11")
    n12 = bld.nor(n11, g3, name="n12")
    n13 = bld.or_(q6, n12, name="n13")
    n14 = bld.nor(n13, q5, name="n14")
    n15 = bld.or_(n14, n10, name="n15")
    n16 = bld.nand(g1, n15, name="n16")
    n17 = bld.nor(n12, n16, name="n17")
    bld.circuit.add_flop(q5, n14)
    bld.circuit.add_flop(q6, n17)
    bld.circuit.add_flop(q7, n16)
    bld.output(bld.not_(n15, name="G17"))
    return bld.done()


def ripple_adder(width: int = 8) -> Circuit:
    """Ripple-carry adder: buses ``a``/``b`` + ``cin`` → ``s`` bus + ``cout``."""
    bld = CircuitBuilder(f"rca{width}")
    a = bld.input_bus("a", width)
    b = bld.input_bus("b", width)
    carry = bld.input("cin")
    for i in range(width):
        s, carry = bld.full_adder(a[i], b[i], carry)
        bld.output(bld.buf(s, name=f"s{i}"))
    bld.output(bld.buf(carry, name="cout"))
    return bld.done()


def array_multiplier(width: int = 4) -> Circuit:
    """Unsigned array multiplier producing a ``2*width``-bit product."""
    bld = CircuitBuilder(f"mul{width}")
    a = bld.input_bus("a", width)
    b = bld.input_bus("b", width)
    # partial products pp[i][j] = a[j] & b[i]
    rows = [[bld.and_(a[j], b[i]) for j in range(width)] for i in range(width)]
    # row 0 feeds the accumulator directly
    acc = list(rows[0])
    product = [acc[0]]
    for i in range(1, width):
        carry: str | None = None
        nxt: list[str] = []
        for j in range(width):
            pp = rows[i][j]
            addend = acc[j + 1] if j + 1 < len(acc) else None
            if addend is None and carry is None:
                nxt.append(pp)
            elif addend is None:
                s, carry = bld.half_adder(pp, carry)
                nxt.append(s)
            elif carry is None:
                s, carry = bld.half_adder(pp, addend)
                nxt.append(s)
            else:
                s, carry = bld.full_adder(pp, addend, carry)
                nxt.append(s)
        if carry is not None:
            nxt.append(carry)
        product.append(nxt[0])
        acc = nxt
    product.extend(acc[1:])
    for i, net in enumerate(product):
        bld.output(bld.buf(net, name=f"p{i}"))
    return bld.done()


def alu(width: int = 4) -> Circuit:
    """A small ALU: op ∈ {ADD, AND, OR, XOR} selected by ``op0``/``op1``.

    Used by the SBST experiments as a stand-in for a processor execution
    unit with a well-defined functional test goal.
    """
    bld = CircuitBuilder(f"alu{width}")
    a = bld.input_bus("a", width)
    b = bld.input_bus("b", width)
    op0 = bld.input("op0")
    op1 = bld.input("op1")
    carry = bld.const0()
    for i in range(width):
        add_s, carry = bld.full_adder(a[i], b[i], carry)
        and_o = bld.and_(a[i], b[i])
        or_o = bld.or_(a[i], b[i])
        xor_o = bld.xor(a[i], b[i])
        out = bld.mux_tree([op0, op1], [add_s, and_o, or_o, xor_o])
        bld.output(bld.buf(out, name=f"y{i}"))
    bld.output(bld.buf(carry, name="cout"))
    return bld.done()


def parity_tree(width: int = 8) -> Circuit:
    """Balanced XOR parity tree over ``width`` inputs."""
    bld = CircuitBuilder(f"par{width}")
    level = bld.input_bus("d", width)
    while len(level) > 1:
        nxt = []
        for i in range(0, len(level) - 1, 2):
            nxt.append(bld.xor(level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    bld.output(bld.buf(level[0], name="p"))
    return bld.done()


def decoder(address_bits: int = 3) -> Circuit:
    """``address_bits``-to-``2**address_bits`` line decoder.

    This is the structural model of an SRAM address decoder used by the
    decoder-aging experiment (E11): each output's duty cycle equals the
    access frequency of its address.
    """
    bld = CircuitBuilder(f"dec{address_bits}")
    addr = bld.input_bus("a", address_bits)
    naddr = [bld.not_(bit) for bit in addr]
    for line in range(1 << address_bits):
        terms = [addr[i] if (line >> i) & 1 else naddr[i] for i in range(address_bits)]
        if len(terms) == 1:
            bld.output(bld.buf(terms[0], name=f"w{line}"))
        else:
            bld.output(bld.and_(*terms, name=f"w{line}"))
    return bld.done()


def comparator(width: int = 8) -> Circuit:
    """Equality comparator: ``eq = (a == b)``."""
    bld = CircuitBuilder(f"cmp{width}")
    a = bld.input_bus("a", width)
    b = bld.input_bus("b", width)
    bits = [bld.xnor(a[i], b[i]) for i in range(width)]
    while len(bits) > 1:
        nxt = []
        for i in range(0, len(bits) - 1, 2):
            nxt.append(bld.and_(bits[i], bits[i + 1]))
        if len(bits) % 2:
            nxt.append(bits[-1])
        bits = nxt
    bld.output(bld.buf(bits[0], name="eq"))
    return bld.done()


def majority_voter(width: int = 1) -> Circuit:
    """Bitwise 2-of-3 majority voter over three ``width``-bit buses (TMR)."""
    bld = CircuitBuilder(f"maj{width}")
    a = bld.input_bus("a", width)
    b = bld.input_bus("b", width)
    c = bld.input_bus("c", width)
    for i in range(width):
        ab = bld.and_(a[i], b[i])
        bc = bld.and_(b[i], c[i])
        ac = bld.and_(a[i], c[i])
        bld.output(bld.or_(ab, bc, ac, name=f"v{i}"))
    return bld.done()


def counter(width: int = 4) -> Circuit:
    """Synchronous binary up-counter with enable; outputs the count bus."""
    bld = CircuitBuilder(f"cnt{width}")
    en = bld.input("en")
    qs = [f"q{i}" for i in range(width)]
    carry = en
    for i in range(width):
        d = bld.xor(qs[i], carry)
        if i + 1 < width:
            carry = bld.and_(qs[i], carry)
        bld.circuit.add_flop(qs[i], d)
        bld.output(bld.buf(qs[i], name=f"c{i}"))
    return bld.done()


def lfsr(width: int = 8, taps: Sequence[int] | None = None) -> Circuit:
    """Fibonacci LFSR with XOR feedback; default taps give a maximal cycle
    for width 8 (x^8+x^6+x^5+x^4+1)."""
    if taps is None:
        taps = {8: (7, 5, 4, 3), 4: (3, 2), 16: (15, 14, 12, 3)}.get(width, (width - 1, 0))
    bld = CircuitBuilder(f"lfsr{width}")
    qs = [f"q{i}" for i in range(width)]
    fb = qs[taps[0]]
    for tap in taps[1:]:
        fb = bld.xor(fb, qs[tap])
    # shift: q0 <- feedback, q[i] <- q[i-1]
    bld.circuit.add_flop(qs[0], bld.buf(fb), init=1)
    for i in range(1, width):
        bld.circuit.add_flop(qs[i], bld.buf(qs[i - 1]))
    for i in range(width):
        bld.output(bld.buf(qs[i], name=f"o{i}"))
    return bld.done()


def shift_register(width: int = 8) -> Circuit:
    """Serial-in serial-out shift register (the spine of scan chains)."""
    bld = CircuitBuilder(f"sr{width}")
    si = bld.input("si")
    prev = si
    for i in range(width):
        q = f"q{i}"
        bld.circuit.add_flop(q, bld.buf(prev))
        prev = q
    bld.output(bld.buf(prev, name="so"))
    return bld.done()


def random_combinational(
    n_inputs: int = 12,
    n_gates: int = 120,
    n_outputs: int = 8,
    seed: int = 0,
) -> Circuit:
    """Seeded random combinational DAG with mixed gate types.

    Gate fan-in is 1–3, drawn from nets created earlier, which yields
    ISCAS-like depth/fanout distributions adequate for statistical
    fault-injection studies.
    """
    rng = random.Random(seed)
    bld = CircuitBuilder(f"rand_c_{n_inputs}x{n_gates}_s{seed}")
    pool = bld.input_bus("pi", n_inputs)
    two_in = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR,
              GateType.XOR, GateType.XNOR]
    for _ in range(n_gates):
        gtype = rng.choice(two_in + [GateType.NOT])
        if gtype is GateType.NOT:
            out = bld.not_(rng.choice(pool))
        else:
            arity = rng.choice((2, 2, 2, 3))
            ins = rng.sample(pool, min(arity, len(pool)))
            if len(ins) < 2:
                ins = ins * 2
            out = bld.gate(gtype, *ins)
        pool.append(out)
    # every dangling net is XOR-compressed into one of the outputs, so all
    # logic stays observable (ISCAS-like, no accidental dead cones)
    dangling = [net for net in pool if not bld.circuit.fanout(net)]
    groups: list[list[str]] = [[] for _ in range(n_outputs)]
    for idx, net in enumerate(dangling):
        groups[idx % n_outputs].append(net)
    for i, group in enumerate(groups):
        if not group:
            bld.output(bld.buf(pool[-(i + 1)], name=f"po{i}"))
        elif len(group) == 1:
            bld.output(bld.buf(group[0], name=f"po{i}"))
        else:
            acc = group[0]
            for net in group[1:]:
                acc = bld.xor(acc, net)
            bld.output(bld.buf(acc, name=f"po{i}"))
    return bld.done()


def random_sequential(
    n_inputs: int = 8,
    n_gates: int = 80,
    n_flops: int = 12,
    n_outputs: int = 6,
    seed: int = 0,
) -> Circuit:
    """Seeded random sequential circuit (Moore-ish next-state random logic)."""
    rng = random.Random(seed)
    bld = CircuitBuilder(f"rand_s_{n_flops}f_s{seed}")
    pis = bld.input_bus("pi", n_inputs)
    states = [f"st{i}" for i in range(n_flops)]
    pool = pis + states
    two_in = [GateType.AND, GateType.OR, GateType.NAND, GateType.NOR, GateType.XOR]
    created: list[str] = []
    for _ in range(n_gates):
        gtype = rng.choice(two_in + [GateType.NOT])
        if gtype is GateType.NOT:
            out = bld.not_(rng.choice(pool))
        else:
            ins = rng.sample(pool, 2)
            out = bld.gate(gtype, *ins)
        pool.append(out)
        created.append(out)
    for i, q in enumerate(states):
        bld.circuit.add_flop(q, rng.choice(created), init=rng.randint(0, 1))
    for i in range(n_outputs):
        bld.output(bld.buf(rng.choice(created), name=f"po{i}"))
    return bld.done()


#: Registry of named benchmark factories (name -> zero-arg callable).
BENCHMARKS: dict[str, Callable[[], Circuit]] = {
    "c17": c17,
    "s27": s27,
    "rca8": lambda: ripple_adder(8),
    "rca16": lambda: ripple_adder(16),
    "mul4": lambda: array_multiplier(4),
    "mul6": lambda: array_multiplier(6),
    "alu4": lambda: alu(4),
    "alu8": lambda: alu(8),
    "par8": lambda: parity_tree(8),
    "par16": lambda: parity_tree(16),
    "dec4": lambda: decoder(4),
    "dec6": lambda: decoder(6),
    "cmp8": lambda: comparator(8),
    "maj8": lambda: majority_voter(8),
    "cnt8": lambda: counter(8),
    "lfsr8": lambda: lfsr(8),
    "sr16": lambda: shift_register(16),
    "rand200": lambda: random_combinational(14, 200, 10, seed=7),
    "rand500": lambda: random_combinational(18, 500, 12, seed=11),
    "rand_seq": lambda: random_sequential(seed=3),
}


def load(name: str) -> Circuit:
    """Instantiate a registered benchmark by name."""
    try:
        return BENCHMARKS[name]()
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}") from None
