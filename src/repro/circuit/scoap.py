"""SCOAP testability measures (Goldstein 1979).

Combinational controllability CC0/CC1 (cost of setting a net to 0/1) and
observability CO (cost of propagating a net to a primary output).  The
ATPG uses CC for backtrace guidance; the ML failure-rate predictor (E5)
uses all three as node features; the untestable-fault identifier uses
``inf`` costs as a structural unreachability signal.

Sequential elements are treated as transparent with a unit penalty
(a pragmatic simplification adequate for guidance features).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .netlist import Circuit, GateType

INF = math.inf


@dataclass(frozen=True)
class Scoap:
    """SCOAP triple for one net."""

    cc0: float
    cc1: float
    co: float


def _gate_controllability(gtype: GateType, ins: list[tuple[float, float]]) -> tuple[float, float]:
    """(cc0, cc1) of a gate output given (cc0, cc1) of each input."""
    c0s = [c[0] for c in ins]
    c1s = [c[1] for c in ins]
    if gtype is GateType.AND:
        return min(c0s) + 1, sum(c1s) + 1
    if gtype is GateType.OR:
        return sum(c0s) + 1, min(c1s) + 1
    if gtype is GateType.NAND:
        return sum(c1s) + 1, min(c0s) + 1
    if gtype is GateType.NOR:
        return min(c1s) + 1, sum(c0s) + 1
    if gtype is GateType.NOT:
        return c1s[0] + 1, c0s[0] + 1
    if gtype is GateType.BUF:
        return c0s[0] + 1, c1s[0] + 1
    if gtype is GateType.CONST0:
        return 1.0, INF
    if gtype is GateType.CONST1:
        return INF, 1.0
    if gtype in (GateType.XOR, GateType.XNOR):
        # cost of producing even/odd parity: cheapest assignment over inputs
        even, odd = 0.0, INF
        for c0, c1 in ins:
            even, odd = min(even + c0, odd + c1), min(even + c1, odd + c0)
        if gtype is GateType.XOR:
            return even + 1, odd + 1
        return odd + 1, even + 1
    raise ValueError(f"unhandled gate type {gtype}")


def compute_scoap(circuit: Circuit) -> dict[str, Scoap]:
    """Compute SCOAP values for every net in the circuit."""
    cc: dict[str, tuple[float, float]] = {}
    for pi in circuit.inputs:
        cc[pi] = (1.0, 1.0)
    for q in circuit.flops:
        cc[q] = (2.0, 2.0)  # one cycle of sequential depth ≈ unit penalty
    for gate in circuit.topo_order():
        ins = [cc[i] for i in gate.inputs]
        cc[gate.output] = _gate_controllability(gate.gtype, ins)

    co: dict[str, float] = {net: INF for net in cc}
    for po in circuit.outputs:
        co[po] = 0.0
    for q, flop in circuit.flops.items():
        # observing a flop D costs one capture cycle
        co[flop.d] = min(co.get(flop.d, INF), 1.0)

    for gate in reversed(circuit.topo_order()):
        out_co = co.get(gate.output, INF)
        if out_co is INF:
            continue
        gtype = gate.gtype
        for idx, src in enumerate(gate.inputs):
            others = [cc[i] for j, i in enumerate(gate.inputs) if j != idx]
            if gtype in (GateType.AND, GateType.NAND):
                side = sum(c1 for _, c1 in others)
            elif gtype in (GateType.OR, GateType.NOR):
                side = sum(c0 for c0, _ in others)
            elif gtype in (GateType.XOR, GateType.XNOR):
                side = sum(min(c0, c1) for c0, c1 in others)
            else:  # NOT / BUF
                side = 0.0
            cand = out_co + side + 1
            if cand < co.get(src, INF):
                co[src] = cand
    # second backward pass propagates improved CO through reconvergence
    for gate in reversed(circuit.topo_order()):
        out_co = co.get(gate.output, INF)
        if out_co is INF:
            continue
        for idx, src in enumerate(gate.inputs):
            others = [cc[i] for j, i in enumerate(gate.inputs) if j != idx]
            if gate.gtype in (GateType.AND, GateType.NAND):
                side = sum(c1 for _, c1 in others)
            elif gate.gtype in (GateType.OR, GateType.NOR):
                side = sum(c0 for c0, _ in others)
            elif gate.gtype in (GateType.XOR, GateType.XNOR):
                side = sum(min(c0, c1) for c0, c1 in others)
            else:
                side = 0.0
            cand = out_co + side + 1
            if cand < co.get(src, INF):
                co[src] = cand

    return {net: Scoap(cc[net][0], cc[net][1], co.get(net, INF)) for net in cc}


def hard_to_test_nets(circuit: Circuit, percentile: float = 0.9) -> list[str]:
    """Nets whose combined SCOAP cost is above the given percentile.

    Infinite costs (structurally untestable points) always qualify.
    """
    values = compute_scoap(circuit)
    scores = {
        net: (s.cc0 + s.cc1 + s.co) for net, s in values.items()
    }
    finite = sorted(v for v in scores.values() if v is not INF and not math.isinf(v))
    if not finite:
        return sorted(scores)
    cut = finite[min(len(finite) - 1, int(percentile * len(finite)))]
    return sorted(net for net, v in scores.items() if math.isinf(v) or v >= cut)
