"""Structural-Verilog subset: emit and parse.

The subset covers exactly what :class:`~repro.circuit.netlist.Circuit`
can express — primitive gate instances (``and``, ``or``, ``nand``,
``nor``, ``xor``, ``xnor``, ``not``, ``buf``), D flip-flops written as
``dff`` instances, and scalar ports.  It exists so the toolkit can
interchange designs with external flows (and so tests can round-trip
netlists through a text form), not to be a general Verilog front end.
"""

from __future__ import annotations

import re

from .netlist import Circuit, GateType

_PRIMITIVES = {
    GateType.AND: "and",
    GateType.OR: "or",
    GateType.NAND: "nand",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
    GateType.NOT: "not",
    GateType.BUF: "buf",
}
_BY_KEYWORD = {kw: gt for gt, kw in _PRIMITIVES.items()}

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"


def emit_verilog(circuit: Circuit) -> str:
    """Serialize a circuit as structural Verilog."""
    lines = [f"module {circuit.name} ("]
    ports = [f"    input  {pi}" for pi in circuit.inputs]
    ports += [f"    output {po}" for po in circuit.outputs]
    lines.append(",\n".join(ports))
    lines.append(");")
    wires = [n for n in circuit.nets if n not in circuit.inputs and n not in circuit.outputs]
    if wires:
        lines.append("  wire " + ", ".join(wires) + ";")
    idx = 0
    for gate in circuit.topo_order():
        idx += 1
        if gate.gtype is GateType.CONST0:
            lines.append(f"  assign {gate.output} = 1'b0;")
        elif gate.gtype is GateType.CONST1:
            lines.append(f"  assign {gate.output} = 1'b1;")
        else:
            kw = _PRIMITIVES[gate.gtype]
            args = ", ".join((gate.output,) + gate.inputs)
            lines.append(f"  {kw} g{idx} ({args});")
    for flop in circuit.flops.values():
        idx += 1
        lines.append(f"  dff #(.INIT(1'b{flop.init})) f{idx} ({flop.q}, {flop.d});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


class VerilogParseError(ValueError):
    """Raised on input outside the supported structural subset."""


def parse_verilog(text: str) -> Circuit:
    """Parse structural Verilog produced by :func:`emit_verilog`.

    Accepts minor formatting variation (whitespace, comments, port
    direction keywords inside or outside the port list).
    """
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.S)

    mod = re.search(rf"module\s+({_IDENT})\s*\((.*?)\)\s*;(.*?)endmodule", text, flags=re.S)
    if not mod:
        raise VerilogParseError("no module found")
    name, portlist, body = mod.group(1), mod.group(2), mod.group(3)

    circuit = Circuit(name)
    outputs: list[str] = []
    for decl in portlist.split(","):
        decl = decl.strip()
        if not decl:
            continue
        m = re.match(rf"(input|output)\s+({_IDENT})$", decl)
        if not m:
            raise VerilogParseError(f"unsupported port declaration {decl!r}")
        if m.group(1) == "input":
            circuit.add_input(m.group(2))
        else:
            outputs.append(m.group(2))

    for stmt in body.split(";"):
        stmt = stmt.strip()
        if not stmt:
            continue
        if stmt.startswith("wire"):
            continue  # wires are implicit in our model
        m = re.match(rf"assign\s+({_IDENT})\s*=\s*1'b([01])$", stmt)
        if m:
            gtype = GateType.CONST1 if m.group(2) == "1" else GateType.CONST0
            circuit.add_gate(m.group(1), gtype, ())
            continue
        m = re.match(
            rf"dff\s*(?:#\(\.INIT\(1'b([01])\)\))?\s*{_IDENT}\s*\(\s*({_IDENT})\s*,\s*({_IDENT})\s*\)$",
            stmt,
        )
        if m:
            init = int(m.group(1) or "0")
            circuit.add_flop(m.group(2), m.group(3), init)
            continue
        m = re.match(rf"({_IDENT})\s+{_IDENT}\s*\(\s*([^)]*)\)$", stmt)
        if m and m.group(1) in _BY_KEYWORD:
            args = [a.strip() for a in m.group(2).split(",")]
            circuit.add_gate(args[0], _BY_KEYWORD[m.group(1)], args[1:])
            continue
        raise VerilogParseError(f"unsupported statement {stmt!r}")

    for po in outputs:
        circuit.add_output(po)
    circuit.validate()
    return circuit
