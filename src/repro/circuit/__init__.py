"""Gate-level circuit substrate: netlists, generators, testability."""

from .builder import CircuitBuilder
from .levelize import (
    cone_of_influence,
    depth,
    fanin_cone,
    fanout_cone,
    levels,
    observable_outputs,
)
from .library import BENCHMARKS, load
from .netlist import Circuit, CircuitError, Flop, Gate, GateType
from .scoap import Scoap, compute_scoap, hard_to_test_nets
from .verilog import VerilogParseError, emit_verilog, parse_verilog

__all__ = [
    "BENCHMARKS",
    "Circuit",
    "CircuitBuilder",
    "CircuitError",
    "Flop",
    "Gate",
    "GateType",
    "Scoap",
    "VerilogParseError",
    "compute_scoap",
    "cone_of_influence",
    "depth",
    "emit_verilog",
    "fanin_cone",
    "fanout_cone",
    "hard_to_test_nets",
    "levels",
    "load",
    "observable_outputs",
    "parse_verilog",
]
