"""Fluent helpers for constructing circuits.

:class:`CircuitBuilder` removes the naming boilerplate of raw
:class:`~repro.circuit.netlist.Circuit` construction: it generates fresh
net names, offers word-level (bus) helpers and composite cells (mux,
half/full adder) built from the primitive gate set.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .netlist import Circuit, GateType


class CircuitBuilder:
    """Incrementally builds a :class:`Circuit` with auto-named nets."""

    def __init__(self, name: str = "circuit") -> None:
        self.circuit = Circuit(name)
        self._counter = 0

    # ------------------------------------------------------------------
    # naming
    # ------------------------------------------------------------------
    def fresh(self, prefix: str = "n") -> str:
        """Return a fresh, unused net name."""
        while True:
            self._counter += 1
            name = f"{prefix}{self._counter}"
            if self.circuit.driver_of(name) is None and name not in self.circuit.inputs:
                return name

    # ------------------------------------------------------------------
    # scalar ports and gates
    # ------------------------------------------------------------------
    def input(self, name: str | None = None) -> str:
        return self.circuit.add_input(name or self.fresh("in"))

    def output(self, net: str) -> str:
        return self.circuit.add_output(net)

    def gate(self, gtype: GateType | str, *inputs: str, name: str | None = None) -> str:
        out = name or self.fresh()
        self.circuit.add_gate(out, gtype, inputs)
        return out

    def and_(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateType.AND, *ins, name=name)

    def or_(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateType.OR, *ins, name=name)

    def nand(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateType.NAND, *ins, name=name)

    def nor(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateType.NOR, *ins, name=name)

    def xor(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateType.XOR, *ins, name=name)

    def xnor(self, *ins: str, name: str | None = None) -> str:
        return self.gate(GateType.XNOR, *ins, name=name)

    def not_(self, a: str, name: str | None = None) -> str:
        return self.gate(GateType.NOT, a, name=name)

    def buf(self, a: str, name: str | None = None) -> str:
        return self.gate(GateType.BUF, a, name=name)

    def const0(self, name: str | None = None) -> str:
        return self.gate(GateType.CONST0, name=name)

    def const1(self, name: str | None = None) -> str:
        return self.gate(GateType.CONST1, name=name)

    def flop(self, d: str, init: int = 0, name: str | None = None) -> str:
        q = name or self.fresh("q")
        self.circuit.add_flop(q, d, init)
        return q

    # ------------------------------------------------------------------
    # composite cells (built from primitives)
    # ------------------------------------------------------------------
    def mux2(self, sel: str, a: str, b: str, name: str | None = None) -> str:
        """2:1 mux: out = a when sel=0, b when sel=1."""
        nsel = self.not_(sel)
        lo = self.and_(a, nsel)
        hi = self.and_(b, sel)
        return self.or_(lo, hi, name=name)

    def mux_tree(self, sels: Sequence[str], data: Sequence[str], name: str | None = None) -> str:
        """N:1 mux with ``len(sels)`` select lines and ``2**len(sels)`` inputs."""
        if len(data) != 1 << len(sels):
            raise ValueError("mux_tree needs 2**len(sels) data inputs")
        level = list(data)
        for depth, sel in enumerate(sels):
            is_last = depth == len(sels) - 1
            nxt = []
            for i in range(0, len(level), 2):
                out_name = name if (is_last and i == 0) else None
                nxt.append(self.mux2(sel, level[i], level[i + 1], name=out_name))
            level = nxt
        return level[0]

    def half_adder(self, a: str, b: str) -> tuple[str, str]:
        """Return (sum, carry)."""
        return self.xor(a, b), self.and_(a, b)

    def full_adder(self, a: str, b: str, cin: str) -> tuple[str, str]:
        """Return (sum, carry_out)."""
        s1, c1 = self.half_adder(a, b)
        s2, c2 = self.half_adder(s1, cin)
        return s2, self.or_(c1, c2)

    # ------------------------------------------------------------------
    # bus helpers
    # ------------------------------------------------------------------
    def input_bus(self, prefix: str, width: int) -> list[str]:
        """Declare ``width`` primary inputs named ``prefix0 .. prefix{w-1}``
        (index 0 = LSB)."""
        return [self.input(f"{prefix}{i}") for i in range(width)]

    def output_bus(self, nets: Iterable[str]) -> list[str]:
        return [self.output(net) for net in nets]

    def done(self) -> Circuit:
        """Validate and return the finished circuit."""
        self.circuit.validate()
        return self.circuit
