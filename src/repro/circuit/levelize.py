"""Levelization, cone extraction and static slicing.

These structural queries back several experiments:

* levelization orders evaluation for the bit-parallel simulator;
* fan-out cones bound fault-effect propagation (used by the fault
  simulator and by the dynamic-slicing FI acceleration of [49]/[51]);
* fan-in cones implement cone-of-influence reduction for the
  "formal" classifier in the tool-confidence experiment.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

from .netlist import Circuit


def levels(circuit: Circuit) -> dict[str, int]:
    """Combinational level per net: PIs and flop Qs are level 0,
    each gate is 1 + max(level of inputs)."""
    lvl: dict[str, int] = {net: 0 for net in circuit.inputs}
    lvl.update({q: 0 for q in circuit.flops})
    for gate in circuit.topo_order():
        lvl[gate.output] = 1 + max((lvl[i] for i in gate.inputs), default=-1)
    return lvl


def depth(circuit: Circuit) -> int:
    """Maximum combinational depth (0 for an empty circuit)."""
    lvl = levels(circuit)
    return max(lvl.values(), default=0)


def fanout_cone(circuit: Circuit, seeds: Iterable[str], through_flops: bool = False) -> set[str]:
    """All nets reachable from ``seeds`` going forward.

    With ``through_flops`` the cone crosses flop D→Q boundaries, which
    models multi-cycle fault-effect propagation.
    """
    fmap = circuit.fanout_map()
    seen: set[str] = set()
    work = deque(seeds)
    while work:
        net = work.popleft()
        if net in seen:
            continue
        seen.add(net)
        for dst in fmap.get(net, ()):
            if dst in circuit.flops and not through_flops:
                # record the flop as reached but do not continue past Q
                seen.add(dst)
                continue
            work.append(dst)
    return seen


def fanin_cone(circuit: Circuit, seeds: Iterable[str], through_flops: bool = False) -> set[str]:
    """All nets that can influence ``seeds`` going backward."""
    seen: set[str] = set()
    work = deque(seeds)
    while work:
        net = work.popleft()
        if net in seen:
            continue
        seen.add(net)
        driver = circuit.driver_of(net)
        if driver is None or driver == "input":
            continue
        if net in circuit.flops:
            if through_flops:
                work.append(circuit.flops[net].d)
            continue
        for src in circuit.gates[net].inputs:
            work.append(src)
    return seen


def observable_outputs(circuit: Circuit, net: str) -> set[str]:
    """Primary outputs (and flop D sinks, reported by flop Q name) that the
    given net can structurally reach in the current cycle."""
    cone = fanout_cone(circuit, [net])
    outs = {po for po in circuit.outputs if po in cone}
    outs |= {q for q in circuit.flops if q in cone and circuit.flops[q].d in cone}
    # a flop counts as reached when its D input is in the cone
    outs |= {q for q, flop in circuit.flops.items() if flop.d in cone}
    return outs


def cone_of_influence(circuit: Circuit, outputs: Iterable[str]) -> Circuit:
    """Extract the sub-circuit needed to compute ``outputs``.

    This is static slicing: the returned circuit contains exactly the
    gates/flops in the transitive fan-in of the requested outputs (crossing
    flop boundaries), with the original PIs that remain relevant.
    """
    keep = fanin_cone(circuit, outputs, through_flops=True)
    sliced = Circuit(f"{circuit.name}_coi")
    for pi in circuit.inputs:
        if pi in keep:
            sliced.add_input(pi)
    for q, flop in circuit.flops.items():
        if q in keep:
            sliced.add_flop(q, flop.d, flop.init)
    for gate in circuit.topo_order():
        if gate.output in keep:
            sliced.add_gate(gate.output, gate.gtype, gate.inputs)
    for po in outputs:
        sliced.add_output(po)
    sliced.validate()
    return sliced
