"""A tiny ICL-like textual description of scan networks.

IEEE 1687 describes networks in ICL (Instrument Connectivity Language);
[47] checks ICL descriptions against RTL implementations by simulation.
This module defines an indentation-structured subset sufficient for our
networks, with a parser and emitter that round-trip exactly — the
equivalence checker then compares a parsed description against a live
:class:`~repro.rsn.network.RSN` instance.

Format by example::

    network demo
      reg r1 8 reset=0x0f
      sib s1
        reg r2 4
        mux m1 ctrl=r1
          branch
            reg r3 4
          branch
            reg r4 8
"""

from __future__ import annotations

from .network import RSN, Mux, Reg, RsnError, Segment, Sib


def emit_icl(network: RSN) -> str:
    """Serialize a network to the ICL-like text form."""
    lines = [f"network {network.name}"]

    def emit_segment(segment: Segment, indent: int) -> None:
        pad = "  " * indent
        for node in segment.nodes:
            if isinstance(node, Reg):
                suffix = f" reset=0x{node.reset_value:x}" if node.reset_value else ""
                lines.append(f"{pad}reg {node.name} {node.length}{suffix}")
            elif isinstance(node, Sib):
                lines.append(f"{pad}sib {node.name}")
                emit_segment(node.child, indent + 1)
            elif isinstance(node, Mux):
                lines.append(f"{pad}mux {node.name} ctrl={node.control}")
                for branch in node.branches:
                    lines.append(f"{pad}  branch")
                    emit_segment(branch, indent + 2)

    emit_segment(network.top, 1)
    return "\n".join(lines) + "\n"


class IclParseError(RsnError):
    """Raised on malformed ICL-like input."""


def parse_icl(text: str) -> RSN:
    """Parse the ICL-like form back into an :class:`RSN`."""
    raw = [ln for ln in text.splitlines() if ln.strip() and not ln.strip().startswith("#")]
    if not raw or not raw[0].strip().startswith("network "):
        raise IclParseError("input must start with 'network <name>'")
    name = raw[0].split(maxsplit=1)[1].strip()

    entries: list[tuple[int, list[str]]] = []
    for line in raw[1:]:
        stripped = line.lstrip(" ")
        indent_spaces = len(line) - len(stripped)
        if indent_spaces % 2:
            raise IclParseError(f"odd indentation in line {line!r}")
        entries.append((indent_spaces // 2, stripped.split()))

    pos = 0

    def parse_segment(level: int) -> Segment:
        nonlocal pos
        nodes = []
        while pos < len(entries):
            indent, tokens = entries[pos]
            if indent < level:
                break
            if indent > level:
                raise IclParseError(f"unexpected indent at {' '.join(tokens)!r}")
            keyword = tokens[0]
            if keyword == "reg":
                if len(tokens) < 3:
                    raise IclParseError(f"reg needs name and length: {tokens}")
                reset = 0
                for tok in tokens[3:]:
                    if tok.startswith("reset="):
                        reset = int(tok.split("=", 1)[1], 0)
                nodes.append(Reg(tokens[1], int(tokens[2]), reset_value=reset))
                pos += 1
            elif keyword == "sib":
                pos += 1
                child = parse_segment(level + 1)
                nodes.append(Sib(tokens[1], child))
            elif keyword == "mux":
                ctrl = None
                for tok in tokens[2:]:
                    if tok.startswith("ctrl="):
                        ctrl = tok.split("=", 1)[1]
                if ctrl is None:
                    raise IclParseError(f"mux {tokens[1]!r} missing ctrl=")
                pos += 1
                branches = []
                while pos < len(entries) and entries[pos][0] == level + 1 \
                        and entries[pos][1][0] == "branch":
                    pos += 1
                    branches.append(parse_segment(level + 2))
                if len(branches) < 2:
                    raise IclParseError(f"mux {tokens[1]!r} needs >= 2 branches")
                nodes.append(Mux(tokens[1], ctrl, branches))
            else:
                raise IclParseError(f"unknown keyword {keyword!r}")
        return Segment(nodes)

    network = RSN(name, parse_segment(1))
    # registers referenced by muxes must exist
    for node in network.registry.values():
        if isinstance(node, Mux) and node.control not in network.registry:
            raise IclParseError(
                f"mux {node.name!r} references unknown control {node.control!r}")
    return network
