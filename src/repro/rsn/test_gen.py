"""Test generation for reconfigurable scan networks (III.E, [15][16][30][44]).

RSN structures "may also be prone to design errors and manufacturing
faults"; testing them means choosing CSU sequences whose TDO streams
differ between the golden and any faulty network.  Detection exploits
two observable symptoms:

* **length change** — a stuck SIB/mux alters the active-path length, so
  a known flush pattern arrives shifted;
* **data corruption** — a stuck cell corrupts the stream bit at its
  position.

A test is a sequence of :class:`Step` objects: *configuration* steps are
full CSUs (shift + update, reprogramming SIBs), *flush* steps shift a
long known pattern **without updating** — the tester stays in Shift-DR,
so the network configuration survives the flush (updating would load
arbitrary pattern bits into the SIB latches).

Two generators are compared by bench E9.  ``exhaustive_test`` opens each
SIB individually and flushes every time — high coverage, very long.
``compact_test`` opens whole SIB levels concurrently and flushes once
per level — the test-*duration* optimization of [30]/[44].
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .network import RSN, Mux, Reg, Sib
from .retarget import build_vector


@dataclass
class Step:
    """One tester operation: shift ``bits``; update only if ``update``."""

    bits: list[int]
    update: bool = True


@dataclass
class RsnTest:
    """A test = planned steps (lengths fixed by the golden network)."""

    name: str
    steps: list[Step] = field(default_factory=list)

    @property
    def shift_cycles(self) -> int:
        return sum(len(s.bits) for s in self.steps)

    def add_config(self, bits: list[int]) -> None:
        self.steps.append(Step(bits, update=True))

    def add_flush(self, bits: list[int]) -> None:
        self.steps.append(Step(bits, update=False))


def flush_pattern(length: int, period: int = 2) -> list[int]:
    """A square-wave flush: runs of ``period//2`` zeros then ones (010101…
    by default).  Flushes expose both stuck values and length changes."""
    half = max(1, period // 2)
    return [(i // half) & 1 for i in range(length)]


def apply_test(network: RSN, test: RsnTest) -> list[int]:
    """Run the planned steps; returns the concatenated TDO stream.

    Step lengths are *golden-planned*: a faulty network with a different
    path length still gets the same stimulus — exactly how a tester would
    drive it — which is what makes length faults observable.
    """
    stream: list[int] = []
    for step in test.steps:
        network.capture()
        stream.extend(network.shift(step.bits))
        if step.update:
            network.update()
        network.csu_count += 1
    return stream


def detects(golden_factory, fault, test: RsnTest) -> bool:
    """Does ``test`` distinguish the faulty network from the golden one?"""
    golden = golden_factory()
    golden.reset()
    expected = apply_test(golden, test)
    faulty = golden_factory()
    faulty.reset()
    faulty.inject(fault)
    observed = apply_test(faulty, test)
    return observed != expected


def coverage(golden_factory, faults: Sequence[object], test: RsnTest,
             db=None, workers: int = 1, executor: str = "auto") -> float:
    """Fraction of faults the test detects.

    Runs as a per-fault signature campaign on the unified engine
    (:class:`repro.engine.RsnDiagnosisBackend`): one golden run, one
    faulty run per fault, outcomes accounted as detected/undetected —
    identical to the old per-fault loop, with ``db``/``workers``/
    ``executor`` passthrough.
    """
    if not faults:
        return 1.0
    from ..engine.core import EngineConfig, run_campaign
    from ..engine.workloads import DETECTED, RsnDiagnosisBackend

    backend = RsnDiagnosisBackend(golden_factory, faults, test)
    report = run_campaign(
        backend, EngineConfig(batch_size=8, workers=workers,
                              executor=executor), db=db)
    return report.rate(DETECTED)


# ----------------------------------------------------------------------
# generators
# ----------------------------------------------------------------------
def full_flat_length(network: RSN) -> int:
    """Total scan cells when every segment is included (worst-case path)."""
    total = 0
    for node in network.registry.values():
        if isinstance(node, Reg):
            total += node.length
        elif isinstance(node, Sib):
            total += 1
    return total


def _sib_names_by_depth(network: RSN) -> list[list[str]]:
    """SIB names grouped by nesting depth (root level first)."""
    levels: list[list[str]] = []

    def walk(segment, depth: int) -> None:
        for node in segment.nodes:
            if isinstance(node, Sib):
                while len(levels) <= depth:
                    levels.append([])
                levels[depth].append(node.name)
                walk(node.child, depth + 1)
            elif isinstance(node, Mux):
                for branch in node.branches:
                    walk(branch, depth)

    walk(network.top, 0)
    return levels


def _run_step(network: RSN, step: Step) -> None:
    network.capture()
    network.shift(step.bits)
    if step.update:
        network.update()


def exhaustive_test(factory) -> RsnTest:
    """Open each SIB individually; flush the path before and after.

    One configuration CSU + one non-updating flush per SIB (opening
    phase), then the mirror closing phase.  Thorough and very long —
    the duration baseline.
    """
    network = factory()
    network.reset()
    test = RsnTest("exhaustive")
    flush_len = full_flat_length(network) + 4
    levels = _sib_names_by_depth(network)
    opened: dict[str, int] = {}
    for level in levels:
        for sib_name in level:
            opened[sib_name] = 1
            vector = build_vector(network, opened, {})
            test.add_config(vector)
            _run_step(network, test.steps[-1])
            test.add_flush(flush_pattern(flush_len))
            _run_step(network, test.steps[-1])
    for level in reversed(levels):
        for sib_name in level:
            opened[sib_name] = 0
            vector = build_vector(network, opened, {})
            test.add_config(vector)
            _run_step(network, test.steps[-1])
            test.add_flush(flush_pattern(flush_len))
            _run_step(network, test.steps[-1])
    return test


def compact_test(factory) -> RsnTest:
    """Open whole SIB levels at once; flush once per configuration.

    The [30]/[44]-style duration optimization: the number of
    configuration steps is the SIB *depth*, not the SIB *count*, and each
    flush tests all newly-exposed cells concurrently.
    """
    network = factory()
    network.reset()
    test = RsnTest("compact")
    flush_len = full_flat_length(network) + 4
    levels = _sib_names_by_depth(network)
    opened: dict[str, int] = {}
    for level in levels:
        for name in level:
            opened[name] = 1
        vector = build_vector(network, opened, {})
        test.add_config(vector)
        _run_step(network, test.steps[-1])
        test.add_flush(flush_pattern(flush_len))
        _run_step(network, test.steps[-1])
    # one closing configuration exercises the stuck-open detection
    closed = {name: 0 for name in opened}
    vector = build_vector(network, closed, {})
    test.add_config(vector)
    _run_step(network, test.steps[-1])
    test.add_flush(flush_pattern(flush_len))
    _run_step(network, test.steps[-1])
    return test


@dataclass
class StrategyComparison:
    """Coverage/duration trade-off of the two generators (bench E9 rows)."""

    exhaustive_cycles: int
    exhaustive_coverage: float
    compact_cycles: int
    compact_coverage: float

    @property
    def duration_reduction(self) -> float:
        if self.exhaustive_cycles == 0:
            return 0.0
        return 1 - self.compact_cycles / self.exhaustive_cycles


def compare_strategies(factory, faults: Sequence[object],
                       workers: int = 1,
                       executor: str = "auto") -> StrategyComparison:
    """Generate both tests and measure coverage and shift-cycle cost."""
    exhaustive = exhaustive_test(factory)
    compact = compact_test(factory)
    return StrategyComparison(
        exhaustive_cycles=exhaustive.shift_cycles,
        exhaustive_coverage=coverage(factory, faults, exhaustive,
                                     workers=workers, executor=executor),
        compact_cycles=compact.shift_cycles,
        compact_coverage=coverage(factory, faults, compact,
                                  workers=workers, executor=executor),
    )
