"""Fault diagnosis in reconfigurable scan networks (III.E, after [45]).

Given the TDO streams observed from a failing part, diagnosis returns
the set of candidate faults whose simulated signatures match.  The
quality metric is *resolution*: the average candidate-set size over all
faults (1.0 = perfect diagnosis).  [45] generates dedicated sequences to
shrink that set; ``diagnostic_test`` here augments a base test with
per-SIB discriminating vectors until resolution stops improving.

Signature campaigns execute on the unified engine
(:class:`repro.engine.RsnDiagnosisBackend`): every facade keeps its
result type but gains ``db=``/``workers=``/``executor=``, and
``signature_campaign`` additionally returns the engine's
:class:`~repro.engine.CampaignReport`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from .network import RSN
from .retarget import build_vector
from .test_gen import RsnTest, Step, flush_pattern


@dataclass
class DiagnosisResult:
    """Signature table and candidate sets."""

    signatures: dict[object, tuple[int, ...]] = field(default_factory=dict)
    golden_signature: tuple[int, ...] = ()

    def candidates(self, observed: Sequence[int]) -> list[object]:
        """Faults whose signature matches the observed stream."""
        key = tuple(observed)
        return [f for f, sig in self.signatures.items() if sig == key]

    def resolution(self) -> float:
        """Mean candidate-set size over all detectable faults (lower=better)."""
        detectable = [f for f, sig in self.signatures.items()
                      if sig != self.golden_signature]
        if not detectable:
            return 0.0
        total = 0
        for fault in detectable:
            total += len(self.candidates(self.signatures[fault]))
        return total / len(detectable)

    def detected_fraction(self) -> float:
        if not self.signatures:
            return 1.0
        detectable = sum(1 for sig in self.signatures.values()
                         if sig != self.golden_signature)
        return detectable / len(self.signatures)


def signature_campaign(
    factory: Callable[[], RSN],
    faults: Sequence[object],
    test: RsnTest,
    db=None,
    workers: int = 1,
    executor: str = "auto",
):
    """Run the per-fault signature campaign on the unified engine.

    Returns ``(DiagnosisResult, CampaignReport)`` — the signature table
    every diagnosis facade consumes, plus the engine's campaign report
    (outcome counts, executor, throughput).  ``factory`` must be
    picklable (module-level function or ``functools.partial``) for the
    process executor; lambdas fall back to threads with a logged reason.
    """
    from ..engine.core import EngineConfig, run_campaign
    from ..engine.workloads import DETECTED, RsnDiagnosisBackend

    backend = RsnDiagnosisBackend(factory, faults, test)
    report = run_campaign(
        backend, EngineConfig(batch_size=8, workers=workers,
                              executor=executor), db=db)
    result = DiagnosisResult()
    result.golden_signature = backend.golden_signature
    for inj in report.injections:
        result.signatures[inj.point] = inj.detail
        assert (inj.outcome == DETECTED) == \
            (inj.detail != result.golden_signature)
    return result, report


def build_signature_table(
    factory: Callable[[], RSN],
    faults: Sequence[object],
    test: RsnTest,
    db=None,
    workers: int = 1,
    executor: str = "auto",
) -> DiagnosisResult:
    """Simulate every fault under ``test`` and record its TDO signature."""
    table, _report = signature_campaign(factory, faults, test, db=db,
                                        workers=workers, executor=executor)
    return table


def diagnose(
    factory: Callable[[], RSN],
    faults: Sequence[object],
    test: RsnTest,
    observed: Sequence[int],
    db=None,
    workers: int = 1,
    executor: str = "auto",
) -> list[object]:
    """Candidate faults for an observed response under ``test``."""
    table = build_signature_table(factory, faults, test, db=db,
                                  workers=workers, executor=executor)
    return table.candidates(observed)


def _extend_with_toggle(factory: Callable[[], RSN], test: RsnTest,
                        sib: str, round_idx: int) -> RsnTest:
    """One refinement candidate: ``test`` plus a SIB toggle and a flush."""
    probe = factory()
    probe.reset()
    for step in test.steps:
        probe.capture()
        probe.shift(step.bits)
        if step.update:
            probe.update()
    toggle = build_vector(probe, {sib: (round_idx + 1) % 2}, {})
    extended = RsnTest(test.name,
                       [Step(list(s.bits), s.update) for s in test.steps])
    extended.add_config(toggle)
    probe.csu(toggle)
    extended.add_flush(flush_pattern(probe.path_length()))
    return extended


def _speculated_tables(
    factory: Callable[[], RSN],
    faults: Sequence[object],
    speculated: Sequence[tuple[int, RsnTest]],
    workers: int,
    executor: str,
) -> dict[int, DiagnosisResult]:
    """Signature tables for a window of candidate tests.

    A window of one runs a plain campaign; larger windows fuse every
    candidate into a single :class:`repro.engine.CompositeBackend`
    campaign (one part per round), so the engine — and its persistent
    worker pool — is entered once per window instead of once per round.
    """
    if len(speculated) == 1:
        round_idx, test = speculated[0]
        return {round_idx: build_signature_table(
            factory, faults, test, workers=workers, executor=executor)}
    from ..engine.core import EngineConfig, run_campaign
    from ..engine.workloads import CompositeBackend, RsnDiagnosisBackend

    parts = [(f"r{round_idx}", RsnDiagnosisBackend(factory, faults, test))
             for round_idx, test in speculated]
    backend = CompositeBackend(parts)
    report = run_campaign(
        backend, EngineConfig(batch_size=8, workers=workers,
                              executor=executor))
    tables: dict[int, DiagnosisResult] = {}
    for (round_idx, _test), (_tag, part) in zip(speculated, parts):
        result = DiagnosisResult()
        result.golden_signature = part.golden_signature
        tables[round_idx] = result
    for inj in report.injections:
        tag, fault = inj.point
        tables[int(tag[1:])].signatures[fault] = inj.detail
    return tables


def diagnostic_test(
    factory: Callable[[], RSN],
    faults: Sequence[object],
    base: RsnTest,
    max_extra_rounds: int = 8,
    workers: int = 1,
    executor: str = "auto",
    batch_rounds: bool = True,
) -> tuple[RsnTest, DiagnosisResult]:
    """Extend ``base`` with discriminating vectors until resolution stalls.

    Each round appends, for the most ambiguous candidate class, a
    configuration that toggles one SIB appearing in those faults plus a
    flush — the classic divide-and-conquer refinement of [45].

    With ``batch_rounds`` (the default) candidate rounds are evaluated
    in *speculative windows*: a window assumes the current best test
    survives, builds every candidate in it, and runs all of them as one
    composite engine campaign.  Rounds are still consumed strictly in
    order, and an improvement discards the rest of its window (those
    candidates assumed the superseded test), so the returned
    ``(test, table)`` is identical to the one-campaign-per-round loop —
    the window only doubles (1, 2, 4, …) while no improvement lands,
    which bounds wasted speculation to one window.
    """
    test = RsnTest("diagnostic", [Step(list(s.bits), s.update) for s in base.steps])
    table = build_signature_table(factory, faults, test,
                                  workers=workers, executor=executor)
    best = table.resolution()
    from .network import Sib  # local import to avoid cycle at module load

    network = factory()
    network.reset()
    sib_names = [name for name, node in sorted(network.registry.items())
                 if isinstance(node, Sib)]
    round_idx = 0
    window = 1
    while round_idx < max_extra_rounds and best > 1.0 and sib_names:
        hi = min(round_idx + (window if batch_rounds else 1),
                 max_extra_rounds)
        speculated = [
            (r, _extend_with_toggle(factory, test,
                                    sib_names[r % len(sib_names)], r))
            for r in range(round_idx, hi)
        ]
        tables = _speculated_tables(factory, faults, speculated, workers,
                                    executor)
        improved = False
        for r, extended in speculated:
            round_idx = r + 1
            candidate_table = tables[r]
            resolution = candidate_table.resolution()
            if resolution < best:
                best = resolution
                test = extended
                table = candidate_table
                improved = True
                break  # the rest of the window assumed the old test
        window = 1 if improved else min(2 * window, max_extra_rounds)
    return test, table
