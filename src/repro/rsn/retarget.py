"""Pattern retargeting: high-level register access → scan vectors.

Retargeting turns "write value V to instrument register R" into the CSU
vector sequence that first *configures* the network (opens the SIBs and
steers the ScanMuxes on R's route) and then delivers the payload.  Each
CSU costs ``path length`` shift cycles, so the retargeter's job is also
an optimization: touch as few cells as possible (the access-time metric
the RSN test-time experiments build on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .network import RSN, Mux, Reg, RsnError, Segment, Sib


@dataclass(frozen=True)
class Requirement:
    """One structural condition for a node to be on the active path."""

    kind: str        # "sib_open" | "mux_branch"
    node: str        # the SIB or mux name
    branch: int = 0  # for mux_branch


def route_requirements(network: RSN, target: str) -> list[Requirement]:
    """Requirements for ``target`` to be scannable, outermost first."""
    path: list[Requirement] = []

    def walk(segment: Segment, acc: list[Requirement]) -> list[Requirement] | None:
        for node in segment.nodes:
            if node.name == target:
                return acc
            if isinstance(node, Sib):
                found = walk(node.child, acc + [Requirement("sib_open", node.name)])
                if found is not None:
                    return found
            elif isinstance(node, Mux):
                for idx, branch in enumerate(node.branches):
                    found = walk(branch,
                                 acc + [Requirement("mux_branch", node.name, idx)])
                    if found is not None:
                        return found
        return None

    found = walk(network.top, [])
    if found is None:
        raise RsnError(f"target {target!r} not found in {network.name}")
    return found


@dataclass
class RetargetResult:
    """The vector sequence and its cost."""

    vectors: list[list[int]] = field(default_factory=list)
    shift_cycles: int = 0
    csu_count: int = 0
    satisfied: dict[str, int] = field(default_factory=dict)

    @property
    def success(self) -> bool:
        return bool(self.satisfied)


def _desired_state(network: RSN, targets: Mapping[str, int]) -> tuple[dict[str, int], dict[str, int]]:
    """(sib open/close desires, register write desires incl. mux controls)."""
    sib_desire: dict[str, int] = {}
    reg_desire: dict[str, int] = dict(targets)
    work = list(targets)
    seen: set[str] = set()
    while work:
        name = work.pop()
        if name in seen:
            continue
        seen.add(name)
        for req in route_requirements(network, name):
            if req.kind == "sib_open":
                sib_desire[req.node] = 1
            else:
                mux = network.node(req.node)
                assert isinstance(mux, Mux)
                reg_desire.setdefault(mux.control, req.branch)
                if reg_desire[mux.control] % len(mux.branches) != req.branch:
                    raise RsnError(
                        f"conflicting branch requirements on mux {req.node!r}")
                work.append(mux.control)
    return sib_desire, reg_desire


def build_vector(network: RSN, sib_desire: Mapping[str, int],
                 reg_desire: Mapping[str, int]) -> list[int]:
    """A CSU vector for the *current* path applying the desired writes.

    Cells not mentioned keep their update-latch value.  The returned
    list is in TDI order (first bit shifted first).
    """
    path = network.active_path()
    cell_values: list[int] = []
    for node, bit in path:
        if isinstance(node, Sib):
            value = sib_desire.get(node.name, node.update_latch & 1)
        else:
            assert isinstance(node, Reg)
            target = reg_desire.get(node.name)
            source = target if target is not None else node.update_latch
            value = (source >> bit) & 1
        cell_values.append(value)
    # cell i receives tdi[L-1-i]
    length = len(cell_values)
    return [cell_values[length - 1 - k] for k in range(length)]


def retarget(network: RSN, targets: Mapping[str, int],
             max_csu: int = 32) -> RetargetResult:
    """Write every target register, reconfiguring the network as needed.

    Iterates: derive desired SIB/mux/control state → build a vector for
    the currently reachable cells → CSU → check.  Terminates when all
    targets hold their values *and* are on the active path, or when
    ``max_csu`` is exhausted (raises, since silent partial retargeting
    would corrupt instrument sessions).
    """
    sib_desire, reg_desire = _desired_state(network, targets)
    result = RetargetResult()
    for _ in range(max_csu):
        vector = build_vector(network, sib_desire, reg_desire)
        result.vectors.append(vector)
        network.csu(vector)
        result.shift_cycles += len(vector)
        result.csu_count += 1
        on_path = {node.name for node, _ in network.active_path()}
        done = all(
            name in on_path and network.read_register(name) == value
            for name, value in targets.items()
        )
        if done:
            result.satisfied = dict(targets)
            return result
    raise RsnError(
        f"retargeting did not converge after {max_csu} CSUs "
        f"(targets {sorted(targets)})")


def naive_access_cost(network: RSN, targets: Mapping[str, int]) -> int:
    """Cost of the flatten-everything strategy: open *all* SIBs first.

    The baseline the optimized retargeter is compared against: shift
    cycles to open every SIB level by level, then one full-length payload
    CSU.  Mux branches not on any route still cost their select writes.
    """
    snapshot = _freeze(network)
    try:
        all_sibs = {name: 1 for name, node in network.registry.items()
                    if isinstance(node, Sib)}
        cycles = 0
        for _ in range(32):
            vector = build_vector(network, all_sibs, {})
            network.csu(vector)
            cycles += len(vector)
            on_path = {node.name for node, _ in network.active_path()}
            fully_open = all(
                s in on_path and (network.node(s).update_latch & 1)
                for s in all_sibs
            )
            if fully_open:
                break
        _sibs, reg_desire = _desired_state(network, targets)
        payload = build_vector(network, all_sibs, reg_desire)
        network.csu(payload)
        cycles += len(payload)
        return cycles
    finally:
        _restore(network, snapshot)


def _freeze(network: RSN) -> dict[str, tuple[int, int]]:
    return {
        name: (node.shift_stage, node.update_latch)
        for name, node in network.registry.items()
        if isinstance(node, (Reg, Sib))
    }


def _restore(network: RSN, snapshot: dict[str, tuple[int, int]]) -> None:
    for name, (shift, update) in snapshot.items():
        node = network.node(name)
        node.shift_stage = shift
        node.update_latch = update
