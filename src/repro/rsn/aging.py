"""NBTI aging of reconfigurable scan networks (III.E, [36]).

Scan-network cells are pathological NBTI victims: a SIB that is never
opened holds a constant 0 for the entire mission; an idle TDR holds
whatever was last shifted.  [36] analyzes this duty-cycle pathology in
IEEE 1687 networks and its impact on the shift-path timing.

The model: a usage profile gives the fraction of mission time each
configuration is active; cells accumulate *stress duty* = time-weighted
|P(high) − 0.5| · 2.  The shift path's maximum frequency degrades with
the worst aged cell on it.  Mitigation follows the paper's logic:
periodically shifting a balanced dummy pattern through idle segments
pulls every cell's duty toward 0.5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..aging.bti import BtiModel, SECONDS_PER_YEAR
from ..aging.delay import DelayModel
from .network import RSN, Mux, Reg, Sib


@dataclass
class RsnAgingReport:
    """Per-cell stress duties and the shift-path delay outcome."""

    years: float
    cell_stress: dict[str, float] = field(default_factory=dict)
    cell_delta_vth: dict[str, float] = field(default_factory=dict)
    slowdown_per_cell: dict[str, float] = field(default_factory=dict)

    @property
    def worst_cell(self) -> tuple[str, float]:
        if not self.slowdown_per_cell:
            return ("", 1.0)
        name = max(self.slowdown_per_cell, key=self.slowdown_per_cell.get)
        return name, self.slowdown_per_cell[name]

    @property
    def max_shift_slowdown(self) -> float:
        """The shift clock is limited by the slowest cell on the path."""
        return max(self.slowdown_per_cell.values(), default=1.0)

    def frequency_loss_percent(self) -> float:
        return 100.0 * (1.0 - 1.0 / self.max_shift_slowdown)


def occupancy_duties(
    network: RSN,
    selected_fraction: Mapping[str, float],
    idle_value_bias: float = 1.0,
) -> dict[str, float]:
    """Per-cell stress duty from a segment-usage profile.

    ``selected_fraction`` maps SIB names to the fraction of time their
    segment is part of the active path (the rest of the time its cells
    hold a static value).  ``idle_value_bias`` is the probability that
    the held value stresses the device (1.0 = worst case, held at the
    stressing polarity; 0.5 = a lucky balanced park value).

    While *active*, shifting traffic gives cells ≈0.5 signal probability
    (stress duty 0); while *idle*, stress duty is ``idle_value_bias``.
    """
    duties: dict[str, float] = {}
    for name, node in network.registry.items():
        if isinstance(node, Mux):
            continue
        active = selected_fraction.get(name, 0.0)
        if isinstance(node, Sib):
            # the SIB cell itself is always on the path; its latch is the
            # static signal: closed SIBs hold constant 0 (full stress)
            open_frac = selected_fraction.get(name, 0.0)
            duties[name] = (1.0 - open_frac) * idle_value_bias
        else:
            assert isinstance(node, Reg)
            duties[name] = (1.0 - active) * idle_value_bias
    return duties


def age_network(
    network: RSN,
    selected_fraction: Mapping[str, float],
    years: float = 10.0,
    temp_c: float = 85.0,
    idle_value_bias: float = 1.0,
    bti: BtiModel | None = None,
    delay_model: DelayModel | None = None,
) -> RsnAgingReport:
    """Full aging analysis of a network under a usage profile."""
    bti = bti or BtiModel()
    dm = delay_model or DelayModel()
    report = RsnAgingReport(years=years)
    report.cell_stress = occupancy_duties(network, selected_fraction,
                                          idle_value_bias)
    seconds = years * SECONDS_PER_YEAR
    for name, stress in report.cell_stress.items():
        dvth = bti.delta_vth(seconds, stress, temp_c)
        report.cell_delta_vth[name] = dvth
        report.slowdown_per_cell[name] = dm.slowdown(dvth)
    return report


def mitigate_with_dummy_cycles(
    network: RSN,
    selected_fraction: Mapping[str, float],
    dummy_fraction: float = 0.1,
    years: float = 10.0,
    temp_c: float = 85.0,
) -> tuple[RsnAgingReport, RsnAgingReport]:
    """Before/after comparison for the dummy-pattern mitigation.

    Spending ``dummy_fraction`` of time shifting balanced patterns through
    *all* segments converts that fraction of each cell's idle time into
    balanced activity: stress duty scales by (1 − dummy_fraction) and the
    idle park value is refreshed to a balanced one (bias → 0.5) for the
    remaining idle time.
    """
    if not 0 <= dummy_fraction < 1:
        raise ValueError("dummy_fraction must be in [0, 1)")
    before = age_network(network, selected_fraction, years, temp_c,
                         idle_value_bias=1.0)
    mitigated_profile = {
        name: min(1.0, frac + dummy_fraction)
        for name, frac in selected_fraction.items()
    }
    # any SIB never selected still gets toggled during dummy cycles
    for name, node in network.registry.items():
        if isinstance(node, (Sib, Reg)):
            mitigated_profile.setdefault(name, dummy_fraction)
    after = age_network(network, mitigated_profile, years, temp_c,
                        idle_value_bias=0.5)
    return before, after
