"""ICL-vs-implementation equivalence checking (III.E, [29][47]).

[47] validates that an IEEE 1687 ICL description matches the RTL by
simulation-based equivalence checking.  Our analogue compares two RSN
instances — typically ``parse_icl(description)`` vs the implementation
model — by driving both with the same stimulus and comparing:

* active-path length after every reconfiguration;
* TDO streams bit by bit;
* final update-latch state of every named node.

The stimulus explores all SIB configurations up to a bounded count plus
randomized payloads, which is exhaustive for tree networks of moderate
size and a strong randomized check beyond.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable

from .network import RSN, Sib
from .retarget import build_vector
from .test_gen import flush_pattern


@dataclass(frozen=True)
class Mismatch:
    """First detected divergence between the two models."""

    phase: str       # "path_length" | "tdo" | "state"
    detail: str
    step: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.phase} @step {self.step}] {self.detail}"


def check_equivalence(
    make_a: Callable[[], RSN],
    make_b: Callable[[], RSN],
    max_configs: int = 64,
    payload_seed: int = 0,
) -> Mismatch | None:
    """Returns None if equivalent under the explored stimulus, else the
    first mismatch witness."""
    a0 = make_a()
    sib_names = sorted(n for n, node in a0.registry.items() if isinstance(node, Sib))
    configs = list(itertools.product((0, 1), repeat=len(sib_names)))[:max_configs]
    rng = random.Random(payload_seed)

    net_a, net_b = make_a(), make_b()
    net_a.reset()
    net_b.reset()
    step = 0
    for config in configs:
        desired = dict(zip(sib_names, config))
        # drive both networks through possibly multi-CSU reconfiguration
        for _ in range(len(sib_names) + 1):
            if net_a.path_length() != net_b.path_length():
                return Mismatch("path_length",
                                f"A={net_a.path_length()} B={net_b.path_length()} "
                                f"config={desired}", step)
            vector = build_vector(net_a, desired, {})
            tdo_a = net_a.csu(vector)
            tdo_b = net_b.csu(vector)
            step += 1
            if tdo_a != tdo_b:
                return Mismatch("tdo", f"config step, config={desired}", step)
            reachable = {n.name for n, _ in net_a.active_path()}
            if all(desired[s] == (net_a.node(s).update_latch & 1)
                   for s in sib_names if s in reachable):
                break
        # payload flush at this configuration
        length = net_a.path_length()
        if length != net_b.path_length():
            return Mismatch("path_length",
                            f"A={net_a.path_length()} B={net_b.path_length()} "
                            f"config={desired}", step)
        payload = [rng.getrandbits(1) for _ in range(length)]
        tdo_a = net_a.csu(payload)
        tdo_b = net_b.csu(payload)
        step += 1
        if tdo_a != tdo_b:
            first = next(i for i, (x, y) in enumerate(zip(tdo_a, tdo_b)) if x != y)
            return Mismatch("tdo", f"payload bit {first} config={desired}", step)
        state_a = net_a.state_signature()
        state_b = net_b.state_signature()
        if set(state_a) == set(state_b) and state_a != state_b:
            diff = [k for k in state_a if state_a[k] != state_b[k]]
            return Mismatch("state", f"latches differ: {diff[:4]}", step)
    # final flush through the all-open network for stragglers
    flush = flush_pattern(net_a.path_length())
    if net_a.csu(flush) != net_b.csu(flush):
        return Mismatch("tdo", "final flush", step + 1)
    return None


def equivalent(make_a: Callable[[], RSN], make_b: Callable[[], RSN],
               max_configs: int = 64) -> bool:
    """Boolean convenience wrapper around :func:`check_equivalence`."""
    return check_equivalence(make_a, make_b, max_configs) is None
