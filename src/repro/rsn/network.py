"""IEEE 1687-style reconfigurable scan networks (paper III.E).

A network is a hierarchy of segments between TDI and TDO containing:

* :class:`Reg` — an n-bit shift register with an update latch (a TDR
  fronting an embedded instrument);
* :class:`Sib` — segment-insertion bit: a 1-bit cell whose update value
  splices its child segment into the active path;
* :class:`Mux` — a ScanMux selecting one of several branch segments by
  the update value of a named control register.

The model implements the full CSU (capture-shift-update) protocol over
the *active* path, which is recomputed from update-latch state before
every operation — the defining property of reconfigurable networks, and
the reason their test/verification problems ([15]-[17], [29], [30],
[44], [45], [47]) are interesting.

Fault models (``SibStuck``, ``MuxSelStuck``, ``CellStuck``) act on the
same simulator, so golden and faulty behaviours come from one engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


class RsnError(ValueError):
    """Malformed network or protocol misuse."""


@dataclass
class Reg:
    """An n-bit scan register (TDR) with shift stage and update latch."""

    name: str
    length: int
    reset_value: int = 0
    shift_stage: int = 0
    update_latch: int = 0
    capture_value: int | None = None  # instrument readback, if any

    def reset(self) -> None:
        self.shift_stage = self.reset_value
        self.update_latch = self.reset_value

    def cells(self) -> list[tuple["Reg", int]]:
        return [(self, i) for i in range(self.length)]


@dataclass
class Sib:
    """Segment-insertion bit; update=1 splices ``child`` after the cell."""

    name: str
    child: "Segment"
    shift_stage: int = 0
    update_latch: int = 0

    def reset(self) -> None:
        self.shift_stage = 0
        self.update_latch = 0
        self.child.reset()

    def cells(self) -> list[tuple["Sib", int]]:
        return [(self, 0)]


@dataclass
class Mux:
    """ScanMux: routes one of ``branches`` based on a control register.

    ``control`` names a :class:`Reg`; its update-latch value (mod the
    branch count) selects the active branch.  The mux has no scan cell of
    its own.
    """

    name: str
    control: str
    branches: list["Segment"] = field(default_factory=list)

    def reset(self) -> None:
        for branch in self.branches:
            branch.reset()


Node = Reg | Sib | Mux


@dataclass
class Segment:
    """An ordered run of nodes between two points of the scan path."""

    nodes: list[Node] = field(default_factory=list)

    def reset(self) -> None:
        for node in self.nodes:
            node.reset()


class RSN:
    """A reconfigurable scan network with CSU semantics."""

    def __init__(self, name: str, top: Segment) -> None:
        self.name = name
        self.top = top
        self.registry: dict[str, Node] = {}
        self._register_segment(top)
        self.faults: list[object] = []
        self.total_shift_cycles = 0
        self.csu_count = 0

    def _register_segment(self, segment: Segment) -> None:
        for node in segment.nodes:
            if node.name in self.registry:
                raise RsnError(f"duplicate node name {node.name!r}")
            self.registry[node.name] = node
            if isinstance(node, Sib):
                self._register_segment(node.child)
            elif isinstance(node, Mux):
                for branch in node.branches:
                    self._register_segment(branch)
        for node in segment.nodes:
            if isinstance(node, Mux) and node.control not in self.registry:
                # control may be registered later at an outer level; check at use
                pass

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.top.reset()
        self.total_shift_cycles = 0
        self.csu_count = 0

    def node(self, name: str) -> Node:
        try:
            return self.registry[name]
        except KeyError:
            raise RsnError(f"unknown node {name!r}") from None

    # ------------------------------------------------------------------
    # fault handling
    # ------------------------------------------------------------------
    def inject(self, fault: object) -> None:
        self.faults.append(fault)

    def clear_faults(self) -> None:
        self.faults = []

    def _sib_open(self, sib: Sib) -> bool:
        for fault in self.faults:
            if isinstance(fault, SibStuck) and fault.name == sib.name:
                return bool(fault.open_)
        return bool(sib.update_latch & 1)

    def _mux_branch(self, mux: Mux) -> int:
        for fault in self.faults:
            if isinstance(fault, MuxSelStuck) and fault.name == mux.name:
                return fault.branch % len(mux.branches)
        control = self.node(mux.control)
        if not isinstance(control, Reg):
            raise RsnError(f"mux {mux.name!r} control {mux.control!r} is not a Reg")
        return control.update_latch % len(mux.branches)

    def _cell_forced(self, node: Node, bit: int) -> int | None:
        for fault in self.faults:
            if (isinstance(fault, CellStuck) and fault.name == node.name
                    and fault.bit == bit):
                return fault.value
        return None

    # ------------------------------------------------------------------
    # active path and CSU
    # ------------------------------------------------------------------
    def active_path(self) -> list[tuple[Node, int]]:
        """Scan cells on the currently-configured TDI→TDO path."""
        path: list[tuple[Node, int]] = []
        self._walk(self.top, path)
        return path

    def _walk(self, segment: Segment, path: list[tuple[Node, int]]) -> None:
        for node in segment.nodes:
            if isinstance(node, Reg):
                path.extend(node.cells())
            elif isinstance(node, Sib):
                path.extend(node.cells())
                if self._sib_open(node):
                    self._walk(node.child, path)
            elif isinstance(node, Mux):
                self._walk(node.branches[self._mux_branch(node)], path)

    def path_length(self) -> int:
        return len(self.active_path())

    def _get_bit(self, node: Node, bit: int) -> int:
        return (node.shift_stage >> bit) & 1

    def _set_bit(self, node: Node, bit: int, value: int) -> None:
        forced = self._cell_forced(node, bit)
        if forced is not None:
            value = forced
        if value:
            node.shift_stage |= 1 << bit
        else:
            node.shift_stage &= ~(1 << bit)

    def capture(self) -> None:
        """Load capture values into the shift stages of active-path cells."""
        seen: set[str] = set()
        for node, _bit in self.active_path():
            if node.name in seen:
                continue
            seen.add(node.name)
            if isinstance(node, Reg):
                node.shift_stage = (node.capture_value
                                    if node.capture_value is not None
                                    else node.update_latch)
                for i in range(node.length):
                    self._set_bit(node, i, (node.shift_stage >> i) & 1)
            elif isinstance(node, Sib):
                node.shift_stage = node.update_latch & 1
                self._set_bit(node, 0, node.shift_stage)

    def shift(self, tdi_bits: Sequence[int]) -> list[int]:
        """Shift ``tdi_bits`` in (first element first); returns TDO bits.

        The active path is fixed during a shift (IEEE 1687 semantics:
        configuration changes only at update).
        """
        path = self.active_path()
        tdo: list[int] = []
        for bit_in in tdi_bits:
            carry = bit_in & 1
            for node, bit in path:
                old = self._get_bit(node, bit)
                self._set_bit(node, bit, carry)
                carry = old
            tdo.append(carry)
            self.total_shift_cycles += 1
        return tdo

    def update(self) -> None:
        """Copy shift stages to update latches for active-path cells."""
        seen: set[str] = set()
        for node, _bit in self.active_path():
            if node.name in seen:
                continue
            seen.add(node.name)
            if isinstance(node, (Reg, Sib)):
                node.update_latch = node.shift_stage

    def csu(self, tdi_bits: Sequence[int]) -> list[int]:
        """One full capture-shift-update operation; returns TDO bits."""
        if len(tdi_bits) != self.path_length():
            raise RsnError(
                f"CSU vector length {len(tdi_bits)} != active path length "
                f"{self.path_length()}")
        self.capture()
        tdo = self.shift(tdi_bits)
        self.update()
        self.csu_count += 1
        return tdo

    # ------------------------------------------------------------------
    def read_register(self, name: str) -> int:
        node = self.node(name)
        if not isinstance(node, Reg):
            raise RsnError(f"{name!r} is not a Reg")
        return node.update_latch

    def state_signature(self) -> dict[str, int]:
        """Update-latch snapshot of every node (for equivalence checks)."""
        return {
            name: node.update_latch
            for name, node in sorted(self.registry.items())
            if isinstance(node, (Reg, Sib))
        }


# ----------------------------------------------------------------------
# fault models
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SibStuck:
    """SIB control stuck: segment permanently included/excluded."""

    name: str
    open_: bool

    def describe(self) -> str:
        return f"SIB {self.name} stuck-{'open' if self.open_ else 'closed'}"


@dataclass(frozen=True)
class MuxSelStuck:
    """ScanMux select stuck on one branch."""

    name: str
    branch: int

    def describe(self) -> str:
        return f"Mux {self.name} stuck-branch-{self.branch}"


@dataclass(frozen=True)
class CellStuck:
    """A scan cell's shift stage stuck-at a value."""

    name: str
    bit: int
    value: int

    def describe(self) -> str:
        return f"cell {self.name}[{self.bit}] s-a-{self.value}"


def all_rsn_faults(network: RSN, include_cells: bool = True) -> list[object]:
    """The standard RSN fault universe over a network."""
    faults: list[object] = []
    for name, node in sorted(network.registry.items()):
        if isinstance(node, Sib):
            faults.append(SibStuck(name, True))
            faults.append(SibStuck(name, False))
            if include_cells:
                faults.append(CellStuck(name, 0, 0))
                faults.append(CellStuck(name, 0, 1))
        elif isinstance(node, Mux):
            for b in range(len(node.branches)):
                faults.append(MuxSelStuck(name, b))
        elif isinstance(node, Reg) and include_cells:
            for bit in (0, node.length - 1):
                faults.append(CellStuck(name, bit, 0))
                faults.append(CellStuck(name, bit, 1))
    return faults


# ----------------------------------------------------------------------
# constructors
# ----------------------------------------------------------------------
def chain(name: str, *nodes: Node) -> RSN:
    """A network from a flat list of nodes."""
    return RSN(name, Segment(list(nodes)))


def sib_tree(depth: int = 3, regs_per_leaf: int = 1, reg_bits: int = 8,
             name: str = "sibtree") -> RSN:
    """A balanced SIB tree: each SIB guards two child SIBs (or leaf TDRs).

    The canonical benchmark shape of the RSN literature: path length
    ranges from ``#root SIBs`` (all closed) to the full flattened network.
    """
    counter = {"sib": 0, "reg": 0}

    def build(level: int) -> Segment:
        nodes: list[Node] = []
        if level == 0:
            for _ in range(regs_per_leaf):
                counter["reg"] += 1
                nodes.append(Reg(f"r{counter['reg']}", reg_bits))
            return Segment(nodes)
        for _ in range(2):
            counter["sib"] += 1
            nodes.append(Sib(f"s{counter['sib']}", build(level - 1)))
        return Segment(nodes)

    return RSN(name, build(depth))


def random_network(n_nodes: int = 20, reg_bits: int = 8, seed: int = 0,
                   name: str | None = None) -> RSN:
    """Seeded random SIB/Reg/Mux network for statistical experiments."""
    import random as _random

    rng = _random.Random(seed)
    counter = {"n": 0}

    def fresh(prefix: str) -> str:
        counter["n"] += 1
        return f"{prefix}{counter['n']}"

    control_regs: list[str] = []

    def build(budget: int, top_level: bool) -> Segment:
        nodes: list[Node] = []
        while budget > 0:
            kind = rng.random()
            if kind < 0.45 or budget < 3:
                reg = Reg(fresh("r"), rng.choice((4, reg_bits)))
                nodes.append(reg)
                control_regs.append(reg.name)
                budget -= 1
            elif kind < 0.8:
                child_budget = min(budget - 1, rng.randint(1, 4))
                nodes.append(Sib(fresh("s"), build(child_budget, False)))
                budget -= 1 + child_budget
            elif control_regs and budget >= 3:
                n_br = 2
                b1 = build(1, False)
                b2 = build(1, False)
                nodes.append(Mux(fresh("m"), rng.choice(control_regs), [b1, b2]))
                budget -= 3
            else:
                nodes.append(Reg(fresh("r"), 4))
                budget -= 1
        if top_level and not any(isinstance(n, Reg) for n in nodes):
            nodes.insert(0, Reg(fresh("r"), reg_bits))
        return Segment(nodes)

    top = build(n_nodes, True)
    return RSN(name or f"rand_rsn_{n_nodes}_s{seed}", top)
