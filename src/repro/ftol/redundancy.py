"""Spatial and temporal redundancy schemes.

TMR (triple modular redundancy with majority voting), DMR/lockstep
(duplicate-and-compare — detection without correction, the AutoSoC CPU
safety mechanism) and temporal re-execution.  All are expressed over
plain callables so the same machinery wraps gate-level circuits, ISA
simulators or arbitrary Python computations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def vote_majority(values: Sequence[T]) -> T:
    """2-of-3 (or n-of-m) majority vote; raises if no majority exists."""
    counts: dict[T, int] = {}
    for v in values:
        counts[v] = counts.get(v, 0) + 1
    winner, n = max(counts.items(), key=lambda kv: kv[1])
    if n * 2 <= len(values):
        raise ValueError("no majority among replica outputs")
    return winner


@dataclass
class TmrStats:
    total: int = 0
    voted_out: int = 0  # disagreements masked by the voter
    failures: int = 0   # no-majority events


class Tmr:
    """Triple modular redundancy around three replica callables."""

    def __init__(self, replicas: Sequence[Callable[..., T]]) -> None:
        if len(replicas) != 3:
            raise ValueError("TMR requires exactly three replicas")
        self.replicas = list(replicas)
        self.stats = TmrStats()

    def __call__(self, *args, **kwargs) -> T:
        outs = [r(*args, **kwargs) for r in self.replicas]
        self.stats.total += 1
        if len(set(map(repr, outs))) > 1:
            try:
                result = vote_majority(outs)
                self.stats.voted_out += 1
                return result
            except ValueError:
                self.stats.failures += 1
                raise
        return outs[0]


@dataclass
class LockstepEvent:
    """A divergence caught by the lockstep comparator."""

    step: int
    main_output: object
    shadow_output: object


class Lockstep:
    """Dual modular redundancy with cycle-by-cycle comparison.

    ``delay`` models delayed lockstep (the shadow core running N steps
    behind, standard practice against common-mode transients): outputs
    are compared ``delay`` steps apart, so detection latency grows by the
    same amount — the latency/robustness trade the AutoSoC experiment
    measures.
    """

    def __init__(self, main: Callable[[int], T], shadow: Callable[[int], T],
                 delay: int = 0) -> None:
        self.main = main
        self.shadow = shadow
        self.delay = delay
        self.events: list[LockstepEvent] = []
        self._main_history: list[T] = []
        self.steps = 0

    def step(self) -> tuple[T, bool]:
        """Advance both cores one step; returns (main output, mismatch?)."""
        idx = self.steps
        main_out = self.main(idx)
        self._main_history.append(main_out)
        mismatch = False
        shadow_idx = idx - self.delay
        if shadow_idx >= 0:
            shadow_out = self.shadow(shadow_idx)
            expected = self._main_history[shadow_idx]
            if repr(shadow_out) != repr(expected):
                mismatch = True
                self.events.append(LockstepEvent(idx, expected, shadow_out))
        self.steps += 1
        return main_out, mismatch

    @property
    def detected(self) -> bool:
        return bool(self.events)

    @property
    def detection_latency(self) -> int | None:
        """Steps from divergence to first comparator hit (None if clean)."""
        if not self.events:
            return None
        return self.delay


def temporal_redundancy(fn: Callable[[], T], runs: int = 2) -> tuple[T, bool]:
    """Re-execute ``fn`` and compare: returns (first result, consistent?).

    Catches transient faults that do not persist across executions; the
    cheapest detection scheme when time redundancy is affordable.
    """
    if runs < 2:
        raise ValueError("temporal redundancy needs >= 2 runs")
    results = [fn() for _ in range(runs)]
    consistent = all(repr(r) == repr(results[0]) for r in results[1:])
    return results[0], consistent


@dataclass
class ScrubbingSchedule:
    """Periodic memory scrubbing: repair accumulation of soft errors.

    With upset rate λ per word per cycle and scrub period P, the chance a
    word accumulates 2+ upsets between scrubs (defeating SEC-DED) is
    ≈ (λP)²/2 — quadratic in the period, which is why the fault manager
    shortens P when the SEU monitor reports flux spikes.
    """

    period_cycles: int
    upset_rate_per_cycle: float = 1e-9

    def double_error_probability(self) -> float:
        lam = self.upset_rate_per_cycle * self.period_cycles
        return 0.5 * lam * lam

    def scrubs_per_second(self, clock_hz: float) -> float:
        return clock_hz / self.period_cycles if self.period_cycles else 0.0
