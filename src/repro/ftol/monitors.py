"""On-chip monitors for environmental and intrinsic state (paper III.C).

The RESCUE cross-layer approach hinges on *sensing*: "effective sensing
and decision making about the potential system reconfiguration based on
the actual environmental and intrinsic changes".  Implemented monitors:

* :class:`SramSeuMonitor` — spare SRAM words functionally reused as a
  particle detector ([38]): known patterns are written, periodically
  read back, and flips are counted into a flux estimate.
* :class:`PulseStretchingDetector` — inverter-chain particle detector
  ([39]): a strike produces a pulse that the chain stretches above the
  counting threshold; sensitivity scales with chain length.
* :class:`AgingMonitor` — a ring-oscillator proxy whose frequency tracks
  BTI threshold-voltage drift.
* :class:`TemperatureSensor` — environmental input for the manager's
  policies (and for aging acceleration).

All monitors expose ``sample(cycle)`` returning monitor-specific
readings, so the fault manager can poll them uniformly.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field


@dataclass
class MonitorReading:
    """One sample from a monitor."""

    cycle: int
    name: str
    value: float
    events: int = 0


class SramSeuMonitor:
    """Spare-SRAM SEU monitor ([38]).

    ``words`` spare words hold a checkerboard pattern.  Between samples,
    upsets arrive with per-bit probability ``flux * bits * interval``;
    a sample reads all words, counts flips, rewrites the pattern and
    returns the flux estimate (flips per bit per cycle).
    """

    PATTERN = 0xAA

    def __init__(self, words: int = 256, word_bits: int = 8, seed: int = 0) -> None:
        self.words = words
        self.word_bits = word_bits
        self.rng = random.Random(seed)
        self.mem = [self.PATTERN & ((1 << word_bits) - 1)] * words
        self.total_flips = 0
        self.samples = 0
        self.last_sample_cycle = 0

    @property
    def bits(self) -> int:
        return self.words * self.word_bits

    def expose(self, flux_per_bit_cycle: float, cycles: int) -> int:
        """Advance time under the given particle flux; returns upsets landed."""
        upsets = 0
        expected = flux_per_bit_cycle * self.bits * cycles
        # Poisson thinning with the module RNG (deterministic per seed)
        count = self._poisson(expected)
        for _ in range(count):
            w = self.rng.randrange(self.words)
            b = self.rng.randrange(self.word_bits)
            self.mem[w] ^= 1 << b
            upsets += 1
        return upsets

    def _poisson(self, lam: float) -> int:
        if lam <= 0:
            return 0
        # Knuth's algorithm is fine at the small rates involved
        threshold = math.exp(-lam)
        k, p = 0, 1.0
        while True:
            p *= self.rng.random()
            if p <= threshold:
                return k
            k += 1

    def sample(self, cycle: int) -> MonitorReading:
        """Read back, count flips, restore pattern, estimate flux."""
        pattern = self.PATTERN & ((1 << self.word_bits) - 1)
        flips = sum(bin(word ^ pattern).count("1") for word in self.mem)
        self.mem = [pattern] * self.words
        self.total_flips += flips
        self.samples += 1
        interval = max(1, cycle - self.last_sample_cycle)
        flux_est = flips / self.bits / interval
        self.last_sample_cycle = cycle
        return MonitorReading(cycle, "sram_seu", flux_est, flips)


class PulseStretchingDetector:
    """Inverter-chain particle detector ([39]).

    A strike of width *w* on the chain input is stretched by
    ``stretch_per_stage`` per inverter; the counter increments when the
    stretched pulse exceeds ``count_threshold``.  Longer chains therefore
    detect narrower (lower-energy) pulses — the paper's design knob.
    """

    def __init__(self, stages: int = 16, stretch_per_stage: float = 0.05,
                 count_threshold: float = 1.0) -> None:
        if stages <= 0:
            raise ValueError("stages must be positive")
        self.stages = stages
        self.stretch_per_stage = stretch_per_stage
        self.count_threshold = count_threshold
        self.count = 0

    def min_detectable_width(self) -> float:
        """Narrowest input pulse that still trips the counter."""
        return max(0.0, self.count_threshold - self.stages * self.stretch_per_stage)

    def strike(self, pulse_width: float) -> bool:
        """Present one strike; returns True (and counts) if detected."""
        stretched = pulse_width + self.stages * self.stretch_per_stage
        if stretched >= self.count_threshold:
            self.count += 1
            return True
        return False

    def sample(self, cycle: int) -> MonitorReading:
        reading = MonitorReading(cycle, "pulse_detector", float(self.count),
                                 self.count)
        self.count = 0
        return reading


class AgingMonitor:
    """Ring-oscillator aging sensor: frequency tracks ΔVth.

    ``observe(delta_vth)`` converts a threshold shift (from
    ``repro.aging.bti``) into a normalized frequency; the manager
    compares against its guard band.
    """

    def __init__(self, f0_hz: float = 1e9, sensitivity: float = 4.0) -> None:
        self.f0_hz = f0_hz
        self.sensitivity = sensitivity
        self.last_freq = f0_hz

    def observe(self, delta_vth: float) -> float:
        self.last_freq = self.f0_hz * (1 - self.sensitivity * delta_vth)
        return self.last_freq

    def degradation(self) -> float:
        """Fractional frequency loss vs fresh silicon."""
        return 1 - self.last_freq / self.f0_hz

    def sample(self, cycle: int) -> MonitorReading:
        return MonitorReading(cycle, "aging_ro", self.degradation())


@dataclass
class TemperatureSensor:
    """Die-temperature model: ambient + activity-driven heating."""

    ambient_c: float = 25.0
    heating_per_activity: float = 40.0
    tau_cycles: float = 10_000.0
    current_c: float = field(default=25.0)

    def update(self, activity: float, cycles: int = 1) -> float:
        """First-order thermal step toward the activity-set target."""
        target = self.ambient_c + self.heating_per_activity * max(0.0, activity)
        alpha = 1 - math.exp(-cycles / self.tau_cycles)
        self.current_c += (target - self.current_c) * alpha
        return self.current_c

    def sample(self, cycle: int) -> MonitorReading:
        return MonitorReading(cycle, "temperature", self.current_c)
