"""Error-correcting codes: parity, Hamming SEC, and Hamming SEC-DED.

The memory-protection building block behind the AutoSoC ECC
configuration (paper IV.B) and the FIT-budget 'protected' components.
Also reused by the PUF fuzzy extractor as the inner code.

The Hamming implementation is the textbook construction: parity bit
*p_i* (at power-of-two position ``2^i``) covers the positions whose
index has bit *i* set; the syndrome directly addresses the flipped bit.
SEC-DED adds an overall parity bit to separate single (correctable) from
double (detectable-only) errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


def parity(bits: int, width: int) -> int:
    """Even parity over ``width`` bits."""
    return bin(bits & ((1 << width) - 1)).count("1") & 1


class DecodeStatus(str, Enum):
    CLEAN = "clean"
    CORRECTED = "corrected"
    DETECTED = "detected_uncorrectable"
    MISCORRECTED = "miscorrected"  # only reported by oracle checks in tests


@dataclass(frozen=True)
class DecodeResult:
    data: int
    status: DecodeStatus
    flipped_position: int | None = None


class Hamming:
    """Hamming SEC / SEC-DED code for a configurable data width."""

    def __init__(self, data_bits: int = 8, extended: bool = True) -> None:
        if data_bits <= 0:
            raise ValueError("data_bits must be positive")
        self.data_bits = data_bits
        self.extended = extended
        self.parity_bits = self._parity_bits_for(data_bits)
        self.code_bits = data_bits + self.parity_bits + (1 if extended else 0)

    @staticmethod
    def _parity_bits_for(data_bits: int) -> int:
        r = 0
        while (1 << r) < data_bits + r + 1:
            r += 1
        return r

    # positions are 1-based inside the Hamming construction
    def _is_parity_pos(self, pos: int) -> bool:
        return pos & (pos - 1) == 0

    def encode(self, data: int) -> int:
        """Return the codeword for ``data`` (LSB-first positions)."""
        if data < 0 or data >= (1 << self.data_bits):
            raise ValueError(f"data out of range for {self.data_bits} bits")
        n = self.data_bits + self.parity_bits
        word = [0] * (n + 1)  # index 0 unused
        src = 0
        for pos in range(1, n + 1):
            if not self._is_parity_pos(pos):
                word[pos] = (data >> src) & 1
                src += 1
        for i in range(self.parity_bits):
            p = 1 << i
            acc = 0
            for pos in range(1, n + 1):
                if pos & p and pos != p:
                    acc ^= word[pos]
            word[p] = acc
        code = 0
        for pos in range(1, n + 1):
            code |= word[pos] << (pos - 1)
        if self.extended:
            code |= parity(code, n) << n
        return code

    def decode(self, code: int) -> DecodeResult:
        """Decode, correcting single errors; SEC-DED flags double errors."""
        n = self.data_bits + self.parity_bits
        # index 0 unused; position p lives at codeword bit p-1
        word = [0] + [(code >> (pos - 1)) & 1 for pos in range(1, n + 1)]
        syndrome = 0
        for i in range(self.parity_bits):
            p = 1 << i
            acc = 0
            for pos in range(1, n + 1):
                if pos & p:
                    acc ^= word[pos]
            if acc:
                syndrome |= p
        overall_ok = True
        if self.extended:
            stored = (code >> n) & 1
            overall_ok = parity(code & ((1 << n) - 1), n) == stored

        status = DecodeStatus.CLEAN
        flipped = None
        if syndrome == 0 and overall_ok:
            status = DecodeStatus.CLEAN
        elif syndrome == 0 and not overall_ok:
            # error in the overall parity bit itself: data is intact
            status = DecodeStatus.CORRECTED
            flipped = n
        elif self.extended and overall_ok:
            # nonzero syndrome + clean overall parity = double-bit error
            status = DecodeStatus.DETECTED
        else:
            if syndrome <= n:
                word[syndrome] ^= 1
                status = DecodeStatus.CORRECTED
                flipped = syndrome - 1
            else:
                status = DecodeStatus.DETECTED
        data = 0
        dst = 0
        for pos in range(1, n + 1):
            if not self._is_parity_pos(pos):
                data |= word[pos] << dst
                dst += 1
        return DecodeResult(data, status, flipped)

    def overhead(self) -> float:
        """Check-bit overhead ratio (check bits / data bits)."""
        return (self.code_bits - self.data_bits) / self.data_bits


class EccMemory:
    """A word-organized memory protected by Hamming SEC-DED.

    Reads transparently correct single-bit upsets and report the event —
    the hook the cross-layer fault manager subscribes to (scrubbing
    decisions need corrected-error telemetry, not just failures).
    """

    def __init__(self, words: int, data_bits: int = 8) -> None:
        self.code = Hamming(data_bits, extended=True)
        self.words = words
        self.data_bits = data_bits
        self._store = [self.code.encode(0)] * words
        self.corrected_count = 0
        self.detected_count = 0

    def write(self, addr: int, value: int) -> None:
        self._store[self._check(addr)] = self.code.encode(value & ((1 << self.data_bits) - 1))

    def read(self, addr: int) -> DecodeResult:
        result = self.code.decode(self._store[self._check(addr)])
        if result.status is DecodeStatus.CORRECTED:
            self.corrected_count += 1
        elif result.status is DecodeStatus.DETECTED:
            self.detected_count += 1
        return result

    def scrub(self, addr: int) -> bool:
        """Re-encode a word in place; returns True if a repair happened."""
        result = self.code.decode(self._store[self._check(addr)])
        if result.status is DecodeStatus.CORRECTED:
            self._store[addr] = self.code.encode(result.data)
            return True
        return False

    def inject_bitflips(self, addr: int, positions: list[int]) -> None:
        """Flip the given codeword bit positions (SEU injection hook)."""
        for pos in positions:
            if not 0 <= pos < self.code.code_bits:
                raise ValueError(f"bit position {pos} outside codeword")
            self._store[self._check(addr)] ^= 1 << pos

    def _check(self, addr: int) -> int:
        if not 0 <= addr < self.words:
            raise IndexError(f"address {addr} outside memory of {self.words} words")
        return addr
