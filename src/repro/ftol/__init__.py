"""Cross-layer fault tolerance: ECC, redundancy, monitors, management."""

from .ecc import DecodeResult, DecodeStatus, EccMemory, Hamming, parity
from .manager import (
    Action,
    FaultEvent,
    FaultKind,
    GlobalManager,
    HandledRecord,
    LocalHandler,
    MeetInTheMiddle,
    make_transient_storm,
)
from .monitors import (
    AgingMonitor,
    MonitorReading,
    PulseStretchingDetector,
    SramSeuMonitor,
    TemperatureSensor,
)
from .redundancy import (
    Lockstep,
    LockstepEvent,
    ScrubbingSchedule,
    Tmr,
    TmrStats,
    temporal_redundancy,
    vote_majority,
)

__all__ = [
    "Action",
    "AgingMonitor",
    "DecodeResult",
    "DecodeStatus",
    "EccMemory",
    "FaultEvent",
    "FaultKind",
    "GlobalManager",
    "Hamming",
    "HandledRecord",
    "LocalHandler",
    "Lockstep",
    "LockstepEvent",
    "MeetInTheMiddle",
    "MonitorReading",
    "PulseStretchingDetector",
    "ScrubbingSchedule",
    "SramSeuMonitor",
    "TemperatureSensor",
    "Tmr",
    "TmrStats",
    "make_transient_storm",
    "parity",
    "temporal_redundancy",
    "vote_majority",
]
