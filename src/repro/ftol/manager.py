"""Cross-layer "meet-in-the-middle" fault management (paper III.C, [52]).

Two cooperating layers:

* **Local handlers** sit next to each hardware unit.  They react within a
  few cycles using a fixed policy (retry, ECC correction, unit isolation)
  — "fault handling at lower levels close to the area where the error
  occurred allows to avoid high, often unacceptable, latencies".
* A **global manager** polls monitors and receives escalations.  It is
  slow (polling period) but flexible: it tracks per-unit history, infers
  permanent faults from recurrence, retunes scrubbing against measured
  particle flux, and retires failing units — "a more complex and flexible
  fault management".

The simulation driver measures exactly what [52] argues: local reaction
latency stays at handler latency (cycles), global reaction latency is
dominated by the polling period, and the hybrid gets both the low
latency *and* the smart decisions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from .monitors import MonitorReading


class FaultKind(str, Enum):
    TRANSIENT = "transient"
    PERMANENT = "permanent"
    AGING = "aging"


class Action(str, Enum):
    RETRY = "retry"
    CORRECT = "correct"
    ISOLATE = "isolate"
    ESCALATE = "escalate"
    RETIRE_UNIT = "retire_unit"
    INCREASE_SCRUBBING = "increase_scrubbing"
    REDUCE_FREQUENCY = "reduce_frequency"
    NONE = "none"


@dataclass(frozen=True)
class FaultEvent:
    """A fault manifestation at a unit."""

    cycle: int
    unit: str
    kind: FaultKind
    detail: str = ""


@dataclass
class HandledRecord:
    """Outcome bookkeeping for one event."""

    event: FaultEvent
    action: Action
    layer: str          # "local" | "global" | "unhandled"
    reaction_cycle: int

    @property
    def latency(self) -> int:
        return self.reaction_cycle - self.event.cycle


class LocalHandler:
    """Fixed-policy low-latency handler attached to one unit.

    Retries transients; after ``escalate_after`` hits on the same unit
    within ``window`` cycles it suspects a permanent fault and escalates —
    local logic is deliberately too simple to diagnose persistence.
    """

    def __init__(self, unit: str, latency_cycles: int = 2,
                 escalate_after: int = 3, window: int = 200) -> None:
        self.unit = unit
        self.latency_cycles = latency_cycles
        self.escalate_after = escalate_after
        self.window = window
        self.recent: list[int] = []
        self.isolated = False

    def handle(self, event: FaultEvent) -> tuple[Action, int]:
        """Returns (action, reaction cycle)."""
        reaction = event.cycle + self.latency_cycles
        if self.isolated:
            return Action.NONE, reaction
        self.recent = [c for c in self.recent if event.cycle - c <= self.window]
        self.recent.append(event.cycle)
        if len(self.recent) >= self.escalate_after:
            return Action.ESCALATE, reaction
        if event.kind is FaultKind.TRANSIENT:
            return Action.RETRY, reaction
        return Action.ESCALATE, reaction


@dataclass
class GlobalPolicyState:
    """The global manager's tunable knobs (what reconfiguration changes)."""

    scrub_period: int = 100_000
    frequency_scale: float = 1.0
    retired_units: set[str] = field(default_factory=set)


class GlobalManager:
    """Polling manager with history-based policies.

    ``poll_period`` is its reaction granularity; escalations wait for the
    next poll (that *is* the latency cost of global-only handling).
    """

    def __init__(self, poll_period: int = 500,
                 flux_threshold: float = 1e-6,
                 retire_after: int = 2,
                 aging_guard_band: float = 0.05) -> None:
        self.poll_period = poll_period
        self.flux_threshold = flux_threshold
        self.retire_after = retire_after
        self.aging_guard_band = aging_guard_band
        self.state = GlobalPolicyState()
        self.pending: list[FaultEvent] = []
        self.escalation_counts: dict[str, int] = {}
        self.decisions: list[tuple[int, Action, str]] = []

    def escalate(self, event: FaultEvent) -> None:
        self.pending.append(event)

    def next_poll_after(self, cycle: int) -> int:
        return ((cycle // self.poll_period) + 1) * self.poll_period

    def poll(self, cycle: int, readings: list[MonitorReading]) -> list[tuple[Action, FaultEvent | None]]:
        """Process monitor readings + pending escalations at a poll tick."""
        actions: list[tuple[Action, FaultEvent | None]] = []
        for reading in readings:
            if reading.name == "sram_seu" and reading.value > self.flux_threshold:
                self.state.scrub_period = max(1000, self.state.scrub_period // 4)
                self.decisions.append((cycle, Action.INCREASE_SCRUBBING,
                                       f"flux={reading.value:.2e}"))
                actions.append((Action.INCREASE_SCRUBBING, None))
            if reading.name == "aging_ro" and reading.value > self.aging_guard_band:
                if self.state.frequency_scale > 0.5:
                    self.state.frequency_scale = round(
                        self.state.frequency_scale - 0.1, 3)
                    self.decisions.append((cycle, Action.REDUCE_FREQUENCY,
                                           f"degradation={reading.value:.3f}"))
                    actions.append((Action.REDUCE_FREQUENCY, None))
        for event in self.pending:
            count = self.escalation_counts.get(event.unit, 0) + 1
            self.escalation_counts[event.unit] = count
            if count >= self.retire_after and event.unit not in self.state.retired_units:
                self.state.retired_units.add(event.unit)
                self.decisions.append((cycle, Action.RETIRE_UNIT, event.unit))
                actions.append((Action.RETIRE_UNIT, event))
            else:
                self.decisions.append((cycle, Action.ISOLATE, event.unit))
                actions.append((Action.ISOLATE, event))
        self.pending = []
        return actions


class MeetInTheMiddle:
    """The combined two-layer system plus a measurement driver."""

    def __init__(self, units: list[str], local_latency: int = 2,
                 poll_period: int = 500) -> None:
        self.locals = {u: LocalHandler(u, latency_cycles=local_latency)
                       for u in units}
        self.manager = GlobalManager(poll_period=poll_period)
        self.records: list[HandledRecord] = []

    def inject(self, event: FaultEvent) -> HandledRecord:
        """Feed one fault event through the hierarchy."""
        handler = self.locals.get(event.unit)
        if handler is None:
            record = HandledRecord(event, Action.NONE, "unhandled", event.cycle)
            self.records.append(record)
            return record
        action, reaction = handler.handle(event)
        if action is Action.ESCALATE:
            self.manager.escalate(event)
            poll_cycle = self.manager.next_poll_after(reaction)
            decisions = self.manager.poll(poll_cycle, [])
            final = decisions[-1][0] if decisions else Action.ISOLATE
            record = HandledRecord(event, final, "global", poll_cycle)
        else:
            record = HandledRecord(event, action, "local", reaction)
        self.records.append(record)
        return record

    def feed_monitors(self, cycle: int, readings: list[MonitorReading]) -> list[tuple[Action, FaultEvent | None]]:
        return self.manager.poll(cycle, readings)

    # ------------------------------------------------------------------
    def latency_stats(self) -> dict[str, float]:
        """Mean reaction latency per layer (the E6 headline numbers)."""
        stats: dict[str, list[int]] = {"local": [], "global": []}
        for record in self.records:
            if record.layer in stats:
                stats[record.layer].append(record.latency)
        return {
            layer: (sum(vals) / len(vals) if vals else 0.0)
            for layer, vals in stats.items()
        }

    def handled_fraction(self) -> dict[str, float]:
        total = len(self.records) or 1
        out: dict[str, float] = {}
        for record in self.records:
            out[record.layer] = out.get(record.layer, 0) + 1
        return {layer: count / total for layer, count in out.items()}


def make_transient_storm(
    units: list[str],
    n_events: int,
    duration: int,
    permanent_unit: str | None = None,
    seed: int = 0,
) -> list[FaultEvent]:
    """A workload of fault events: mostly transients, optionally one unit
    developing a permanent fault (repeating manifestations)."""
    import random as _random

    rng = _random.Random(seed)
    events = [
        FaultEvent(rng.randrange(duration), rng.choice(units), FaultKind.TRANSIENT)
        for _ in range(n_events)
    ]
    if permanent_unit is not None:
        base = rng.randrange(duration // 2)
        events += [
            FaultEvent(base + i * 50, permanent_unit, FaultKind.TRANSIENT,
                       "recurring manifestation of a permanent defect")
            for i in range(6)
        ]
    return sorted(events, key=lambda e: e.cycle)
