"""Tool/analysis registry — the data behind Fig. 1.

Fig. 1 of the paper maps the project's research results onto the three
aspects (reliability, security, quality) with bubble sizes proportional
to result counts and a lead tag (academia vs industry).  The registry
holds the same taxonomy for the *implemented* toolkit: every analysis
registers itself with its aspects, paper section and lead, and
``figure1_data`` renders the distribution — so the figure regenerates
from the code that actually exists rather than from a hand-kept list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class Aspect(str, Enum):
    RELIABILITY = "reliability"
    SECURITY = "security"
    QUALITY = "quality"


class Lead(str, Enum):
    ACADEMIA = "academia"
    INDUSTRY = "industry"


@dataclass(frozen=True)
class ToolEntry:
    """One registered analysis/tool capability."""

    name: str
    aspects: tuple[Aspect, ...]
    paper_section: str
    lead: Lead
    module: str
    results: int = 1  # bubble weight: implemented analyses/experiments


class Registry:
    """The toolkit's capability inventory."""

    def __init__(self) -> None:
        self.entries: list[ToolEntry] = []

    def register(self, entry: ToolEntry) -> None:
        if any(e.name == entry.name for e in self.entries):
            raise ValueError(f"duplicate tool {entry.name!r}")
        self.entries.append(entry)

    def by_aspect(self, aspect: Aspect) -> list[ToolEntry]:
        return [e for e in self.entries if aspect in e.aspects]

    def figure1_data(self) -> list[tuple[str, str, str, int]]:
        """Rows (tool, aspects, lead, weight) for the Fig. 1 bubble map."""
        return [
            (e.name, "+".join(a.value for a in e.aspects), e.lead.value,
             e.results)
            for e in sorted(self.entries, key=lambda e: (-e.results, e.name))
        ]

    def aspect_totals(self) -> dict[str, int]:
        totals = {a.value: 0 for a in Aspect}
        for entry in self.entries:
            for aspect in entry.aspects:
                totals[aspect.value] += entry.results
        return totals

    def lead_totals(self) -> dict[str, int]:
        totals = {lead.value: 0 for lead in Lead}
        for entry in self.entries:
            totals[entry.lead.value] += entry.results
        return totals


def default_registry() -> Registry:
    """The toolkit registered against the paper's Fig. 1 bubbles."""
    reg = Registry()
    rel, sec, qua = Aspect.RELIABILITY, Aspect.SECURITY, Aspect.QUALITY
    aca, ind = Lead.ACADEMIA, Lead.INDUSTRY
    rows = [
        ToolEntry("test-generation-cpu-gpu", (qua,), "III.A", aca,
                  "repro.atpg / repro.gpgpu.sbst", 6),
        ToolEntry("soft-error-vulnerability", (rel,), "III.B", ind,
                  "repro.soft_error", 6),
        ToolEntry("ml-failure-rate", (rel,), "III.B", ind,
                  "repro.soft_error.ml", 4),
        ToolEntry("cross-layer-fault-tolerance", (rel,), "III.C", aca,
                  "repro.ftol", 4),
        ToolEntry("functional-safety-iso26262", (rel, qua), "III.D", ind,
                  "repro.safety", 5),
        ToolEntry("rsn-test-validation", (rel, qua), "III.E", aca,
                  "repro.rsn", 6),
        ToolEntry("memory-aging-bti", (rel,), "III.E", aca,
                  "repro.aging", 3),
        ToolEntry("finfet-sram-defects-dft", (rel, qua), "III.E", aca,
                  "repro.memory", 4),
        ToolEntry("laser-fault-injection", (sec,), "III.F", aca,
                  "repro.security.laser", 2),
        ToolEntry("ai-hw-security", (sec,), "III.F", aca,
                  "repro.security.detector", 2),
        ToolEntry("timing-side-channels", (sec,), "III.F", aca,
                  "repro.security.timing", 3),
        ToolEntry("pufs", (sec, rel), "III.F", ind,
                  "repro.puf", 4),
        ToolEntry("multidimensional-verification", (rel, sec, qua), "IV.A",
                  aca, "repro.core.flow", 2),
        ToolEntry("autosoc-benchmark", (rel, sec, qua), "IV.B", ind,
                  "repro.autosoc", 4),
    ]
    for row in rows:
        reg.register(row)
    return reg
