"""Statistical utilities shared across the toolkit.

FIT conversions, binomial confidence intervals for fault-injection
campaigns, and the Leveugle-style sample sizing re-exported from
``repro.faults.sampling`` so downstream code has one import site.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import NormalDist

from ..faults.sampling import sample_size

# scipy is imported lazily inside the few functions that need it: this
# module sits on the campaign engine's hot import path (every spawned
# process-pool worker re-imports it), and scipy.stats alone costs more
# than the rest of the package combined.
_NORMAL = NormalDist()

HOURS_PER_BILLION = 1e9


def fit_from_rate(failures: float, device_hours: float) -> float:
    """FIT = failures per 10^9 device-hours."""
    if device_hours <= 0:
        raise ValueError("device_hours must be positive")
    return failures / device_hours * HOURS_PER_BILLION


def fit_to_mtbf_hours(fit: float) -> float:
    """Mean time between failures (hours) for a given FIT rate."""
    if fit <= 0:
        return math.inf
    return HOURS_PER_BILLION / fit


def scale_fit_per_mbit(fit_per_mbit: float, bits: int) -> float:
    """Scale a per-Mbit raw FIT figure to an actual bit count."""
    return fit_per_mbit * bits / 1e6


@dataclass(frozen=True)
class Interval:
    """A two-sided confidence interval."""

    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> Interval:
    """Wilson score interval for a binomial proportion.

    The standard interval for fault-injection campaign results: behaves
    sanely at 0 and 100 % observed rates, unlike the normal approximation.
    """
    if trials <= 0:
        return Interval(0.0, 1.0, confidence)
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    z = _NORMAL.inv_cdf(0.5 + confidence / 2)
    phat = successes / trials
    denom = 1 + z * z / trials
    centre = (phat + z * z / (2 * trials)) / denom
    margin = z * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials)) / denom
    low = 0.0 if successes == 0 else max(0.0, float(centre - margin))
    high = 1.0 if successes == trials else min(1.0, float(centre + margin))
    return Interval(low, high, confidence)


def clopper_pearson_interval(successes: int, trials: int,
                             confidence: float = 0.95) -> Interval:
    """Exact (conservative) binomial interval via the Beta distribution."""
    if trials <= 0:
        return Interval(0.0, 1.0, confidence)
    from scipy import stats as _scipy_stats

    alpha = 1 - confidence
    low = 0.0 if successes == 0 else float(
        _scipy_stats.beta.ppf(alpha / 2, successes, trials - successes + 1))
    high = 1.0 if successes == trials else float(
        _scipy_stats.beta.ppf(1 - alpha / 2, successes + 1, trials - successes))
    return Interval(low, high, confidence)


def welch_t_test(sample_a, sample_b) -> tuple[float, float]:
    """Welch's t-test; returns (t statistic, two-sided p value).

    The work-horse of both the timing side-channel audit (fixed-vs-random
    leakage detection) and TVLA-style power analysis.
    """
    from scipy import stats as _scipy_stats

    t_stat, p_value = _scipy_stats.ttest_ind(sample_a, sample_b, equal_var=False)
    return float(t_stat), float(p_value)


def required_injections(population: int, margin: float = 0.01,
                        confidence: float = 0.95, p_estimate: float = 0.5) -> int:
    """Alias of the Leveugle sample-size bound (single import site)."""
    return sample_size(population, margin, confidence, p_estimate)


def speedup(reference: float, improved: float) -> float:
    """reference/improved with guard against zero."""
    if improved <= 0:
        return math.inf
    return reference / improved
