"""Plain-text reporting: ASCII tables and simple bar charts.

Every benchmark harness prints its paper-figure/table reproduction
through these helpers, so the output format is uniform across the 19
experiments.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
    floatfmt: str = ".3f",
) -> str:
    """Render an ASCII table with auto-sized columns."""
    str_rows = []
    for row in rows:
        str_rows.append([
            (f"{cell:{floatfmt}}" if isinstance(cell, float) else str(cell))
            for cell in row
        ])
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    out = []
    if title:
        out.append(title)
    out.append(sep)
    out.append("| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |")
    out.append(sep)
    for row in str_rows:
        out.append("| " + " | ".join(c.ljust(w) for c, w in zip(row, widths)) + " |")
    out.append(sep)
    return "\n".join(out)


def format_bars(
    labels_values: Sequence[tuple[str, float]],
    width: int = 40,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Render a horizontal ASCII bar chart (the Fig. 1 bubble substitute)."""
    if not labels_values:
        return title or ""
    peak = max(v for _, v in labels_values) or 1.0
    label_w = max(len(lbl) for lbl, _ in labels_values)
    out = [title] if title else []
    for label, value in labels_values:
        bar = "#" * max(0, round(width * value / peak))
        out.append(f"{label.ljust(label_w)} | {bar} {value:g}{unit}")
    return "\n".join(out)


def format_kv(pairs: Sequence[tuple[str, object]], title: str | None = None) -> str:
    """Aligned key/value block for summary sections."""
    if not pairs:
        return title or ""
    key_w = max(len(k) for k, _ in pairs)
    out = [title] if title else []
    for key, value in pairs:
        out.append(f"{key.ljust(key_w)} : {value}")
    return "\n".join(out)
