"""RIIF-style reliability information interchange (paper IV.A).

"The project uses and significantly extends the Reliability Information
Interchange Format (RIIF) to support the new design paradigms" —
extra-functional data (technology fault rates, environment-induced event
rates, derating factors) "must be generated, consumed and exchanged
transparently and safely" between tools.

The format here is a RIIF-flavoured text form: component models with
typed parameters and failure modes carrying FIT rates, plus hierarchy
(a system instantiates component models with multipliers).  Parse and
emit round-trip exactly; ``to_fit_budget`` bridges into the soft-error
budget machinery so an exchanged model is immediately analyzable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from ..soft_error.fit import FitBudget


@dataclass
class FailureModeSpec:
    """One failure mode of a component model."""

    name: str
    fit: float
    detectable: bool = False


@dataclass
class ComponentModel:
    """A RIIF component: parameters + failure modes."""

    name: str
    parameters: dict[str, float] = field(default_factory=dict)
    modes: list[FailureModeSpec] = field(default_factory=list)

    @property
    def total_fit(self) -> float:
        return sum(m.fit for m in self.modes)


@dataclass
class SystemModel:
    """A system instantiating component models with counts."""

    name: str
    instances: list[tuple[str, str, int]] = field(default_factory=list)
    # (instance name, component model name, count)


@dataclass
class RiifDocument:
    """A parsed RIIF-style document."""

    components: dict[str, ComponentModel] = field(default_factory=dict)
    systems: dict[str, SystemModel] = field(default_factory=dict)

    def system_fit(self, system_name: str) -> float:
        system = self.systems[system_name]
        total = 0.0
        for _inst, model_name, count in system.instances:
            total += self.components[model_name].total_fit * count
        return total

    def to_fit_budget(self, system_name: str, asil: str = "ASIL-D") -> "FitBudget":
        """Bridge into the ISO 26262 budget machinery (experiment E19)."""
        # imported here to keep repro.core import-safe (fit.py uses core.stats)
        from ..soft_error.fit import ComponentSER, FitBudget

        budget = FitBudget(asil)
        system = self.systems[system_name]
        for inst, model_name, count in system.instances:
            model = self.components[model_name]
            bits = int(model.parameters.get("bits", 1))
            budget.add(ComponentSER(
                name=inst,
                bits=bits * count,
                raw_fit_per_mbit=model.total_fit / max(bits, 1) * 1e6,
                functional_derating=model.parameters.get("derating", 1.0),
                protected=model.parameters.get("protected", 0.0) > 0,
            ))
        return budget


def emit_riif(doc: RiifDocument) -> str:
    """Serialize a document to the RIIF-style text form."""
    lines: list[str] = []
    for comp in doc.components.values():
        lines.append(f"component {comp.name} {{")
        for key, value in comp.parameters.items():
            lines.append(f"  parameter {key} = {value:g};")
        for mode in comp.modes:
            flag = " detectable" if mode.detectable else ""
            lines.append(f"  failure_mode {mode.name} fit={mode.fit:g}{flag};")
        lines.append("}")
    for system in doc.systems.values():
        lines.append(f"system {system.name} {{")
        for inst, model, count in system.instances:
            lines.append(f"  instance {inst} : {model} * {count};")
        lines.append("}")
    return "\n".join(lines) + "\n"


class RiifParseError(ValueError):
    """Raised on malformed RIIF-style input."""


_COMPONENT = re.compile(r"component\s+(\w+)\s*\{")
_SYSTEM = re.compile(r"system\s+(\w+)\s*\{")
_PARAM = re.compile(r"parameter\s+(\w+)\s*=\s*([-\d.eE+]+)\s*;")
_MODE = re.compile(r"failure_mode\s+(\w+)\s+fit=([-\d.eE+]+)(\s+detectable)?\s*;")
_INSTANCE = re.compile(r"instance\s+(\w+)\s*:\s*(\w+)\s*\*\s*(\d+)\s*;")


def parse_riif(text: str) -> RiifDocument:
    """Parse the RIIF-style text form."""
    doc = RiifDocument()
    current: ComponentModel | SystemModel | None = None
    for raw in text.splitlines():
        line = raw.split("//")[0].strip()
        if not line:
            continue
        m = _COMPONENT.match(line)
        if m:
            current = ComponentModel(m.group(1))
            doc.components[current.name] = current
            continue
        m = _SYSTEM.match(line)
        if m:
            current = SystemModel(m.group(1))
            doc.systems[current.name] = current
            continue
        if line == "}":
            current = None
            continue
        m = _PARAM.match(line)
        if m and isinstance(current, ComponentModel):
            current.parameters[m.group(1)] = float(m.group(2))
            continue
        m = _MODE.match(line)
        if m and isinstance(current, ComponentModel):
            current.modes.append(FailureModeSpec(
                m.group(1), float(m.group(2)), bool(m.group(3))))
            continue
        m = _INSTANCE.match(line)
        if m and isinstance(current, SystemModel):
            current.instances.append((m.group(1), m.group(2), int(m.group(3))))
            continue
        raise RiifParseError(f"unsupported RIIF line {line!r}")
    # referenced models must exist
    for system in doc.systems.values():
        for _inst, model, _count in system.instances:
            if model not in doc.components:
                raise RiifParseError(
                    f"system {system.name!r} references unknown model {model!r}")
    return doc
