"""Holistic EDA flow orchestration — the machinery behind Fig. 2.

Fig. 2 shows the RESCUE approach: one design descends through quality,
reliability and security analyses that *share artifacts* instead of
running as isolated tools.  :class:`Flow` is a small dependency-driven
stage executor: stages declare the artifacts they consume and produce,
the flow topologically orders them (stdlib graphlib DAG), executes, and records
a run report.  The F2 bench builds the full cross-domain pipeline on one
design — ATPG feeding safety classification feeding the FIT budget,
with the security audit consuming the same netlist.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from graphlib import CycleError, TopologicalSorter
from typing import Callable


class FlowError(RuntimeError):
    """Raised on mis-wired flows (missing artifacts, cycles)."""


@dataclass
class Stage:
    """One flow stage.

    ``run`` receives a dict of consumed artifacts and returns a dict of
    produced artifacts (keys must match the declarations).
    """

    name: str
    consumes: tuple[str, ...]
    produces: tuple[str, ...]
    run: Callable[[dict], dict]
    aspect: str = "quality"


@dataclass
class StageReport:
    name: str
    aspect: str
    seconds: float
    produced: tuple[str, ...]


@dataclass
class FlowReport:
    """Execution record of one flow run."""

    stages: list[StageReport] = field(default_factory=list)
    artifacts: dict[str, object] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(s.seconds for s in self.stages)

    def rows(self) -> list[tuple]:
        return [(s.name, s.aspect, round(s.seconds, 4), ", ".join(s.produced))
                for s in self.stages]


class Flow:
    """A dependency-ordered analysis pipeline."""

    def __init__(self, name: str = "flow") -> None:
        self.name = name
        self.stages: dict[str, Stage] = {}

    def add_stage(self, stage: Stage) -> "Flow":
        if stage.name in self.stages:
            raise FlowError(f"duplicate stage {stage.name!r}")
        self.stages[stage.name] = stage
        return self

    def _order(self) -> list[Stage]:
        producers: dict[str, str] = {}
        for stage in self.stages.values():
            for artifact in stage.produces:
                if artifact in producers:
                    raise FlowError(
                        f"artifact {artifact!r} produced by both "
                        f"{producers[artifact]!r} and {stage.name!r}")
                producers[artifact] = stage.name
        deps: dict[str, set[str]] = {name: set() for name in self.stages}
        for stage in self.stages.values():
            for artifact in stage.consumes:
                if artifact in producers:
                    deps[stage.name].add(producers[artifact])
        try:
            order = list(TopologicalSorter(deps).static_order())
        except CycleError:
            raise FlowError("flow graph has a cycle") from None
        return [self.stages[name] for name in order]

    def run(self, initial: dict[str, object] | None = None) -> FlowReport:
        """Execute all stages in dependency order."""
        report = FlowReport(artifacts=dict(initial or {}))
        for stage in self._order():
            missing = [a for a in stage.consumes if a not in report.artifacts]
            if missing:
                raise FlowError(
                    f"stage {stage.name!r} missing artifacts {missing}")
            inputs = {a: report.artifacts[a] for a in stage.consumes}
            started = time.perf_counter()
            outputs = stage.run(inputs)
            elapsed = time.perf_counter() - started
            for artifact in stage.produces:
                if artifact not in outputs:
                    raise FlowError(
                        f"stage {stage.name!r} did not produce {artifact!r}")
                report.artifacts[artifact] = outputs[artifact]
            report.stages.append(
                StageReport(stage.name, stage.aspect, elapsed, stage.produces))
        return report
