"""Fault-campaign result database (paper IV.A).

"RESCUE aims at generating and providing to the community large
databases with the results of fault simulation campaigns and reliability
analysis of complex circuits."  This module is that database: campaign
records persist to SQLite (stdlib), are queryable by circuit/fault
model/outcome, and aggregate into the cross-campaign statistics that
downstream cross-layer techniques consume.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    circuit TEXT NOT NULL,
    fault_model TEXT NOT NULL,
    workload TEXT NOT NULL,
    params TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS injections (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    location TEXT NOT NULL,
    cycle INTEGER NOT NULL DEFAULT 0,
    outcome TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_inj_campaign ON injections(campaign_id);
CREATE INDEX IF NOT EXISTS idx_inj_outcome ON injections(outcome);
"""


@dataclass(frozen=True)
class CampaignSummary:
    """Aggregated view of one stored campaign."""

    campaign_id: int
    name: str
    circuit: str
    fault_model: str
    total: int
    outcomes: dict[str, int]

    def rate(self, outcome: str) -> float:
        return self.outcomes.get(outcome, 0) / self.total if self.total else 0.0


class CampaignDb:
    """SQLite-backed campaign store (':memory:' by default)."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        # check_same_thread=False: the engine only ever writes from its
        # accounting thread, but that may not be the thread that built
        # this object (e.g. a campaign dispatched onto an outer pool).
        self.conn = sqlite3.connect(str(path), check_same_thread=False)
        self.conn.executescript(_SCHEMA)
        self._tx_depth = 0

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "CampaignDb":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def create_campaign(self, name: str, circuit: str, fault_model: str,
                        workload: str, params: dict | None = None) -> int:
        cur = self.conn.execute(
            "INSERT INTO campaigns (name, circuit, fault_model, workload, params)"
            " VALUES (?, ?, ?, ?, ?)",
            (name, circuit, fault_model, workload, json.dumps(params or {})))
        self._maybe_commit()
        return int(cur.lastrowid)

    @contextmanager
    def transaction(self) -> Iterator["CampaignDb"]:
        """Batch several record/record_many calls into one commit.

        Inside the block, per-call commits are suppressed; the whole batch
        commits on clean exit and rolls back on exception.  Nested blocks
        join the outermost transaction.
        """
        self._tx_depth += 1
        try:
            yield self
        except BaseException:
            self._tx_depth -= 1
            if self._tx_depth == 0:
                self.conn.rollback()
            raise
        else:
            self._tx_depth -= 1
            if self._tx_depth == 0:
                self.conn.commit()

    def _maybe_commit(self) -> None:
        if self._tx_depth == 0:
            self.conn.commit()

    def record(self, campaign_id: int, location: str, cycle: int,
               outcome: str) -> None:
        """Insert one injection row (durable: commits unless in a
        :meth:`transaction` block — single rows used to be silently lost
        when the connection closed before an unrelated commit)."""
        self.conn.execute(
            "INSERT INTO injections (campaign_id, location, cycle, outcome)"
            " VALUES (?, ?, ?, ?)", (campaign_id, location, cycle, outcome))
        self._maybe_commit()

    def record_many(self, campaign_id: int,
                    rows: list[tuple[str, int, str]]) -> None:
        self.conn.executemany(
            "INSERT INTO injections (campaign_id, location, cycle, outcome)"
            " VALUES (?, ?, ?, ?)",
            [(campaign_id, loc, cyc, out) for loc, cyc, out in rows])
        self._maybe_commit()

    # ------------------------------------------------------------------
    def summary(self, campaign_id: int) -> CampaignSummary:
        row = self.conn.execute(
            "SELECT name, circuit, fault_model FROM campaigns WHERE id=?",
            (campaign_id,)).fetchone()
        if row is None:
            raise KeyError(f"no campaign {campaign_id}")
        outcomes: dict[str, int] = {}
        for outcome, count in self.conn.execute(
                "SELECT outcome, COUNT(*) FROM injections WHERE campaign_id=?"
                " GROUP BY outcome", (campaign_id,)):
            outcomes[outcome] = count
        total = sum(outcomes.values())
        return CampaignSummary(campaign_id, row[0], row[1], row[2], total,
                               outcomes)

    def campaigns_for(self, circuit: str) -> list[int]:
        return [r[0] for r in self.conn.execute(
            "SELECT id FROM campaigns WHERE circuit=? ORDER BY id", (circuit,))]

    def failure_rate_by_location(self, campaign_id: int,
                                 failure_outcome: str = "failure") -> dict[str, float]:
        """Per-location failure probability — AVF-style aggregation."""
        totals: dict[str, int] = {}
        fails: dict[str, int] = {}
        for location, outcome in self.conn.execute(
                "SELECT location, outcome FROM injections WHERE campaign_id=?",
                (campaign_id,)):
            totals[location] = totals.get(location, 0) + 1
            if outcome == failure_outcome:
                fails[location] = fails.get(location, 0) + 1
        return {loc: fails.get(loc, 0) / n for loc, n in totals.items()}

    def cross_campaign_outcomes(self) -> dict[str, int]:
        """Community-database view: outcome histogram over everything."""
        return {
            outcome: count
            for outcome, count in self.conn.execute(
                "SELECT outcome, COUNT(*) FROM injections GROUP BY outcome")
        }
