"""Fault-campaign result database (paper IV.A).

"RESCUE aims at generating and providing to the community large
databases with the results of fault simulation campaigns and reliability
analysis of complex circuits."  This module is that database: campaign
records persist to SQLite (stdlib), are queryable by circuit/fault
model/outcome, and aggregate into the cross-campaign statistics that
downstream cross-layer techniques consume.

The store is also the engine's **checkpoint log**: each executed chunk
of a campaign is recorded — injection rows plus a ``chunks`` row keyed
by ``(campaign_id, chunk_index)`` — inside one transaction, so a killed
campaign restarts from its last committed chunk
(:func:`repro.engine.core.run_campaign` with ``resume=``).  File-backed
connections run in WAL mode with a busy timeout, and chunk writes are
idempotent (``INSERT OR IGNORE`` on the chunk key): replaying a chunk
whose record already committed is a no-op, so a crash between commit
and checkpoint can never double-count on resume.

On top of the checkpoint log sit the **campaign-service tables**
(:mod:`repro.service`): ``service_jobs`` (the submit/poll/cancel
queue), ``leases`` (per-chunk work claims — ``(campaign_id,
chunk_index, worker_id, deadline)`` rows that any number of worker
processes/hosts contend for with atomic conditional UPDATEs), and
``service_workers`` (heartbeat + failure accounting per worker).  The
schema is shared-file multi-writer by design: every table is keyed so
writes are single-row and conditional, and WAL plus the busy timeout
serialize concurrent workers without lost updates.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id INTEGER PRIMARY KEY,
    name TEXT NOT NULL,
    circuit TEXT NOT NULL,
    fault_model TEXT NOT NULL,
    workload TEXT NOT NULL,
    params TEXT NOT NULL DEFAULT '{}'
);
CREATE TABLE IF NOT EXISTS injections (
    id INTEGER PRIMARY KEY,
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    location TEXT NOT NULL,
    cycle INTEGER NOT NULL DEFAULT 0,
    outcome TEXT NOT NULL,
    chunk_index INTEGER
);
CREATE TABLE IF NOT EXISTS chunks (
    campaign_id INTEGER NOT NULL REFERENCES campaigns(id),
    chunk_index INTEGER NOT NULL,
    seed INTEGER NOT NULL DEFAULT 0,
    n_points INTEGER NOT NULL DEFAULT 0,
    status TEXT NOT NULL DEFAULT 'done',
    attempts INTEGER NOT NULL DEFAULT 1,
    error TEXT,
    PRIMARY KEY (campaign_id, chunk_index)
);
CREATE TABLE IF NOT EXISTS leases (
    campaign_id INTEGER NOT NULL,
    chunk_index INTEGER NOT NULL,
    state TEXT NOT NULL DEFAULT 'pending',
    worker_id TEXT,
    deadline REAL,
    attempts INTEGER NOT NULL DEFAULT 0,
    takeovers INTEGER NOT NULL DEFAULT 0,
    error TEXT,
    PRIMARY KEY (campaign_id, chunk_index)
);
CREATE TABLE IF NOT EXISTS service_jobs (
    id INTEGER PRIMARY KEY,
    state TEXT NOT NULL DEFAULT 'pending',
    payload BLOB NOT NULL,
    campaign_id INTEGER,
    fingerprint TEXT,
    n_chunks INTEGER,
    converged_chunk INTEGER,
    submitted_at REAL,
    started_at REAL,
    finished_at REAL,
    error TEXT
);
CREATE TABLE IF NOT EXISTS service_workers (
    worker_id TEXT PRIMARY KEY,
    pid INTEGER,
    host TEXT,
    state TEXT NOT NULL DEFAULT 'alive',
    started_at REAL,
    last_heartbeat REAL,
    chunks_done INTEGER NOT NULL DEFAULT 0,
    failures INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_inj_campaign ON injections(campaign_id);
CREATE INDEX IF NOT EXISTS idx_inj_outcome ON injections(outcome);
CREATE INDEX IF NOT EXISTS idx_lease_state ON leases(campaign_id, state);
"""

#: How long a writer waits on a locked database before failing (ms).
BUSY_TIMEOUT_MS = 5000

_U64 = 1 << 64
_I64_MAX = (1 << 63) - 1


def _seed_to_db(seed: int) -> int:
    """Chunk seeds are unsigned 64-bit; SQLite INTEGER is signed 64-bit.
    Store the two's-complement image and invert on read."""
    return seed - _U64 if seed > _I64_MAX else seed


def _seed_from_db(stored: int) -> int:
    return stored + _U64 if stored < 0 else stored


@dataclass(frozen=True)
class CampaignSummary:
    """Aggregated view of one stored campaign."""

    campaign_id: int
    name: str
    circuit: str
    fault_model: str
    total: int
    outcomes: dict[str, int]

    def rate(self, outcome: str) -> float:
        return self.outcomes.get(outcome, 0) / self.total if self.total else 0.0


@dataclass(frozen=True)
class ChunkRecord:
    """One checkpointed chunk of a campaign.

    ``status`` is ``"done"`` (executed, injection rows committed in the
    same transaction) or ``"failed"`` (quarantined after exhausting its
    retries — no injection rows; resume re-executes it).
    """

    chunk_index: int
    seed: int
    n_points: int
    status: str
    attempts: int
    error: str | None


class CampaignDb:
    """SQLite-backed campaign store (':memory:' by default)."""

    def __init__(self, path: str | Path = ":memory:") -> None:
        # check_same_thread=False: the engine only ever writes from its
        # accounting thread, but that may not be the thread that built
        # this object (e.g. a campaign dispatched onto an outer pool).
        self.conn = sqlite3.connect(str(path), check_same_thread=False)
        # Crash consistency + concurrency: WAL keeps readers unblocked
        # and makes every committed transaction durable across a killed
        # process (in-memory databases report 'memory' and are
        # unaffected); the busy timeout retries instead of failing when
        # another campaign holds the write lock.
        self.conn.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        self.conn.execute("PRAGMA journal_mode=WAL")
        self.conn.execute("PRAGMA synchronous=NORMAL")
        self.conn.executescript(_SCHEMA)
        self._migrate()
        self._tx_depth = 0

    def _migrate(self) -> None:
        """Bring pre-checkpoint databases up to the current schema.

        Older stores lack ``injections.chunk_index`` (the ``chunks``
        table itself is covered by ``CREATE TABLE IF NOT EXISTS``); the
        chunk index on injections can only be built once the column
        exists, so it lives here rather than in ``_SCHEMA``.
        """
        cols = {row[1] for row in
                self.conn.execute("PRAGMA table_info(injections)")}
        if "chunk_index" not in cols:
            try:
                self.conn.execute(
                    "ALTER TABLE injections ADD COLUMN chunk_index INTEGER")
            except sqlite3.OperationalError as exc:
                # Service workers open the same file concurrently, so two
                # connections can both observe the missing column and race
                # the ALTER; the loser's "duplicate column" is benign.
                if "duplicate column" not in str(exc).lower():
                    raise
        self.conn.execute(
            "CREATE INDEX IF NOT EXISTS idx_inj_chunk"
            " ON injections(campaign_id, chunk_index)")
        self.conn.commit()

    def close(self) -> None:
        self.conn.close()

    def __enter__(self) -> "CampaignDb":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def create_campaign(self, name: str, circuit: str, fault_model: str,
                        workload: str, params: dict | None = None) -> int:
        cur = self.conn.execute(
            "INSERT INTO campaigns (name, circuit, fault_model, workload, params)"
            " VALUES (?, ?, ?, ?, ?)",
            (name, circuit, fault_model, workload, json.dumps(params or {})))
        self._maybe_commit()
        return int(cur.lastrowid)

    def campaign_params(self, campaign_id: int) -> dict:
        """The params dict a campaign was created with (resume reads the
        config fingerprint out of it)."""
        row = self.conn.execute(
            "SELECT params FROM campaigns WHERE id=?",
            (campaign_id,)).fetchone()
        if row is None:
            raise KeyError(f"no campaign {campaign_id}")
        return json.loads(row[0])

    @contextmanager
    def transaction(self) -> Iterator["CampaignDb"]:
        """Batch several record/record_many calls into one commit.

        Inside the block, per-call commits are suppressed; the whole batch
        commits on clean exit and rolls back on exception.  Nested blocks
        join the outermost transaction.
        """
        self._tx_depth += 1
        try:
            yield self
        except BaseException:
            self._tx_depth -= 1
            if self._tx_depth == 0:
                self.conn.rollback()
            raise
        else:
            self._tx_depth -= 1
            if self._tx_depth == 0:
                self.conn.commit()

    def _maybe_commit(self) -> None:
        if self._tx_depth == 0:
            self.conn.commit()

    def record(self, campaign_id: int, location: str, cycle: int,
               outcome: str) -> None:
        """Insert one injection row (durable: commits unless in a
        :meth:`transaction` block — single rows used to be silently lost
        when the connection closed before an unrelated commit)."""
        self.conn.execute(
            "INSERT INTO injections (campaign_id, location, cycle, outcome)"
            " VALUES (?, ?, ?, ?)", (campaign_id, location, cycle, outcome))
        self._maybe_commit()

    def record_many(self, campaign_id: int,
                    rows: list[tuple[str, int, str]],
                    chunk_index: int | None = None) -> None:
        self.conn.executemany(
            "INSERT INTO injections (campaign_id, location, cycle, outcome,"
            " chunk_index) VALUES (?, ?, ?, ?, ?)",
            [(campaign_id, loc, cyc, out, chunk_index)
             for loc, cyc, out in rows])
        self._maybe_commit()

    # ------------------------------------------------------------------
    # chunk checkpointing: the engine's crash-consistent progress log
    # ------------------------------------------------------------------
    def record_chunk(self, campaign_id: int, chunk_index: int,
                     rows: list[tuple[str, int, str]], seed: int = 0,
                     status: str = "done", attempts: int = 1,
                     error: str | None = None) -> bool:
        """Checkpoint one chunk: its injection rows plus a ``chunks``
        record, idempotently.

        ``INSERT OR IGNORE`` on the ``(campaign_id, chunk_index)`` key
        makes replays no-ops: if the chunk record already committed, the
        rows are *not* inserted again, so resuming past an
        already-checkpointed chunk can never double-count.  The one
        permitted overwrite is ``failed`` → ``done``: a quarantined
        chunk that a later resume re-executed successfully upgrades its
        record (a quarantine row carries no injections, so nothing is
        duplicated).  Call inside :meth:`transaction` to bundle several
        chunks into one crash-consistent commit.

        Returns True when the chunk was newly recorded (or upgraded).
        """
        cur = self.conn.execute(
            "INSERT OR IGNORE INTO chunks (campaign_id, chunk_index, seed,"
            " n_points, status, attempts, error) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (campaign_id, chunk_index, _seed_to_db(seed), len(rows), status,
             attempts, error))
        fresh = cur.rowcount > 0
        if not fresh:
            prev = self.conn.execute(
                "SELECT status FROM chunks WHERE campaign_id=? AND"
                " chunk_index=?", (campaign_id, chunk_index)).fetchone()[0]
            if prev == "failed" and status == "done":
                self.conn.execute(
                    "UPDATE chunks SET status='done', n_points=?, attempts=?,"
                    " error=NULL WHERE campaign_id=? AND chunk_index=?",
                    (len(rows), attempts, campaign_id, chunk_index))
                self.conn.execute(
                    "DELETE FROM injections WHERE campaign_id=? AND"
                    " chunk_index=?", (campaign_id, chunk_index))
                fresh = True
        if fresh and status == "done" and rows:
            self.record_many(campaign_id, rows, chunk_index=chunk_index)
        self._maybe_commit()
        return fresh

    def chunk_records(self, campaign_id: int) -> dict[int, ChunkRecord]:
        """Every checkpointed chunk of a campaign, keyed by index."""
        return {
            index: ChunkRecord(index, _seed_from_db(seed), n_points, status,
                               attempts, error)
            for index, seed, n_points, status, attempts, error
            in self.conn.execute(
                "SELECT chunk_index, seed, n_points, status, attempts, error"
                " FROM chunks WHERE campaign_id=? ORDER BY chunk_index",
                (campaign_id,))
        }

    def chunk_rows(self, campaign_id: int
                   ) -> dict[int, list[tuple[str, int, str]]]:
        """Checkpointed injection rows grouped by chunk, in insert order
        (= execution order within each chunk)."""
        grouped: dict[int, list[tuple[str, int, str]]] = {}
        for index, loc, cyc, out in self.conn.execute(
                "SELECT chunk_index, location, cycle, outcome FROM injections"
                " WHERE campaign_id=? AND chunk_index IS NOT NULL ORDER BY id",
                (campaign_id,)):
            grouped.setdefault(index, []).append((loc, cyc, out))
        return grouped

    # ------------------------------------------------------------------
    def summary(self, campaign_id: int) -> CampaignSummary:
        row = self.conn.execute(
            "SELECT name, circuit, fault_model FROM campaigns WHERE id=?",
            (campaign_id,)).fetchone()
        if row is None:
            raise KeyError(f"no campaign {campaign_id}")
        outcomes: dict[str, int] = {}
        for outcome, count in self.conn.execute(
                "SELECT outcome, COUNT(*) FROM injections WHERE campaign_id=?"
                " GROUP BY outcome", (campaign_id,)):
            outcomes[outcome] = count
        total = sum(outcomes.values())
        return CampaignSummary(campaign_id, row[0], row[1], row[2], total,
                               outcomes)

    def campaigns_for(self, circuit: str) -> list[int]:
        return [r[0] for r in self.conn.execute(
            "SELECT id FROM campaigns WHERE circuit=? ORDER BY id", (circuit,))]

    def failure_rate_by_location(self, campaign_id: int,
                                 failure_outcome: str = "failure") -> dict[str, float]:
        """Per-location failure probability — AVF-style aggregation."""
        totals: dict[str, int] = {}
        fails: dict[str, int] = {}
        for location, outcome in self.conn.execute(
                "SELECT location, outcome FROM injections WHERE campaign_id=?",
                (campaign_id,)):
            totals[location] = totals.get(location, 0) + 1
            if outcome == failure_outcome:
                fails[location] = fails.get(location, 0) + 1
        return {loc: fails.get(loc, 0) / n for loc, n in totals.items()}

    def cross_campaign_outcomes(self) -> dict[str, int]:
        """Community-database view: outcome histogram over everything."""
        return {
            outcome: count
            for outcome, count in self.conn.execute(
                "SELECT outcome, COUNT(*) FROM injections GROUP BY outcome")
        }
