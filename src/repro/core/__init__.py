"""Holistic EDA framework: flow, registry, campaigns, RIIF, stats, reports."""

from .campaign import CampaignDb, CampaignSummary
from .flow import Flow, FlowError, FlowReport, Stage, StageReport
from .registry import Aspect, Lead, Registry, ToolEntry, default_registry
from .report import format_bars, format_kv, format_table
from .riif import (
    ComponentModel,
    FailureModeSpec,
    RiifDocument,
    RiifParseError,
    SystemModel,
    emit_riif,
    parse_riif,
)
from .stats import (
    Interval,
    clopper_pearson_interval,
    fit_from_rate,
    fit_to_mtbf_hours,
    required_injections,
    scale_fit_per_mbit,
    speedup,
    welch_t_test,
    wilson_interval,
)

__all__ = [
    "Aspect",
    "CampaignDb",
    "CampaignSummary",
    "ComponentModel",
    "FailureModeSpec",
    "Flow",
    "FlowError",
    "FlowReport",
    "Interval",
    "Lead",
    "Registry",
    "RiifDocument",
    "RiifParseError",
    "Stage",
    "StageReport",
    "SystemModel",
    "ToolEntry",
    "clopper_pearson_interval",
    "default_registry",
    "emit_riif",
    "fit_from_rate",
    "fit_to_mtbf_hours",
    "format_bars",
    "format_kv",
    "format_table",
    "parse_riif",
    "required_injections",
    "scale_fit_per_mbit",
    "speedup",
    "welch_t_test",
    "wilson_interval",
]
