"""Event-driven timing simulation with inertial delays.

Used for single-event-transient (SET) studies: a radiation-induced pulse
is injected on a net, propagates through gates with real delays, may be
logically masked by off-path non-controlling values, may be swallowed by
gate inertia (electrical masking at the filtering level), and is only
harmful if it still overlaps a flop's latching window (latch-window
masking).  The three-masking chain is the standard soft-error model the
RESCUE SET analyses build on.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Mapping

from ..circuit.netlist import Circuit
from .logic import simulate


@dataclass
class Waveform:
    """Value-change history of one net: list of (time, value), sorted."""

    initial: int
    changes: list[tuple[float, int]] = field(default_factory=list)

    def value_at(self, t: float) -> int:
        val = self.initial
        for time, new in self.changes:
            if time > t:
                break
            val = new
        return val

    def pulse_widths(self) -> list[float]:
        """Durations of excursions away from the initial value."""
        widths = []
        val = self.initial
        start: float | None = None
        for time, new in self.changes:
            if val == self.initial and new != self.initial:
                start = time
            elif val != self.initial and new == self.initial and start is not None:
                widths.append(time - start)
                start = None
            val = new
        return widths


@dataclass
class SETOutcome:
    """Result of one SET injection."""

    injected_net: str
    width: float
    reached_outputs: list[str]
    captured_flops: list[str]
    glitched_outputs: list[str]
    filtered: bool

    @property
    def is_masked(self) -> bool:
        return not self.captured_flops and not self.glitched_outputs


class EventSim:
    """Small event-driven gate-level simulator.

    ``delays`` maps gate-output nets to propagation delay (a float default
    applies elsewhere).  ``inertial`` is the minimum pulse width a gate
    passes; narrower output pulses are cancelled (classic inertial-delay
    glitch suppression).
    """

    def __init__(
        self,
        circuit: Circuit,
        delays: Mapping[str, float] | float = 1.0,
        inertial: float | None = None,
    ) -> None:
        self.circuit = circuit
        if isinstance(delays, (int, float)):
            self.delays = {out: float(delays) for out in circuit.gates}
        else:
            self.delays = {out: float(delays.get(out, 1.0)) for out in circuit.gates}
        self.inertial = inertial if inertial is not None else 0.0

    # ------------------------------------------------------------------
    def run(
        self,
        pi_values: Mapping[str, int],
        injections: list[tuple[str, float, float]],
        horizon: float,
        state: Mapping[str, int] | None = None,
    ) -> dict[str, Waveform]:
        """Simulate from a steady state with pulse ``injections``.

        Each injection is ``(net, start_time, width)``: the net flips away
        from its steady value at ``start_time`` and back at
        ``start_time + width``.  Returns a waveform per net up to
        ``horizon``.
        """
        steady = simulate(self.circuit, pi_values, 1, state)
        waves = {net: Waveform(steady.get(net, 0)) for net in self.circuit.nets}
        current = {net: steady.get(net, 0) for net in self.circuit.nets}

        counter = 0
        queue: list[tuple[float, int, str, int, bool]] = []
        for net, t0, width in injections:
            v = current[net]
            heapq.heappush(queue, (t0, counter, net, 1 - v, True))
            counter += 1
            heapq.heappush(queue, (t0 + width, counter, net, v, True))
            counter += 1

        fmap = self.circuit.fanout_map()
        # last scheduled change per net, for inertial cancellation
        last_sched: dict[str, tuple[float, int]] = {}
        cancelled: set[int] = set()

        while queue:
            time, eid, net, value, forced = heapq.heappop(queue)
            if time > horizon:
                break
            if eid in cancelled:
                continue
            if current[net] == value:
                continue
            current[net] = value
            waves[net].changes.append((time, value))
            for sink in fmap.get(net, ()):
                if sink in self.circuit.flops:
                    continue  # flops sample explicitly at capture time
                gate = self.circuit.gates[sink]
                new_out = _eval_scalar(gate, current)
                delay = self.delays.get(sink, 1.0)
                event_time = time + delay
                prev = last_sched.get(sink)
                if prev is not None:
                    prev_time, prev_id = prev
                    if (event_time - prev_time) < self.inertial and prev_id not in cancelled:
                        # pulse narrower than gate inertia: swallow both edges
                        cancelled.add(prev_id)
                        last_sched.pop(sink, None)
                        continue
                heapq.heappush(queue, (event_time, counter, sink, new_out, False))
                last_sched[sink] = (event_time, counter)
                counter += 1
        return waves

    # ------------------------------------------------------------------
    def inject_set(
        self,
        pi_values: Mapping[str, int],
        net: str,
        width: float,
        capture_time: float | None = None,
        setup: float = 0.5,
        hold: float = 0.5,
        state: Mapping[str, int] | None = None,
    ) -> SETOutcome:
        """Inject one SET and classify the outcome.

        The pulse starts at t=0.  ``capture_time`` is the next active clock
        edge (defaults to circuit depth + 2 delay units); a flop captures a
        wrong value iff its D net deviates from steady inside the window
        ``[capture - setup, capture + hold]``.  A PO 'glitches' if its
        waveform deviates at any time; it is *wrong at capture* if it
        deviates exactly at the capture instant.
        """
        if capture_time is None:
            capture_time = float(len(self.circuit.topo_order()) + 2)
        horizon = capture_time + hold + 1.0
        waves = self.run(pi_values, [(net, 0.0, width)], horizon, state)

        glitched, reached = [], []
        for po in self.circuit.outputs:
            wave = waves[po]
            if wave.changes:
                reached.append(po)
            if wave.value_at(capture_time) != wave.initial:
                glitched.append(po)
        captured = []
        for q, flop in self.circuit.flops.items():
            wave = waves[flop.d]
            if not wave.changes:
                continue
            in_window = any(
                capture_time - setup <= t <= capture_time + hold for t, _ in wave.changes
            ) or wave.value_at(capture_time) != wave.initial
            if in_window:
                captured.append(q)
        filtered = not any(waves[n].changes for n in self.circuit.nets if n != net)
        return SETOutcome(net, width, reached, captured, glitched, filtered)


def _eval_scalar(gate, current: Mapping[str, int]) -> int:
    """Scalar (1-bit) gate evaluation on the current value map."""
    from .logic import eval_gate

    return eval_gate(gate, current, 1)
