"""Stuck-at fault simulation.

Parallel-pattern single-fault propagation (PPSFP): the good machine is
simulated once over all packed patterns; each fault then re-simulates
only the gates in the fault site's fan-out cone with the faulty line
forced.  Detection is a per-pattern bitmask, so one pass yields which
pattern detects which fault — the input both to coverage accounting and
to test compaction.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..circuit.netlist import Circuit
from ..faults.models import Line, StuckAtFault
from . import compiled as _compiled
from .logic import GATE_EVAL, eval_gate, mask_of, simulate


@dataclass
class FaultSimResult:
    """Outcome of a fault-simulation run."""

    n_patterns: int
    detected: dict[StuckAtFault, int] = field(default_factory=dict)
    undetected: list[StuckAtFault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0

    def detecting_patterns(self, fault: StuckAtFault) -> list[int]:
        """Indices of patterns that detect ``fault``."""
        bits = self.detected.get(fault, 0)
        return [i for i in range(self.n_patterns) if (bits >> i) & 1]

    def essential_patterns(self) -> set[int]:
        """Patterns that are the sole detector of at least one fault."""
        essential = set()
        for mask in self.detected.values():
            if mask and mask & (mask - 1) == 0:
                essential.add(mask.bit_length() - 1)
        return essential


def _cone_gates(circuit: Circuit, start_nets: Sequence[str]) -> list:
    """Gates in the fan-out cone of ``start_nets``, in topological order.

    Memoized per fault site on the circuit (invalidated on mutation):
    campaigns re-simulate the same sites across pattern batches, cycles
    and workloads, so the BFS and the ordering are paid once per site
    instead of once per injection.  Cone membership is collected from the
    fan-out map and ordered by cached topological index — no full
    topo-order scan per fault.
    """
    key = tuple(start_nets)
    cached = circuit._cone_cache.get(key)
    if cached is not None:
        return cached
    fmap = circuit.fanout_map()
    reach: set[str] = set()
    work = deque(start_nets)
    while work:
        net = work.popleft()
        if net in reach:
            continue
        reach.add(net)
        for dst in fmap.get(net, ()):
            if dst in circuit.flops:
                continue  # combinational cone only
            work.append(dst)
    members: dict[str, object] = {}
    for net in reach:
        gate = circuit.gates.get(net)
        if gate is not None:
            members[net] = gate
        for dst in fmap.get(net, ()):
            consumer = circuit.gates.get(dst)
            if consumer is not None:
                members[dst] = consumer
    index = circuit.topo_index()
    cone = sorted(members.values(), key=lambda g: index[g.output])
    circuit._cone_cache[key] = cone
    return cone


def _observe_nets(circuit: Circuit, full_scan: bool) -> tuple[str, ...]:
    # a tuple: the compiled detection cache keys on it, and tuple(t) on
    # an existing tuple is identity instead of an O(n) copy
    nets = list(circuit.outputs)
    if full_scan:
        nets.extend(flop.d for flop in circuit.flops.values())
    return tuple(nets)


def faulty_values(
    circuit: Circuit,
    fault: StuckAtFault,
    good: Mapping[str, int],
    mask: int,
) -> dict[str, int]:
    """Packed net values of the faulty machine (only cone nets differ).

    Runs the fault site's compiled cone sub-program once the site is hot
    (see :mod:`repro.sim.compiled`); the interpreter in
    :func:`_faulty_values_interp` is the reference path and always
    handles branch faults into flop D pins, which have no combinational
    cone.
    """
    program = _compiled.cone_program(circuit, fault.line)
    if program is not None:
        return program.apply(good, mask if fault.value else 0, mask)
    return _faulty_values_interp(circuit, fault, good, mask)


def _faulty_values_interp(
    circuit: Circuit,
    fault: StuckAtFault,
    good: Mapping[str, int],
    mask: int,
) -> dict[str, int]:
    """Reference interpreter for :func:`faulty_values`."""
    forced = mask if fault.value else 0
    line = fault.line
    values = dict(good)
    evaluators = GATE_EVAL
    if line.is_stem:
        values[line.net] = forced
        cone = _cone_gates(circuit, [line.net])
        for gate in cone:
            if gate.output == line.net:
                continue  # the stem stays forced
            values[gate.output] = evaluators[gate.gtype](gate, values, mask)
        values[line.net] = forced
        return values
    # branch fault: only the named sink sees the forced value
    sink = line.sink
    cone = _cone_gates(circuit, [sink]) if sink in circuit.gates else []
    if sink in circuit.gates:
        gate = circuit.gates[sink]
        shadow = dict(values)
        shadow[line.net] = forced
        values[sink] = eval_gate(gate, shadow, mask)
        for downstream in cone:
            if downstream.output == sink:
                continue
            values[downstream.output] = evaluators[downstream.gtype](
                downstream, values, mask)
    elif sink in circuit.flops:
        # a branch into a flop D: model as the D seeing the forced value;
        # combinationally nothing downstream this cycle
        values[f"__flopD__{sink}"] = forced
    return values


def detection_mask(
    circuit: Circuit,
    fault: StuckAtFault,
    good: Mapping[str, int],
    mask: int,
    observe: Sequence[str],
) -> int:
    """Bitmask of patterns under which ``fault`` is observable."""
    program = _compiled.det_program(circuit, fault.line, observe)
    if program is not None:
        # detection-fused fast path: the generated function evaluates
        # only the observable slice of the cone and returns the mask —
        # no faulty dict, no observation loop
        return program.program.fn(good, mask if fault.value else 0, mask)
    return _detection_mask_interp(circuit, fault, good, mask, observe)


def _detection_mask_interp(
    circuit: Circuit,
    fault: StuckAtFault,
    good: Mapping[str, int],
    mask: int,
    observe: Sequence[str],
) -> int:
    """Reference interpreter for :func:`detection_mask`."""
    bad = _faulty_values_interp(circuit, fault, good, mask)
    det = 0
    line = fault.line
    for net in observe:
        good_v = good.get(net, 0)
        if not line.is_stem and line.sink in circuit.flops and net == circuit.flops[line.sink].d:
            bad_v = bad.get(f"__flopD__{line.sink}", bad.get(net, 0))
        else:
            bad_v = bad.get(net, 0)
        det |= (good_v ^ bad_v) & mask
    return det


def fault_simulate(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    pi_values: Mapping[str, int],
    n_patterns: int,
    state: Mapping[str, int] | None = None,
    full_scan: bool = True,
) -> FaultSimResult:
    """PPSFP fault simulation of ``faults`` under packed patterns.

    With ``full_scan`` (default) flop D inputs count as observation
    points, modelling a scan design; otherwise only primary outputs do.
    """
    mask = mask_of(n_patterns)
    good = simulate(circuit, pi_values, n_patterns, state)
    observe = _observe_nets(circuit, full_scan)
    result = FaultSimResult(n_patterns)
    for fault in faults:
        det = detection_mask(circuit, fault, good, mask, observe)
        if det:
            result.detected[fault] = det
        else:
            result.undetected.append(fault)
    return result


def _batch_goods(
    circuit: Circuit,
    batches: Sequence[tuple[Mapping[str, int], int]],
    state: Mapping[str, int] | None,
) -> tuple[list[tuple[dict[str, int], int]], list[int], int]:
    """Good-machine values and global pattern offsets per batch."""
    goods: list[tuple[dict[str, int], int]] = []
    offsets: list[int] = []
    total = 0
    for pi_values, n in batches:
        goods.append((simulate(circuit, pi_values, n, state), mask_of(n)))
        offsets.append(total)
        total += n
    return goods, offsets, total


def _batched_detection(
    circuit: Circuit,
    fault: StuckAtFault,
    goods: Sequence[tuple[Mapping[str, int], int]],
    offsets: Sequence[int],
    observe: Sequence[str],
    drop_detected: bool,
) -> int:
    """Detection bits of one fault across batches, in global numbering.

    With ``drop_detected`` the fault stops being re-simulated after the
    first detecting batch — the classic fault-dropping acceleration.

    The compiled detection program is resolved once per fault for the
    whole sweep — the cache key hashes the observation list, which can
    be thousands of nets under full scan, so probing it per batch would
    rival the compiled call itself.  Without dropping the hit counter
    is bumped by the full batch count up front (every batch will
    evaluate the fault); with dropping a sweep counts once.  A fault
    still below the compile threshold runs the interpreter directly,
    with no further counting this sweep.
    """
    acc = 0
    program = _compiled.det_program(
        circuit, fault.line, observe,
        weight=1 if drop_detected else len(goods))
    if program is not None:
        fn = program.program.fn
        value = fault.value
        for (good, mask), offset in zip(goods, offsets):
            det = fn(good, mask if value else 0, mask)
            if det:
                acc |= det << offset
                if drop_detected:
                    break
        return acc
    for (good, mask), offset in zip(goods, offsets):
        det = _detection_mask_interp(circuit, fault, good, mask, observe)
        if det:
            acc |= det << offset
            if drop_detected:
                break
    return acc


def fault_simulate_batched(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    batches: Sequence[tuple[Mapping[str, int], int]],
    state: Mapping[str, int] | None = None,
    full_scan: bool = True,
    drop_detected: bool = True,
) -> FaultSimResult:
    """PPSFP over a sequence of pattern batches with fault dropping.

    ``batches`` is a list of ``(pi_values, n_patterns)`` pairs; detection
    bits are reported in the global pattern numbering (batch 0 first).
    The detected/undetected split (and hence coverage) is identical to
    simulating all patterns in one pass; only the detection masks of
    later batches are forgone for dropped faults.
    """
    goods, offsets, total = _batch_goods(circuit, batches, state)
    observe = _observe_nets(circuit, full_scan)
    result = FaultSimResult(total)
    for fault in faults:
        acc = _batched_detection(circuit, fault, goods, offsets, observe,
                                 drop_detected)
        if acc:
            result.detected[fault] = acc
        else:
            result.undetected.append(fault)
    return result


def sequential_fault_simulate(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    stimuli: Sequence[Mapping[str, int]],
) -> FaultSimResult:
    """Serial sequential fault simulation (one faulty machine at a time).

    A fault is detected when any primary output differs from the good
    machine in any cycle.  Used for non-scan designs (e.g. the s27-style
    cores and SBST evaluation).
    """
    good_trace = _seq_trace(circuit, None, stimuli)
    result = FaultSimResult(len(stimuli))
    for fault in faults:
        bad_trace = _seq_trace(circuit, fault, stimuli)
        det = 0
        for cyc, (g, b) in enumerate(zip(good_trace, bad_trace)):
            if g != b:
                det |= 1 << cyc
        if det:
            result.detected[fault] = det
        else:
            result.undetected.append(fault)
    return result


def _seq_trace(
    circuit: Circuit,
    fault: StuckAtFault | None,
    stimuli: Sequence[Mapping[str, int]],
) -> list[tuple[int, ...]]:
    mask = 1
    # the fault re-simulates once per cycle, so the cone program lookup
    # is hoisted out of the loop with the cycle count as its weight
    program = (_compiled.cone_program(circuit, fault.line,
                                      weight=len(stimuli))
               if fault is not None else None)
    forced = (mask if fault.value else 0) if fault is not None else 0
    state = {q: (1 if f.init else 0) for q, f in circuit.flops.items()}
    trace: list[tuple[int, ...]] = []
    for stim in stimuli:
        good = simulate(circuit, stim, 1, state)
        if fault is None:
            values = good
        elif program is not None:
            values = program.apply(good, forced, mask)
        else:  # gated off: stay interpreted (the hoist already counted)
            values = _faulty_values_interp(circuit, fault, good, mask)
        trace.append(tuple(values.get(po, 0) for po in circuit.outputs))
        next_state = {}
        for q, flop in circuit.flops.items():
            if (fault is not None and not fault.line.is_stem
                    and fault.line.sink == q):
                next_state[q] = values.get(f"__flopD__{q}", values[flop.d])
            else:
                next_state[q] = values[flop.d]
        state = next_state
    return trace


def fault_coverage(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    pi_values: Mapping[str, int],
    n_patterns: int,
    full_scan: bool = True,
) -> float:
    """Convenience wrapper returning just the coverage fraction."""
    return fault_simulate(circuit, faults, pi_values, n_patterns,
                          full_scan=full_scan).coverage
