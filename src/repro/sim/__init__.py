"""Simulation engines: bit-parallel logic, 3-valued, sequential, event, fault."""

from .event import EventSim, SETOutcome, Waveform
from .fault_sim import (
    FaultSimResult,
    detection_mask,
    fault_coverage,
    fault_simulate,
    fault_simulate_batched,
    faulty_values,
    sequential_fault_simulate,
)
from .logic import (
    X,
    eval_gate,
    eval_gate_3v,
    exhaustive_patterns,
    mask_of,
    pack_patterns,
    random_patterns,
    simulate,
    simulate_3v,
    unpack_patterns,
)
from .sequential import SequentialSim, output_trace

__all__ = [
    "EventSim",
    "FaultSimResult",
    "SETOutcome",
    "SequentialSim",
    "Waveform",
    "X",
    "detection_mask",
    "eval_gate",
    "eval_gate_3v",
    "exhaustive_patterns",
    "fault_coverage",
    "fault_simulate",
    "fault_simulate_batched",
    "faulty_values",
    "mask_of",
    "output_trace",
    "pack_patterns",
    "random_patterns",
    "sequential_fault_simulate",
    "simulate",
    "simulate_3v",
    "unpack_patterns",
]
