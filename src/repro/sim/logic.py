"""Bit-parallel and three-valued logic simulation.

The core trick: a net's value across ``n`` patterns is a single Python
int whose bit *i* is the net's value under pattern *i*.  Gate evaluation
is then one bitwise expression per gate regardless of pattern count,
which makes parallel-pattern fault simulation (PPSFP) essentially free.

Three-valued (0/1/X) simulation encodes each net as ``None`` (X) or an
``int`` and powers the ATPG's implication engine and the RSN tools.

Full-circuit evaluations run on the compiled simulation core
(:mod:`repro.sim.compiled`) by default: the circuit is translated once
into a generated straight-line function and cached.  The gate-by-gate
dispatch below remains the reference interpreter — byte-identical, and
selected by ``RESCUE_NO_COMPILE=1`` or ``compile=False``.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping, Sequence

from ..circuit.netlist import Circuit, Gate, GateType
from . import compiled as _compiled


def mask_of(n_patterns: int) -> int:
    """All-ones mask for ``n_patterns`` packed patterns."""
    return (1 << n_patterns) - 1


# Packed gate evaluation dispatches through a module-level table: one
# dict lookup replaces the GateType if/elif chain, and the 1–2 input
# shapes (the vast majority of library gates) index ``gate.inputs``
# directly instead of materializing an intermediate list.
def _eval_and(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    ins = gate.inputs
    if len(ins) == 2:
        return values[ins[0]] & values[ins[1]]
    acc = values[ins[0]]
    for name in ins[1:]:
        acc &= values[name]
    return acc


def _eval_nand(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    return ~_eval_and(gate, values, mask) & mask


def _eval_or(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    ins = gate.inputs
    if len(ins) == 2:
        return values[ins[0]] | values[ins[1]]
    acc = values[ins[0]]
    for name in ins[1:]:
        acc |= values[name]
    return acc


def _eval_nor(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    return ~_eval_or(gate, values, mask) & mask


def _eval_xor(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    ins = gate.inputs
    if len(ins) == 2:
        return values[ins[0]] ^ values[ins[1]]
    acc = values[ins[0]]
    for name in ins[1:]:
        acc ^= values[name]
    return acc


def _eval_xnor(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    return ~_eval_xor(gate, values, mask) & mask


def _eval_buf(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    return values[gate.inputs[0]]


def _eval_not(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    return ~values[gate.inputs[0]] & mask


def _eval_const0(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    return 0


def _eval_const1(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    return mask


GATE_EVAL = {
    GateType.AND: _eval_and,
    GateType.NAND: _eval_nand,
    GateType.OR: _eval_or,
    GateType.NOR: _eval_nor,
    GateType.XOR: _eval_xor,
    GateType.XNOR: _eval_xnor,
    GateType.BUF: _eval_buf,
    GateType.NOT: _eval_not,
    GateType.CONST0: _eval_const0,
    GateType.CONST1: _eval_const1,
}


def eval_gate(gate: Gate, values: Mapping[str, int], mask: int) -> int:
    """Evaluate one gate over packed values."""
    return GATE_EVAL[gate.gtype](gate, values, mask)


def simulate(
    circuit: Circuit,
    pi_values: Mapping[str, int],
    n_patterns: int,
    state: Mapping[str, int] | None = None,
    compile: bool | None = None,
) -> dict[str, int]:
    """One combinational evaluation over packed patterns.

    ``pi_values`` maps each primary input to a packed int; ``state`` maps
    flop Q nets to packed ints (defaults to each flop's init value
    replicated across patterns).  Returns packed values for every net.

    Runs on the circuit's compiled program unless ``compile=False`` (or
    ``RESCUE_NO_COMPILE=1``) selects the reference interpreter; both
    paths return identical values.
    """
    program = _compiled.circuit_program(circuit, compile)
    if program is not None:
        return program.run(pi_values, n_patterns, state)
    mask = mask_of(n_patterns)
    values: dict[str, int] = {}
    for pi in circuit.inputs:
        values[pi] = pi_values.get(pi, 0) & mask
    for q, flop in circuit.flops.items():
        if state is not None and q in state:
            values[q] = state[q] & mask
        else:
            values[q] = mask if flop.init else 0
    evaluators = GATE_EVAL
    for gate in circuit.topo_order():
        values[gate.output] = evaluators[gate.gtype](gate, values, mask)
    return values


def pack_patterns(patterns: Sequence[Mapping[str, int]]) -> dict[str, int]:
    """Pack per-pattern dicts (net -> 0/1) into packed ints (bit i = pattern i)."""
    packed: dict[str, int] = {}
    for i, pattern in enumerate(patterns):
        for net, bit in pattern.items():
            if bit:
                packed[net] = packed.get(net, 0) | (1 << i)
            else:
                packed.setdefault(net, 0)
    return packed


def unpack_patterns(packed: Mapping[str, int], n_patterns: int) -> list[dict[str, int]]:
    """Inverse of :func:`pack_patterns`."""
    return [
        {net: (val >> i) & 1 for net, val in packed.items()}
        for i in range(n_patterns)
    ]


def random_patterns(nets: Iterable[str], n_patterns: int, seed: int = 0) -> dict[str, int]:
    """Uniform random packed patterns for the given nets (deterministic)."""
    rng = random.Random(seed)
    return {net: rng.getrandbits(n_patterns) for net in nets}


def exhaustive_patterns(nets: Sequence[str]) -> tuple[dict[str, int], int]:
    """All 2**len(nets) input combinations, packed.

    Returns ``(packed, n_patterns)``.  Net *k* carries the k-th bit of the
    pattern index, so pattern *i* assigns net *k* the bit ``(i >> k) & 1``.
    """
    n = 1 << len(nets)
    packed = {}
    for k, net in enumerate(nets):
        val = 0
        for i in range(n):
            if (i >> k) & 1:
                val |= 1 << i
        packed[net] = val
    return packed, n


# ----------------------------------------------------------------------
# three-valued simulation
# ----------------------------------------------------------------------
X = None  # the unknown value


# Like the 2-valued path, 3-valued evaluation dispatches through a
# module-level table — PODEM's implication engine calls this once per
# gate per decision, so the if/elif GateType chain was its inner-loop
# cost.  Handlers short-circuit on controlling values (a 0 input
# dominates X for AND, a 1 for OR), preserving the reference semantics.
def _eval3_and(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    out: int | None = 1
    for name in gate.inputs:
        v = values.get(name, X)
        if v == 0:
            return 0
        if v is X:
            out = X
    return out


def _eval3_nand(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    return _not3(_eval3_and(gate, values))


def _eval3_or(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    out: int | None = 0
    for name in gate.inputs:
        v = values.get(name, X)
        if v == 1:
            return 1
        if v is X:
            out = X
    return out


def _eval3_nor(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    return _not3(_eval3_or(gate, values))


def _eval3_xor(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    acc = 0
    for name in gate.inputs:
        v = values.get(name, X)
        if v is X:
            return X
        acc ^= v
    return acc


def _eval3_xnor(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    return _not3(_eval3_xor(gate, values))


def _eval3_buf(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    return values.get(gate.inputs[0], X)


def _eval3_not(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    return _not3(values.get(gate.inputs[0], X))


def _eval3_const0(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    return 0


def _eval3_const1(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    return 1


def _not3(v: int | None) -> int | None:
    return X if v is X else 1 - v


GATE_EVAL_3V = {
    GateType.AND: _eval3_and,
    GateType.NAND: _eval3_nand,
    GateType.OR: _eval3_or,
    GateType.NOR: _eval3_nor,
    GateType.XOR: _eval3_xor,
    GateType.XNOR: _eval3_xnor,
    GateType.BUF: _eval3_buf,
    GateType.NOT: _eval3_not,
    GateType.CONST0: _eval3_const0,
    GateType.CONST1: _eval3_const1,
}


def eval_gate_3v(gate: Gate, values: Mapping[str, int | None]) -> int | None:
    """Three-valued gate evaluation (controlling values dominate X)."""
    return GATE_EVAL_3V[gate.gtype](gate, values)


def simulate_3v(
    circuit: Circuit,
    assignment: Mapping[str, int | None],
    state: Mapping[str, int | None] | None = None,
) -> dict[str, int | None]:
    """Three-valued combinational simulation.

    Unassigned PIs and flop Qs are X unless given in ``assignment`` /
    ``state``.
    """
    values: dict[str, int | None] = {}
    for pi in circuit.inputs:
        values[pi] = assignment.get(pi, X)
    for q in circuit.flops:
        values[q] = (state or {}).get(q, X)
    evaluators = GATE_EVAL_3V
    for gate in circuit.topo_order():
        values[gate.output] = evaluators[gate.gtype](gate, values)
    return values
