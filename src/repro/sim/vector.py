"""Vector backing for packed simulation words wider than 64 lanes.

Every simulator in this toolkit packs parallel lanes (patterns, fault
instances) into the bits of one word per net.  Two backings implement
that word:

* ``"int"`` — an arbitrary-precision Python int.  This is the classic
  PPSFP representation and it is *not* capped at the machine word:
  CPython big-int bitwise ops stay almost width-insensitive well past a
  thousand bits (one NAND on this class of host: ~0.12µs at 64 bits,
  ~0.17µs at 1024 bits), so a 1024-lane word costs barely more than a
  64-lane one while carrying 16x the lanes.
* ``"ndarray"`` — a numpy ``uint64`` array of ``n_blocks = ceil(lanes /
  64)`` blocks, least-significant block first.  Per-op dispatch overhead
  is ~10x a big-int op at small widths, but the per-block cost is flat C
  speed, so it overtakes the int backing once words grow to tens of
  thousands of lanes (measured crossover on this class of host: ~32k
  lanes — :data:`NDARRAY_MIN_LANES`).

The compiled code generator (:mod:`repro.sim.compiled`) emits plain
``&``/``|``/``^``/``~ ... & mask`` expressions, which evaluate
identically over both backings — the *same* generated source is a
scalar program when fed ints and a vector program when fed ndarrays.
The helpers here convert between the two representations losslessly, so
identity against the 1-lane reference is preserved bit for bit either
way.

``RESCUE_VECTOR_BACKING=int|ndarray`` forces a backing globally;
``RESCUE_NDARRAY_MIN_LANES`` moves the auto crossover.  When numpy is
missing entirely the vector tier is unavailable and lane widths degrade
to the classic 64-lane packing (with a one-time logged warning) — see
:func:`repro.engine.lanes.resolve_lane_width`.
"""

from __future__ import annotations

import logging
import os

try:  # numpy is a declared dependency, but degrade rather than crash
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

HAVE_NUMPY = _np is not None
np = _np

log = logging.getLogger(__name__)

#: Bits per ndarray block (numpy uint64).
BLOCK_BITS = 64

#: Env override for the backing choice: ``int``, ``ndarray`` or unset/auto.
ENV_BACKING = "RESCUE_VECTOR_BACKING"

#: Auto crossover: below this lane count the int backing wins (big-int
#: ops are near width-insensitive), above it the ndarray backing's flat
#: per-block cost takes over.  Measured on this class of host; override
#: with ``RESCUE_NDARRAY_MIN_LANES``.
NDARRAY_MIN_LANES = int(os.environ.get("RESCUE_NDARRAY_MIN_LANES", 32768))

_warned_no_numpy = False


def _warn_no_numpy(context: str) -> None:
    """One-time logged warning when numpy-backed features degrade."""
    global _warned_no_numpy
    if not _warned_no_numpy:
        log.warning("numpy unavailable: %s — degrading to 64-bit packing",
                    context)
        _warned_no_numpy = True


def blocks_for(n_lanes: int) -> int:
    """Number of 64-bit blocks needed for ``n_lanes`` lanes."""
    return max(1, (n_lanes + BLOCK_BITS - 1) // BLOCK_BITS)


def resolve_backing(n_lanes: int, backing: str | None = None) -> str:
    """Resolve a requested backing (``None`` = auto) for ``n_lanes``.

    Auto picks ``"int"`` below :data:`NDARRAY_MIN_LANES` and
    ``"ndarray"`` at or above it; the :data:`ENV_BACKING` env var
    overrides auto (but not an explicit argument).  A forced
    ``"ndarray"`` without numpy degrades to ``"int"`` with a one-time
    logged warning — same packed-int semantics, so results are
    unchanged.
    """
    if backing is None:
        backing = os.environ.get(ENV_BACKING) or None
    if backing is None:
        backing = "ndarray" if n_lanes >= NDARRAY_MIN_LANES else "int"
    if backing not in ("int", "ndarray"):
        raise ValueError(f"unknown vector backing {backing!r}")
    if backing == "ndarray" and not HAVE_NUMPY:
        _warn_no_numpy("ndarray backing requested")
        backing = "int"
    return backing


def to_blocks(value: int, n_blocks: int):
    """A packed int as a little-endian uint64 block array."""
    data = value.to_bytes(n_blocks * 8, "little")
    # frombuffer returns a read-only view; copy so callers may mutate
    return np.frombuffer(data, dtype="<u8").astype(np.uint64)


def from_blocks(arr) -> int:
    """The packed int a block array encodes (inverse of to_blocks)."""
    return int.from_bytes(arr.astype("<u8", copy=False).tobytes(), "little")


def zeros(n_blocks: int):
    """An all-zero lane word (shareable: compiled code never mutates)."""
    return np.zeros(n_blocks, dtype=np.uint64)


def mask_array(n_lanes: int, n_blocks: int | None = None):
    """The lane mask as a block array: ``n_lanes`` low bits set."""
    if n_blocks is None:
        n_blocks = blocks_for(n_lanes)
    return to_blocks((1 << n_lanes) - 1, n_blocks)


def to_block_dict(values, n_blocks: int) -> dict:
    """Convert a ``net -> packed int`` mapping to ndarray backing."""
    return {net: to_blocks(val, n_blocks) for net, val in values.items()}
