"""Vector backing for packed simulation words wider than 64 lanes.

Every simulator in this toolkit packs parallel lanes (patterns, fault
instances) into the bits of one word per net.  Three backings implement
that word:

* ``"int"`` — an arbitrary-precision Python int.  This is the classic
  PPSFP representation and it is *not* capped at the machine word:
  CPython big-int bitwise ops stay almost width-insensitive well past a
  thousand bits (one AND on this class of host: ~0.08µs at 1024 bits,
  ~0.13µs at 4096 bits, and the compiled step loop lands at
  ~0.13-0.14µs/gate at 1024 lanes including interpreter overhead).
* ``"ndarray"`` — one numpy ``uint64`` array of ``n_blocks =
  ceil(lanes / 64)`` blocks *per net*, least-significant block first,
  fed through the same compiled per-net expressions.  **Negative
  result, kept for the record**: per-op numpy dispatch is ~0.5-1.5µs on
  a tiny per-net array versus ~0.1µs for the big-int op it replaces, so
  this backing only overtakes ints once words grow to tens of
  thousands of lanes (measured ~32k on this host class —
  :data:`NDARRAY_MIN_LANES`).  At 1024 lanes it measures ~0.3x the int
  backing.
* ``"soa"`` — a structure-of-arrays compiled kernel
  (:class:`repro.sim.compiled.SoaStepProgram` and friends): the whole
  net state lives in one 2-D ``(2 * n_slots, n_blocks)`` uint64 matrix
  whose top half mirrors the bottom half complemented, and each
  topological level executes as ~4 fused numpy calls (two row-gathers,
  one ``bitwise_and``, one ``bitwise_xor``, one ``invert`` into the
  mirror) covering *every* gate in the level.  Dispatch amortizes over
  the level width, so the crossover drops from ~32k lanes to ~1k
  (:data:`SOA_MIN_LANES`) on circuits with wide levels.

Measured per-op cost model for the SoA kernel (1-CPU host, numpy 2.x,
K = gates per level, B = blocks): a row-gather ``S.take(rows, axis=0)``
costs ~0.5-1ns per gathered element plus ~0.5µs dispatch; flat
``bitwise_and/xor/invert`` with ``out=`` cost ~0.5ns/element plus
dispatch.  Two idioms measured badly enough to design around:
``ufunc.reduceat`` (~10x a binary op — per-segment inner loops) and
broadcasting a ``(n, 1)`` polarity column against ``(n, B)`` rows
(~5x a flat op) — which is why the kernel gathers *two* parallel input
row arrays and encodes every polarity as a complement-mirror row index
instead of XOR-ing polarity masks.

Because the win comes from level width, the auto backing uses both the
lane count and (when the caller can provide it) the program's mean
gates-per-level: narrow circuits (< :data:`SOA_MIN_LEVEL_WIDTH` gates
per level) keep the int backing until :data:`NDARRAY_MIN_LANES` lanes.

Override precedence, strongest first:

1. an explicit ``backing=`` argument;
2. ``RESCUE_VECTOR_BACKING=int|ndarray|soa`` (global force);
3. host calibration via :func:`calibrate_crossover` (opt-in:
   ``RESCUE_CALIBRATE_CROSSOVER=1`` or an explicit call) — overrides
   the crossover *defaults* but never an explicit
   ``RESCUE_SOA_MIN_LANES`` / ``RESCUE_NDARRAY_MIN_LANES``;
4. ``RESCUE_SOA_MIN_LANES`` / ``RESCUE_NDARRAY_MIN_LANES`` env values;
5. the built-in measured defaults.

When numpy is missing entirely the vector tier is unavailable: the
``soa``/``ndarray`` backings degrade to ``int`` and lane widths above
64 degrade to the classic 64-lane packing (one-time logged warning) —
see :func:`repro.engine.lanes.resolve_lane_width`.
"""

from __future__ import annotations

import logging
import os

try:  # numpy is a declared dependency, but degrade rather than crash
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatching
    _np = None

HAVE_NUMPY = _np is not None
np = _np

log = logging.getLogger(__name__)

#: Bits per ndarray block (numpy uint64).
BLOCK_BITS = 64

#: Env override for the backing choice: ``int``, ``ndarray``, ``soa``
#: or unset/auto.
ENV_BACKING = "RESCUE_VECTOR_BACKING"

#: Opt-in host calibration: when set truthy, the first auto backing
#: resolution runs :func:`calibrate_crossover` once and uses the
#: measured crossover instead of the defaults below.
ENV_CALIBRATE = "RESCUE_CALIBRATE_CROSSOVER"

#: Per-net ndarray crossover: below this lane count the int backing
#: wins (big-int ops are near width-insensitive), above it even the
#: per-net dispatch-heavy ndarray backing's flat per-block cost takes
#: over.  Measured on this class of host; override with
#: ``RESCUE_NDARRAY_MIN_LANES``.
NDARRAY_MIN_LANES = int(os.environ.get("RESCUE_NDARRAY_MIN_LANES", 32768))

#: SoA crossover: from this lane count the level-batched SoA kernel
#: beats the int backing *on circuits with wide levels* (measured >= 2x
#: at 1024 lanes with ~85 gates/level).  Override with
#: ``RESCUE_SOA_MIN_LANES``.
SOA_MIN_LANES = int(os.environ.get("RESCUE_SOA_MIN_LANES", 1024))

#: Mean gates-per-level below which the SoA kernel cannot amortize its
#: per-level dispatch against the int backing at moderate widths
#: (measured: ~13 gates/level runs at 0.3x int, ~31 at ~1.0x, ~50 at
#: ~1.4x, ~85 at >= 2x).  Callers that know their program's level
#: width pass it to :func:`resolve_backing`; narrow circuits stay on
#: ints until :data:`NDARRAY_MIN_LANES`.
SOA_MIN_LEVEL_WIDTH = 32

#: All known backings, for validation.
BACKINGS = ("int", "ndarray", "soa")

_warned_no_numpy = False


def _warn_no_numpy(context: str) -> None:
    """One-time logged warning when numpy-backed features degrade."""
    global _warned_no_numpy
    if not _warned_no_numpy:
        log.warning("numpy unavailable: %s — degrading to 64-bit packing",
                    context)
        _warned_no_numpy = True


def blocks_for(n_lanes: int) -> int:
    """Number of 64-bit blocks needed for ``n_lanes`` lanes."""
    return max(1, (n_lanes + BLOCK_BITS - 1) // BLOCK_BITS)


def resolve_backing(n_lanes: int, backing: str | None = None,
                    level_width: float | None = None) -> str:
    """Resolve a requested backing (``None`` = auto) for ``n_lanes``.

    Auto picks ``"int"`` below :data:`SOA_MIN_LANES`; from there the
    SoA kernel tier takes over when the caller's ``level_width`` hint
    (mean gates per topological level of the program that will run)
    is absent or at least :data:`SOA_MIN_LEVEL_WIDTH`.  Narrow
    circuits keep the int backing until :data:`NDARRAY_MIN_LANES`,
    past which SoA wins regardless of level width (it strictly
    dominates the per-net ndarray backing that used to take over
    there).  The :data:`ENV_BACKING` env var overrides auto (but not
    an explicit argument); see the module docstring for the full
    precedence.  A forced ``"ndarray"``/``"soa"`` without numpy
    degrades to ``"int"`` with a one-time logged warning — same
    packed-int semantics, so results are unchanged.
    """
    if backing is None:
        backing = os.environ.get(ENV_BACKING) or None
    if backing is None:
        _maybe_calibrate()
        if n_lanes >= NDARRAY_MIN_LANES:
            backing = "soa"
        elif n_lanes >= SOA_MIN_LANES and (
                level_width is None or level_width >= SOA_MIN_LEVEL_WIDTH):
            backing = "soa"
        else:
            backing = "int"
    if backing not in BACKINGS:
        raise ValueError(f"unknown vector backing {backing!r}")
    if backing in ("ndarray", "soa") and not HAVE_NUMPY:
        _warn_no_numpy(f"{backing} backing requested")
        backing = "int"
    return backing


def to_blocks(value: int, n_blocks: int):
    """A packed int as a little-endian uint64 block array.

    Zero — by far the most common replicated word — short-circuits to
    a direct allocation; other values take one ``int.to_bytes`` /
    ``frombuffer`` round trip (that *is* the direct construction for
    an arbitrary big int).
    """
    if value == 0:
        return np.zeros(n_blocks, dtype=np.uint64)
    data = value.to_bytes(n_blocks * 8, "little")
    # frombuffer returns a read-only view; copy so callers may mutate
    return np.frombuffer(data, dtype="<u8").astype(np.uint64)


def from_blocks(arr) -> int:
    """The packed int a block array encodes (inverse of to_blocks)."""
    return int.from_bytes(arr.astype("<u8", copy=False).tobytes(), "little")


def zeros(n_blocks: int):
    """An all-zero lane word (shareable: compiled code never mutates)."""
    return np.zeros(n_blocks, dtype=np.uint64)


def mask_array(n_lanes: int, n_blocks: int | None = None):
    """The lane mask as a block array: ``n_lanes`` low bits set.

    Built directly in numpy — full blocks of all-ones plus at most one
    partial block — instead of materializing the ``(1 << n_lanes) - 1``
    big int and round-tripping through bytes (at 64k lanes the big-int
    path costs ~10µs per call; this is ~1µs and flat).  The big-int
    path survives only as the implicit no-numpy fallback: without
    numpy the vector tier is off and masks stay plain ints
    (:func:`repro.sim.logic.mask_of`).
    """
    if n_blocks is None:
        n_blocks = blocks_for(n_lanes)
    arr = np.zeros(n_blocks, dtype=np.uint64)
    full, rem = divmod(max(0, n_lanes), BLOCK_BITS)
    full = min(full, n_blocks)
    arr[:full] = np.uint64(0xFFFFFFFFFFFFFFFF)
    if rem and full < n_blocks:
        arr[full] = np.uint64((1 << rem) - 1)
    return arr


def to_block_dict(values, n_blocks: int) -> dict:
    """Convert a ``net -> packed int`` mapping to ndarray backing."""
    return {net: to_blocks(val, n_blocks) for net, val in values.items()}


# ----------------------------------------------------------------------
# host crossover calibration (opt-in)
# ----------------------------------------------------------------------
_calibrated: int | None = None


def _maybe_calibrate() -> None:
    """Run the one-time calibration when the env opt-in is set."""
    if _calibrated is None and HAVE_NUMPY \
            and os.environ.get(ENV_CALIBRATE, "") not in ("", "0"):
        calibrate_crossover()


def calibrate_crossover(level_width: int = 48,
                        candidates=(256, 512, 1024, 2048, 4096, 8192,
                                    16384, 32768)) -> int:
    """Measure the int-vs-SoA crossover on the running host, once.

    Micro-benchmarks the two inner loops head to head at a
    representative level width: per gate, the int backing costs one
    big-int bitwise op plus bytecode overhead; the SoA kernel costs
    its share of two row-gathers, one flat binary op and one mirror
    invert.  The smallest candidate lane count where the SoA side wins
    replaces :data:`SOA_MIN_LANES` (and, capped, the per-net
    :data:`NDARRAY_MIN_LANES` guess) — unless those were pinned via
    their env vars, which always win over calibration.  The result is
    cached for the process; repeated calls are free.  Opt in with
    ``RESCUE_CALIBRATE_CROSSOVER=1`` or call explicitly.
    """
    global _calibrated, SOA_MIN_LANES, NDARRAY_MIN_LANES
    if _calibrated is not None:
        return _calibrated
    if not HAVE_NUMPY:
        _warn_no_numpy("crossover calibration requested")
        _calibrated = 1 << 62  # vector tier unavailable: never cross
        return _calibrated
    import time

    rng = np.random.default_rng(0)
    crossover = 1 << 62
    for n_lanes in candidates:
        n_blocks = blocks_for(n_lanes)
        n_slots = 2 * level_width + 2
        state = rng.integers(0, 1 << 63, size=(2 * n_slots, n_blocks),
                             dtype=np.uint64)
        r0 = rng.integers(0, n_slots, size=level_width).astype(np.intp)
        r1 = rng.integers(0, n_slots, size=level_width).astype(np.intp)
        a, b = n_slots - level_width, n_slots
        x = (1 << n_lanes) - 12345
        y = (1 << n_lanes) // 7

        def soa_once():
            g0 = state.take(r0, axis=0)
            g1 = state.take(r1, axis=0)
            np.bitwise_and(g0, g1, out=state[a:b])
            np.invert(state[a:b], out=state[n_slots + a:n_slots + b])

        def int_once():
            w = x
            for _ in range(level_width):
                w = x & y
            return w

        # warm, then best-of-3 to shrug off scheduler noise
        soa_once(), int_once()
        reps = 30

        def best(fn):
            best_t = None
            for _ in range(3):
                t0 = time.perf_counter()
                for _ in range(reps):
                    fn()
                t = time.perf_counter() - t0
                best_t = t if best_t is None or t < best_t else best_t
            return best_t / (reps * level_width)

        if best(soa_once) < best(int_once):
            crossover = n_lanes
            break
    _calibrated = crossover
    if "RESCUE_SOA_MIN_LANES" not in os.environ:
        SOA_MIN_LANES = crossover
    if "RESCUE_NDARRAY_MIN_LANES" not in os.environ:
        # the per-net backing needs far more width to amortize its
        # per-gate dispatch; keep it at least the historical guess
        NDARRAY_MIN_LANES = max(crossover, 32768)
    log.info("vector crossover calibrated: SoA wins from %d lanes "
             "(level width %d)", crossover, level_width)
    return crossover
