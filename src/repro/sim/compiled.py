"""Compiled-circuit simulation: codegen'd slot-indexed evaluation.

The reference interpreter in :mod:`repro.sim.logic` re-walks the netlist
gate-by-gate on every evaluation: a dict lookup on the dispatch table, a
Python call per gate, and a string-keyed dict read per gate input.  At
campaign scale that interpretive overhead *is* the simulation cost — the
bitwise work itself is a handful of C-level big-int ops.

This module translates a levelized :class:`~repro.circuit.netlist
.Circuit` into one generated Python function: every net becomes a local
variable slot, every gate one straight-line bitwise expression, constants
and buffers are folded into their consumers, and PI/flop loads and
result stores are vectorized through tuples.  CPython then executes the
whole circuit as consecutive ``LOAD_FAST``/``BINARY_OP`` bytecodes — no
per-gate dispatch, no per-input hashing.

Three program shapes cover every evaluation path in the toolkit:

* :class:`CircuitProgram` — the full combinational evaluation behind
  :func:`repro.sim.logic.simulate`; returns packed values for every net.
* :class:`ConeProgram`  — a per-fault-site sub-program re-simulating only
  the fan-out cone of a stuck-at line, for :mod:`repro.sim.fault_sim`'s
  PPSFP inner loop.  Cached per site, like the interpreter's cone lists.
* :class:`StepProgram`  — a fused combinational-eval + flop-advance step
  for :class:`repro.sim.sequential.SequentialSim`, restricted to the
  cone of influence of the observable nets (POs and flop D inputs).

Programs are **byte-identical** to the interpreter at any pattern width:
each generated expression is the same boolean function the dispatch
table computes, so every net value, detection mask and campaign outcome
matches bit for bit.  Set ``RESCUE_NO_COMPILE=1`` (or pass
``compile=False`` to the entry points) to force the reference
interpreter — the equivalence tests in ``tests/test_compiled.py`` run
both paths against each other.

Caching and invalidation: programs are memoized in
``Circuit._program_cache`` and invalidated by ``Circuit._invalidate``
alongside the topo/fan-out/cone caches, so any mutation recompiles.
Per-site sources are additionally *interned*: structurally identical
cones share one ``CompiledProgram`` and therefore one ``compile()``,
which is where the cold-sweep cost lives.  Structured circuits repeat
cone shapes heavily (on ``rand_seq``, 230 detection sites share 90
distinct sources); fully random netlists are the worst case — nearly
every cone is structurally unique there and interning is a no-op.  (Concatenating pending sources into one big
``compile()`` unit was measured *slower* on CPython 3.11 — byte-compile
time grows superlinearly with module size: 0.92x at 25 sources/unit,
0.29x at 1000 — so deduplication, not batching, is the cold-path win.)
Pickling: a program carries only its *source*; the code object is
rebuilt lazily on first call in the receiving process (the same
cache-drop pattern ``Circuit.__getstate__`` uses), so compiled backends
ship to process-pool workers unchanged.

**Vector tier**: the generated expressions are polymorphic — fed numpy
``uint64`` block arrays instead of ints, the same source evaluates 64
lanes *per block* per op.  :class:`VectorCircuitProgram` /
:class:`VectorStepProgram` / :class:`VectorConeProgram` /
:class:`VectorDetProgram` wrap the scalar programs with an ``n_lanes``
parameter, converting packed ints to block arrays at the boundary (see
:mod:`repro.sim.vector` for the backing model and the int/ndarray
crossover).  The scalar and vector variants share one compiled code
object per source.

**SoA tier**: the per-net representations above pay one interpreter or
numpy dispatch *per gate*; :class:`SoaCircuitProgram` /
:class:`SoaStepProgram` / :class:`SoaConeProgram` / :class:`SoaDetProgram`
instead keep the whole net state in one ``(2 * n_slots, n_blocks)``
uint64 matrix whose top half mirrors the bottom half complemented, and
execute each topological level as a handful of fused numpy calls over
*every* gate in the level (:class:`_SoaKernel`).  Polarity — NAND/NOR/
XNOR outputs, folded NOTs, the complemented inputs of the De Morgan
rewrite ``a | b == ~(~a & ~b)`` — costs nothing at runtime: it is
encoded as a row index into the complement mirror at schedule-build
time, so a level is just two row-gathers, one ``bitwise_and`` over the
and-family slab, one ``bitwise_xor`` over the xor-family slab, and one
``invert`` refreshing the level's mirror rows.  Dead lanes of a partial
last block may hold garbage mid-flight (complement garbage propagates
only within dead lanes through ``& ^ ~``); the lane mask is applied
once at each readout boundary, which keeps every returned word
bit-identical to the interpreter.  SoA programs hold no code objects at
all — they pickle as plain index-array metadata and rebuild their state
matrix per worker.  See :mod:`repro.sim.vector` for when this tier wins
(from ~1k lanes on circuits with wide levels) and the measured per-op
cost model behind the kernel's idioms.
"""

from __future__ import annotations

import itertools
import os
import re
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from ..circuit.netlist import Circuit, Gate, GateType
from . import vector as _vector

#: Environment kill switch: set to anything but ""/"0" to force the
#: reference interpreter everywhere (benchmark baselines, debugging).
ENV_FLAG = "RESCUE_NO_COMPILE"

#: Per-site programs (cones, detection) compile only after this many
#: (weighted) evaluations of the same site.  Codegen plus ``compile()``
#: costs roughly 15-20 interpreted evaluations of the same cone, so
#: one-shot and small batched fault simulations stay entirely on the
#: interpreter, while campaign workloads — which revisit every
#: surviving site per pattern batch, per cycle, or per campaign sweep —
#: cross the threshold and settle into compiled steady state.
#: Per-circuit programs (full evaluation, step) are compiled eagerly:
#: they amortize over every evaluation of the circuit.  Tests and
#: benchmarks set this to 0 to force the compiled path from the first
#: call.
COMPILE_AFTER_HITS = 20


# The flag is read once at import (and kept in sync by ``disabled()``):
# probing os.environ on every evaluation showed up in PPSFP profiles.
_ENV_DISABLED = os.environ.get(ENV_FLAG, "") not in ("", "0")


def compilation_enabled() -> bool:
    """Is compiled evaluation globally enabled (env kill switch unset)?"""
    return not _ENV_DISABLED


def _active(enable: bool | None) -> bool:
    """Resolve a per-call ``compile=`` flag against the env switch.

    ``False`` always forces the interpreter; ``True``/``None`` use the
    compiled path unless ``RESCUE_NO_COMPILE`` vetoes it (the env var is
    the emergency brake and wins over per-call requests).
    """
    return enable is not False and compilation_enabled()


@contextmanager
def disabled() -> Iterator[None]:
    """Force the reference interpreter within the block (tests, benches).

    The env var is set as well so worker processes spawned inside the
    block inherit the interpreter mode.
    """
    global _ENV_DISABLED
    old_env = os.environ.get(ENV_FLAG)
    old_flag = _ENV_DISABLED
    os.environ[ENV_FLAG] = "1"
    _ENV_DISABLED = True
    try:
        yield
    finally:
        _ENV_DISABLED = old_flag
        if old_env is None:
            os.environ.pop(ENV_FLAG, None)
        else:
            os.environ[ENV_FLAG] = old_env


# ----------------------------------------------------------------------
# source generation
# ----------------------------------------------------------------------
def _tuple_expr(atoms: Sequence[str]) -> str:
    return "(" + "".join(a + "," for a in atoms) + ")"


def _gate_expr(gate: Gate, atoms: Mapping[str, str]) -> str:
    """One bitwise expression for ``gate`` over already-bound atoms.

    Atoms are simple tokens (local slots, ``0``, ``mask``), so the
    expressions need no inner parentheses beyond the inverting wrap.
    """
    gtype = gate.gtype
    ins = [atoms[name] for name in gate.inputs]
    if gtype is GateType.AND:
        return " & ".join(ins)
    if gtype is GateType.NAND:
        return f"~({' & '.join(ins)}) & mask"
    if gtype is GateType.OR:
        return " | ".join(ins)
    if gtype is GateType.NOR:
        return f"~({' | '.join(ins)}) & mask"
    if gtype is GateType.XOR:
        return " ^ ".join(ins)
    if gtype is GateType.XNOR:
        return f"~({' ^ '.join(ins)}) & mask"
    if gtype is GateType.NOT:
        return f"~{ins[0]} & mask"
    raise AssertionError(f"unexpected gate type {gtype}")  # folded kinds


class _Emitter:
    """Shared codegen state: slot allocation, atom binding, gate lines."""

    def __init__(self) -> None:
        self.atoms: dict[str, str] = {}
        self.lines: list[str] = []
        self._slots = itertools.count()

    def slot(self) -> str:
        return f"v{next(self._slots)}"

    def bind_sources(self, nets: Sequence[str]) -> list[str]:
        """Allocate one slot per source net (PI / flop Q tuple unpack)."""
        slots = []
        for net in nets:
            slot = self.slot()
            self.atoms[net] = slot
            slots.append(slot)
        return slots

    def emit_gate(self, gate: Gate,
                  atoms: Mapping[str, str] | None = None) -> None:
        """Emit ``gate`` as one line; fold constants and buffers into
        atoms so consumers reference them directly (no assignment)."""
        gtype = gate.gtype
        if gtype is GateType.CONST0:
            self.atoms[gate.output] = "0"
            return
        if gtype is GateType.CONST1:
            self.atoms[gate.output] = "mask"
            return
        src = atoms if atoms is not None else self.atoms
        if gtype is GateType.BUF:
            self.atoms[gate.output] = src[gate.inputs[0]]
            return
        slot = self.slot()
        self.lines.append(f"    {slot} = {_gate_expr(gate, src)}")
        self.atoms[gate.output] = slot

    def source(self, header: str, unpacks: Sequence[tuple[str, Sequence[str]]],
               ret: str) -> str:
        parts = [header]
        for arg, slots in unpacks:
            if slots:
                parts.append(f"    {_tuple_expr(slots)} = {arg}")
        parts.extend(self.lines)
        parts.append(f"    return {ret}")
        return "\n".join(parts) + "\n"


@dataclass(frozen=True)
class ProgramStats:
    """Shape summary of a compiled program, for logging and bench rows.

    ``gates`` counts emitted evaluation ops (for per-net programs this
    includes hoisted external loads — each is one bytecode-level op,
    like a gate line); ``levels`` is the number of fused execution
    steps (straight-line per-net code executes one op per "level",
    the SoA kernel one batched group per topological level);
    ``fused_ops`` is the number of interpreter-visible calls per
    evaluation — the quantity each tier tries to shrink; and
    ``scratch_bytes`` is the persistent per-evaluation scratch the
    program allocates (0 for per-net programs, the state matrix for
    SoA)."""

    gates: int
    levels: int
    fused_ops: int
    scratch_bytes: int


_SLOT_LINE = re.compile(r"^    v\d+ = ", re.MULTILINE)


class CompiledProgram:
    """Generated source plus a lazily-(re)built code object.

    Only ``source`` travels through pickle; the function is recompiled
    on first call in the receiving process, mirroring how ``Circuit``
    drops its memoized caches on serialization.
    """

    __slots__ = ("source", "name", "_fn")

    def __init__(self, source: str, name: str) -> None:
        self.source = source
        self.name = name
        self._fn = None

    @property
    def fn(self):
        fn = self._fn
        if fn is None:
            namespace: dict = {}
            exec(compile(self.source, f"<compiled:{self.name}>", "exec"),
                 namespace)
            fn = self._fn = namespace["_run"]
        return fn

    @property
    def stats(self) -> ProgramStats:
        """Op counts for this straight-line program: every slot
        assignment is one op, executed one per step with no fusion and
        no scratch beyond CPython locals."""
        n = len(_SLOT_LINE.findall(self.source))
        return ProgramStats(gates=n, levels=n, fused_ops=n, scratch_bytes=0)

    def __getstate__(self) -> tuple[str, str]:
        return (self.source, self.name)

    def __setstate__(self, state: tuple[str, str]) -> None:
        self.source, self.name = state
        self._fn = None


# ----------------------------------------------------------------------
# full-circuit program (logic.simulate)
# ----------------------------------------------------------------------
class CircuitProgram:
    """Full combinational evaluation: ``fn(pis, state, mask)`` returns
    packed values for every net, in the interpreter's insertion order."""

    __slots__ = ("inputs", "flop_inits", "net_names", "program")

    def __init__(self, circuit: Circuit) -> None:
        self.inputs = tuple(circuit.inputs)
        self.flop_inits = tuple((q, f.init) for q, f in circuit.flops.items())
        emit = _Emitter()
        pi_slots = emit.bind_sources(self.inputs)
        q_slots = emit.bind_sources(list(circuit.flops))
        order = circuit.topo_order()
        for gate in order:
            emit.emit_gate(gate)
        names = (list(self.inputs) + list(circuit.flops)
                 + [g.output for g in order])
        self.net_names = tuple(names)
        ret = _tuple_expr([emit.atoms[n] for n in names])
        source = emit.source("def _run(pis, state, mask):",
                             [("pis", pi_slots), ("state", q_slots)], ret)
        self.program = CompiledProgram(source, f"full:{circuit.name}")

    def run(self, pi_values: Mapping[str, int], n_patterns: int,
            state: Mapping[str, int] | None = None) -> dict[str, int]:
        mask = (1 << n_patterns) - 1
        pis = tuple(pi_values.get(pi, 0) & mask for pi in self.inputs)
        if state is None:
            flop_state = tuple(mask if init else 0
                               for _, init in self.flop_inits)
        else:
            flop_state = tuple(
                (state[q] & mask) if q in state else (mask if init else 0)
                for q, init in self.flop_inits)
        return dict(zip(self.net_names, self.program.fn(pis, flop_state,
                                                        mask)))


# ----------------------------------------------------------------------
# fused sequential step (SequentialSim.step)
# ----------------------------------------------------------------------
class StepProgram:
    """One clock: ``fn(pis, state, mask)`` returns ``(po_values,
    next_state)`` tuples.  Only gates in the cone of influence of the
    observables (POs and flop D inputs) are evaluated — dead logic
    cannot change either return value."""

    __slots__ = ("inputs", "flop_qs", "flop_inits", "outputs", "q_index",
                 "program")

    def __init__(self, circuit: Circuit) -> None:
        self.inputs = tuple(circuit.inputs)
        self.flop_qs = tuple(circuit.flops)
        self.flop_inits = tuple(f.init for f in circuit.flops.values())
        self.outputs = tuple(circuit.outputs)
        self.q_index = {q: i for i, q in enumerate(self.flop_qs)}
        needed: set[str] = set()
        work = list(self.outputs) + [f.d for f in circuit.flops.values()]
        gates = circuit.gates
        while work:
            net = work.pop()
            if net in needed:
                continue
            needed.add(net)
            gate = gates.get(net)
            if gate is not None:
                work.extend(gate.inputs)
        emit = _Emitter()
        pi_slots = emit.bind_sources(self.inputs)
        q_slots = emit.bind_sources(self.flop_qs)
        for gate in circuit.topo_order():
            if gate.output in needed:
                emit.emit_gate(gate)
        po_atoms = [emit.atoms[po] for po in self.outputs]
        d_atoms = [emit.atoms[f.d] for f in circuit.flops.values()]
        ret = f"({_tuple_expr(po_atoms)}, {_tuple_expr(d_atoms)},)"
        source = emit.source("def _run(pis, state, mask):",
                             [("pis", pi_slots), ("state", q_slots)], ret)
        self.program = CompiledProgram(source, f"step:{circuit.name}")

    def run(self, pi_values: Mapping[str, int], state: Mapping[str, int],
            mask: int) -> tuple[dict[str, int], dict[str, int]]:
        pis = tuple(pi_values.get(pi, 0) & mask for pi in self.inputs)
        # flops absent from the state dict fall back to their init value,
        # exactly like the interpreter's simulate()
        flop_state = tuple(
            (state[q] & mask) if q in state else (mask if init else 0)
            for q, init in zip(self.flop_qs, self.flop_inits))
        pos, nxt = self.program.fn(pis, flop_state, mask)
        return dict(zip(self.outputs, pos)), dict(zip(self.flop_qs, nxt))


# ----------------------------------------------------------------------
# per-fault-site cone sub-programs (fault_sim PPSFP inner loop)
# ----------------------------------------------------------------------
class ConeProgram:
    """Re-simulation of one fault site's fan-out cone.

    ``fn(good, forced, mask)`` loads the cone's external inputs from the
    good-machine dict once, evaluates the cone straight-line with the
    faulty line forced, and returns the recomputed gate outputs in topo
    order; :meth:`apply` folds them back into the complete
    ``faulty_values`` mapping.  (Detection has its own fused program —
    :class:`DetProgram` — that never materializes the dict.)
    """

    __slots__ = ("program", "out_names", "stem")

    def __init__(self, program: CompiledProgram, out_names: tuple[str, ...],
                 stem: str | None) -> None:
        self.program = program
        self.out_names = out_names
        self.stem = stem

    def apply(self, good: Mapping[str, int], forced: int,
              mask: int) -> dict[str, int]:
        """The full faulty-machine dict (interpreter-identical)."""
        values = dict(good)
        if self.stem is not None:
            values[self.stem] = forced
        for net, val in zip(self.out_names,
                            self.program.fn(good, forced, mask)):
            values[net] = val
        return values


class DetProgram:
    """Fault detection fused into the cone: ``fn(good, forced, mask)``
    returns the detection bitmask directly.

    The generated function loads the cone's external inputs once,
    evaluates only the cone gates with observable influence (gates whose
    output reaches no observation point are pruned at codegen time), and
    ORs the good-vs-faulty XOR of every observed cone net inline — the
    full faulty dict, the observation loop, and the result tuple all
    disappear.  This is the PPSFP inner loop.
    """

    __slots__ = ("program",)

    def __init__(self, program: CompiledProgram) -> None:
        self.program = program


def _gather_cone(circuit: Circuit, site: str,
                 shadow_sink: str | None) -> list[Gate]:
    """The site's cone gates in topo order, minus a stem's own driver."""
    from .fault_sim import _cone_gates  # lazy: fault_sim imports us

    start = site if shadow_sink is None else shadow_sink
    cone = _cone_gates(circuit, [start])
    if shadow_sink is None:
        cone = [g for g in cone if g.output != site]
    return cone


def _emit_cone(emit: _Emitter, cone: Sequence[Gate], site: str,
               shadow_sink: str | None, loads: list[str]) -> None:
    """Emit cone gates; externals read from ``good``, the faulty line
    reads ``forced`` (everywhere for a stem, only inside the branch
    sink's expression for a branch).

    Externals referenced more than once are hoisted into one load line;
    single-use externals are inlined as ``good['net']`` subscripts right
    in the consuming expression — roughly half of a cone program's lines
    are external reads, so inlining nearly halves codegen+compile cost.
    """
    counts: dict[str, int] = {}
    for gate in cone:
        for net in gate.inputs:
            counts[net] = counts.get(net, 0) + 1

    def atom(net: str) -> str:
        slot = emit.atoms.get(net)
        if slot is not None:
            return slot
        if counts.get(net, 0) <= 1:
            return f"good[{net!r}]"
        slot = emit.slot()
        loads.append(f"    {slot} = good[{net!r}]")
        emit.atoms[net] = slot
        return slot

    if shadow_sink is None:
        emit.atoms[site] = "forced"
    for gate in cone:
        is_shadow = gate.output == shadow_sink
        src = {net: ("forced" if is_shadow and net == site else atom(net))
               for net in gate.inputs}
        emit.emit_gate(gate, src)


def _build_det_program(circuit: Circuit, site: str, shadow_sink: str | None,
                       observe: Sequence[str]) -> DetProgram:
    observed = set(observe)
    cone = _gather_cone(circuit, site, shadow_sink)
    # observability pruning: walk the cone in reverse topo order keeping
    # only gates that feed an observation point (directly or through a
    # kept gate) — the rest cannot contribute a detection bit
    needed: set[str] = set()
    kept: list[Gate] = []
    for gate in reversed(cone):
        if gate.output in observed or gate.output in needed:
            kept.append(gate)
            needed.update(gate.inputs)
    kept.reverse()
    emit = _Emitter()
    loads: list[str] = []
    _emit_cone(emit, kept, site, shadow_sink, loads)
    recomputed = {gate.output for gate in kept}
    terms: list[str] = []
    for net in dict.fromkeys(observe):  # dedup, order-preserving
        if shadow_sink is None and net == site:
            terms.append(f"(good.get({net!r}, 0) ^ forced)")
            continue
        if net not in recomputed:
            continue  # untouched by the fault: XOR contributes nothing
        terms.append(f"(good.get({net!r}, 0) ^ {emit.atoms[net]})")
    emit.lines = loads + emit.lines
    ret = f"({' | '.join(terms)}) & mask" if terms else "0"
    source = emit.source("def _run(good, forced, mask):", [], ret)
    name = f"det:{circuit.name}:{site}" + (f"->{shadow_sink}"
                                           if shadow_sink else "")
    return DetProgram(_intern(circuit, source, name))


def _build_cone_program(circuit: Circuit, site: str,
                        shadow_sink: str | None) -> ConeProgram:
    """Codegen the cone of ``site``.

    With ``shadow_sink`` (a branch fault into gate ``shadow_sink``), only
    that gate sees ``forced`` on the branched net — everything else reads
    the good value, exactly like the interpreter's shadow dict.  Without
    it (a stem fault), the site net itself is ``forced`` everywhere and
    its own driver is skipped.
    """
    cone = _gather_cone(circuit, site, shadow_sink)
    emit = _Emitter()
    loads: list[str] = []
    _emit_cone(emit, cone, site, shadow_sink, loads)
    out_names = [gate.output for gate in cone]
    emit.lines = loads + emit.lines
    ret = _tuple_expr([emit.atoms[n] for n in out_names])
    source = emit.source("def _run(good, forced, mask):", [], ret)
    program = _intern(circuit, source,
                      f"cone:{circuit.name}:{site}"
                      + (f"->{shadow_sink}" if shadow_sink else ""))
    return ConeProgram(program, tuple(out_names),
                       site if shadow_sink is None else None)


# ----------------------------------------------------------------------
# per-circuit caches (invalidated with the topo/cone caches)
# ----------------------------------------------------------------------
def _cache(circuit: Circuit) -> dict:
    cache = getattr(circuit, "_program_cache", None)
    if cache is None:  # circuits unpickled from pre-cache snapshots
        cache = circuit._program_cache = {}
    return cache


def _intern(circuit: Circuit, source: str, name: str) -> CompiledProgram:
    """One :class:`CompiledProgram` per distinct per-site source.

    Structured circuits produce many structurally identical cones
    (same gates, same external nets, different site key), whose
    generated sources match character for character — on ``rand_seq``
    230 detection sites share 90 distinct sources.  Interning them in
    the circuit's program cache means ``compile()`` runs once per
    *structure* instead of once per *site* — the dominant cold-sweep
    cost.  The first site's name wins (it only labels tracebacks); the
    table invalidates with the rest of the cache on circuit mutation.
    """
    table = _cache(circuit).setdefault("_interned", {})
    program = table.get(source)
    if program is None:
        program = table[source] = CompiledProgram(source, name)
    return program


def circuit_program(circuit: Circuit,
                    enable: bool | None = None) -> CircuitProgram | None:
    """The full-circuit program, or ``None`` when compilation is off."""
    if not _active(enable):
        return None
    cache = _cache(circuit)
    prog = cache.get("full")
    if prog is None:
        prog = cache["full"] = CircuitProgram(circuit)
    return prog


def step_program(circuit: Circuit,
                 enable: bool | None = None) -> StepProgram | None:
    """The fused step program, or ``None`` when compilation is off."""
    if not _active(enable):
        return None
    cache = _cache(circuit)
    prog = cache.get("step")
    if prog is None:
        prog = cache["step"] = StepProgram(circuit)
    return prog


def _counted(cache: dict, key, build, weight: int = 1):
    """Hit-gated memoization: interpret the first ``COMPILE_AFTER_HITS``
    requests (returning ``None``), then compile and cache.  Entries are
    the hit count while cold, the program once hot.  ``weight`` lets a
    caller that already knows it will evaluate the site many times (a
    no-dropping batched sweep) count all those evaluations up front."""
    entry = cache.get(key)
    if entry is not None and not isinstance(entry, int):
        return entry
    hits = (entry or 0) + weight
    if hits > COMPILE_AFTER_HITS:
        prog = cache[key] = build()
        return prog
    cache[key] = hits
    return None


def _site_of(circuit: Circuit, line) -> tuple[str, str | None] | None:
    """Resolve a fault line to ``(site, shadow_sink)`` or ``None`` when
    it has no combinational cone (a branch into a flop D pin — the
    interpreter handles that case with a single dict entry)."""
    if line.is_stem:
        return line.net, None
    if line.sink in circuit.gates:
        return line.net, line.sink
    return None


def cone_program(circuit: Circuit, line, enable: bool | None = None,
                 weight: int = 1) -> ConeProgram | None:
    """The faulty-values cone sub-program for fault site ``line``.

    ``None`` when compilation is off, the site has no combinational
    cone, or the site has not been evaluated often enough yet to
    amortize compilation (``COMPILE_AFTER_HITS``); ``weight`` is the
    number of evaluations the caller is about to perform.
    """
    if not _active(enable):
        return None
    resolved = _site_of(circuit, line)
    if resolved is None:
        return None
    site, shadow_sink = resolved
    return _counted(_cache(circuit), ("cone", site, shadow_sink),
                    lambda: _build_cone_program(circuit, site, shadow_sink),
                    weight)


def det_program(circuit: Circuit, line, observe: Sequence[str],
                enable: bool | None = None,
                weight: int = 1) -> DetProgram | None:
    """The detection-fused program for ``line`` under ``observe``.

    Keyed by the observation list as well as the site, since the
    generated XOR terms bake the observation points in.  Same hit gate
    and ``None`` conventions as :func:`cone_program`; ``weight`` is the
    number of evaluations the caller is about to perform.
    """
    if not _active(enable):
        return None
    resolved = _site_of(circuit, line)
    if resolved is None:
        return None
    site, shadow_sink = resolved
    return _counted(
        _cache(circuit), ("det", site, shadow_sink, tuple(observe)),
        lambda: _build_det_program(circuit, site, shadow_sink, observe),
        weight)


# ----------------------------------------------------------------------
# vector tier: the same generated sources over uint64 block arrays
# ----------------------------------------------------------------------
class _VectorProgram:
    """Shared shape of the vector variants: a scalar program plus the
    lane geometry.  The generated function is reused as-is — numpy
    broadcasting makes the emitted ``& | ^ ~ ... & mask`` expressions
    evaluate block-arrays exactly like ints — so scalar and vector
    variants share one compiled code object (and one ``compile()``).
    The block-array mask is rebuilt lazily after unpickling; only the
    scalar program (which pickles as source) and ``n_lanes`` travel.
    """

    __slots__ = ("scalar", "n_lanes", "n_blocks", "_mask")

    def __init__(self, scalar, n_lanes: int) -> None:
        if not _vector.HAVE_NUMPY:  # factories return None instead
            raise RuntimeError("vector programs require numpy")
        self.scalar = scalar
        self.n_lanes = n_lanes
        self.n_blocks = _vector.blocks_for(n_lanes)
        self._mask = None

    @property
    def mask(self):
        mask = self._mask
        if mask is None:
            mask = self._mask = _vector.mask_array(self.n_lanes,
                                                   self.n_blocks)
        return mask

    @property
    def fn(self):
        return self.scalar.program.fn

    def __getstate__(self):
        return (self.scalar, self.n_lanes)

    def __setstate__(self, state) -> None:
        self.scalar, self.n_lanes = state
        self.n_blocks = _vector.blocks_for(self.n_lanes)
        self._mask = None


class VectorCircuitProgram(_VectorProgram):
    """Vector variant of :class:`CircuitProgram`: ``run`` takes packed
    ints of up to ``n_lanes`` patterns and returns every net as a
    uint64 block array (const-folded nets may come back as plain
    ``0``/mask — :func:`repro.sim.vector.from_blocks` plus an
    ``isinstance`` check recovers ints uniformly)."""

    def run(self, pi_values: Mapping[str, int],
            state: Mapping[str, int] | None = None) -> dict:
        scalar = self.scalar
        mask = self.mask
        blocks = self.n_blocks
        full = (1 << self.n_lanes) - 1
        pis = tuple(_vector.to_blocks(pi_values.get(pi, 0) & full, blocks)
                    for pi in scalar.inputs)
        if state is None:
            flop_state = tuple(mask if init else 0
                               for _, init in scalar.flop_inits)
        else:
            flop_state = tuple(
                _vector.to_blocks(state[q] & full, blocks) if q in state
                else (mask if init else 0)
                for q, init in scalar.flop_inits)
        return dict(zip(scalar.net_names, self.fn(pis, flop_state, mask)))


class VectorStepProgram(_VectorProgram):
    """Vector variant of :class:`StepProgram`: one clock over block
    arrays.  ``run`` mirrors ``StepProgram.run`` with packed-int
    boundaries; :mod:`repro.engine.lanes` drives :attr:`fn` directly on
    raw block-array tuples instead."""

    def run(self, pi_values: Mapping[str, int],
            state: Mapping[str, int]) -> tuple[dict, dict]:
        scalar = self.scalar
        mask = self.mask
        blocks = self.n_blocks
        full = (1 << self.n_lanes) - 1
        pis = tuple(_vector.to_blocks(pi_values.get(pi, 0) & full, blocks)
                    for pi in scalar.inputs)
        flop_state = tuple(
            _vector.to_blocks(state[q] & full, blocks) if q in state
            else (mask if init else 0)
            for q, init in zip(scalar.flop_qs, scalar.flop_inits))
        pos, nxt = self.fn(pis, flop_state, mask)
        return (dict(zip(scalar.outputs, pos)),
                dict(zip(scalar.flop_qs, nxt)))


class VectorConeProgram(_VectorProgram):
    """Vector variant of :class:`ConeProgram`: ``good`` values and the
    forced word are block arrays; ``apply`` folds the recomputed cone
    back into a full faulty-values dict, like the scalar version."""

    def apply(self, good: Mapping, forced) -> dict:
        scalar = self.scalar
        values = dict(good)
        if scalar.stem is not None:
            values[scalar.stem] = forced
        for net, val in zip(scalar.out_names,
                            self.fn(good, forced, self.mask)):
            values[net] = val
        return values


class VectorDetProgram(_VectorProgram):
    """Vector variant of :class:`DetProgram`: ``detect`` returns the
    detection word over a block-array good dict (``0`` when the site is
    unobservable — callers test ``bool(np.any(det))`` or convert with
    :func:`repro.sim.vector.from_blocks`)."""

    def detect(self, good: Mapping, forced):
        return self.fn(good, forced, self.mask)


def vector_circuit_program(circuit: Circuit, n_lanes: int,
                           enable: bool | None = None
                           ) -> VectorCircuitProgram | None:
    """The ``n_lanes``-wide full-circuit program, or ``None`` when
    compilation is off or numpy is missing (callers fall back to the
    packed-int paths, which carry any width through big ints)."""
    if not _vector.HAVE_NUMPY or not _active(enable):
        return None
    cache = _cache(circuit)
    key = ("vfull", n_lanes)
    prog = cache.get(key)
    if prog is None:
        scalar = circuit_program(circuit, enable)
        prog = cache[key] = VectorCircuitProgram(scalar, n_lanes)
    return prog


def vector_step_program(circuit: Circuit, n_lanes: int,
                        enable: bool | None = None
                        ) -> VectorStepProgram | None:
    """The ``n_lanes``-wide fused step program (``None``: see
    :func:`vector_circuit_program`)."""
    if not _vector.HAVE_NUMPY or not _active(enable):
        return None
    cache = _cache(circuit)
    key = ("vstep", n_lanes)
    prog = cache.get(key)
    if prog is None:
        scalar = step_program(circuit, enable)
        prog = cache[key] = VectorStepProgram(scalar, n_lanes)
    return prog


def vector_cone_program(circuit: Circuit, line, n_lanes: int,
                        enable: bool | None = None,
                        weight: int = 1) -> VectorConeProgram | None:
    """The ``n_lanes``-wide cone sub-program for ``line`` (same hit
    gate as :func:`cone_program`; the wrapper itself is free)."""
    if not _vector.HAVE_NUMPY:
        return None
    scalar = cone_program(circuit, line, enable, weight)
    if scalar is None:
        return None
    return VectorConeProgram(scalar, n_lanes)


def vector_det_program(circuit: Circuit, line, observe: Sequence[str],
                       n_lanes: int, enable: bool | None = None,
                       weight: int = 1) -> VectorDetProgram | None:
    """The ``n_lanes``-wide detection program for ``line`` (same hit
    gate as :func:`det_program`; the wrapper itself is free)."""
    if not _vector.HAVE_NUMPY:
        return None
    scalar = det_program(circuit, line, observe, enable, weight)
    if scalar is None:
        return None
    return VectorDetProgram(scalar, n_lanes)


# ----------------------------------------------------------------------
# SoA tier: level-batched kernels over a complement-mirror state matrix
# ----------------------------------------------------------------------
#: Input polarity per and-family gate: OR/NOR read the complement rows
#: of their inputs, turning the whole family into one AND slab via
#: De Morgan (``a | b == ~(~a & ~b)``).
_AND_INBASE = {GateType.AND: 0, GateType.NAND: 0,
               GateType.OR: 1, GateType.NOR: 1}
#: Output polarity: which half of the mirror consumers read.  The slab
#: holds ``a & b`` for AND/NAND and ``~(a | b)`` for OR/NOR, so NAND
#: and OR resolve to the complement row, AND and NOR to the base row.
_AND_OUTPOL = {GateType.AND: 0, GateType.NAND: 1,
               GateType.OR: 1, GateType.NOR: 0}
_XOR_OUTPOL = {GateType.XOR: 0, GateType.XNOR: 1}
#: Gate kinds that never execute: they become row aliases at build time.
_SOA_FOLDED = (GateType.CONST0, GateType.CONST1, GateType.BUF,
               GateType.NOT)


class _SoaKernel:
    """Width-independent level-batched schedule over the mirror matrix.

    State lives in a ``(2 * n_slots, n_blocks)`` uint64 matrix ``S``
    whose invariant is ``S[row + n_slots] == ~S[row]`` (up to dead-lane
    garbage past the lane mask).  Row 0 is constant zero, so its mirror
    is the constant-one word.  Every net aliases to ``(row, pol)``;
    reading polarity ``pol`` means reading ``S[row + n_slots * pol]`` —
    NOT gates, NAND/NOR/XNOR outputs and the De Morgan'd OR/NOR inputs
    all fold into the row index, costing nothing at runtime.

    Each topological level runs as: two row-gathers (``S.take`` of the
    first- and second-input rows of every gate in the level — measured
    ~30% faster than one doubled gather), one ``bitwise_and`` over the
    and-family slab, one ``bitwise_xor`` over the xor-family slab, a
    rare extra gather+op per input position above 2 (gates are sorted
    arity-ascending inside each family so those tails are contiguous
    slices), and one ``invert`` refreshing the level's mirror rows.

    The schedule is plain picklable data — index arrays and slices, no
    code objects; ``execute`` is the only runtime code and is shared by
    every program shape.
    """

    def __init__(self, gates: Sequence[Gate],
                 sources: Sequence[Sequence[str]]) -> None:
        alias: dict[str, tuple[int, int]] = {}
        row = 1  # row 0: constant zero (mirror row n_slots: constant one)
        slices = []
        for group in sources:
            a = row
            for net in group:
                alias[net] = (row, 0)
                row += 1
            slices.append((a, row))
        self.src_slices = tuple(slices)
        self.src_span = (1, row)
        # pass A: levelize real gates; a folded gate sits at its input's
        # level so its consumers still level strictly above the producer
        level: dict[str, int] = {}
        by_level: dict[int, list[Gate]] = {}
        for g in gates:
            if g.gtype in _SOA_FOLDED:
                level[g.output] = (level.get(g.inputs[0], 0)
                                   if g.inputs else 0)
            else:
                lv = max((level.get(i, 0) for i in g.inputs), default=0) + 1
                level[g.output] = lv
                by_level.setdefault(lv, []).append(g)
        # pass B: assign output rows level by level, and-family first,
        # arity-ascending inside each family (contiguous wide-gate tails)
        order = {}
        for lv in sorted(by_level):
            gs = by_level[lv]
            ands = sorted((g for g in gs if g.gtype in _AND_INBASE),
                          key=lambda g: len(g.inputs))
            xors = sorted((g for g in gs if g.gtype not in _AND_INBASE),
                          key=lambda g: len(g.inputs))
            a = row
            for g in ands:
                alias[g.output] = (row, _AND_OUTPOL[g.gtype])
                row += 1
            for g in xors:
                alias[g.output] = (row, _XOR_OUTPOL[g.gtype])
                row += 1
            order[lv] = (a, row, ands, xors)
        self.n_slots = n = row
        # pass C: folded gates resolve to aliases, in topo order so a
        # chain of BUF/NOT folds transitively
        for g in gates:
            t = g.gtype
            if t is GateType.CONST0:
                alias[g.output] = (0, 0)
            elif t is GateType.CONST1:
                alias[g.output] = (0, 1)
            elif t is GateType.BUF:
                alias[g.output] = alias[g.inputs[0]]
            elif t is GateType.NOT:
                r, p = alias[g.inputs[0]]
                alias[g.output] = (r, p ^ 1)
        self.alias = alias
        np = _vector.np

        def rowof(net: str, comp: int = 0) -> int:
            r, p = alias[net]
            return r + n * (p ^ comp)

        # pass D: per-level op plan
        plan = []
        n_calls = 0
        for lv in sorted(order):
            a, b, ands, xors = order[lv]
            K = len(ands) + len(xors)
            Ka = len(ands)
            r0 = [rowof(g.inputs[0], _AND_INBASE[g.gtype]) for g in ands]
            r1 = [rowof(g.inputs[1], _AND_INBASE[g.gtype]) for g in ands]
            r0 += [rowof(g.inputs[0]) for g in xors]
            r1 += [rowof(g.inputs[1]) for g in xors]
            extra = []
            max_ar = max(len(g.inputs) for g in ands + xors)
            for pos in range(2, max_ar):
                for fam, gs, off in (("and", ands, 0), ("xor", xors, Ka)):
                    sel = [(i, g) for i, g in enumerate(gs)
                           if len(g.inputs) > pos]
                    if not sel:
                        continue
                    lo, hi = sel[0][0], sel[-1][0] + 1  # arity-sorted tail
                    rows = np.asarray(
                        [rowof(g.inputs[pos],
                               _AND_INBASE[g.gtype] if fam == "and" else 0)
                         for _, g in sel], dtype=np.intp)
                    extra.append((fam, off + lo, off + hi, rows))
            plan.append((np.asarray(r0, dtype=np.intp),
                         np.asarray(r1, dtype=np.intp),
                         K, Ka, a, b, tuple(extra)))
            n_calls += 2 + (Ka > 0) + (Ka < K) + 2 * len(extra) + 1
        self.plan = tuple(plan)
        self.n_levels = len(plan)
        self.n_gates = sum(p[2] for p in plan)
        self.n_calls = n_calls

    def rows_of(self, nets: Sequence[str]):
        """Polarity-resolved mirror row per net (for readout gathers)."""
        np = _vector.np
        n = self.n_slots
        return np.asarray([self.alias[net][0] + n * self.alias[net][1]
                           for net in nets], dtype=np.intp)

    def bind(self, S) -> list:
        """Pre-resolve the plan's output views into ``S``.

        Slice creation is ~0.1-0.2µs apiece — real money next to the
        ~1µs fused ops it sits between — and a multi-cycle loop reuses
        one state matrix, so the per-level output/mirror views are
        built once per matrix and replayed every cycle (measured ~20%
        off the whole execute at 9600 gates).  The *gather* side stays
        fresh per cycle: ``take`` into a preallocated ``out=`` buffer
        measured slower than letting it allocate.
        """
        n = self.n_slots
        return [(r0, r1, K, Ka, S[a:a + Ka], S[a + Ka:b], extra,
                 S[a:b], S[n + a:n + b])
                for r0, r1, K, Ka, a, b, extra in self.plan]

    def execute_bound(self, S, bound: list) -> None:
        """Evaluate every level in place through views bound by
        :meth:`bind`.  Source rows (and their mirrors) must be filled;
        afterwards every aliased row holds its net's word, up to
        dead-lane garbage."""
        np = _vector.np
        band, bxor, binv = np.bitwise_and, np.bitwise_xor, np.invert
        take = S.take
        for r0, r1, K, Ka, o_and, o_xor, extra, src, dst in bound:
            g0 = take(r0, 0)
            g1 = take(r1, 0)
            if Ka:
                band(g0[:Ka], g1[:Ka], out=o_and)
            if Ka < K:
                bxor(g0[Ka:], g1[Ka:], out=o_xor)
            for fam, lo, hi, rows in extra:
                uf = band if fam == "and" else bxor
                uf(src[lo:hi], take(rows, 0), out=src[lo:hi])
            binv(src, out=dst)

    def execute(self, S) -> None:
        """One-shot evaluation (bind + run; loops should bind once)."""
        self.execute_bound(S, self.bind(S))


class _SoaCircuitMeta:
    """Width-independent schedule + readout maps for the full circuit."""

    __slots__ = ("kernel", "inputs", "flop_inits", "net_names", "out_rows")


class _SoaStepMeta:
    """Width-independent schedule + readout maps for one clock step."""

    __slots__ = ("kernel", "inputs", "flop_qs", "flop_inits", "outputs",
                 "q_index", "po_rows", "d_rows")


class _SoaConeMeta:
    """Width-independent schedule for one fault site's cone."""

    __slots__ = ("kernel", "externals", "ext_lo", "forced_row",
                 "out_names", "out_rows", "stem")


class _SoaDetMeta:
    """Width-independent schedule for fused cone detection."""

    __slots__ = ("kernel", "externals", "ext_lo", "forced_row",
                 "obs_names", "obs_rows")


class _SoaProgram:
    """Shared shape of the SoA variants: width-independent metadata
    (the kernel schedule plus readout maps) and the lane geometry.
    Unlike the per-net tiers there is no generated source at all — the
    whole program pickles as index arrays and rebuilds only its lane
    mask per process."""

    __slots__ = ("meta", "n_lanes", "n_blocks", "_mask")

    def __init__(self, meta, n_lanes: int) -> None:
        if not _vector.HAVE_NUMPY:  # factories return None instead
            raise RuntimeError("SoA programs require numpy")
        self.meta = meta
        self.n_lanes = n_lanes
        self.n_blocks = _vector.blocks_for(n_lanes)
        self._mask = None

    @property
    def kernel(self) -> _SoaKernel:
        return self.meta.kernel

    @property
    def mask(self):
        mask = self._mask
        if mask is None:
            mask = self._mask = _vector.mask_array(self.n_lanes,
                                                   self.n_blocks)
        return mask

    @property
    def stats(self) -> ProgramStats:
        k = self.meta.kernel
        return ProgramStats(gates=k.n_gates, levels=k.n_levels,
                            fused_ops=k.n_calls,
                            scratch_bytes=2 * k.n_slots * self.n_blocks * 8)

    def new_state(self):
        """A fresh zeroed state matrix with the constant rows seeded.
        Allocated per evaluation: programs are shared across threads
        (``run_batch`` may fan out on thread executors), so the matrix
        is never cached on the program."""
        np = _vector.np
        k = self.meta.kernel
        S = np.zeros((2 * k.n_slots, self.n_blocks), dtype=np.uint64)
        S[k.n_slots] = self.mask
        return S

    def _blocks(self, value, full: int):
        """A source word as a block array (packed ints converted)."""
        if isinstance(value, int):
            return _vector.to_blocks(value & full, self.n_blocks)
        return value

    def __getstate__(self):
        return (self.meta, self.n_lanes)

    def __setstate__(self, state) -> None:
        self.meta, self.n_lanes = state
        self.n_blocks = _vector.blocks_for(self.n_lanes)
        self._mask = None


class SoaCircuitProgram(_SoaProgram):
    """SoA variant of :class:`CircuitProgram`: ``run`` takes packed
    ints of up to ``n_lanes`` patterns and returns every net as a
    masked uint64 block array, in the interpreter's insertion order."""

    def run(self, pi_values: Mapping[str, int],
            state: Mapping[str, int] | None = None) -> dict:
        m = self.meta
        k = m.kernel
        np = _vector.np
        n = k.n_slots
        blocks = self.n_blocks
        mask = self.mask
        full = (1 << self.n_lanes) - 1
        S = self.new_state()
        (pa, _pb), (qa, _qb) = k.src_slices
        for i, pi in enumerate(m.inputs):
            v = pi_values.get(pi, 0) & full
            if v:
                S[pa + i] = _vector.to_blocks(v, blocks)
        for i, (q, init) in enumerate(m.flop_inits):
            if state is not None and q in state:
                v = state[q] & full
                if v:
                    S[qa + i] = _vector.to_blocks(v, blocks)
            elif init:
                S[qa + i] = mask
        lo, hi = k.src_span
        np.invert(S[lo:hi], out=S[n + lo:n + hi])
        k.execute(S)
        vals = S.take(m.out_rows, axis=0)
        vals &= mask
        return dict(zip(m.net_names, vals))


class SoaStepProgram(_SoaProgram):
    """SoA variant of :class:`StepProgram`: one clock over the mirror
    matrix.  ``run`` mirrors ``StepProgram.run`` with packed-int
    boundaries; :mod:`repro.engine.lanes` instead drives the exposed
    :attr:`kernel` / row maps directly, keeping the whole multi-cycle
    loop inside numpy."""

    @property
    def inputs(self):
        return self.meta.inputs

    @property
    def flop_qs(self):
        return self.meta.flop_qs

    @property
    def flop_inits(self):
        return self.meta.flop_inits

    @property
    def outputs(self):
        return self.meta.outputs

    @property
    def q_index(self):
        return self.meta.q_index

    @property
    def po_rows(self):
        return self.meta.po_rows

    @property
    def d_rows(self):
        return self.meta.d_rows

    @property
    def pi_slice(self):
        return self.meta.kernel.src_slices[0]

    @property
    def q_slice(self):
        return self.meta.kernel.src_slices[1]

    def run(self, pi_values: Mapping[str, int],
            state: Mapping[str, int]) -> tuple[dict, dict]:
        m = self.meta
        k = m.kernel
        np = _vector.np
        n = k.n_slots
        blocks = self.n_blocks
        mask = self.mask
        full = (1 << self.n_lanes) - 1
        S = self.new_state()
        (pa, _pb), (qa, _qb) = k.src_slices
        for i, pi in enumerate(m.inputs):
            v = pi_values.get(pi, 0) & full
            if v:
                S[pa + i] = _vector.to_blocks(v, blocks)
        for i, (q, init) in enumerate(zip(m.flop_qs, m.flop_inits)):
            if q in state:
                v = state[q] & full
                if v:
                    S[qa + i] = _vector.to_blocks(v, blocks)
            elif init:
                S[qa + i] = mask
        lo, hi = k.src_span
        np.invert(S[lo:hi], out=S[n + lo:n + hi])
        k.execute(S)
        pos = S.take(m.po_rows, axis=0)
        pos &= mask
        nxt = S.take(m.d_rows, axis=0)
        nxt &= mask
        return dict(zip(m.outputs, pos)), dict(zip(m.flop_qs, nxt))


class SoaConeProgram(_SoaProgram):
    """SoA variant of :class:`ConeProgram`: ``apply`` re-evaluates one
    fault site's cone in the mirror matrix and folds the recomputed
    outputs back into the good-machine dict.  ``good`` values and the
    forced word may be block arrays or packed ints."""

    def apply(self, good: Mapping, forced) -> dict:
        m = self.meta
        k = m.kernel
        np = _vector.np
        n = k.n_slots
        full = (1 << self.n_lanes) - 1
        S = self.new_state()
        for i, net in enumerate(m.externals):
            S[m.ext_lo + i] = self._blocks(good[net], full)
        S[m.forced_row] = self._blocks(forced, full)
        lo, hi = k.src_span
        np.invert(S[lo:hi], out=S[n + lo:n + hi])
        k.execute(S)
        vals = S.take(m.out_rows, axis=0)
        vals &= self.mask
        values = dict(good)
        if m.stem is not None:
            values[m.stem] = forced
        values.update(zip(m.out_names, vals))
        return values


class SoaDetProgram(_SoaProgram):
    """SoA variant of :class:`DetProgram`: ``detect`` returns the
    detection word (a masked block array) for one fault site under the
    observation points baked into the schedule."""

    def detect(self, good: Mapping, forced):
        m = self.meta
        k = m.kernel
        np = _vector.np
        n = k.n_slots
        full = (1 << self.n_lanes) - 1
        S = self.new_state()
        for i, net in enumerate(m.externals):
            S[m.ext_lo + i] = self._blocks(good[net], full)
        S[m.forced_row] = self._blocks(forced, full)
        lo, hi = k.src_span
        np.invert(S[lo:hi], out=S[n + lo:n + hi])
        k.execute(S)
        det = _vector.zeros(self.n_blocks)
        if len(m.obs_rows):
            faulty = S.take(m.obs_rows, axis=0)
            for i, net in enumerate(m.obs_names):
                det |= faulty[i] ^ self._blocks(good.get(net, 0), full)
        det &= self.mask
        return det


def _build_soa_circuit_meta(circuit: Circuit) -> _SoaCircuitMeta:
    m = _SoaCircuitMeta()
    order = circuit.topo_order()
    m.inputs = tuple(circuit.inputs)
    m.flop_inits = tuple((q, f.init) for q, f in circuit.flops.items())
    kernel = _SoaKernel(order, (m.inputs, tuple(circuit.flops)))
    m.kernel = kernel
    names = (list(m.inputs) + list(circuit.flops)
             + [g.output for g in order])
    m.net_names = tuple(names)
    m.out_rows = kernel.rows_of(names)
    return m


def _build_soa_step_meta(circuit: Circuit) -> _SoaStepMeta:
    m = _SoaStepMeta()
    m.inputs = tuple(circuit.inputs)
    m.flop_qs = tuple(circuit.flops)
    m.flop_inits = tuple(f.init for f in circuit.flops.values())
    m.outputs = tuple(circuit.outputs)
    m.q_index = {q: i for i, q in enumerate(m.flop_qs)}
    # same cone-of-influence restriction as StepProgram: dead logic
    # cannot change the POs or the next state
    needed: set[str] = set()
    work = list(m.outputs) + [f.d for f in circuit.flops.values()]
    gates = circuit.gates
    while work:
        net = work.pop()
        if net in needed:
            continue
        needed.add(net)
        gate = gates.get(net)
        if gate is not None:
            work.extend(gate.inputs)
    kernel = _SoaKernel(
        [g for g in circuit.topo_order() if g.output in needed],
        (m.inputs, m.flop_qs))
    m.kernel = kernel
    m.po_rows = kernel.rows_of(m.outputs)
    m.d_rows = kernel.rows_of([f.d for f in circuit.flops.values()])
    return m


#: Placeholder source net carrying the forced word into a branch
#: fault's shadow gate (the branched net itself stays good everywhere
#: else, exactly like the interpreter's shadow dict).
_FORCED_NET = "__forced__"


def _soa_cone_parts(circuit: Circuit, site: str, shadow_sink: str | None):
    """The (possibly shadow-rewritten) cone gates, their external input
    nets in first-use order, and the name the forced word binds to."""
    cone = _gather_cone(circuit, site, shadow_sink)
    forced_name = site
    if shadow_sink is not None:
        forced_name = _FORCED_NET
        cone = [Gate(gtype=g.gtype, output=g.output,
                     inputs=tuple(forced_name if net == site else net
                                  for net in g.inputs))
                if g.output == shadow_sink else g
                for g in cone]
    produced = {g.output for g in cone}
    externals: list[str] = []
    seen: set[str] = set()
    for g in cone:
        for net in g.inputs:
            if net not in produced and net != forced_name \
                    and net not in seen:
                seen.add(net)
                externals.append(net)
    return cone, externals, forced_name


def _build_soa_cone_meta(circuit: Circuit, site: str,
                         shadow_sink: str | None) -> _SoaConeMeta:
    cone, externals, forced_name = _soa_cone_parts(circuit, site,
                                                   shadow_sink)
    m = _SoaConeMeta()
    kernel = _SoaKernel(cone, (tuple(externals), (forced_name,)))
    m.kernel = kernel
    m.externals = tuple(externals)
    m.ext_lo = kernel.src_slices[0][0]
    m.forced_row = kernel.src_slices[1][0]
    m.out_names = tuple(g.output for g in cone)
    m.out_rows = kernel.rows_of(m.out_names)
    m.stem = site if shadow_sink is None else None
    return m


def _build_soa_det_meta(circuit: Circuit, site: str,
                        shadow_sink: str | None,
                        observe: Sequence[str]) -> _SoaDetMeta:
    observed = set(observe)
    cone, _externals, forced_name = _soa_cone_parts(circuit, site,
                                                    shadow_sink)
    # observability pruning, identical to _build_det_program: keep only
    # gates feeding an observation point directly or transitively
    needed: set[str] = set()
    kept: list[Gate] = []
    for gate in reversed(cone):
        if gate.output in observed or gate.output in needed:
            kept.append(gate)
            needed.update(gate.inputs)
    kept.reverse()
    produced = {g.output for g in kept}
    externals: list[str] = []
    seen: set[str] = set()
    for g in kept:
        for net in g.inputs:
            if net not in produced and net != forced_name \
                    and net not in seen:
                seen.add(net)
                externals.append(net)
    m = _SoaDetMeta()
    kernel = _SoaKernel(kept, (tuple(externals), (forced_name,)))
    m.kernel = kernel
    m.externals = tuple(externals)
    m.ext_lo = kernel.src_slices[0][0]
    m.forced_row = kernel.src_slices[1][0]
    obs_names = []
    for net in dict.fromkeys(observe):  # dedup, order-preserving
        if (shadow_sink is None and net == site) or net in produced:
            obs_names.append(net)
        # else: untouched by the fault — its XOR term is identically 0
    m.obs_names = tuple(obs_names)
    m.obs_rows = kernel.rows_of(obs_names)
    return m


def soa_circuit_program(circuit: Circuit, n_lanes: int,
                        enable: bool | None = None
                        ) -> SoaCircuitProgram | None:
    """The ``n_lanes``-wide SoA full-circuit program, or ``None`` when
    compilation is off or numpy is missing.  The kernel schedule is
    width-independent and cached once; per-width wrappers are thin."""
    if not _vector.HAVE_NUMPY or not _active(enable):
        return None
    cache = _cache(circuit)
    key = ("soa_full", n_lanes)
    prog = cache.get(key)
    if prog is None:
        meta = cache.get("soa_full_meta")
        if meta is None:
            meta = cache["soa_full_meta"] = _build_soa_circuit_meta(circuit)
        prog = cache[key] = SoaCircuitProgram(meta, n_lanes)
    return prog


def soa_step_program(circuit: Circuit, n_lanes: int,
                     enable: bool | None = None) -> SoaStepProgram | None:
    """The ``n_lanes``-wide SoA fused step program (``None``: see
    :func:`soa_circuit_program`)."""
    if not _vector.HAVE_NUMPY or not _active(enable):
        return None
    cache = _cache(circuit)
    key = ("soa_step", n_lanes)
    prog = cache.get(key)
    if prog is None:
        meta = cache.get("soa_step_meta")
        if meta is None:
            meta = cache["soa_step_meta"] = _build_soa_step_meta(circuit)
        prog = cache[key] = SoaStepProgram(meta, n_lanes)
    return prog


def soa_cone_program(circuit: Circuit, line, n_lanes: int,
                     enable: bool | None = None,
                     weight: int = 1) -> SoaConeProgram | None:
    """The ``n_lanes``-wide SoA cone program for fault site ``line``
    (same hit gate as :func:`cone_program`; the width wrapper is
    free)."""
    if not _vector.HAVE_NUMPY or not _active(enable):
        return None
    resolved = _site_of(circuit, line)
    if resolved is None:
        return None
    site, shadow_sink = resolved
    meta = _counted(_cache(circuit), ("soa_cone", site, shadow_sink),
                    lambda: _build_soa_cone_meta(circuit, site, shadow_sink),
                    weight)
    if meta is None:
        return None
    return SoaConeProgram(meta, n_lanes)


def soa_det_program(circuit: Circuit, line, observe: Sequence[str],
                    n_lanes: int, enable: bool | None = None,
                    weight: int = 1) -> SoaDetProgram | None:
    """The ``n_lanes``-wide SoA detection program for ``line`` under
    ``observe`` (same hit gate and keying as :func:`det_program`)."""
    if not _vector.HAVE_NUMPY or not _active(enable):
        return None
    resolved = _site_of(circuit, line)
    if resolved is None:
        return None
    site, shadow_sink = resolved
    meta = _counted(
        _cache(circuit), ("soa_det", site, shadow_sink, tuple(observe)),
        lambda: _build_soa_det_meta(circuit, site, shadow_sink, observe),
        weight)
    if meta is None:
        return None
    return SoaDetProgram(meta, n_lanes)
