"""Multi-cycle simulation of sequential circuits.

A thin state machine over the bit-parallel combinational simulator:
each :meth:`SequentialSim.step` evaluates the combinational logic, emits
the primary outputs and advances every flop (Q ← D).  The packed-pattern
encoding carries through, so one ``SequentialSim`` advances *n* parallel
universes at once — which is exactly what the SEU campaigns need (one
clean universe plus n-1 faulty ones).

``step`` runs on a compiled program (:class:`repro.sim.compiled
.StepProgram`) that fuses the combinational evaluation with the flop
advance and skips logic outside the observables' cone of influence; the
evaluate-then-capture interpreter below is the reference path, selected
by ``compile=False`` or ``RESCUE_NO_COMPILE=1``.  The
:meth:`SequentialSim.flip_state` SEU-injection hook mutates ``state``
between steps and is oblivious to which path executes them.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..circuit.netlist import Circuit
from . import compiled as _compiled
from .logic import mask_of, simulate


class SequentialSim:
    """Cycle-accurate simulator for a (single-clock) sequential circuit."""

    def __init__(self, circuit: Circuit, n_patterns: int = 1,
                 compile: bool | None = None) -> None:
        self.circuit = circuit
        self.n_patterns = n_patterns
        self.mask = mask_of(n_patterns)
        self.state: dict[str, int] = {}
        self.cycle = 0
        self._compile = compile
        self.reset()

    def reset(self) -> None:
        """Load every flop with its init value (replicated across patterns)."""
        self.state = {
            q: (self.mask if flop.init else 0) for q, flop in self.circuit.flops.items()
        }
        self.cycle = 0

    def flip_state(self, q: str, pattern_mask: int | None = None) -> None:
        """Flip flop ``q`` in the selected patterns (SEU injection hook)."""
        if q not in self.state:
            raise KeyError(f"{q!r} is not a flop of {self.circuit.name}")
        self.state[q] ^= self.mask if pattern_mask is None else (pattern_mask & self.mask)

    def evaluate(self, pi_values: Mapping[str, int]) -> dict[str, int]:
        """Combinational evaluation at the current state (no clock edge)."""
        return simulate(self.circuit, pi_values, self.n_patterns, self.state,
                        compile=self._compile)

    def step(self, pi_values: Mapping[str, int]) -> dict[str, int]:
        """Apply inputs, capture flops, return packed PO values for this cycle."""
        program = _compiled.step_program(self.circuit, self._compile)
        if program is not None:
            out, self.state = program.run(pi_values, self.state, self.mask)
            self.cycle += 1
            return out
        values = self.evaluate(pi_values)
        next_state = {q: values[flop.d] for q, flop in self.circuit.flops.items()}
        self.state = next_state
        self.cycle += 1
        return {po: values[po] for po in self.circuit.outputs}

    def run(self, stimuli: Sequence[Mapping[str, int]]) -> list[dict[str, int]]:
        """Run one step per stimulus; returns the PO trace."""
        return [self.step(stim) for stim in stimuli]


def output_trace(
    circuit: Circuit,
    stimuli: Sequence[Mapping[str, int]],
    n_patterns: int = 1,
    initial_state: Mapping[str, int] | None = None,
) -> list[dict[str, int]]:
    """Convenience: fresh simulator, optional state override, full PO trace."""
    sim = SequentialSim(circuit, n_patterns)
    if initial_state:
        for q, val in initial_state.items():
            sim.state[q] = val & sim.mask
    return sim.run(stimuli)
