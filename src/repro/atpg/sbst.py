"""Software-based self-test for the AutoSoC CPU (III.A, [23][28][33]).

SBST tests a processor with ordinary programs: each routine exercises
one functional unit with high-toggle operand patterns and accumulates
results into a memory signature the (simulated) test controller checks.
Coverage is measured by micro-architectural fault injection — for every
(unit, stuck bit) fault, does any routine's signature change?

``functionally_safe_faults`` reports the complement ([33]'s "safe
faults"): faults no program-visible behaviour can expose, which must
leave the coverage denominator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..autosoc.cpu import UNITS, UnitFault
from ..autosoc.isa import assemble
from ..autosoc.soc import AutoSoC, SocConfig

#: Per-unit SBST routines: checkerboard operands through each data path,
#: results folded into RAM[0..3] as a signature.
_SBST_SOURCES: dict[str, str] = {
    "alu": """
        movhi r10, 0x0000
        ori  r10, r10, 0x2000
        movhi r1, 0x5555
        ori  r1, r1, 0x5555
        movhi r2, 0x2AAA
        ori  r2, r2, 0xAAAA
        add  r3, r1, r2
        sub  r4, r3, r1
        xor  r5, r3, r4
        and  r6, r1, r2
        or   r7, r1, r2
        mul  r8, r4, r2
        sltu r9, r1, r2
        add  r3, r3, r4
        add  r3, r3, r5
        add  r3, r3, r6
        add  r3, r3, r7
        add  r3, r3, r8
        add  r3, r3, r9
        sw   r3, 0(r10)
        halt
    """,
    "regfile": """
        movhi r10, 0x0000
        ori  r10, r10, 0x2000
        addi r1, r0, 0x55
        addi r2, r0, 0xAA
        addi r3, r0, 0x33
        addi r4, r0, 0xCC
        addi r5, r0, 0x0F
        addi r6, r0, 0xF0
        addi r7, r0, 0x5A
        addi r8, r0, 0xA5
        add  r9, r1, r2
        add  r9, r9, r3
        add  r9, r9, r4
        add  r9, r9, r5
        add  r9, r9, r6
        add  r9, r9, r7
        add  r9, r9, r8
        sw   r9, 1(r10)
        sw   r1, 2(r10)
        sw   r8, 3(r10)
        halt
    """,
    "lsu": """
        movhi r10, 0x0000
        ori  r10, r10, 0x2000
        movhi r1, 0x5555
        ori  r1, r1, 0xAAAA
        sw   r1, 8(r10)
        lw   r2, 8(r10)
        xor  r3, r1, r2
        sw   r3, 4(r10)
        movhi r1, 0x2AAA
        ori  r1, r1, 0x5555
        sw   r1, 9(r10)
        lw   r2, 9(r10)
        add  r3, r1, r2
        sw   r3, 5(r10)
        halt
    """,
    "branch": """
        movhi r10, 0x0000
        ori  r10, r10, 0x2000
        addi r1, r0, 0
        addi r2, r0, 5
        addi r3, r0, 0
    bl:
        addi r3, r3, 7
        addi r1, r1, 1
        blt  r1, r2, bl
        beq  r1, r2, hit
        addi r3, r3, 1000
    hit:
        bne  r1, r0, hit2
        addi r3, r3, 2000
    hit2:
        bge  r1, r2, hit3
        addi r3, r3, 4000
    hit3:
        sw   r3, 6(r10)
        halt
    """,
    "decode": """
        movhi r10, 0x0000
        ori  r10, r10, 0x2000
        addi r1, r0, 21
        slli r2, r1, 3
        srli r3, r2, 1
        xori r4, r3, 0x7F
        andi r5, r4, 0xFF
        ori  r6, r5, 0x100
        add  r7, r6, r1
        sw   r7, 7(r10)
        halt
    """,
}


@dataclass
class SbstCpuReport:
    """SBST coverage over the CPU fault universe."""

    detected: list[UnitFault] = field(default_factory=list)
    undetected: list[UnitFault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.undetected)
        return len(self.detected) / total if total else 1.0

    def per_unit(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for unit in UNITS:
            det = sum(1 for f in self.detected if f.unit == unit)
            und = sum(1 for f in self.undetected if f.unit == unit)
            if det + und:
                out[unit] = det / (det + und)
        return out


def sbst_programs() -> dict[str, list[int]]:
    """Assembled per-unit SBST routines."""
    return {unit: assemble(src) for unit, src in _SBST_SOURCES.items()}


def cpu_fault_universe(bits: tuple[int, ...] = (0, 7, 15, 31)) -> list[UnitFault]:
    """Stuck-at faults on a bit sample of every functional unit."""
    faults = []
    for unit in UNITS:
        unit_bits = bits if unit != "branch" else (0,)
        for bit in unit_bits:
            faults.append(UnitFault(unit, "stuck0", bit))
            faults.append(UnitFault(unit, "stuck1", bit))
    return faults


def _signature(program: list[int], fault: UnitFault | None,
               max_cycles: int = 2_000) -> tuple:
    soc = AutoSoC(program, SocConfig.QM)
    if fault is not None:
        soc.inject_cpu_fault(fault)
    result = soc.run(max_cycles, ram_words=16)
    return (result.halted, tuple(result.ram))


def run_cpu_sbst(faults: list[UnitFault] | None = None) -> SbstCpuReport:
    """Run every routine against every fault; signature diff = detection."""
    programs = sbst_programs()
    goldens = {unit: _signature(prog, None) for unit, prog in programs.items()}
    report = SbstCpuReport()
    for fault in faults if faults is not None else cpu_fault_universe():
        caught = any(
            _signature(prog, fault) != goldens[unit]
            for unit, prog in programs.items()
        )
        if caught:
            report.detected.append(fault)
        else:
            report.undetected.append(fault)
    return report


def functionally_safe_faults(report: SbstCpuReport) -> list[UnitFault]:
    """[33]-style safe-fault candidates: undetected by every routine.

    For the shipped routines these are faults on bits the architecture
    masks (e.g. branch-unit bits above the decision bit), reported so a
    coverage figure can exclude them.
    """
    return list(report.undetected)
