"""Untestable-fault identification.

Correct fault-coverage accounting needs the untestable faults removed
from the denominator — "this step is crucial to correctly estimate the
fault coverage achieved by any test method" (RESCUE III.A, after [46]).
Three identification layers, increasingly precise:

1. **Structural**: faults on nets with no path to any observable point,
   and faults of the form net-stuck-at-its-constant-value on nets the
   3-valued simulation proves constant.
2. **Proof by complete ATPG**: PODEM exhausting its decision space
   without abort proves combinational redundancy.
3. **Constraint-based (functional)**: PODEM under *operational
   constraints* (pinned mode/opcode inputs).  Faults untestable under
   constraints are *functionally untestable* — the GPGPU scheduler and
   RISC-processor results this section of the paper highlights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..circuit.levelize import fanout_cone
from ..circuit.netlist import Circuit
from ..faults.models import StuckAtFault
from ..sim.logic import X, simulate_3v
from .podem import Podem


@dataclass
class UntestableReport:
    """Classification of a fault universe."""

    testable: list[StuckAtFault] = field(default_factory=list)
    structurally_untestable: list[StuckAtFault] = field(default_factory=list)
    proven_untestable: list[StuckAtFault] = field(default_factory=list)
    aborted: list[StuckAtFault] = field(default_factory=list)

    @property
    def untestable(self) -> list[StuckAtFault]:
        return self.structurally_untestable + self.proven_untestable

    def effective_coverage(self, detected: int) -> float:
        """Coverage with untestable faults removed from the denominator."""
        denom = len(self.testable) + len(self.aborted)
        return detected / denom if denom else 1.0


def unobservable_nets(circuit: Circuit) -> set[str]:
    """Nets with no structural path to a PO or flop D."""
    observable_seeds = set(circuit.outputs) | {f.d for f in circuit.flops.values()}
    reaches: set[str] = set()
    for net in circuit.nets:
        if net in reaches:
            continue
        cone = fanout_cone(circuit, [net])
        if cone & observable_seeds:
            reaches.add(net)
    return {net for net in circuit.nets if net not in reaches}


def constant_nets(circuit: Circuit,
                  constraints: Mapping[str, int] | None = None) -> dict[str, int]:
    """Nets the 3-valued simulation proves constant (under constraints)."""
    values = simulate_3v(circuit, constraints or {})
    return {net: val for net, val in values.items() if val is not X}


def classify_structural(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    constraints: Mapping[str, int] | None = None,
) -> tuple[list[StuckAtFault], list[StuckAtFault]]:
    """Split faults into (maybe-testable, structurally-untestable)."""
    dead = unobservable_nets(circuit)
    consts = constant_nets(circuit, constraints)
    maybe, untestable = [], []
    for fault in faults:
        net = fault.line.net
        if net in dead:
            untestable.append(fault)
        elif consts.get(net) == fault.value and fault.line.is_stem:
            untestable.append(fault)
        else:
            maybe.append(fault)
    return maybe, untestable


def identify_untestable(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    constraints: Mapping[str, int] | None = None,
    backtrack_limit: int = 50_000,
) -> UntestableReport:
    """Full untestability analysis: structural filter, then PODEM proofs.

    With ``constraints`` the report describes *functional* untestability
    in the constrained operating mode.
    """
    report = UntestableReport()
    maybe, structural = classify_structural(circuit, faults, constraints)
    report.structurally_untestable = structural
    engine = Podem(circuit, backtrack_limit, constraints)
    for fault in maybe:
        outcome = engine.run(fault)
        if outcome.status == "detected":
            report.testable.append(fault)
        elif outcome.status == "untestable":
            report.proven_untestable.append(fault)
        else:
            report.aborted.append(fault)
    return report


def functionally_untestable_delta(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    constraints: Mapping[str, int],
    backtrack_limit: int = 50_000,
) -> list[StuckAtFault]:
    """Faults testable in full-access mode but untestable under constraints.

    This is precisely the set the GPGPU/RISC studies report: faults a
    production tester could reach but that can never cause a functional
    failure in the constrained operating mode.
    """
    unconstrained = identify_untestable(circuit, faults, None, backtrack_limit)
    constrained = identify_untestable(circuit, list(unconstrained.testable),
                                      constraints, backtrack_limit)
    return list(constrained.untestable)
