"""PODEM test generation (Goel 1981) for single stuck-at faults.

Works on the combinational view of a circuit: flop Qs are pseudo primary
inputs and flop Ds pseudo primary outputs (the full-scan assumption).
The decision procedure is complete — when the decision tree is exhausted
without a backtrack-limit abort, the fault is *proved* untestable, which
is exactly the property the untestable-fault identification experiments
(GPGPU [46], RISC processors [23]/[33]) rely on.

Implementation notes: instead of a 5-valued algebra we run two 3-valued
simulations (good machine and faulty machine); a net carries a D when
both machines are binary and differ.  This keeps the simulation kernel
shared with the rest of the toolkit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from ..circuit.netlist import Circuit, Gate, GateType
from ..circuit.scoap import compute_scoap
from ..faults.models import StuckAtFault
from ..sim.logic import X, eval_gate_3v

_CONTROLLING = {
    GateType.AND: 0,
    GateType.NAND: 0,
    GateType.OR: 1,
    GateType.NOR: 1,
}


@dataclass
class PodemResult:
    """Outcome of one PODEM run."""

    status: str  # "detected" | "untestable" | "aborted"
    pattern: dict[str, int] | None = None
    backtracks: int = 0

    @property
    def detected(self) -> bool:
        return self.status == "detected"


@dataclass
class _State:
    """Mutable search state shared by the PODEM helpers."""

    good: dict[str, int | None] = field(default_factory=dict)
    bad: dict[str, int | None] = field(default_factory=dict)


class Podem:
    """Reusable PODEM engine for one circuit (caches structure/SCOAP)."""

    def __init__(self, circuit: Circuit, backtrack_limit: int = 20_000,
                 constraints: Mapping[str, int] | None = None) -> None:
        self.circuit = circuit
        self.backtrack_limit = backtrack_limit
        self.constraints = dict(constraints or {})
        self.pseudo_inputs = list(circuit.inputs) + list(circuit.flops)
        self.observables = list(circuit.outputs) + [
            flop.d for flop in circuit.flops.values()
        ]
        self.order = circuit.topo_order()
        self.fanout = circuit.fanout_map()
        scoap = compute_scoap(circuit)
        self.cc0 = {net: scoap[net].cc0 for net in scoap}
        self.cc1 = {net: scoap[net].cc1 for net in scoap}

    # ------------------------------------------------------------------
    # simulation of good + faulty machines under a PI assignment
    # ------------------------------------------------------------------
    def _simulate(self, fault: StuckAtFault, assign: Mapping[str, int]) -> _State:
        st = _State()
        line = fault.line
        for net in self.pseudo_inputs:
            val = assign.get(net, X)
            st.good[net] = val
            st.bad[net] = val
        if line.is_stem and line.net in st.bad:
            st.bad[line.net] = fault.value
        for gate in self.order:
            st.good[gate.output] = eval_gate_3v(gate, st.good)
            st.bad[gate.output] = self._eval_bad(gate, st.bad, fault)
        if line.is_stem and line.net in self.circuit.gates:
            pass  # already forced inside _eval_bad
        return st

    def _eval_bad(self, gate: Gate, bad: dict[str, int | None],
                  fault: StuckAtFault) -> int | None:
        line = fault.line
        if line.is_stem:
            if gate.output == line.net:
                return fault.value
            return eval_gate_3v(gate, bad)
        if gate.output == line.sink:
            shadow = dict(bad)
            shadow[line.net] = fault.value
            return eval_gate_3v(gate, shadow)
        return eval_gate_3v(gate, bad)

    # ------------------------------------------------------------------
    def _fault_effect_at(self, st: _State, net: str) -> bool:
        g, b = st.good.get(net, X), st.bad.get(net, X)
        return g is not X and b is not X and g != b

    def _detected(self, st: _State, fault: StuckAtFault) -> bool:
        line = fault.line
        if not line.is_stem and line.sink in self.circuit.flops:
            # a branch into a flop D is observed the moment it is activated:
            # the flop captures the forced value instead of the good one
            good = st.good.get(line.net, X)
            return good is not X and good != fault.value
        return any(self._fault_effect_at(st, net) for net in self.observables)

    def _d_frontier(self, st: _State, fault: StuckAtFault) -> list[Gate]:
        frontier = []
        line = fault.line
        activated = (st.good.get(line.net, X) is not X
                     and st.good.get(line.net, X) != fault.value)
        for gate in self.order:
            good = st.good.get(gate.output, X)
            bad = st.bad.get(gate.output, X)
            if good is not X and bad is not X:
                continue  # composite value already resolved at this gate
            if (activated and not line.is_stem and gate.output == line.sink):
                # the sink of an activated branch fault carries the nascent D
                frontier.append(gate)
                continue
            for src in gate.inputs:
                if self._fault_effect_at(st, src):
                    frontier.append(gate)
                    break
        return frontier

    def _x_path_exists(self, st: _State, frontier: list[Gate]) -> bool:
        """Some D-frontier gate reaches an observable through X-valued nets."""
        obs = set(self.observables)
        x_nets = {
            net for net in st.good
            if st.good[net] is X or st.bad[net] is X
        }
        seen: set[str] = set()
        stack = [g.output for g in frontier]
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            if net in obs:
                return True
            # flop D nets are observables; also PO check above
            for dst in self.fanout.get(net, ()):
                if dst in self.circuit.flops:
                    if self.circuit.flops[dst].d == net:
                        return True
                    continue
                if dst in x_nets or dst in obs:
                    stack.append(dst)
        # direct case: frontier gate output *is* a flop D / PO handled above
        return False

    # ------------------------------------------------------------------
    def _objective(self, fault: StuckAtFault, st: _State) -> tuple[str, int] | None:
        line = fault.line
        site_good = st.good.get(line.net, X)
        if site_good is X:
            return line.net, 1 - fault.value  # activate the fault
        if site_good == fault.value:
            return None  # activation impossible under current assignment
        frontier = self._d_frontier(st, fault)
        if not frontier:
            return None
        # Walk the whole frontier in cost order: a gate whose side inputs
        # are all assigned cannot yield an objective, but another frontier
        # gate still can — returning None on the first (cheapest) gate
        # would prune branches and break the completeness proof.
        frontier.sort(key=lambda g: min(self.cc0.get(i, 0) + self.cc1.get(i, 0)
                                        for i in g.inputs))
        for gate in frontier:
            ctrl = _CONTROLLING.get(gate.gtype)
            for src in gate.inputs:
                if st.good.get(src, X) is X:
                    if ctrl is not None:
                        return src, 1 - ctrl
                    return src, 0  # XOR/XNOR: any binary value propagates
        return None

    def _backtrace(self, net: str, value: int, st: _State) -> tuple[str, int] | None:
        """Walk the objective back to an unassigned pseudo-PI."""
        visited = 0
        while True:
            visited += 1
            if visited > len(self.circuit.gates) + len(self.pseudo_inputs) + 4:
                return None  # safety net against pathological structures
            if net in self.pseudo_inputs:
                if net in self.constraints or st.good.get(net, X) is not X:
                    return None
                return net, value
            gate = self.circuit.gates.get(net)
            if gate is None:
                return None
            gtype = gate.gtype
            if gtype in (GateType.CONST0, GateType.CONST1):
                return None
            if gtype is GateType.BUF:
                net = gate.inputs[0]
                continue
            if gtype is GateType.NOT:
                net, value = gate.inputs[0], 1 - value
                continue
            inverted = gtype in (GateType.NAND, GateType.NOR)
            body_value = 1 - value if inverted else value
            xins = [i for i in gate.inputs if st.good.get(i, X) is X]
            if not xins:
                return None
            if gtype in (GateType.XOR, GateType.XNOR):
                known = [st.good[i] for i in gate.inputs if st.good.get(i, X) is not X]
                parity = sum(known) & 1
                target = body_value ^ parity if gtype is GateType.XOR else \
                    (1 - body_value) ^ parity
                # with several X inputs set the easiest one toward `target`
                net, value = xins[0], target if len(xins) == 1 else 0
                continue
            ctrl = _CONTROLLING[gtype] if gtype in _CONTROLLING else None
            if ctrl is None:  # pragma: no cover - exhaustive gtype handling above
                return None
            if body_value == ctrl:
                # one controlling input suffices: pick the cheapest
                cost = self.cc0 if ctrl == 0 else self.cc1
                net, value = min(xins, key=lambda i: cost.get(i, 0)), ctrl
            else:
                # all inputs must be non-controlling: pick the hardest first
                cost = self.cc1 if ctrl == 0 else self.cc0
                net, value = max(xins, key=lambda i: cost.get(i, 0)), 1 - ctrl
            continue

    # ------------------------------------------------------------------
    def run(self, fault: StuckAtFault) -> PodemResult:
        """Generate a test for ``fault`` or prove it untestable."""
        assign: dict[str, int] = dict(self.constraints)
        decisions: list[tuple[str, int, bool]] = []  # (pi, value, flipped?)
        backtracks = 0

        while True:
            st = self._simulate(fault, assign)
            if self._detected(st, fault):
                pattern = {net: assign.get(net, 0) for net in self.pseudo_inputs}
                return PodemResult("detected", pattern, backtracks)

            objective = self._objective(fault, st)
            advance = None
            if objective is not None:
                frontier_ok = True
                site_good = st.good.get(fault.line.net, X)
                if site_good is not X and site_good != fault.value:
                    frontier = self._d_frontier(st, fault)
                    frontier_ok = bool(frontier) and self._x_path_exists(st, frontier)
                if frontier_ok:
                    advance = self._backtrace(objective[0], objective[1], st)

            if advance is not None:
                pi, value = advance
                assign[pi] = value
                decisions.append((pi, value, False))
                continue

            # dead end: chronological backtracking
            while decisions:
                pi, value, flipped = decisions.pop()
                del assign[pi]
                if not flipped:
                    backtracks += 1
                    if backtracks > self.backtrack_limit:
                        return PodemResult("aborted", None, backtracks)
                    assign[pi] = 1 - value
                    decisions.append((pi, 1 - value, True))
                    break
            else:
                return PodemResult("untestable", None, backtracks)


def podem(circuit: Circuit, fault: StuckAtFault,
          backtrack_limit: int = 20_000,
          constraints: Mapping[str, int] | None = None) -> PodemResult:
    """One-shot PODEM convenience wrapper."""
    return Podem(circuit, backtrack_limit, constraints).run(fault)


def generate_tests(
    circuit: Circuit,
    faults: list[StuckAtFault],
    backtrack_limit: int = 20_000,
    constraints: Mapping[str, int] | None = None,
) -> tuple[list[dict[str, int]], list[StuckAtFault], list[StuckAtFault]]:
    """Run PODEM for every fault.

    Returns ``(patterns, untestable, aborted)``.  Patterns are not fault
    simulated here — callers typically fault-simulate + compact them.
    """
    engine = Podem(circuit, backtrack_limit, constraints)
    patterns: list[dict[str, int]] = []
    untestable: list[StuckAtFault] = []
    aborted: list[StuckAtFault] = []
    for fault in faults:
        result = engine.run(fault)
        if result.status == "detected" and result.pattern is not None:
            patterns.append(result.pattern)
        elif result.status == "untestable":
            untestable.append(fault)
        else:
            aborted.append(fault)
    return patterns, untestable, aborted
