"""Random test-pattern generation with fault-simulation feedback.

The classic ATPG front end: cheap random patterns knock out the easy
faults; PODEM is reserved for the random-resistant remainder.  The
returned coverage curve (patterns vs. coverage) is also an experiment
artifact — it shows the diminishing-returns knee that motivates
deterministic ATPG.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..circuit.netlist import Circuit
from ..faults.models import StuckAtFault
from ..sim.fault_sim import fault_simulate
from ..sim.logic import pack_patterns


@dataclass
class RandomTpgResult:
    """Patterns kept, faults they detect, and the coverage trajectory."""

    patterns: list[dict[str, int]] = field(default_factory=list)
    detected: set[StuckAtFault] = field(default_factory=set)
    remaining: list[StuckAtFault] = field(default_factory=list)
    curve: list[tuple[int, float]] = field(default_factory=list)  # (#patterns, coverage)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.remaining)
        return len(self.detected) / total if total else 1.0


def random_tpg(
    circuit: Circuit,
    faults: list[StuckAtFault],
    max_patterns: int = 512,
    batch: int = 32,
    target_coverage: float = 1.0,
    stall_batches: int = 4,
    seed: int = 0,
    full_scan: bool = True,
) -> RandomTpgResult:
    """Generate random patterns until coverage stalls or targets are met.

    Patterns that detect at least one *new* fault are kept; batches that
    detect nothing count toward ``stall_batches``, after which generation
    stops (the random-resistant faults are left in ``remaining``).
    """
    rng = random.Random(seed)
    pseudo_inputs = list(circuit.inputs) + list(circuit.flops)
    result = RandomTpgResult(remaining=list(faults))
    total = len(faults)
    stalls = 0
    n_generated = 0

    while (n_generated < max_patterns and result.remaining
           and result.coverage < target_coverage and stalls < stall_batches):
        size = min(batch, max_patterns - n_generated)
        batch_patterns = [
            {net: rng.getrandbits(1) for net in pseudo_inputs} for _ in range(size)
        ]
        n_generated += size
        packed = pack_patterns(batch_patterns)
        sim = fault_simulate(circuit, result.remaining, packed, size,
                             state=packed, full_scan=full_scan)
        if not sim.detected:
            stalls += 1
            result.curve.append((n_generated, result.coverage))
            continue
        stalls = 0
        useful_pattern_idx: set[int] = set()
        for fault, det_mask in sim.detected.items():
            result.detected.add(fault)
            useful_pattern_idx.add((det_mask & -det_mask).bit_length() - 1)
        result.remaining = list(sim.undetected)
        for idx in sorted(useful_pattern_idx):
            result.patterns.append(batch_patterns[idx])
        result.curve.append((n_generated, len(result.detected) / total if total else 1.0))
    return result
