"""Test generation: PODEM, random TPG, compaction, untestability, SBST."""

from .compaction import compact_greedy, compact_reverse
from .podem import Podem, PodemResult, generate_tests, podem
from .random_tpg import RandomTpgResult, random_tpg
from .sbst import (
    SbstCpuReport,
    cpu_fault_universe,
    functionally_safe_faults,
    run_cpu_sbst,
    sbst_programs,
)
from .untestable import (
    UntestableReport,
    classify_structural,
    constant_nets,
    functionally_untestable_delta,
    identify_untestable,
    unobservable_nets,
)

__all__ = [
    "Podem",
    "PodemResult",
    "RandomTpgResult",
    "SbstCpuReport",
    "UntestableReport",
    "cpu_fault_universe",
    "functionally_safe_faults",
    "run_cpu_sbst",
    "sbst_programs",
    "classify_structural",
    "compact_greedy",
    "compact_reverse",
    "constant_nets",
    "functionally_untestable_delta",
    "generate_tests",
    "identify_untestable",
    "podem",
    "random_tpg",
    "unobservable_nets",
]
