"""Static test-set compaction.

Given patterns and their fault-detection masks, keep a minimal subset
preserving coverage.  Greedy set cover with an essential-pattern seed is
the standard approach; reverse-order fault simulation is offered as the
cheaper alternative.  Compaction matters wherever test *time* is the
cost metric — the RSN test-duration experiments reuse the same
machinery on scan-vector sequences.
"""

from __future__ import annotations

from typing import Sequence

from ..circuit.netlist import Circuit
from ..faults.models import StuckAtFault
from ..sim.fault_sim import fault_simulate
from ..sim.logic import pack_patterns


def compact_greedy(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    patterns: Sequence[dict[str, int]],
    full_scan: bool = True,
) -> list[dict[str, int]]:
    """Greedy set-cover compaction.

    Fault-simulates the whole set once, then repeatedly keeps the pattern
    covering the most not-yet-covered faults (ties broken by pattern
    order, so the result is deterministic).
    """
    if not patterns:
        return []
    packed = pack_patterns(patterns)
    n = len(patterns)
    sim = fault_simulate(circuit, list(faults), packed, n, state=packed,
                         full_scan=full_scan)
    # pattern index -> set of detected faults
    by_pattern: dict[int, set[StuckAtFault]] = {i: set() for i in range(n)}
    for fault, mask in sim.detected.items():
        bits = mask
        while bits:
            low = bits & -bits
            by_pattern[low.bit_length() - 1].add(fault)
            bits ^= low
    uncovered = set(sim.detected)
    kept: list[int] = []
    while uncovered:
        best = max(range(n), key=lambda i: (len(by_pattern[i] & uncovered), -i))
        gain = by_pattern[best] & uncovered
        if not gain:
            break
        kept.append(best)
        uncovered -= gain
    kept.sort()
    return [dict(patterns[i]) for i in kept]


def compact_reverse(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    patterns: Sequence[dict[str, int]],
    full_scan: bool = True,
) -> list[dict[str, int]]:
    """Reverse-order compaction.

    Walk patterns from last to first; keep a pattern only if it detects a
    fault not detected by the already-kept ones.  Cheaper than set cover
    and usually nearly as small because late ATPG patterns target hard
    faults.
    """
    if not patterns:
        return []
    packed = pack_patterns(patterns)
    n = len(patterns)
    sim = fault_simulate(circuit, list(faults), packed, n, state=packed,
                         full_scan=full_scan)
    remaining = set(sim.detected)
    kept: list[int] = []
    for i in range(n - 1, -1, -1):
        newly = {f for f in remaining if (sim.detected[f] >> i) & 1}
        if newly:
            kept.append(i)
            remaining -= newly
        if not remaining:
            break
    kept.sort()
    return [dict(patterns[i]) for i in kept]
