"""ISO 26262 random-hardware-fault metrics (paper III.D).

Fault classification taxonomy and the three part-5 metrics:

* **SPFM** — single-point fault metric:
  ``1 − Σλ(single-point + residual) / Σλ(safety-related)``
* **LFM** — latent fault metric:
  ``1 − Σλ(latent) / Σλ(safety-related − single-point − residual)``
* **PMHF** — probabilistic metric for random hardware failures: the
  residual failure rate (FIT) that reaches the safety goal.

Per-ASIL targets follow the standard's tables: SPFM ≥ 90/97/99 %,
LFM ≥ 60/80/90 % for ASIL B/C/D, PMHF < 100/100/10 FIT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class FaultClass(str, Enum):
    """ISO 26262 fault classes for a safety-related element."""

    SAFE = "safe"                    # cannot violate the safety goal
    DETECTED = "detected"            # violates, but a mechanism catches it
    RESIDUAL = "residual"            # violates and escapes the mechanism
    LATENT_DETECTED = "latent_detected"  # multi-point, found by tests
    LATENT = "latent"                # multi-point, never perceived


@dataclass(frozen=True)
class ClassifiedFault:
    """One fault with its class and failure-rate share."""

    name: str
    fault_class: FaultClass
    fit: float = 1.0


#: (SPFM %, LFM %, PMHF FIT) targets per ASIL.
ASIL_METRIC_TARGETS: dict[str, tuple[float, float, float]] = {
    "ASIL-B": (0.90, 0.60, 100.0),
    "ASIL-C": (0.97, 0.80, 100.0),
    "ASIL-D": (0.99, 0.90, 10.0),
}


@dataclass
class SafetyMetrics:
    """Computed metrics plus the classification breakdown."""

    spfm: float
    lfm: float
    pmhf_fit: float
    breakdown: dict[FaultClass, float] = field(default_factory=dict)

    def meets(self, asil: str) -> bool:
        spfm_t, lfm_t, pmhf_t = ASIL_METRIC_TARGETS[asil]
        return self.spfm >= spfm_t and self.lfm >= lfm_t and self.pmhf_fit <= pmhf_t

    def gap(self, asil: str) -> dict[str, float]:
        """Signed distance to each target (positive = compliant margin)."""
        spfm_t, lfm_t, pmhf_t = ASIL_METRIC_TARGETS[asil]
        return {
            "spfm": self.spfm - spfm_t,
            "lfm": self.lfm - lfm_t,
            "pmhf_fit": pmhf_t - self.pmhf_fit,
        }


def compute_metrics(faults: list[ClassifiedFault]) -> SafetyMetrics:
    """Aggregate classified faults into SPFM / LFM / PMHF."""
    acc: dict[FaultClass, float] = {fc: 0.0 for fc in FaultClass}
    for fault in faults:
        acc[fault.fault_class] += fault.fit
    total = sum(acc.values())
    if total == 0:
        return SafetyMetrics(1.0, 1.0, 0.0, acc)
    dangerous = acc[FaultClass.RESIDUAL]
    spfm = 1.0 - dangerous / total
    latent_base = total - dangerous
    lfm = 1.0 - (acc[FaultClass.LATENT] / latent_base if latent_base else 0.0)
    pmhf = acc[FaultClass.RESIDUAL] + 0.5 * acc[FaultClass.LATENT]
    return SafetyMetrics(spfm, lfm, pmhf, acc)


def diagnostic_coverage(faults: list[ClassifiedFault]) -> float:
    """DC of the safety mechanism: detected / (detected + residual)."""
    detected = sum(f.fit for f in faults if f.fault_class is FaultClass.DETECTED)
    residual = sum(f.fit for f in faults if f.fault_class is FaultClass.RESIDUAL)
    denom = detected + residual
    return detected / denom if denom else 1.0


def classify_from_injection(
    name: str,
    violates_safety_goal: bool,
    caught_by_mechanism: bool,
    found_by_selftest: bool = True,
    fit: float = 1.0,
) -> ClassifiedFault:
    """Map raw fault-injection observations onto the ISO taxonomy.

    The decision tree mirrors the standard's flowchart: harmless → safe;
    harmful+caught → detected; harmful+escaped → residual; harmless but
    mechanism-corrupting faults are latent unless self-test finds them.
    """
    if violates_safety_goal and caught_by_mechanism:
        cls = FaultClass.DETECTED
    elif violates_safety_goal:
        cls = FaultClass.RESIDUAL
    elif caught_by_mechanism:
        # perceptible but harmless: counts as detected multi-point
        cls = FaultClass.LATENT_DETECTED
    elif found_by_selftest:
        cls = FaultClass.SAFE
    else:
        cls = FaultClass.LATENT
    return ClassifiedFault(name, cls, fit)
