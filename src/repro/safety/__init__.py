"""Functional-safety validation: ISO 26262 metrics, FMECA, tool confidence,
dynamic-slicing FI acceleration (paper Section III.D)."""

from .campaign import (
    SafetyCampaignResult,
    classify_injection_values,
    run_safety_campaign,
)
from .fmeca import FailureMode, Fmeca, occurrence_from_fit
from .iso26262 import (
    ASIL_METRIC_TARGETS,
    ClassifiedFault,
    FaultClass,
    SafetyMetrics,
    classify_from_injection,
    compute_metrics,
    diagnostic_coverage,
)
from .slicing import (
    CampaignOutcome,
    run_naive_campaign,
    run_sliced_campaign,
    verify_equivalence,
)
from .tool_confidence import (
    DETECTABLE,
    UNDETECTABLE,
    UNKNOWN,
    CrossCheckReport,
    atpg_classifier,
    buggy_drops_branch_faults,
    buggy_optimistic,
    cross_check,
    default_engines,
    fi_classifier,
    formal_classifier,
)

__all__ = [
    "ASIL_METRIC_TARGETS",
    "CampaignOutcome",
    "ClassifiedFault",
    "CrossCheckReport",
    "DETECTABLE",
    "FailureMode",
    "FaultClass",
    "Fmeca",
    "SafetyCampaignResult",
    "SafetyMetrics",
    "UNDETECTABLE",
    "UNKNOWN",
    "atpg_classifier",
    "buggy_drops_branch_faults",
    "buggy_optimistic",
    "classify_from_injection",
    "classify_injection_values",
    "compute_metrics",
    "cross_check",
    "default_engines",
    "diagnostic_coverage",
    "fi_classifier",
    "formal_classifier",
    "occurrence_from_fit",
    "run_naive_campaign",
    "run_safety_campaign",
    "run_sliced_campaign",
    "verify_equivalence",
]
