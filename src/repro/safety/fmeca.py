"""FMECA — Failure Mode, Effects and Criticality Analysis (paper III.D).

"In early stages of the flow, techniques for supporting architects and
reliability experts in performing FMECA are introduced."  This module is
that support: a failure-mode registry with severity/occurrence/detection
scoring, risk-priority numbers, a criticality matrix, and a bridge that
derives occurrence scores from FIT data so the sheet stays consistent
with the quantitative reliability analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class FailureMode:
    """One row of the FMECA sheet (scores on the classic 1–10 scales)."""

    component: str
    mode: str
    effect: str
    severity: int
    occurrence: int
    detection: int  # 1 = always detected … 10 = undetectable

    def __post_init__(self) -> None:
        for label, score in (("severity", self.severity),
                             ("occurrence", self.occurrence),
                             ("detection", self.detection)):
            if not 1 <= score <= 10:
                raise ValueError(f"{label} must be in 1..10, got {score}")

    @property
    def rpn(self) -> int:
        """Risk priority number = S × O × D."""
        return self.severity * self.occurrence * self.detection

    @property
    def criticality(self) -> int:
        """Criticality (S × O), independent of detection."""
        return self.severity * self.occurrence


def occurrence_from_fit(fit: float) -> int:
    """Map a failure rate in FIT onto the 1–10 occurrence scale.

    Decade bands: <0.1 FIT → 1, each ×10 adds one point, ≥1e8 FIT → 10.
    """
    if fit < 0:
        raise ValueError("fit must be non-negative")
    score = 1
    threshold = 0.1
    while fit >= threshold and score < 10:
        score += 1
        threshold *= 10
    return score


@dataclass
class Fmeca:
    """A failure-mode worksheet with ranking and gating queries."""

    system: str
    modes: list[FailureMode] = field(default_factory=list)

    def add(self, mode: FailureMode) -> "Fmeca":
        self.modes.append(mode)
        return self

    def ranked(self) -> list[FailureMode]:
        """Modes by descending RPN (the action-priority list)."""
        return sorted(self.modes, key=lambda m: (-m.rpn, m.component, m.mode))

    def above_threshold(self, rpn_threshold: int = 100) -> list[FailureMode]:
        """Modes requiring corrective action under the usual RPN>100 rule."""
        return [m for m in self.ranked() if m.rpn > rpn_threshold]

    def criticality_matrix(self) -> dict[tuple[int, int], list[FailureMode]]:
        """(severity, occurrence) → modes, the classic criticality grid."""
        grid: dict[tuple[int, int], list[FailureMode]] = {}
        for mode in self.modes:
            grid.setdefault((mode.severity, mode.occurrence), []).append(mode)
        return grid

    def rows(self) -> list[tuple]:
        """Report rows for :func:`repro.core.report.format_table`."""
        return [
            (m.component, m.mode, m.effect, m.severity, m.occurrence,
             m.detection, m.rpn)
            for m in self.ranked()
        ]

    def mitigation_effect(self, component: str, new_detection: int) -> dict[str, int]:
        """RPN before/after improving detection for one component.

        Models adding a safety mechanism (better detection score) and
        reports the total RPN drop — the quantitative argument FMECA
        makes for a design change.
        """
        before = sum(m.rpn for m in self.modes if m.component == component)
        after = sum(
            FailureMode(m.component, m.mode, m.effect, m.severity,
                        m.occurrence, min(m.detection, new_detection)).rpn
            for m in self.modes if m.component == component
        )
        return {"rpn_before": before, "rpn_after": after, "reduction": before - after}
