"""Tool-confidence verification for fault-analysis flows (III.D, [20][48][50]).

ISO 26262 part 8 requires confidence in the *tools* themselves.  The
RESCUE methodology "combin[es] the strengths of Automatic Test Pattern
generators (ATPGs), Formal methods and Fault Injection (FI) simulation to
automatically verify tools and detect any errors in their fault
classification".

We build three independent classifiers answering the same question —
*is this stuck-at fault detectable at the observation points?* —

* **ATPG engine**: PODEM; complete, so 'untestable' verdicts are proofs.
* **Formal engine**: exhaustive bit-parallel simulation over all input
  combinations (a bounded model check of detectability).
* **FI engine**: random-pattern fault injection; sound for 'detectable',
  may under-approximate (report 'undetected') — exactly the asymmetry
  real FI tools have.

Cross-checking produces an agreement matrix; any *hard* disagreement
(ATPG-untestable vs formally-detectable, or vice versa) indicates a tool
bug.  ``SeededBug`` wrappers corrupt one engine deliberately so the
methodology's bug-finding power is itself testable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..circuit.netlist import Circuit
from ..faults.models import StuckAtFault
from ..sim.fault_sim import fault_simulate
from ..sim.logic import exhaustive_patterns, pack_patterns
from .iso26262 import FaultClass
from ..atpg.podem import Podem

DETECTABLE = "detectable"
UNDETECTABLE = "undetectable"
UNKNOWN = "unknown"

Verdict = str
Classifier = Callable[[Circuit, Sequence[StuckAtFault]], dict[StuckAtFault, Verdict]]


def atpg_classifier(circuit: Circuit, faults: Sequence[StuckAtFault],
                    backtrack_limit: int = 50_000) -> dict[StuckAtFault, Verdict]:
    """PODEM-based classification (complete up to the backtrack limit)."""
    engine = Podem(circuit, backtrack_limit)
    out = {}
    for fault in faults:
        res = engine.run(fault)
        out[fault] = {"detected": DETECTABLE, "untestable": UNDETECTABLE,
                      "aborted": UNKNOWN}[res.status]
    return out


def formal_classifier(circuit: Circuit,
                      faults: Sequence[StuckAtFault]) -> dict[StuckAtFault, Verdict]:
    """Exhaustive-simulation classification (exact for ≤ ~16 inputs)."""
    pseudo = list(circuit.inputs) + list(circuit.flops)
    if len(pseudo) > 20:
        raise ValueError("formal engine limited to 20 pseudo-inputs "
                         f"({circuit.name} has {len(pseudo)})")
    packed, n = exhaustive_patterns(pseudo)
    state = {q: packed[q] for q in circuit.flops}
    sim = fault_simulate(circuit, list(faults), packed, n, state=state,
                         full_scan=True)
    out = {f: DETECTABLE for f in sim.detected}
    out.update({f: UNDETECTABLE for f in sim.undetected})
    return out


def fi_classifier(circuit: Circuit, faults: Sequence[StuckAtFault],
                  n_patterns: int = 64, seed: int = 0) -> dict[StuckAtFault, Verdict]:
    """Random fault injection: sound for DETECTABLE, incomplete otherwise."""
    rng = random.Random(seed)
    pseudo = list(circuit.inputs) + list(circuit.flops)
    packed = {net: rng.getrandbits(n_patterns) for net in pseudo}
    state = {q: packed[q] for q in circuit.flops}
    sim = fault_simulate(circuit, list(faults), packed, n_patterns, state=state,
                         full_scan=True)
    out = {f: DETECTABLE for f in sim.detected}
    out.update({f: UNKNOWN for f in sim.undetected})
    return out


# ----------------------------------------------------------------------
# seeded tool bugs (for validating the methodology)
# ----------------------------------------------------------------------
def buggy_drops_branch_faults(base: Classifier) -> Classifier:
    """A 'tool bug': branch (gate-input) faults are misreported undetectable."""
    def classify(circuit: Circuit, faults: Sequence[StuckAtFault]):
        out = base(circuit, faults)
        for fault in faults:
            if not fault.line.is_stem:
                out[fault] = UNDETECTABLE
        return out
    return classify


def buggy_optimistic(base: Classifier, every: int = 7) -> Classifier:
    """A 'tool bug': every n-th undetectable fault reported detectable."""
    def classify(circuit: Circuit, faults: Sequence[StuckAtFault]):
        out = base(circuit, faults)
        for i, fault in enumerate(sorted(out)):
            if out[fault] == UNDETECTABLE and i % every == 0:
                out[fault] = DETECTABLE
        return out
    return classify


# ----------------------------------------------------------------------
# cross-check
# ----------------------------------------------------------------------
@dataclass
class CrossCheckReport:
    """Agreement analysis between classification engines."""

    verdicts: dict[str, dict[StuckAtFault, Verdict]] = field(default_factory=dict)
    hard_disagreements: list[tuple[StuckAtFault, dict[str, Verdict]]] = field(default_factory=list)
    soft_disagreements: list[tuple[StuckAtFault, dict[str, Verdict]]] = field(default_factory=list)

    @property
    def engines(self) -> list[str]:
        return list(self.verdicts)

    def agreement_matrix(self) -> dict[tuple[str, str], float]:
        """Pairwise fraction of faults with compatible verdicts."""
        names = self.engines
        matrix: dict[tuple[str, str], float] = {}
        for a in names:
            for b in names:
                va, vb = self.verdicts[a], self.verdicts[b]
                common = [f for f in va if f in vb]
                if not common:
                    matrix[(a, b)] = 1.0
                    continue
                ok = sum(1 for f in common if _compatible(va[f], vb[f]))
                matrix[(a, b)] = ok / len(common)
        return matrix

    @property
    def tool_bug_suspected(self) -> bool:
        return bool(self.hard_disagreements)


def _compatible(a: Verdict, b: Verdict) -> bool:
    """UNKNOWN is compatible with anything; binary verdicts must match."""
    if UNKNOWN in (a, b):
        return True
    return a == b


def cross_check(circuit: Circuit, faults: Sequence[StuckAtFault],
                engines: dict[str, Classifier]) -> CrossCheckReport:
    """Run every engine and collect disagreements.

    *Hard* disagreement: one engine says DETECTABLE and another says
    UNDETECTABLE for the same fault — at least one tool is wrong.
    *Soft*: an UNKNOWN against a binary verdict (expected for FI).
    """
    report = CrossCheckReport()
    for name, classify in engines.items():
        report.verdicts[name] = classify(circuit, faults)
    for fault in faults:
        votes = {name: report.verdicts[name].get(fault, UNKNOWN)
                 for name in report.verdicts}
        values = set(votes.values())
        if DETECTABLE in values and UNDETECTABLE in values:
            report.hard_disagreements.append((fault, votes))
        elif UNKNOWN in values and len(values) > 1:
            report.soft_disagreements.append((fault, votes))
    return report


def default_engines() -> dict[str, Classifier]:
    """The paper's trio: ATPG + formal + FI."""
    return {
        "atpg": atpg_classifier,
        "formal": formal_classifier,
        "fi": fi_classifier,
    }


def iso_fault_class_of(verdict: Verdict, safety_relevant: bool) -> FaultClass:
    """Bridge from detectability verdicts to ISO fault classes.

    Used by the safety campaign when a mechanism's detection logic is the
    observation point: detectable faults are DETECTED, undetectable but
    safety-relevant ones are RESIDUAL candidates.
    """
    if verdict == DETECTABLE:
        return FaultClass.DETECTED
    if safety_relevant:
        return FaultClass.RESIDUAL
    return FaultClass.SAFE
