"""Dynamic-slicing acceleration of fault-injection campaigns (III.D, [49][51]).

A gate-level FI campaign injects (fault, cycle) pairs and simulates the
remaining testbench for each.  Most injections are wasted: either the
fault site already holds the forced value at the injection cycle
(no activation), or its fan-out cone cannot reach an observable before
the testbench ends.  Dynamic slicing computes both conditions from the
*golden* simulation alone — one cheap pass — and skips the doomed
injections.  [51] reports campaign-time reductions of this flavour; the
acceleration must be *lossless* (identical classifications), which
``verify_equivalence`` checks and the tests enforce.

The skip rules are the engine's **point-filter stage**
(:class:`repro.engine.SlicingBackend.filter_points`): both campaign
facades delegate to :func:`repro.engine.core.run_campaign`, skipped
injections are first-class engine outcomes, and every counter on
:class:`CampaignOutcome` derives from the engine's own accounting — the
skip fraction can no longer drift from the classification table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..circuit.netlist import Circuit
from ..faults.models import StuckAtFault
from ..sim.fault_sim import faulty_values
from ..sim.logic import simulate


@dataclass
class CampaignOutcome:
    """Classification of every (fault, cycle) injection plus cost metrics.

    ``simulated`` and the per-rule skip counters are populated from the
    engine report's executed/filtered split (one source of truth), so
    ``total`` always equals ``len(classifications)``.
    """

    classifications: dict[tuple[StuckAtFault, int], str] = field(default_factory=dict)
    simulated: int = 0
    skipped_no_activation: int = 0
    skipped_no_path: int = 0

    @property
    def total(self) -> int:
        return (self.simulated + self.skipped_no_activation
                + self.skipped_no_path)

    @property
    def skip_fraction(self) -> float:
        return 1 - self.simulated / self.total if self.total else 0.0

    def speedup_estimate(self, per_sim_cost: float = 1.0,
                         per_slice_cost: float = 0.02) -> float:
        """Campaign-cost ratio naive/sliced under a simple cost model."""
        naive = self.total * per_sim_cost
        sliced = self.simulated * per_sim_cost + self.total * per_slice_cost
        return naive / sliced if sliced else 1.0

    @classmethod
    def from_report(cls, report) -> "CampaignOutcome":
        """Build the outcome from an engine report: classifications from
        executed + filtered injections, counters from the engine's
        filter accounting."""
        from ..engine.workloads import SKIP_NO_ACTIVATION, SKIP_NO_PATH

        outcome = cls(simulated=report.executed)
        for inj in report.injections:
            outcome.classifications[inj.point] = inj.outcome
        for inj in report.skipped:
            outcome.classifications[inj.point] = inj.outcome
            if inj.detail == SKIP_NO_PATH:
                outcome.skipped_no_path += 1
            elif inj.detail == SKIP_NO_ACTIVATION:
                outcome.skipped_no_activation += 1
            else:  # a rule this result type cannot attribute
                raise ValueError(f"unknown skip rule {inj.detail!r}")
        assert outcome.total == report.total == len(outcome.classifications)
        return outcome


def _golden_states(circuit: Circuit, stimuli: Sequence[Mapping[str, int]]):
    """State and full net values per cycle of the fault-free run."""
    state = {q: (1 if f.init else 0) for q, f in circuit.flops.items()}
    states, values = [], []
    for stim in stimuli:
        vals = simulate(circuit, stim, 1, state)
        states.append(dict(state))
        values.append(vals)
        state = {q: vals[f.d] for q, f in circuit.flops.items()}
    return states, values


def _simulate_injection(
    circuit: Circuit,
    fault: StuckAtFault,
    cycle: int,
    stimuli: Sequence[Mapping[str, int]],
    golden_values: list[dict[str, int]],
    golden_states: list[dict[str, int]],
    persistent: bool = False,
) -> str:
    """Simulate from the injection cycle on; classify failure/latent/masked.

    ``persistent`` False models a transient stuck condition lasting one
    cycle (an SET-like event); True keeps the line forced to the end.
    """
    state = dict(golden_states[cycle])
    for cyc in range(cycle, len(stimuli)):
        good_vals = simulate(circuit, stimuli[cyc], 1, state)
        if cyc == cycle or persistent:
            vals = faulty_values(circuit, fault, good_vals, 1)
        else:
            vals = good_vals
        if any(vals.get(po, 0) != golden_values[cyc].get(po, 0)
               for po in circuit.outputs):
            return "failure"
        state = {}
        for q, flop in circuit.flops.items():
            if (not fault.line.is_stem and fault.line.sink == q
                    and (cyc == cycle or persistent)):
                state[q] = vals.get(f"__flopD__{q}", vals[flop.d])
            else:
                state[q] = vals[flop.d]
        if cyc + 1 < len(stimuli) and state == golden_states[cyc + 1]:
            return "masked"  # converged back to golden: nothing can differ later
    final_golden = ({q: golden_values[-1][f.d] for q, f in circuit.flops.items()}
                    if stimuli else {})
    return "latent" if state != final_golden else "masked"


def _run_slicing_campaign(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    stimuli: Sequence[Mapping[str, int]],
    cycles: Sequence[int] | None,
    use_filter: bool,
    db,
    workers: int,
    executor: str,
    lane_width: int | None,
    lane_backing: str | None = None,
    resume: int | None = None,
) -> CampaignOutcome:
    from ..engine.core import EngineConfig, run_campaign
    from ..engine.workloads import SlicingBackend

    kwargs = {} if lane_width is None else {"lane_width": lane_width}
    if lane_backing is not None:
        kwargs["lane_backing"] = lane_backing
    backend = SlicingBackend(circuit, faults, stimuli, cycles,
                             use_filter=use_filter, **kwargs)
    report = run_campaign(
        backend, EngineConfig(batch_size=32, workers=workers,
                              executor=executor), db=db, resume=resume)
    return CampaignOutcome.from_report(report)


def run_naive_campaign(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    stimuli: Sequence[Mapping[str, int]],
    cycles: Sequence[int] | None = None,
    db=None,
    workers: int = 1,
    executor: str = "auto",
    lane_width: int | None = None,
    lane_backing: str | None = None,
    resume: int | None = None,
) -> CampaignOutcome:
    """Simulate every (fault, cycle) pair — the reference cost.

    Runs on the unified engine with the point filter disabled
    (``db``/``workers``/``executor``/``lane_width``/``lane_backing``
    passthrough; lane packing shares the multi-cycle propagation of up
    to ``lane_width`` injections per run — any width via the vector
    tier — with byte-identical classifications).  ``resume`` restarts a
    checkpointed campaign from its last committed chunk.
    """
    return _run_slicing_campaign(circuit, faults, stimuli, cycles,
                                 use_filter=False, db=db, workers=workers,
                                 executor=executor, lane_width=lane_width,
                                 lane_backing=lane_backing, resume=resume)


def run_sliced_campaign(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    stimuli: Sequence[Mapping[str, int]],
    cycles: Sequence[int] | None = None,
    db=None,
    workers: int = 1,
    executor: str = "auto",
    lane_width: int | None = None,
    lane_backing: str | None = None,
    resume: int | None = None,
) -> CampaignOutcome:
    """The accelerated campaign: skip provably-masked injections.

    Skip rules (both derived from the golden pass only, implemented as
    the engine point-filter stage of
    :class:`repro.engine.SlicingBackend`):

    1. *No activation*: the golden value at the fault line equals the
       forced value at the injection cycle → the machines are identical →
       masked, no simulation needed.
    2. *No structural path*: the static fan-out cone (through flops)
       contains no observable — masked forever.  (A dynamic refinement
       triggers per-cycle; the static check already covers dead logic.)

    Classifications are byte-identical to :func:`run_naive_campaign`
    (``verify_equivalence`` holds by construction of the lossless
    rules); ``simulated``/``skipped_*`` come from the engine's
    executed/filtered accounting.
    """
    return _run_slicing_campaign(circuit, faults, stimuli, cycles,
                                 use_filter=True, db=db, workers=workers,
                                 executor=executor, lane_width=lane_width,
                                 lane_backing=lane_backing, resume=resume)


def verify_equivalence(naive: CampaignOutcome, sliced: CampaignOutcome) -> bool:
    """The acceleration is only legitimate if classifications match exactly."""
    return naive.classifications == sliced.classifications
