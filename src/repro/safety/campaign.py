"""Safety fault-injection campaigns with ISO 26262 classification.

Couples the FI machinery to the metric layer: each injected fault is
observed on two groups of outputs — the *mission* outputs (whose
corruption violates the safety goal) and the *detection* outputs (alarm
signals of safety mechanisms such as lockstep comparators, ECC flags or
watchdogs) — and mapped onto the ISO fault classes.  The result feeds
SPFM/LFM/PMHF and the ASIL verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..circuit.netlist import Circuit
from ..faults.models import StuckAtFault
from ..sim.fault_sim import faulty_values
from ..sim.logic import mask_of, simulate
from .iso26262 import (
    ClassifiedFault,
    FaultClass,
    SafetyMetrics,
    compute_metrics,
)


@dataclass
class SafetyCampaignResult:
    """Classified faults plus derived metrics."""

    classified: list[ClassifiedFault] = field(default_factory=list)
    metrics: SafetyMetrics | None = None

    def count(self, fault_class: FaultClass) -> int:
        return sum(1 for f in self.classified if f.fault_class is fault_class)

    def rows(self) -> list[tuple]:
        order = [FaultClass.SAFE, FaultClass.DETECTED, FaultClass.RESIDUAL,
                 FaultClass.LATENT_DETECTED, FaultClass.LATENT]
        total = len(self.classified) or 1
        return [(fc.value, self.count(fc), round(self.count(fc) / total, 4))
                for fc in order]


def run_safety_campaign(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    mission_outputs: Sequence[str],
    detection_outputs: Sequence[str],
    patterns: Mapping[str, int],
    n_patterns: int,
    state: Mapping[str, int] | None = None,
    fit_per_fault: float = 1.0,
) -> SafetyCampaignResult:
    """Inject every fault under packed patterns and classify per ISO.

    A fault *violates the safety goal* when any mission output differs in
    any pattern; it is *caught* when any detection output fires (differs
    from golden) in at least every pattern where a mission output is
    wrong — partial detection counts as residual, matching the
    conservative reading of the standard.
    """
    mask = mask_of(n_patterns)
    good = simulate(circuit, patterns, n_patterns, state)
    result = SafetyCampaignResult()
    for fault in faults:
        bad = faulty_values(circuit, fault, good, mask)
        mission_diff = 0
        for net in mission_outputs:
            mission_diff |= (good.get(net, 0) ^ bad.get(net, 0)) & mask
        detect_diff = 0
        for net in detection_outputs:
            detect_diff |= (good.get(net, 0) ^ bad.get(net, 0)) & mask
        violates = bool(mission_diff)
        caught = bool(detect_diff) and (mission_diff & ~detect_diff) == 0
        perceived = bool(detect_diff)
        if violates and caught:
            cls = FaultClass.DETECTED
        elif violates:
            cls = FaultClass.RESIDUAL
        elif perceived:
            cls = FaultClass.LATENT_DETECTED
        else:
            cls = FaultClass.SAFE
        result.classified.append(
            ClassifiedFault(fault.describe(), cls, fit_per_fault))
    result.metrics = compute_metrics(result.classified)
    return result
