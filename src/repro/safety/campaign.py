"""Safety fault-injection campaigns with ISO 26262 classification.

Couples the FI machinery to the metric layer: each injected fault is
observed on two groups of outputs — the *mission* outputs (whose
corruption violates the safety goal) and the *detection* outputs (alarm
signals of safety mechanisms such as lockstep comparators, ECC flags or
watchdogs) — and mapped onto the ISO fault classes.  The result feeds
SPFM/LFM/PMHF and the ASIL verdict.

Execution is delegated to the unified campaign engine
(:mod:`repro.engine`): this module keeps the classification semantics
and the public result type, while batching, worker pools and CampaignDb
persistence come from the shared core.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..circuit.netlist import Circuit
from ..faults.models import StuckAtFault
from .iso26262 import (
    ClassifiedFault,
    FaultClass,
    SafetyMetrics,
    compute_metrics,
)


@dataclass
class SafetyCampaignResult:
    """Classified faults plus derived metrics."""

    classified: list[ClassifiedFault] = field(default_factory=list)
    metrics: SafetyMetrics | None = None

    def count(self, fault_class: FaultClass) -> int:
        return sum(1 for f in self.classified if f.fault_class is fault_class)

    def rows(self) -> list[tuple]:
        order = [FaultClass.SAFE, FaultClass.DETECTED, FaultClass.RESIDUAL,
                 FaultClass.LATENT_DETECTED, FaultClass.LATENT]
        total = len(self.classified) or 1
        return [(fc.value, self.count(fc), round(self.count(fc) / total, 4))
                for fc in order]


def classify_injection_values(
    good: Mapping[str, int],
    bad: Mapping[str, int],
    mask: int,
    mission_outputs: Sequence[str],
    detection_outputs: Sequence[str],
) -> FaultClass:
    """Map one injection's good/faulty values onto an ISO fault class.

    A fault *violates the safety goal* when any mission output differs in
    any pattern; it is *caught* when any detection output fires (differs
    from golden) in at least every pattern where a mission output is
    wrong — partial detection counts as residual, matching the
    conservative reading of the standard.
    """
    mission_diff = 0
    for net in mission_outputs:
        mission_diff |= (good.get(net, 0) ^ bad.get(net, 0)) & mask
    detect_diff = 0
    for net in detection_outputs:
        detect_diff |= (good.get(net, 0) ^ bad.get(net, 0)) & mask
    violates = bool(mission_diff)
    caught = bool(detect_diff) and (mission_diff & ~detect_diff) == 0
    perceived = bool(detect_diff)
    if violates and caught:
        return FaultClass.DETECTED
    if violates:
        return FaultClass.RESIDUAL
    if perceived:
        return FaultClass.LATENT_DETECTED
    return FaultClass.SAFE


def run_safety_campaign(
    circuit: Circuit,
    faults: Sequence[StuckAtFault],
    mission_outputs: Sequence[str],
    detection_outputs: Sequence[str],
    patterns: Mapping[str, int],
    n_patterns: int,
    state: Mapping[str, int] | None = None,
    fit_per_fault: float = 1.0,
    db=None,
    workers: int = 1,
    executor: str = "auto",
    resume: int | None = None,
) -> SafetyCampaignResult:
    """Inject every fault under packed patterns and classify per ISO.

    Runs on the unified engine: pass ``db`` (a
    :class:`repro.core.campaign.CampaignDb`) to persist every injection,
    ``workers`` > 1 to execute batches concurrently, and ``executor``
    to pick the strategy (serial/thread/process/auto) — results are
    identical at any worker count and executor choice.  ``resume``
    restarts a checkpointed campaign (requires the same ``db``) from its
    last committed chunk, byte-identical to an uninterrupted run.
    """
    from ..engine.backends import SafetyBackend
    from ..engine.core import EngineConfig, run_campaign

    backend = SafetyBackend(circuit, faults, mission_outputs,
                            detection_outputs, patterns, n_patterns, state)
    report = run_campaign(backend,
                          EngineConfig(workers=workers, executor=executor),
                          db=db, resume=resume)
    result = SafetyCampaignResult()
    for inj in report.injections:
        result.classified.append(
            ClassifiedFault(inj.location, FaultClass(inj.outcome),
                            fit_per_fault))
    result.metrics = compute_metrics(result.classified)
    return result
