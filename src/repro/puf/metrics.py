"""PUF quality metrics: reliability, uniqueness, uniformity, entropy.

The standard figure-of-merit set for "reliability and entropy
performance" (paper III.F):

* **intra-device HD** (reliability): fractional Hamming distance between
  a device's enrollment response and later readouts — want ≈ 0;
* **inter-device HD** (uniqueness): fractional HD between *different*
  devices — want ≈ 0.5;
* **uniformity**: fraction of 1-bits per device — want ≈ 0.5;
* **bit-aliasing**: per-bit-position mean across devices — positions
  stuck at 0/1 across the population leak structure;
* **min-entropy**: −log2(max(p, 1−p)) averaged over positions, the
  conservative key-material bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sram_puf import SramPuf


def fractional_hd(a: np.ndarray, b: np.ndarray) -> float:
    """Hamming distance / length for two bit arrays."""
    if a.shape != b.shape:
        raise ValueError("responses must have equal length")
    return float(np.mean(a != b))


def intra_device_hd(
    puf: SramPuf,
    n_readouts: int = 20,
    temp_c: float = 25.0,
    vdd: float = 0.8,
) -> float:
    """Mean fractional HD between enrollment and repeated readouts."""
    reference = puf.reference_response()
    distances = [
        fractional_hd(reference, puf.power_up(temp_c, vdd))
        for _ in range(n_readouts)
    ]
    return float(np.mean(distances))


def inter_device_hd(pufs: list[SramPuf]) -> float:
    """Mean pairwise fractional HD between device references."""
    refs = [p.reference_response() for p in pufs]
    distances = []
    for i in range(len(refs)):
        for j in range(i + 1, len(refs)):
            distances.append(fractional_hd(refs[i], refs[j]))
    return float(np.mean(distances)) if distances else 0.0


def uniformity(puf: SramPuf) -> float:
    """Fraction of ones in the reference response."""
    return float(np.mean(puf.reference_response()))


def bit_aliasing(pufs: list[SramPuf]) -> np.ndarray:
    """Per-position mean across the population (want ≈ 0.5 everywhere)."""
    refs = np.stack([p.reference_response() for p in pufs])
    return refs.mean(axis=0)


def min_entropy_per_bit(pufs: list[SramPuf]) -> float:
    """Average min-entropy per position from population statistics."""
    alias = bit_aliasing(pufs)
    p_max = np.maximum(alias, 1.0 - alias)
    p_max = np.clip(p_max, 1e-12, 1.0)
    return float(np.mean(-np.log2(p_max)))


@dataclass
class PufScorecard:
    """The metric set for one technology/population."""

    technology: str
    intra_hd_25c: float
    intra_hd_hot: float
    intra_hd_cold: float
    inter_hd: float
    uniformity: float
    min_entropy: float

    def rows(self) -> list[tuple[str, float]]:
        return [
            ("intra-HD @25C (reliability)", self.intra_hd_25c),
            ("intra-HD @85C", self.intra_hd_hot),
            ("intra-HD @-40C", self.intra_hd_cold),
            ("inter-HD (uniqueness)", self.inter_hd),
            ("uniformity", self.uniformity),
            ("min-entropy/bit", self.min_entropy),
        ]


def scorecard(pufs: list[SramPuf], n_readouts: int = 10) -> PufScorecard:
    """Full evaluation of a device population."""
    if not pufs:
        raise ValueError("empty population")
    sample = pufs[0]
    return PufScorecard(
        technology=sample.technology.name,
        intra_hd_25c=float(np.mean([
            intra_device_hd(p, n_readouts, 25.0) for p in pufs])),
        intra_hd_hot=float(np.mean([
            intra_device_hd(p, n_readouts, 85.0) for p in pufs])),
        intra_hd_cold=float(np.mean([
            intra_device_hd(p, n_readouts, -40.0) for p in pufs])),
        inter_hd=inter_device_hd(pufs),
        uniformity=float(np.mean([uniformity(p) for p in pufs])),
        min_entropy=min_entropy_per_bit(pufs),
    )
