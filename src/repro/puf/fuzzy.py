"""Fuzzy extractor: reliable keys from noisy PUF responses.

The code-offset construction with a concatenated code:

* outer code: Hamming(7,4) SEC (from ``repro.ftol.ecc``);
* inner code: n-fold repetition (majority decode),

so each 4-bit key nibble costs 7·n response bits and survives one
repetition-block failure per Hamming codeword.  ``helper = C(k) ⊕ r``
is stored publicly at enrollment; reconstruction decodes
``helper ⊕ r' = C(k) ⊕ e`` where ``e`` is the response noise.
The key itself is ``SHA-256(k)`` — helper data leaks nothing about it
beyond code structure (information-theoretic argument of the scheme).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..ftol.ecc import Hamming


@dataclass
class FuzzyExtractorConfig:
    key_nibbles: int = 32        # 4 bits each -> 128-bit key material
    repetition: int = 5

    @property
    def response_bits(self) -> int:
        return self.key_nibbles * 7 * self.repetition


@dataclass
class HelperData:
    """Public helper data stored at enrollment."""

    offset: np.ndarray           # codeword XOR response
    config: FuzzyExtractorConfig


class FuzzyExtractor:
    """Code-offset fuzzy extractor over Hamming(7,4) × repetition."""

    def __init__(self, config: FuzzyExtractorConfig | None = None) -> None:
        self.config = config or FuzzyExtractorConfig()
        self.hamming = Hamming(4, extended=False)

    # ------------------------------------------------------------------
    def _encode(self, nibbles: list[int]) -> np.ndarray:
        bits: list[int] = []
        for nib in nibbles:
            codeword = self.hamming.encode(nib)
            for b in range(7):
                bit = (codeword >> b) & 1
                bits.extend([bit] * self.config.repetition)
        return np.array(bits, dtype=np.uint8)

    def _decode(self, bits: np.ndarray) -> list[int]:
        rep = self.config.repetition
        nibbles = []
        pos = 0
        for _ in range(self.config.key_nibbles):
            codeword = 0
            for b in range(7):
                chunk = bits[pos:pos + rep]
                pos += rep
                if int(chunk.sum()) * 2 > rep:
                    codeword |= 1 << b
            nibbles.append(self.hamming.decode(codeword).data)
        return nibbles

    # ------------------------------------------------------------------
    def enroll(self, response: np.ndarray, secret_seed: int = 0) -> tuple[bytes, HelperData]:
        """Generate (key, helper) from an enrollment response."""
        need = self.config.response_bits
        if len(response) < need:
            raise ValueError(f"need {need} response bits, got {len(response)}")
        rng = np.random.default_rng(secret_seed)
        nibbles = [int(x) for x in rng.integers(0, 16, self.config.key_nibbles)]
        codeword = self._encode(nibbles)
        offset = codeword ^ response[:need]
        key = self._key_from_nibbles(nibbles)
        return key, HelperData(offset, self.config)

    def reconstruct(self, noisy_response: np.ndarray, helper: HelperData) -> bytes:
        """Recover the key from a later (noisy) readout plus helper data."""
        need = helper.config.response_bits
        if len(noisy_response) < need:
            raise ValueError(f"need {need} response bits")
        noisy_codeword = helper.offset ^ noisy_response[:need]
        nibbles = self._decode(noisy_codeword)
        return self._key_from_nibbles(nibbles)

    @staticmethod
    def _key_from_nibbles(nibbles: list[int]) -> bytes:
        packed = bytearray()
        for i in range(0, len(nibbles) - 1, 2):
            packed.append((nibbles[i] << 4) | nibbles[i + 1])
        return hashlib.sha256(bytes(packed)).digest()


def key_failure_rate(
    puf,
    helper: HelperData,
    key: bytes,
    extractor: FuzzyExtractor,
    n_trials: int = 50,
    temp_c: float = 25.0,
    vdd: float = 0.8,
) -> float:
    """Fraction of reconstructions that fail at the given conditions."""
    failures = 0
    for _ in range(n_trials):
        response = puf.power_up(temp_c, vdd)
        if extractor.reconstruct(response, helper) != key:
            failures += 1
    return failures / n_trials
