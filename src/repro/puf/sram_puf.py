"""SRAM PUF simulation framework (III.F, [6] and the FinFET PUF thrust).

An SRAM cell's power-up state is decided by the threshold-voltage
mismatch between its cross-coupled inverters: a large |mismatch| gives a
stable, device-unique bit; a small one lets thermal noise decide.  The
simulation models each cell as

    bit = sign(mismatch + temp_coeff·ΔT + vdd_coeff·ΔV + noise)

with per-cell ``mismatch``/``temp_coeff``/``vdd_coeff`` drawn once from
device distributions (the *identity*) and fresh ``noise`` per power-up.

Technology presets capture the paper's motivation to "validate PUF
designs under these emerging technologies": FinFET fins quantize device
width, strengthening mismatch relative to noise — a better PUF — while
planar bulk shows more marginal cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class PufTechnology:
    """Distribution parameters of one technology node."""

    name: str
    sigma_mismatch_mv: float   # inter-device Vth mismatch spread
    sigma_noise_mv: float      # per-power-up thermal noise
    sigma_temp_uv_per_c: float # per-cell temperature sensitivity spread
    sigma_vdd_mv_per_v: float  # per-cell supply sensitivity spread


PLANAR_28NM = PufTechnology("planar_28nm", sigma_mismatch_mv=30.0,
                            sigma_noise_mv=3.5, sigma_temp_uv_per_c=120.0,
                            sigma_vdd_mv_per_v=18.0)
FINFET_16NM = PufTechnology("finfet_16nm", sigma_mismatch_mv=45.0,
                            sigma_noise_mv=2.5, sigma_temp_uv_per_c=80.0,
                            sigma_vdd_mv_per_v=12.0)

TECHNOLOGIES = {t.name: t for t in (PLANAR_28NM, FINFET_16NM)}


@dataclass
class SramPuf:
    """One physical PUF instance (a device's SRAM power-up identity)."""

    n_bits: int
    technology: PufTechnology
    device_seed: int
    mismatch: np.ndarray = field(init=False)
    temp_coeff: np.ndarray = field(init=False)
    vdd_coeff: np.ndarray = field(init=False)
    _noise_counter: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.device_seed)
        tech = self.technology
        self.mismatch = rng.normal(0.0, tech.sigma_mismatch_mv, self.n_bits)
        self.temp_coeff = rng.normal(0.0, tech.sigma_temp_uv_per_c / 1000.0,
                                     self.n_bits)
        self.vdd_coeff = rng.normal(0.0, tech.sigma_vdd_mv_per_v, self.n_bits)

    def power_up(self, temp_c: float = 25.0, vdd: float = 0.8,
                 noise_seed: int | None = None) -> np.ndarray:
        """One power-up readout: array of bits (uint8)."""
        if noise_seed is None:
            noise_seed = self._noise_counter
            self._noise_counter += 1
        rng = np.random.default_rng((self.device_seed << 20) ^ noise_seed)
        noise = rng.normal(0.0, self.technology.sigma_noise_mv, self.n_bits)
        decision = (self.mismatch
                    + self.temp_coeff * (temp_c - 25.0)
                    + self.vdd_coeff * (vdd - 0.8)
                    + noise)
        return (decision > 0).astype(np.uint8)

    def reference_response(self, temp_c: float = 25.0, vdd: float = 0.8,
                           votes: int = 15) -> np.ndarray:
        """Majority-voted enrollment response (standard golden readout)."""
        acc = np.zeros(self.n_bits, dtype=int)
        for v in range(votes):
            acc += self.power_up(temp_c, vdd, noise_seed=1_000_000 + v)
        return (acc * 2 > votes).astype(np.uint8)

    def stability_mask(self, threshold_mv: float | None = None) -> np.ndarray:
        """Cells whose |mismatch| clears a stability threshold (dark-bit
        masking — the standard pre-selection used before key storage)."""
        if threshold_mv is None:
            threshold_mv = 3.0 * self.technology.sigma_noise_mv
        return (np.abs(self.mismatch) > threshold_mv)


def make_population(
    n_devices: int,
    n_bits: int,
    technology: PufTechnology = FINFET_16NM,
    base_seed: int = 0,
) -> list[SramPuf]:
    """A population of distinct devices (for uniqueness statistics)."""
    return [SramPuf(n_bits, technology, base_seed * 10_007 + i * 65_537 + 1)
            for i in range(n_devices)]
