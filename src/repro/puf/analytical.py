"""Analytical SRAM PUF reliability model (III.F: "a simulation framework
and an analytical mathematical model for FinFET SRAM PUFs").

With mismatch m ~ N(0, σ_m²) frozen per cell and power-up noise
n ~ N(0, σ_n²), a cell flips from its enrolled value when the noise
crosses the mismatch: P(flip | m) = Q(|m| / σ_n).  Averaging over the
mismatch population gives the closed form

    BER = E_m[Q(|m|/σ_n)] = (1/π) · arctan(σ_n / σ_m)

(the standard two-Gaussian sign-flip integral).  Environmental shifts
add an offset term: a temperature delta ΔT contributes per-cell offset
t·ΔT with t ~ N(0, σ_t²), which simply widens the effective noise to
√(σ_n² + σ_t²ΔT²).  Bench E16 checks this model against the Monte-Carlo
simulator — the "analytical vs simulated" comparison the paper promises.
"""

from __future__ import annotations

import math

from .sram_puf import PufTechnology


def expected_ber(sigma_mismatch: float, sigma_noise: float) -> float:
    """Closed-form expected bit-error rate at matched conditions."""
    if sigma_mismatch <= 0:
        return 0.5
    if sigma_noise <= 0:
        return 0.0
    return math.atan(sigma_noise / sigma_mismatch) / math.pi


def effective_noise(
    tech: PufTechnology,
    delta_temp_c: float = 0.0,
    delta_vdd_v: float = 0.0,
) -> float:
    """Noise widened by environmental offsets (independent Gaussians)."""
    sigma_t = (tech.sigma_temp_uv_per_c / 1000.0) * abs(delta_temp_c)
    sigma_v = tech.sigma_vdd_mv_per_v * abs(delta_vdd_v)
    return math.sqrt(tech.sigma_noise_mv ** 2 + sigma_t ** 2 + sigma_v ** 2)


def predicted_intra_hd(
    tech: PufTechnology,
    temp_c: float = 25.0,
    vdd: float = 0.8,
) -> float:
    """Model-predicted intra-device HD at given conditions.

    The enrollment reference is majority-voted, so its own noise is
    negligible; the readout flips wherever noise+offset crosses the
    mismatch.
    """
    sigma_eff = effective_noise(tech, temp_c - 25.0, vdd - 0.8)
    return expected_ber(tech.sigma_mismatch_mv, sigma_eff)


def predicted_key_failure(
    tech: PufTechnology,
    temp_c: float,
    correctable_errors: int,
    block_bits: int,
    n_blocks: int,
) -> float:
    """Key-reconstruction failure probability under an ECC budget.

    Each block fails when more than ``correctable_errors`` of its bits
    flip (binomial tail); the key fails if any block does.
    """
    ber = predicted_intra_hd(tech, temp_c)
    block_fail = 0.0
    for k in range(correctable_errors + 1, block_bits + 1):
        block_fail += (math.comb(block_bits, k)
                       * ber ** k * (1 - ber) ** (block_bits - k))
    return 1.0 - (1.0 - block_fail) ** n_blocks


def dark_bit_gain(tech: PufTechnology, mask_threshold_sigma: float = 3.0) -> float:
    """BER improvement factor from masking low-|mismatch| cells.

    Conditioning the mismatch on |m| > kσ_n truncates exactly the cells
    that dominate the flip integral; the factor is evaluated numerically
    (simple trapezoid over the truncated distribution).
    """
    sigma_m, sigma_n = tech.sigma_mismatch_mv, tech.sigma_noise_mv
    threshold = mask_threshold_sigma * sigma_n

    def q(x: float) -> float:
        return 0.5 * math.erfc(x / math.sqrt(2.0))

    steps = 4000
    top = 8 * sigma_m
    num = den = 0.0
    masked_num = masked_den = 0.0
    for i in range(steps):
        m = (i + 0.5) * top / steps
        pdf = math.exp(-0.5 * (m / sigma_m) ** 2)
        flip = q(m / sigma_n)
        num += pdf * flip
        den += pdf
        if m > threshold:
            masked_num += pdf * flip
            masked_den += pdf
    full_ber = num / den
    masked_ber = masked_num / masked_den if masked_den else 0.0
    return full_ber / masked_ber if masked_ber > 0 else math.inf
