"""PUFs: SRAM power-up simulation, metrics, analytics, fuzzy extraction."""

from .analytical import (
    dark_bit_gain,
    effective_noise,
    expected_ber,
    predicted_intra_hd,
    predicted_key_failure,
)
from .fuzzy import (
    FuzzyExtractor,
    FuzzyExtractorConfig,
    HelperData,
    key_failure_rate,
)
from .metrics import (
    PufScorecard,
    bit_aliasing,
    fractional_hd,
    inter_device_hd,
    intra_device_hd,
    min_entropy_per_bit,
    scorecard,
    uniformity,
)
from .sram_puf import (
    FINFET_16NM,
    PLANAR_28NM,
    TECHNOLOGIES,
    PufTechnology,
    SramPuf,
    make_population,
)

__all__ = [
    "FINFET_16NM",
    "FuzzyExtractor",
    "FuzzyExtractorConfig",
    "HelperData",
    "PLANAR_28NM",
    "PufScorecard",
    "PufTechnology",
    "SramPuf",
    "TECHNOLOGIES",
    "bit_aliasing",
    "dark_bit_gain",
    "effective_noise",
    "expected_ber",
    "fractional_hd",
    "inter_device_hd",
    "intra_device_hd",
    "key_failure_rate",
    "make_population",
    "min_entropy_per_bit",
    "predicted_intra_hd",
    "predicted_key_failure",
    "scorecard",
    "uniformity",
]
