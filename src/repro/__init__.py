"""repro — a RESCUE-style holistic EDA toolkit.

This package reproduces the system portfolio described in *RESCUE:
Interdependent Challenges of Reliability, Security and Quality in
Nanoelectronic Systems* (Jenihhin et al., DATE 2020): a set of interacting
analysis engines for the three extra-functional design aspects the paper
names — reliability, security and quality — plus the substrates they need
(gate-level circuits, fault simulators, a RISC SoC, a SIMT GPGPU core,
SRAM models, crypto cores).

Subpackages
-----------
``repro.circuit``
    Gate-level netlists, circuit generators, testability analysis.
``repro.faults`` / ``repro.sim``
    Fault models, fault universes, logic/event/fault simulation.
``repro.atpg``
    PODEM, random TPG, compaction, untestable-fault identification, SBST.
``repro.soft_error``
    SEU/SET vulnerability analysis, FIT budgeting, CDN SETs, ML predictors.
``repro.ftol``
    ECC, redundancy, on-chip monitors, cross-layer fault management.
``repro.safety``
    ISO 26262 metrics, FMECA, tool-confidence cross-checks, FI slicing.
``repro.rsn``
    IEEE 1687-style reconfigurable scan networks: retargeting, test,
    diagnosis, aging.
``repro.aging`` / ``repro.memory``
    BTI/HCI models, decoder aging mitigation, FinFET SRAM defects and DFT.
``repro.crypto`` / ``repro.security``
    AES/modexp cores; timing/power side channels, laser FI, AI detector.
``repro.puf``
    SRAM PUF simulation, metrics, analytical models, fuzzy extraction.
``repro.autosoc`` / ``repro.gpgpu``
    The AutoSoC automotive benchmark SoC and a FlexGrip-style SIMT core.
``repro.core``
    The holistic flow: registry, campaign management, RIIF, statistics.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
