"""Unified fault-injection campaign engine (paper IV.A).

Every FI workload in the toolkit — gate-level PPSFP stuck-at, SEU flop
flips, ISO 26262 safety classification, SoC-level unit transients — used
to hand-roll its own serial injection loop, sampling policy and result
accounting.  This module is the one execution core behind all of them:

* an :class:`InjectionBackend` protocol: enumerate injection points, run
  one batch, classify outcomes;
* an optional **point-filter stage**: a backend may prove the outcome of
  some points from golden-run data alone (``filter_points``); those
  points are accounted as first-class outcomes without ever being
  simulated — the engine-level form of dynamic-slicing skip rules;
* chunked batch execution over a ``concurrent.futures`` worker pool with
  results accounted in deterministic chunk order — the same campaign
  yields bit-identical results at any worker count;
* seeded sampling of the injection space (Leveugle-style statistical
  campaigns) and optional statistical early stop: the campaign converges
  when the Wilson interval of the tracked outcome rate is narrower than
  the requested margin;
* streaming batched persistence of every injection into
  :class:`repro.core.campaign.CampaignDb`, so cross-campaign queries see
  all workloads in one place.

DAVOS-style iterative statistical injection, reduced to the smallest
core that every workload can share.
"""

from __future__ import annotations

import logging
import pickle
import random
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from ..core.campaign import CampaignDb
from ..core.stats import Interval, wilson_interval
from ..faults.sampling import sample_size
from . import executors as _executors
from .executors import EXECUTOR_CHOICES, ExecutorPlan, chunk_seed, plan_executor

log = logging.getLogger("repro.engine")


@dataclass(frozen=True)
class Injection:
    """One executed injection: where, when, and how it ended.

    ``point`` is the backend-specific injection point (opaque to the
    engine); ``detail`` carries backend extras (detection masks, latency)
    that are not persisted to the database.
    """

    point: Any
    location: str
    cycle: int
    outcome: str
    detail: Any = None

    def row(self) -> tuple[str, int, str]:
        """The (location, cycle, outcome) triple stored in CampaignDb."""
        return (self.location, self.cycle, self.outcome)


@runtime_checkable
class InjectionBackend(Protocol):
    """What a workload must provide to run on the engine.

    ``run_batch`` must be a pure function of the prepared backend state
    and the given points (no cross-batch mutation), so batches can run on
    worker threads — or in worker processes — in any order while the
    engine accounts them in deterministic chunk order.  For the process
    executor the backend must additionally pickle (``prepare()`` is
    re-run per worker, so prepared state need not ship) and be
    idempotent under repeated ``prepare()`` calls.

    Stochastic backends may provide an optional ``run_batch_seeded(
    points, rng)`` method instead; the engine then hands every chunk its
    own ``random.Random`` derived from ``(campaign seed, chunk index)``,
    which keeps results identical at any worker count and executor
    choice.

    Backends that can prove some outcomes from the golden run alone may
    provide an optional ``filter_points(points) -> (kept,
    skipped_outcomes)`` method.  The engine calls it exactly once, in
    the parent, after sampling and before chunking (``prepare()`` runs
    first so the filter can consult golden data); ``skipped_outcomes``
    is a list of ready-made :class:`Injection` results that are
    accounted — and persisted — as first-class outcomes without ever
    being executed.  Filters must be *lossless*: a skipped point's
    outcome must equal what ``run_batch`` would have produced.  A
    backend with a switchable filter may also expose a ``use_filter``
    attribute; when it is False the stage (including its parent-side
    ``prepare()``) is skipped entirely.
    """

    name: str
    circuit_name: str
    fault_model: str
    workload: str

    def enumerate_points(self) -> Sequence[Any]:
        """The full injection space, in a deterministic order."""
        ...

    def prepare(self) -> None:
        """One-time golden-run / cache setup before the first batch."""
        ...

    def run_batch(self, points: Sequence[Any]) -> list[Injection]:
        """Execute the given injection points; one Injection per point."""
        ...


@dataclass(frozen=True)
class EarlyStop:
    """Stop once the Wilson CI of ``outcome``'s rate is tight enough."""

    outcome: str = "failure"
    margin: float = 0.02
    confidence: float = 0.95
    min_injections: int = 50


@dataclass(frozen=True)
class EngineConfig:
    """Execution policy; the backend defines *what*, this defines *how*.

    ``sample`` draws a seeded uniform sample of that many points from
    the enumerated space; ``None`` or a sample >= population means
    every point, in enumeration order unless ``shuffle`` asks for a
    seeded permutation (what early-stopped campaigns want — a prefix of
    a shuffle is an unbiased sample).  With ``workers`` > 1 chunks run
    on the chosen executor; results are identical to the serial run
    because accounting follows chunk order, and any chunks speculatively
    executed past an early-stop decision are discarded.

    ``executor`` picks the execution strategy (see
    :mod:`repro.engine.executors`): ``"serial"``, ``"thread"`` (GIL-bound
    — deterministic overlap, not CPU scaling), ``"process"`` (spawn-safe
    process pool: the backend ships to each worker once and true
    multicore scaling applies), or ``"auto"`` (default), which probes
    CPU count, backend picklability and per-batch cost, and falls back
    thread-/serial-wards with a logged reason instead of crashing.

    ``reuse_pool`` (default True) keeps the process pool alive in a
    module-level registry between campaigns, so sweeps that run many
    campaigns back to back (``compare_configurations``-style studies)
    pay worker spawn and module imports once instead of per campaign;
    the campaign payload still ships fresh each time.  Set it False to
    restore the one-pool-per-campaign behaviour.
    """

    batch_size: int = 64
    workers: int = 1
    sample: int | None = None
    shuffle: bool = False
    seed: int = 0
    early_stop: EarlyStop | None = None
    commit_every: int = 4  # chunks per CampaignDb commit
    executor: str = "auto"
    reuse_pool: bool = True

    def __post_init__(self) -> None:
        if self.executor not in EXECUTOR_CHOICES:
            raise ValueError(f"unknown executor {self.executor!r}; "
                             f"pick one of {EXECUTOR_CHOICES}")


@dataclass
class CampaignReport:
    """Aggregated engine output, common to every backend.

    ``injections`` holds executed points; ``skipped`` holds points the
    backend's filter stage resolved from golden data alone.  Both are
    first-class outcomes: counts, rates and confidence intervals cover
    their union, so a filter only changes *cost*, never statistics.
    """

    backend: str
    circuit: str
    fault_model: str
    workload: str
    injections: list[Injection] = field(default_factory=list)
    skipped: list[Injection] = field(default_factory=list)
    population: int = 0
    planned: int = 0
    converged: bool = False
    campaign_id: int | None = None
    elapsed_s: float = 0.0
    n_workers: int = 1
    executor: str = "serial"  # resolved strategy the campaign ran on

    @property
    def executed(self) -> int:
        return len(self.injections)

    @property
    def total(self) -> int:
        return len(self.injections) + len(self.skipped)

    @property
    def skip_fraction(self) -> float:
        return len(self.skipped) / self.total if self.total else 0.0

    @property
    def outcomes(self) -> dict[str, int]:
        acc: dict[str, int] = {}
        for inj in self.injections:
            acc[inj.outcome] = acc.get(inj.outcome, 0) + 1
        for inj in self.skipped:
            acc[inj.outcome] = acc.get(inj.outcome, 0) + 1
        return acc

    def count(self, outcome: str) -> int:
        n = sum(1 for inj in self.injections if inj.outcome == outcome)
        return n + sum(1 for inj in self.skipped if inj.outcome == outcome)

    def rate(self, outcome: str) -> float:
        return self.count(outcome) / self.total if self.total else 0.0

    def confidence_interval(self, outcome: str,
                            confidence: float = 0.95) -> Interval:
        return wilson_interval(self.count(outcome), self.total, confidence)

    @property
    def injections_per_second(self) -> float:
        return self.total / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def recommended_sample(self, margin: float = 0.05,
                           confidence: float = 0.95) -> int:
        """Leveugle bound for this campaign's population."""
        return sample_size(self.population, margin, confidence)

    def describe(self) -> str:
        """One-line human summary (what the examples print)."""
        counts = ", ".join(f"{k}={v}" for k, v in sorted(
            self.outcomes.items(), key=lambda kv: (-kv[1], kv[0])))
        skipped = (f" + {len(self.skipped)} filtered"
                   if self.skipped else "")
        return (f"campaign {self.backend}:{self.circuit} [{self.workload}] — "
                f"{self.executed} executed{skipped} of {self.population} "
                f"points on {self.executor} x{self.n_workers} "
                f"({self.injections_per_second:.0f} inj/s"
                f"{', converged early' if self.converged else ''}); "
                f"outcomes: {counts or 'none'}")


def _chunked(points: Sequence[Any], size: int) -> list[Sequence[Any]]:
    return [points[i:i + size] for i in range(0, len(points), size)]


def run_campaign(
    backend: InjectionBackend,
    config: EngineConfig = EngineConfig(),
    db: CampaignDb | None = None,
    on_chunk: Callable[[CampaignReport], None] | None = None,
) -> CampaignReport:
    """Run a campaign: enumerate → (sample) → filter → chunk → execute.

    Deterministic at any worker count and executor choice: the sampled
    point list depends only on ``config.seed``, chunks (and their
    per-chunk RNG seeds) are formed before dispatch, and both result
    accounting and the early-stop decision walk chunks in index order.
    ``on_chunk`` (if given) observes the report after each accounted
    chunk — the hook used for progress streaming; it always runs in the
    calling thread, as does all CampaignDb persistence.

    If the backend provides ``filter_points``, it runs exactly once here
    in the parent (after ``prepare()``), on the post-sampling point
    list; the outcomes it proves are accounted and persisted up front.
    Early stop treats them as a census — known outcomes with zero
    sampling variance — so the convergence check scales the executed
    sample's Wilson half-width by the kept stratum's share of the
    campaign; a filter that resolves every point converges the campaign
    before executing a single batch.
    """
    points = list(backend.enumerate_points())
    population = len(points)
    rng = random.Random(config.seed)
    if config.sample is not None and config.sample < population:
        points = rng.sample(points, config.sample)
    elif config.shuffle:
        points = rng.sample(points, population)
    planned = len(points)

    skipped: list[Injection] = []
    filter_points = getattr(backend, "filter_points", None)
    # backends with a switchable filter expose ``use_filter`` so a
    # disabled filter costs nothing (no parent-side prepare)
    if filter_points is not None and getattr(backend, "use_filter", True):
        backend.prepare()  # filters consult golden-run data
        kept, skipped_outcomes = filter_points(points)
        points = list(kept)
        skipped = list(skipped_outcomes)
        if len(points) + len(skipped) != planned:
            raise ValueError(
                f"{backend.name}.filter_points dropped points: kept "
                f"{len(points)} + skipped {len(skipped)} != {planned}")
    # Lane-aware chunk sizing: a lane-packing backend simulates up to
    # ``lane_width`` points per run, so chunks larger than one lane are
    # rounded *down* to a lane multiple (no fragmented trailing lane per
    # chunk).  Chunks at or below the classic 64-lane word are never
    # inflated — early-stop granularity and per-chunk RNG seeding stay
    # byte-identical to the configured batch size whenever it already
    # fits a lane.  Vector-tier words (lane_width > 64) are the one
    # exception: a wide word only pays off when filled, so the batch is
    # raised to one full lane unless the caller pinned a smaller
    # batch_size explicitly (outcome identity never depends on chunking;
    # only early-stop granularity coarsens with the lane).
    lane_width = max(1, int(getattr(backend, "lane_width", 1) or 1))
    batch_size = max(1, config.batch_size)
    if lane_width > 1 and batch_size > lane_width:
        batch_size -= batch_size % lane_width
    elif lane_width > 64 and batch_size < lane_width \
            and config.batch_size == type(config).batch_size:
        batch_size = lane_width
    chunks = _chunked(points, batch_size)
    seeds = [chunk_seed(config.seed, i) for i in range(len(chunks))]

    report = CampaignReport(
        backend=backend.name,
        circuit=backend.circuit_name,
        fault_model=backend.fault_model,
        workload=backend.workload,
        skipped=skipped,
        population=population,
        planned=planned,
        n_workers=max(1, config.workers),
    )
    if db is not None:
        report.campaign_id = db.create_campaign(
            name=f"{backend.name}:{backend.circuit_name}",
            circuit=backend.circuit_name,
            fault_model=backend.fault_model,
            workload=backend.workload,
            params={
                "batch_size": config.batch_size,
                "workers": config.workers,
                "executor": config.executor,
                "lane_width": lane_width,
                "sample": config.sample,
                "seed": config.seed,
                "filtered": len(skipped),
                "early_stop": (config.early_stop.outcome
                               if config.early_stop else None),
            },
        )
        if skipped:  # filtered outcomes are first-class rows in the DB
            db.record_many(report.campaign_id,
                           [inj.row() for inj in skipped])

    stop = config.early_stop
    pending_rows: list[tuple[str, int, str]] = []
    chunks_since_commit = 0
    start = time.perf_counter()

    # Early-stop bookkeeping.  Filtered points are a *census* of their
    # stratum (known outcomes, zero variance); only the executed sample
    # of the kept points is uncertain.  The overall-rate half-width is
    # therefore the executed-sample Wilson half-width scaled by the kept
    # stratum's share of the campaign — treating skips as Bernoulli
    # draws would bias the interval whenever the filtered subpopulation
    # differs from the kept one.  Running tallies keep the per-chunk
    # check O(batch), not O(history).
    n_kept_planned = len(points)
    kept_weight = n_kept_planned / planned if planned else 0.0
    executed_hits = 0
    executed_total = 0

    def converged_now() -> bool:
        """Is the overall outcome rate pinned down tightly enough?"""
        if stop is None or report.total < stop.min_injections:
            return False
        if n_kept_planned == 0:
            return True  # the filter resolved every point: nothing uncertain
        if executed_total == 0:
            return False
        ci = wilson_interval(executed_hits, executed_total, stop.confidence)
        return (ci.width / 2) * kept_weight <= stop.margin

    def account(batch: list[Injection]) -> bool:
        """Fold one chunk into the report; True = converged, stop."""
        nonlocal chunks_since_commit, executed_hits, executed_total
        report.injections.extend(batch)
        executed_total += len(batch)
        if stop is not None:
            executed_hits += sum(1 for inj in batch
                                 if inj.outcome == stop.outcome)
        if db is not None and report.campaign_id is not None:
            pending_rows.extend(inj.row() for inj in batch)
            chunks_since_commit += 1
            if chunks_since_commit >= max(1, config.commit_every):
                db.record_many(report.campaign_id, pending_rows)
                pending_rows.clear()
                chunks_since_commit = 0
        if on_chunk is not None:
            on_chunk(report)
        return converged_now()

    # a filter that resolves every point (or enough that the residual
    # uncertainty cannot exceed the margin) converges with zero execution
    converged = bool(skipped) and converged_now()

    # resolve the executor (auto probes picklability and per-batch cost;
    # any chunks it executed while probing are accounted first, exactly
    # once, so determinism is unaffected)
    if chunks and not converged:
        plan = plan_executor(backend, chunks, config, seeds)
    else:
        plan = ExecutorPlan("serial", "pre-converged by filtered outcomes"
                            if converged else "empty campaign")
    if plan.reason:
        log.info("engine: executor=%s for %s:%s (%s)", plan.name,
                 backend.name, backend.circuit_name, plan.reason)
    report.executor = plan.name

    accounted = 0

    def account_chunk(batch: list[Injection]) -> bool:
        nonlocal accounted
        accounted += 1
        return account(batch)

    for batch in plan.probe_batches or ():
        if account_chunk(batch):
            converged = True
            break

    strategy = plan.name
    if not converged and accounted < len(chunks):
        if strategy == "process":
            # serialize here (if the auto probe didn't already) so that
            # pickling failures are distinguishable from pool failures —
            # and from genuine backend bugs, which must propagate
            payload = plan.payload
            if payload is None:
                try:
                    payload = pickle.dumps(
                        (backend, chunks, seeds),
                        protocol=pickle.HIGHEST_PROTOCOL)
                except Exception as exc:
                    log.warning(
                        "engine: backend not picklable (%s: %s); falling "
                        "back to threads", type(exc).__name__, exc)
                    strategy = "thread"
                    report.executor = "thread"
        if strategy == "process":
            try:
                converged = _executors.run_process(
                    backend, chunks, seeds, account_chunk, config.workers,
                    start=accounted, payload=payload,
                    reuse_pool=config.reuse_pool)
            except (BrokenProcessPool, OSError) as exc:
                # accounting is chunk-ordered, so `accounted` is exactly
                # the index of the first chunk the pool never delivered —
                # resume there on threads without repeating work
                log.warning(
                    "engine: process executor failed (%s: %s); falling back "
                    "to threads from chunk %d", type(exc).__name__, exc,
                    accounted)
                strategy = "thread"
                report.executor = "thread"
        if not converged and accounted < len(chunks):
            if strategy == "thread":
                backend.prepare()
                converged = _executors.run_thread(
                    backend, chunks, seeds, account_chunk, config.workers,
                    start=accounted)
            elif strategy == "serial":
                backend.prepare()
                converged = _executors.run_serial(
                    backend, chunks, seeds, account_chunk, start=accounted)
    report.converged = converged

    if db is not None and report.campaign_id is not None and pending_rows:
        db.record_many(report.campaign_id, pending_rows)
    report.elapsed_s = time.perf_counter() - start
    return report
