"""Unified fault-injection campaign engine (paper IV.A).

Every FI workload in the toolkit — gate-level PPSFP stuck-at, SEU flop
flips, ISO 26262 safety classification, SoC-level unit transients — used
to hand-roll its own serial injection loop, sampling policy and result
accounting.  This module is the one execution core behind all of them:

* an :class:`InjectionBackend` protocol: enumerate injection points, run
  one batch, classify outcomes;
* an optional **point-filter stage**: a backend may prove the outcome of
  some points from golden-run data alone (``filter_points``); those
  points are accounted as first-class outcomes without ever being
  simulated — the engine-level form of dynamic-slicing skip rules;
* chunked batch execution over a ``concurrent.futures`` worker pool with
  results accounted in deterministic chunk order — the same campaign
  yields bit-identical results at any worker count;
* seeded sampling of the injection space (Leveugle-style statistical
  campaigns) and optional statistical early stop: the campaign converges
  when the Wilson interval of the tracked outcome rate is narrower than
  the requested margin;
* streaming batched persistence of every injection into
  :class:`repro.core.campaign.CampaignDb`, so cross-campaign queries see
  all workloads in one place;
* **fault tolerance for the campaign itself**: every executed chunk is
  checkpointed to the database in crash-consistent transactions, so a
  killed campaign resumes from its last committed chunk
  (``run_campaign(resume=...)`` / :func:`resume_campaign`) with a
  byte-identical report; a failing or hung chunk is retried with
  bounded exponential backoff and eventually **quarantined** as a
  first-class ``failed`` stratum, while executor-level failures walk a
  recovery ladder (process → thread → serial) instead of aborting.

DAVOS-style iterative statistical injection, reduced to the smallest
core that every workload can share.
"""

from __future__ import annotations

import hashlib
import json
import logging
import pickle
import random
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol, Sequence, runtime_checkable

from ..core.campaign import CampaignDb
from ..core.stats import Interval, wilson_interval
from ..faults.sampling import sample_size
from . import executors as _executors
from .executors import EXECUTOR_CHOICES, ExecutorPlan, chunk_seed, plan_executor

log = logging.getLogger("repro.engine")


class _AccountingError(Exception):
    """An error raised *by* the accounting path (an ``on_chunk`` hook, a
    checkpoint flush) while an executor was delivering chunks.

    The executor strategies call the accounting callback directly, so
    without this tag an ``OSError`` from a hook would be indistinguishable
    from a pool failure in the recovery ladder — and fed to the retry
    loop after ``accounted`` already advanced, re-executing the wrong
    chunk and swallowing the error.  The ladder unwraps the tag and
    re-raises the original exception raw, as the accounting contract
    promises.
    """

    def __init__(self, cause: BaseException) -> None:
        super().__init__(f"{type(cause).__name__}: {cause}")
        self.cause = cause


@dataclass(frozen=True)
class Injection:
    """One executed injection: where, when, and how it ended.

    ``point`` is the backend-specific injection point (opaque to the
    engine); ``detail`` carries backend extras (detection masks, latency)
    that are not persisted to the database.
    """

    point: Any
    location: str
    cycle: int
    outcome: str
    detail: Any = None

    def row(self) -> tuple[str, int, str]:
        """The (location, cycle, outcome) triple stored in CampaignDb."""
        return (self.location, self.cycle, self.outcome)


@runtime_checkable
class InjectionBackend(Protocol):
    """What a workload must provide to run on the engine.

    ``run_batch`` must be a pure function of the prepared backend state
    and the given points (no cross-batch mutation), so batches can run on
    worker threads — or in worker processes — in any order while the
    engine accounts them in deterministic chunk order.  For the process
    executor the backend must additionally pickle (``prepare()`` is
    re-run per worker, so prepared state need not ship) and be
    idempotent under repeated ``prepare()`` calls.

    Stochastic backends may provide an optional ``run_batch_seeded(
    points, rng)`` method instead; the engine then hands every chunk its
    own ``random.Random`` derived from ``(campaign seed, chunk index)``,
    which keeps results identical at any worker count and executor
    choice.

    Backends that can prove some outcomes from the golden run alone may
    provide an optional ``filter_points(points) -> (kept,
    skipped_outcomes)`` method.  The engine calls it exactly once, in
    the parent, after sampling and before chunking (``prepare()`` runs
    first so the filter can consult golden data); ``skipped_outcomes``
    is a list of ready-made :class:`Injection` results that are
    accounted — and persisted — as first-class outcomes without ever
    being executed.  Filters must be *lossless*: a skipped point's
    outcome must equal what ``run_batch`` would have produced.  A
    backend with a switchable filter may also expose a ``use_filter``
    attribute; when it is False the stage (including its parent-side
    ``prepare()``) is skipped entirely.
    """

    name: str
    circuit_name: str
    fault_model: str
    workload: str

    def enumerate_points(self) -> Sequence[Any]:
        """The full injection space, in a deterministic order."""
        ...

    def prepare(self) -> None:
        """One-time golden-run / cache setup before the first batch."""
        ...

    def run_batch(self, points: Sequence[Any]) -> list[Injection]:
        """Execute the given injection points; one Injection per point."""
        ...


@dataclass(frozen=True)
class EarlyStop:
    """Stop once the Wilson CI of ``outcome``'s rate is tight enough."""

    outcome: str = "failure"
    margin: float = 0.02
    confidence: float = 0.95
    min_injections: int = 50


@dataclass(frozen=True)
class EngineConfig:
    """Execution policy; the backend defines *what*, this defines *how*.

    ``sample`` draws a seeded uniform sample of that many points from
    the enumerated space; ``None`` or a sample >= population means
    every point, in enumeration order unless ``shuffle`` asks for a
    seeded permutation (what early-stopped campaigns want — a prefix of
    a shuffle is an unbiased sample).  With ``workers`` > 1 chunks run
    on the chosen executor; results are identical to the serial run
    because accounting follows chunk order, and any chunks speculatively
    executed past an early-stop decision are discarded.

    ``executor`` picks the execution strategy (see
    :mod:`repro.engine.executors`): ``"serial"``, ``"thread"`` (GIL-bound
    — deterministic overlap, not CPU scaling), ``"process"`` (spawn-safe
    process pool: the backend ships to each worker once and true
    multicore scaling applies), or ``"auto"`` (default), which probes
    CPU count, backend picklability and per-batch cost, and falls back
    thread-/serial-wards with a logged reason instead of crashing.

    ``reuse_pool`` (default True) keeps the process pool alive in a
    module-level registry between campaigns, so sweeps that run many
    campaigns back to back (``compare_configurations``-style studies)
    pay worker spawn and module imports once instead of per campaign;
    the campaign payload still ships fresh each time.  Set it False to
    restore the one-pool-per-campaign behaviour.

    ``max_chunk_retries`` bounds how often a *failing* chunk is re-run
    (with exponential backoff starting at ``retry_backoff_s``) before it
    is quarantined; ``chunk_timeout`` (seconds, ``None`` = wait forever)
    declares a dispatched chunk hung when its result is overdue — the
    pool is abandoned, execution degrades one rung of the recovery
    ladder, and the chunk is retried like any other failure (parent-side
    retries run against the same deadline, so a deterministic hang
    quarantines instead of blocking the campaign).
    ``commit_every`` is now the chunk-checkpoint cadence: every commit
    is a crash-consistent batch of per-chunk records that ``resume=``
    can restart from.
    """

    batch_size: int = 64
    workers: int = 1
    sample: int | None = None
    shuffle: bool = False
    seed: int = 0
    early_stop: EarlyStop | None = None
    commit_every: int = 4  # chunk checkpoints per CampaignDb commit
    executor: str = "auto"
    reuse_pool: bool = True
    max_chunk_retries: int = 2
    chunk_timeout: float | None = None
    retry_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.executor not in EXECUTOR_CHOICES:
            raise ValueError(f"unknown executor {self.executor!r}; "
                             f"pick one of {EXECUTOR_CHOICES}")
        if self.max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be >= 0")
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ValueError("chunk_timeout must be positive (or None)")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")


@dataclass(frozen=True)
class QuarantinedChunk:
    """A chunk whose execution kept failing and was excluded.

    Quarantine is the harness-fault analogue of the filter stage: a
    first-class ``failed`` stratum of the campaign — its points were
    neither executed nor silently dropped, and the report says so —
    rather than one bad chunk poisoning everything else.  A later
    ``resume=`` of the campaign re-executes quarantined chunks.
    """

    index: int
    n_points: int
    attempts: int
    error: str


@dataclass
class CampaignReport:
    """Aggregated engine output, common to every backend.

    ``injections`` holds executed points; ``skipped`` holds points the
    backend's filter stage resolved from golden data alone.  Both are
    first-class outcomes: counts, rates and confidence intervals cover
    their union, so a filter only changes *cost*, never statistics.

    ``quarantined`` is the campaign's ``failed`` stratum: chunks whose
    execution kept failing (see :class:`QuarantinedChunk`).  Their
    points are excluded from counts and intervals — an unexecuted point
    has no outcome — but the stratum is reported, never hidden.
    ``resumed_chunks`` / ``retried_chunks`` count chunks replayed from a
    checkpoint and chunks recovered by the retry loop.
    """

    backend: str
    circuit: str
    fault_model: str
    workload: str
    injections: list[Injection] = field(default_factory=list)
    skipped: list[Injection] = field(default_factory=list)
    population: int = 0
    planned: int = 0
    converged: bool = False
    campaign_id: int | None = None
    elapsed_s: float = 0.0
    n_workers: int = 1
    executor: str = "serial"  # resolved strategy the campaign ran on
    quarantined: list[QuarantinedChunk] = field(default_factory=list)
    resumed_chunks: int = 0
    retried_chunks: int = 0

    @property
    def executed(self) -> int:
        return len(self.injections)

    @property
    def total(self) -> int:
        return len(self.injections) + len(self.skipped)

    @property
    def skip_fraction(self) -> float:
        return len(self.skipped) / self.total if self.total else 0.0

    @property
    def quarantined_points(self) -> int:
        """Points in chunks the engine gave up executing."""
        return sum(chunk.n_points for chunk in self.quarantined)

    @property
    def outcomes(self) -> dict[str, int]:
        acc: dict[str, int] = {}
        for inj in self.injections:
            acc[inj.outcome] = acc.get(inj.outcome, 0) + 1
        for inj in self.skipped:
            acc[inj.outcome] = acc.get(inj.outcome, 0) + 1
        return acc

    def count(self, outcome: str) -> int:
        n = sum(1 for inj in self.injections if inj.outcome == outcome)
        return n + sum(1 for inj in self.skipped if inj.outcome == outcome)

    def rate(self, outcome: str) -> float:
        return self.count(outcome) / self.total if self.total else 0.0

    def confidence_interval(self, outcome: str,
                            confidence: float = 0.95) -> Interval:
        return wilson_interval(self.count(outcome), self.total, confidence)

    @property
    def injections_per_second(self) -> float:
        return self.total / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def recommended_sample(self, margin: float = 0.05,
                           confidence: float = 0.95) -> int:
        """Leveugle bound for this campaign's population."""
        return sample_size(self.population, margin, confidence)

    def describe(self) -> str:
        """One-line human summary (what the examples print)."""
        counts = ", ".join(f"{k}={v}" for k, v in sorted(
            self.outcomes.items(), key=lambda kv: (-kv[1], kv[0])))
        skipped = (f" + {len(self.skipped)} filtered"
                   if self.skipped else "")
        resilience = []
        if self.resumed_chunks:
            resilience.append(f"{self.resumed_chunks} chunks resumed")
        if self.retried_chunks:
            resilience.append(f"{self.retried_chunks} chunks retried")
        if self.quarantined:
            resilience.append(
                f"{len(self.quarantined)} chunks quarantined "
                f"({self.quarantined_points} points failed)")
        suffix = f"; {', '.join(resilience)}" if resilience else ""
        return (f"campaign {self.backend}:{self.circuit} [{self.workload}] — "
                f"{self.executed} executed{skipped} of {self.population} "
                f"points on {self.executor} x{self.n_workers} "
                f"({self.injections_per_second:.0f} inj/s"
                f"{', converged early' if self.converged else ''}); "
                f"outcomes: {counts or 'none'}{suffix}")


def _chunked(points: Sequence[Any], size: int) -> list[Sequence[Any]]:
    return [points[i:i + size] for i in range(0, len(points), size)]


def stop_satisfied(stop: EarlyStop | None, accounted_total: int,
                   executed_hits: int, executed_total: int,
                   n_kept_planned: int, planned: int) -> bool:
    """The engine's convergence arithmetic, callable outside the run loop.

    ``accounted_total`` is every point with a known outcome so far
    (executed + filter-census); the filtered stratum has zero variance,
    so the executed sample's Wilson half-width is scaled by the kept
    stratum's share of the campaign.  The service layer replays this
    exact check over a campaign's committed chunk prefix, so a
    distributed early stop lands on the same chunk a serial run stops
    at.
    """
    if stop is None or accounted_total < stop.min_injections:
        return False
    if n_kept_planned == 0:
        return True  # the filter resolved every point: nothing uncertain
    if executed_total == 0:
        return False
    kept_weight = n_kept_planned / planned if planned else 0.0
    ci = wilson_interval(executed_hits, executed_total, stop.confidence)
    return (ci.width / 2) * kept_weight <= stop.margin


@dataclass(frozen=True)
class CampaignPlan:
    """The deterministic half of a campaign: everything derived from
    ``(backend, config)`` alone, before any execution policy applies.

    ``run_campaign`` builds one internally; the campaign service builds
    the identical plan *in every worker process* (same enumeration,
    sampling, filter and chunk partition — the fingerprint proves it),
    so chunks can be claimed by bare index across hosts and executed
    anywhere while staying byte-compatible with a serial run.
    """

    points: list[Any]
    skipped: list[Injection]
    chunks: list[Sequence[Any]]
    seeds: list[int]
    batch_size: int
    lane_width: int
    population: int
    planned: int
    fingerprint: str

    @property
    def n_kept(self) -> int:
        """Points that must actually execute (post-filter)."""
        return len(self.points)


def plan_campaign(backend: InjectionBackend,
                  config: EngineConfig) -> CampaignPlan:
    """Enumerate → (sample/shuffle) → filter → chunk, deterministically.

    Pure in ``(backend, config)``: the sampled point list depends only
    on ``config.seed``, the filter stage must be lossless and
    deterministic, and chunk seeds mix the campaign seed with the chunk
    index — so two processes (or two hosts) planning the same campaign
    get the same chunks and the same per-chunk RNG streams.  Runs the
    backend's ``prepare()`` when a filter needs golden-run data.
    """
    points = list(backend.enumerate_points())
    population = len(points)
    rng = random.Random(config.seed)
    if config.sample is not None and config.sample < population:
        points = rng.sample(points, config.sample)
    elif config.shuffle:
        points = rng.sample(points, population)
    planned = len(points)

    skipped: list[Injection] = []
    filter_points = getattr(backend, "filter_points", None)
    # backends with a switchable filter expose ``use_filter`` so a
    # disabled filter costs nothing (no parent-side prepare)
    if filter_points is not None and getattr(backend, "use_filter", True):
        backend.prepare()  # filters consult golden-run data
        kept, skipped_outcomes = filter_points(points)
        points = list(kept)
        skipped = list(skipped_outcomes)
        if len(points) + len(skipped) != planned:
            raise ValueError(
                f"{backend.name}.filter_points dropped points: kept "
                f"{len(points)} + skipped {len(skipped)} != {planned}")
    # Lane-aware chunk sizing (see
    # :func:`repro.engine.lanes.aligned_batch_size`): chunks larger than
    # one lane are rounded *down* to a lane multiple (no fragmented
    # trailing lane per chunk), and a still-default batch size is raised
    # to fill one vector-tier lane word.  Pure in the config, so a
    # resumed campaign recomputes the identical chunk partition.
    from .lanes import aligned_batch_size  # lanes imports core: defer
    lane_width = max(1, int(getattr(backend, "lane_width", 1) or 1))
    batch_size = aligned_batch_size(lane_width, config.batch_size,
                                    type(config).batch_size)
    chunks = _chunked(points, batch_size)
    seeds = [chunk_seed(config.seed, i) for i in range(len(chunks))]
    fingerprint = _campaign_fingerprint(backend, config, batch_size,
                                        lane_width, population, planned)
    return CampaignPlan(points=points, skipped=skipped, chunks=chunks,
                        seeds=seeds, batch_size=batch_size,
                        lane_width=lane_width, population=population,
                        planned=planned, fingerprint=fingerprint)


#: Ceiling on the exponential retry backoff (seconds).
RETRY_BACKOFF_CAP_S = 2.0


def _campaign_fingerprint(backend: InjectionBackend, config: EngineConfig,
                          batch_size: int, lane_width: int,
                          population: int, planned: int) -> str:
    """Identity of a campaign's *deterministic* inputs.

    Stored in the campaign's params at creation and re-derived on
    ``resume=``: everything that shapes the chunk partition or the
    outcomes is covered (backend identity, seed/sample/shuffle, the
    effective chunk size, lane width, early-stop policy, population),
    while execution policy that provably cannot change results —
    workers, executor choice, retry budget — is deliberately excluded,
    so a campaign checkpointed on one executor may resume on another.
    """
    stop = config.early_stop
    payload = json.dumps({
        "backend": backend.name,
        "circuit": backend.circuit_name,
        "fault_model": backend.fault_model,
        "workload": backend.workload,
        "seed": config.seed,
        "sample": config.sample,
        "shuffle": config.shuffle,
        "chunk_size": batch_size,
        "lane_width": lane_width,
        "early_stop": ([stop.outcome, stop.margin, stop.confidence,
                        stop.min_injections] if stop else None),
        "population": population,
        "planned": planned,
    }, sort_keys=True)
    return hashlib.sha1(payload.encode()).hexdigest()[:16]


def run_campaign(
    backend: InjectionBackend,
    config: EngineConfig = EngineConfig(),
    db: CampaignDb | None = None,
    on_chunk: Callable[[CampaignReport], None] | None = None,
    resume: int | None = None,
) -> CampaignReport:
    """Run a campaign: enumerate → (sample) → filter → chunk → execute.

    Deterministic at any worker count and executor choice: the sampled
    point list depends only on ``config.seed``, chunks (and their
    per-chunk RNG seeds) are formed before dispatch, and both result
    accounting and the early-stop decision walk chunks in index order.
    ``on_chunk`` (if given) observes the report after each accounted
    chunk — the hook used for progress streaming; it always runs in the
    calling thread, as does all CampaignDb persistence.

    If the backend provides ``filter_points``, it runs exactly once here
    in the parent (after ``prepare()``), on the post-sampling point
    list; the outcomes it proves are accounted and persisted up front.
    Early stop treats them as a census — known outcomes with zero
    sampling variance — so the convergence check scales the executed
    sample's Wilson half-width by the kept stratum's share of the
    campaign; a filter that resolves every point converges the campaign
    before executing a single batch.

    With a ``db``, every executed chunk is checkpointed (rows + a chunk
    record keyed by ``(campaign_id, chunk_index)``) in crash-consistent
    batches of ``config.commit_every`` chunks.  ``resume=campaign_id``
    rebuilds the same point list and chunk partition from the config
    (the stored fingerprint guards against a mismatched backend or
    config), replays the contiguous prefix of committed chunks through
    the normal accounting path — early-stop and filter-census decisions
    replay identically — and executes only the remainder, so the
    returned report is byte-identical (outcomes, counts, intervals,
    convergence) to an uninterrupted run.  Chunks that were quarantined
    in the previous run are re-executed, and their records upgraded on
    success.

    Chunk failures (a backend raise, a malformed worker result, a
    result overdue past ``config.chunk_timeout``) are retried with
    bounded exponential backoff in the parent — on a fresh rung of the
    recovery ladder (process → thread → serial) when the pool itself
    broke or hung — and quarantined into ``report.quarantined`` after
    ``config.max_chunk_retries`` failed retries.  Errors raised by the
    accounting path itself (``on_chunk`` hooks, database writes) are
    *not* retried: they propagate and abort the campaign.
    """
    plan_spec = plan_campaign(backend, config)
    points, skipped = plan_spec.points, plan_spec.skipped
    chunks, seeds = plan_spec.chunks, plan_spec.seeds
    lane_width = plan_spec.lane_width
    batch_size = plan_spec.batch_size
    population, planned = plan_spec.population, plan_spec.planned
    fingerprint = plan_spec.fingerprint

    report = CampaignReport(
        backend=backend.name,
        circuit=backend.circuit_name,
        fault_model=backend.fault_model,
        workload=backend.workload,
        skipped=skipped,
        population=population,
        planned=planned,
        n_workers=max(1, config.workers),
    )
    done_records: dict[int, Any] = {}
    done_rows: dict[int, list[tuple[str, int, str]]] = {}
    if resume is not None:
        if db is None:
            raise ValueError(
                "resume requires the CampaignDb the campaign was "
                "checkpointed to")
        stored = db.campaign_params(resume).get("fingerprint")
        if stored != fingerprint:
            raise ValueError(
                f"campaign {resume} was checkpointed with a different "
                f"backend/config (fingerprint {stored!r} != "
                f"{fingerprint!r}); resume needs the identical campaign")
        report.campaign_id = resume
        done_records = db.chunk_records(resume)
        done_rows = db.chunk_rows(resume)
    elif db is not None:
        # campaign row + filtered outcomes land in ONE transaction: the
        # campaign record exists iff its census rows do, so a crash here
        # leaves nothing a resume could half-see
        with db.transaction():
            report.campaign_id = db.create_campaign(
                name=f"{backend.name}:{backend.circuit_name}",
                circuit=backend.circuit_name,
                fault_model=backend.fault_model,
                workload=backend.workload,
                params={
                    "batch_size": config.batch_size,
                    "chunk_size": batch_size,
                    "workers": config.workers,
                    "executor": config.executor,
                    "lane_width": lane_width,
                    "sample": config.sample,
                    "seed": config.seed,
                    "filtered": len(skipped),
                    "early_stop": (config.early_stop.outcome
                                   if config.early_stop else None),
                    "fingerprint": fingerprint,
                },
            )
            if skipped:  # filtered outcomes are first-class rows in the DB
                db.record_many(report.campaign_id,
                               [inj.row() for inj in skipped])

    stop = config.early_stop
    # executed chunks pending checkpoint: (index, rows, status, attempts,
    # error), committed as one transaction every ``commit_every`` chunks
    pending_checkpoints: list[
        tuple[int, list[tuple[str, int, str]], str, int, str | None]] = []
    chunks_since_commit = 0
    start = time.perf_counter()

    def flush_checkpoints() -> None:
        nonlocal chunks_since_commit
        chunks_since_commit = 0
        if db is None or report.campaign_id is None or not pending_checkpoints:
            pending_checkpoints.clear()
            return
        with db.transaction():
            for index, rows, status, n_attempts, error in pending_checkpoints:
                db.record_chunk(report.campaign_id, index, rows,
                                seed=seeds[index], status=status,
                                attempts=n_attempts, error=error)
        pending_checkpoints.clear()

    # Early-stop bookkeeping.  Filtered points are a *census* of their
    # stratum (known outcomes, zero variance); only the executed sample
    # of the kept points is uncertain.  The overall-rate half-width is
    # therefore the executed-sample Wilson half-width scaled by the kept
    # stratum's share of the campaign — treating skips as Bernoulli
    # draws would bias the interval whenever the filtered subpopulation
    # differs from the kept one.  Running tallies keep the per-chunk
    # check O(batch), not O(history).
    n_kept_planned = len(points)
    executed_hits = 0
    executed_total = 0

    def converged_now() -> bool:
        """Is the overall outcome rate pinned down tightly enough?"""
        return stop_satisfied(stop, report.total, executed_hits,
                              executed_total, n_kept_planned, planned)

    attempts: dict[int, int] = {}  # chunk index -> failed executions

    def account(batch: list[Injection], index: int,
                checkpoint: bool = True) -> bool:
        """Fold one chunk into the report; True = converged, stop."""
        nonlocal chunks_since_commit, executed_hits, executed_total
        report.injections.extend(batch)
        executed_total += len(batch)
        if stop is not None:
            executed_hits += sum(1 for inj in batch
                                 if inj.outcome == stop.outcome)
        if checkpoint and db is not None and report.campaign_id is not None:
            pending_checkpoints.append(
                (index, [inj.row() for inj in batch], "done",
                 attempts.get(index, 0) + 1, None))
            chunks_since_commit += 1
            if chunks_since_commit >= max(1, config.commit_every):
                flush_checkpoints()
        if on_chunk is not None:
            on_chunk(report)
        return converged_now()

    accounted = 0  # index of the first chunk not yet accounted

    def validate_batch(batch: Any, index: int) -> None:
        """O(1) shape check on a worker result: a malformed batch (a
        crashed deserialization, a corrupted return) becomes a chunk
        failure — retried, then quarantined — not corrupt accounting."""
        if (not isinstance(batch, list) or len(batch) != len(chunks[index])
                or (batch and not isinstance(batch[0], Injection))):
            got = (f"{type(batch).__name__}[{len(batch)}]"
                   if isinstance(batch, (list, tuple))
                   else type(batch).__name__)
            raise _executors.ChunkError(ValueError(
                f"malformed result for chunk {index}: expected "
                f"{len(chunks[index])} Injection entries, got {got}"))

    def account_chunk(batch: list[Injection]) -> bool:
        nonlocal accounted
        index = accounted
        validate_batch(batch, index)
        accounted += 1
        return account(batch, index)

    def guarded_account(batch: list[Injection]) -> bool:
        """``account_chunk`` as handed to the executors: errors from the
        accounting path are tagged :class:`_AccountingError` so the
        recovery ladder re-raises them raw instead of mistaking them for
        chunk or pool failures (an ``OSError`` from a checkpoint flush
        must not burn a chunk's retry budget)."""
        try:
            return account_chunk(batch)
        except _executors.ChunkError:
            raise  # malformed batch: a chunk failure, retried as usual
        except Exception as exc:
            raise _AccountingError(exc) from exc

    # a filter that resolves every point (or enough that the residual
    # uncertainty cannot exceed the margin) converges with zero execution
    converged = bool(skipped) and converged_now()

    # Resume replay: walk the contiguous prefix of committed 'done'
    # chunks through the normal accounting path — same chunk order, same
    # early-stop arithmetic — without re-executing or re-checkpointing.
    # The prefix stops at the first missing or quarantined record; later
    # committed chunks (a crash mid-commit-batch cannot produce any, as
    # checkpoints commit in chunk order) would re-execute idempotently.
    if resume is not None and not converged:
        for i in range(len(chunks)):
            record = done_records.get(i)
            if record is None or record.status != "done":
                break
            rows = done_rows.get(i, [])
            if len(rows) != len(chunks[i]):
                raise ValueError(
                    f"campaign {resume} checkpointed {len(rows)} rows for "
                    f"chunk {i} of {len(chunks[i])} points; the database "
                    "does not match this campaign")
            batch = [Injection(point=point, location=loc, cycle=cyc,
                               outcome=out)
                     for point, (loc, cyc, out) in zip(chunks[i], rows)]
            accounted += 1
            report.resumed_chunks += 1
            attempts[i] = max(0, record.attempts - 1)
            if account(batch, i, checkpoint=False):
                converged = True
                break

    # resolve the executor over the *remaining* chunks (auto probes
    # picklability and per-batch cost; any chunks it executed while
    # probing are accounted first, exactly once)
    if accounted < len(chunks) and not converged:
        try:
            plan = plan_executor(backend, chunks[accounted:], config,
                                 seeds[accounted:])
        except Exception as exc:
            # a probe crash is a chunk failure in disguise: start on the
            # ladder floor and let the retry loop deal with the chunk
            log.warning(
                "engine: executor auto-probe failed (%s: %s); starting "
                "on the serial rung", type(exc).__name__, exc)
            plan = ExecutorPlan("serial", "auto-probe failed")
    else:
        plan = ExecutorPlan(
            "serial",
            "pre-converged by filtered outcomes" if converged
            else ("resumed campaign already complete" if resume is not None
                  else "empty campaign"))
    if plan.reason:
        log.info("engine: executor=%s for %s:%s (%s)", plan.name,
                 backend.name, backend.circuit_name, plan.reason)
    report.executor = plan.name

    strategy = plan.name
    # The auto-probe's payload pickles the *sliced* (remaining) lists,
    # but process workers index them with absolute chunk indices — only
    # usable when the slice started at chunk 0.  On resume, drop it so
    # run_process re-pickles the full (backend, chunks, seeds) and a
    # resumed campaign executes exactly the chunks (and seeds) it claims.
    payload = plan.payload if accounted == 0 else None
    LADDER_FLOOR = "serial"

    def degrade(next_strategy: str, reason: str) -> None:
        """Step down the recovery ladder (process → thread → serial).

        The ladder is monotonic, so each degradation logs exactly once.
        """
        nonlocal strategy
        if strategy == next_strategy:
            return
        log.warning(
            "engine: %s executor failing; falling back to %s from chunk "
            "%d (%s)", strategy, next_strategy, accounted, reason)
        strategy = next_strategy
        report.executor = next_strategy

    def retry_or_quarantine(cause: BaseException) -> None:
        """Chunk ``accounted`` failed: bounded-backoff retries in the
        parent (immune to pool state), then quarantine."""
        nonlocal converged, accounted
        index = accounted
        attempts[index] = attempts.get(index, 0) + 1
        budget = config.max_chunk_retries
        error: BaseException = cause
        while attempts[index] <= budget:
            delay = min(RETRY_BACKOFF_CAP_S,
                        config.retry_backoff_s * 2 ** (attempts[index] - 1))
            log.warning(
                "engine: chunk %d failed (%s: %s); retry %d/%d in the "
                "parent after %.2fs", index, type(error).__name__, error,
                attempts[index], budget, delay)
            if delay > 0:
                time.sleep(delay)
            try:
                backend.prepare()
                # the retry honours chunk_timeout too: a deterministically
                # hung chunk must exhaust its budget and quarantine, not
                # block the campaign forever in the parent
                batch = _executors.execute_chunk_timed(
                    backend, chunks[index], seeds[index],
                    config.chunk_timeout)
                validate_batch(batch, index)
            except Exception as exc:
                error = (exc.cause
                         if isinstance(exc, _executors.ChunkError) else exc)
                attempts[index] += 1
                continue
            report.retried_chunks += 1
            converged = account_chunk(batch)
            return
        log.error(
            "engine: quarantining chunk %d (%d points) after %d failed "
            "execution(s) (%s: %s)", index, len(chunks[index]),
            attempts[index], type(error).__name__, error)
        report.quarantined.append(QuarantinedChunk(
            index=index, n_points=len(chunks[index]),
            attempts=attempts[index],
            error=f"{type(error).__name__}: {error}"))
        accounted += 1
        if db is not None and report.campaign_id is not None:
            pending_checkpoints.append(
                (index, [], "failed", attempts[index],
                 f"{type(error).__name__}: {error}"))
            # the campaign just proved unstable: checkpoint immediately
            flush_checkpoints()

    try:
        for batch in plan.probe_batches or ():
            if account_chunk(batch):
                converged = True
                break
    except _executors.ChunkError as exc:
        retry_or_quarantine(exc.cause)

    # The ladder driver: run the chosen strategy over the remaining
    # chunks; classify anything it raises as a chunk failure (retry in
    # the parent, quarantine when the budget is spent) and/or an
    # executor failure (degrade one rung), then re-enter from the first
    # undelivered chunk — accounting is chunk-ordered, so ``accounted``
    # is exactly that index.  Accounting-path errors propagate raw.
    while not converged and accounted < len(chunks):
        try:
            if strategy == "process":
                if payload is None:
                    # serialize here (if the auto probe didn't already)
                    # so pickling failures are distinguishable from pool
                    # failures — and from backend bugs, which propagate
                    try:
                        payload = pickle.dumps(
                            (backend, chunks, seeds),
                            protocol=pickle.HIGHEST_PROTOCOL)
                    except Exception as exc:
                        degrade("thread",
                                f"backend not picklable "
                                f"({type(exc).__name__}: {exc})")
                        continue
                converged = _executors.run_process(
                    backend, chunks, seeds, guarded_account, config.workers,
                    start=accounted, payload=payload,
                    reuse_pool=config.reuse_pool,
                    timeout=config.chunk_timeout)
            elif strategy == "thread":
                backend.prepare()
                converged = _executors.run_thread(
                    backend, chunks, seeds, guarded_account, config.workers,
                    start=accounted, timeout=config.chunk_timeout)
            else:
                backend.prepare()
                converged = _executors.run_serial(
                    backend, chunks, seeds, guarded_account, start=accounted)
        except _AccountingError as exc:
            raise exc.cause  # accounting-path errors propagate raw
        except _executors.ChunkTimeout as exc:
            # the hung task may never return; its pool is already
            # abandoned (persistent pools: evicted), so step down a rung
            # and retry the chunk in the parent
            degrade("thread" if strategy == "process" else LADDER_FLOOR,
                    f"chunk {accounted} timed out after "
                    f"{config.chunk_timeout}s")
            retry_or_quarantine(exc)
        except (BrokenProcessPool, OSError) as exc:
            if strategy == "process":
                degrade("thread", f"process pool failed "
                        f"({type(exc).__name__}: {exc})")
            retry_or_quarantine(exc)
        except _executors.ChunkError as exc:
            retry_or_quarantine(exc.cause)
    report.converged = converged

    flush_checkpoints()
    finished = getattr(backend, "campaign_finished", None)
    if finished is not None:
        # Optional protocol hook, called only on clean completion: a
        # backend may release campaign-scoped scratch here (e.g.
        # ChaosBackend unlinks its cross-process attempt markers).  An
        # aborted campaign keeps the scratch — a resume may need it.
        finished()
    report.elapsed_s = time.perf_counter() - start
    return report


def resume_campaign(
    backend: InjectionBackend,
    campaign_id: int,
    config: EngineConfig = EngineConfig(),
    db: CampaignDb | None = None,
    on_chunk: Callable[[CampaignReport], None] | None = None,
) -> CampaignReport:
    """Resume a checkpointed campaign from its last committed chunk.

    ``backend`` and ``config`` must reconstruct the interrupted campaign
    exactly (same circuit, seed, sampling, chunking — the stored
    fingerprint is checked); ``db`` must be the database it checkpointed
    to.  Completed chunks are replayed from their records, the remainder
    (including any quarantined chunks) is executed, and the returned
    :class:`CampaignReport` is byte-identical to an uninterrupted run —
    early-stop decisions included.  Execution policy is free to differ:
    a campaign checkpointed from a process pool may resume serially.
    """
    return run_campaign(backend, config, db=db, on_chunk=on_chunk,
                        resume=campaign_id)
